let max_threads = 3

type vocab = Classic | Async | Full

let vocab_name = function
  | Classic -> "classic"
  | Async -> "async"
  | Full -> "full"

let vocab_of_name s =
  match String.lowercase_ascii s with
  | "classic" -> Some Classic
  | "async" -> Some Async
  | "full" -> Some Full
  | _ -> None

(* Deterministic polymorphic hash mix: per-program seeds must not depend on
   anything but (campaign_seed, index). *)
let derive_seed ~campaign_seed ~index = Hashtbl.hash (campaign_seed, index)

let pick rng (choices : (int * (unit -> 'a)) list) =
  let total = List.fold_left (fun n (w, _) -> n + w) 0 choices in
  let rec go n = function
    | [] -> assert false
    | (w, f) :: rest -> if n < w then f () else go (n - w) rest
  in
  go (Random.State.int rng total) choices

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)

(* List.init does not specify the evaluation order of [f]; the generator
   must consume the PRNG in a fixed order. *)
let init_ordered n f =
  let rec go i = if i >= n then [] else f i :: go (i + 1) in
  go 0

let gen_value rng = Random.State.int rng 3
let gen_var rng = Random.State.int rng Compile.n_vars
let gen_mutex rng = Random.State.int rng Compile.n_mutexes

(* mostly in bounds; [arr_len] itself (out of bounds) now and then, to
   exercise the Memory_error outcome *)
let gen_index rng =
  if Random.State.int rng 6 = 0 then Compile.arr_len
  else Random.State.int rng Compile.arr_len

let gen_chan rng = Random.State.int rng Compile.n_chans
let gen_slot rng = Random.State.int rng Compile.n_futures

let rec gen_stmt rng ~vocab ~n_threads ~depth : Ast.stmt =
  let body () = gen_body rng ~vocab ~n_threads ~depth:(depth + 1) in
  let compound =
    if depth >= 2 then []
    else
      [
        ( 3,
          fun () ->
            let m = gen_mutex rng in
            Ast.Lock { m; body = body () } );
        ( 1,
          fun () ->
            let m = gen_mutex rng in
            Ast.Try_lock { m; body = body () } );
        ( 2,
          fun () ->
            let times = int_in rng 1 3 in
            Ast.Loop { times; body = body () } );
        ( 2,
          fun () ->
            let var = gen_var rng in
            let expect = gen_value rng in
            let then_ = body () in
            let else_ = if Random.State.bool rng then body () else [] in
            Ast.If_eq { var; expect; then_; else_ } );
      ]
  in
  (* the async choices come last and are only offered under the extended
     vocabularies, so [Classic] consumes the PRNG exactly as before and
     every historical seed regenerates its historical program *)
  let async =
    match vocab with
    | Classic -> []
    | (Async | Full) as v ->
        (* [Async] doubles the async weights, biasing programs toward the
           task-parallel idioms; [Full] mixes both vocabularies evenly *)
        let w k = if v = Async then 2 * k else k in
        [
          ( w 3,
            fun () ->
              let slot = gen_slot rng in
              let body =
                if depth >= 2 then [ Ast.Incr { var = gen_var rng } ]
                else body ()
              in
              Ast.Future { slot; body } );
          (w 2, fun () -> Ast.Await { slot = gen_slot rng });
          ( w 2,
            fun () ->
              let ch = gen_chan rng in
              Ast.Chan_send { ch; value = gen_value rng } );
          (w 2, fun () -> Ast.Chan_recv { ch = gen_chan rng });
          (w 2, fun () -> Ast.Wq_put { task = Random.State.int rng 2 });
          (w 2, fun () -> Ast.Wq_take);
        ]
  in
  pick rng
    ([
       (2, fun () -> Ast.Yield);
       ( 3,
         fun () ->
           let var = gen_var rng in
           Ast.Write { var; value = gen_value rng } );
       (4, fun () -> Ast.Incr { var = gen_var rng });
       ( 4,
         fun () ->
           let var = gen_var rng in
           Ast.Check_eq { var; expect = gen_value rng } );
       (2, fun () -> Ast.Atomic_incr);
       ( 1,
         fun () ->
           let expect = gen_value rng in
           Ast.Atomic_cas { expect; repl = gen_value rng } );
       (1, fun () -> Ast.Sem_wait);
       (1, fun () -> Ast.Sem_post);
       (1, fun () -> Ast.Cond_signal);
       (1, fun () -> Ast.Cond_broadcast);
       (1, fun () -> Ast.Cond_wait { m = gen_mutex rng });
       (1, fun () -> Ast.Barrier_wait);
       ( 1,
         fun () ->
           let index = gen_index rng in
           Ast.Arr_set { index; value = gen_value rng } );
       (1, fun () -> Ast.Arr_get { index = gen_index rng });
       (1, fun () -> Ast.Join { thread = Random.State.int rng n_threads });
     ]
    @ compound @ async)

and gen_body rng ~vocab ~n_threads ~depth =
  let n = int_in rng 1 (max 1 (3 - depth)) in
  init_ordered n (fun _ -> gen_stmt rng ~vocab ~n_threads ~depth)

let generate ?(vocab = Classic) ~seed () =
  let rng = Random.State.make [| 0xF022; seed |] in
  let n_threads = int_in rng 1 max_threads in
  let threads =
    init_ordered n_threads (fun _ ->
        let n = int_in rng 1 4 in
        init_ordered n (fun _ -> gen_stmt rng ~vocab ~n_threads ~depth:0))
  in
  { Ast.threads }

let program ~seed = generate ~seed ()
