(* One-step AST simplifications for delta debugging. Termination measure:
   size + sum of loop iteration counts; every candidate strictly
   decreases it. *)

let rec stmt_measure (s : Ast.stmt) =
  match s with
  | Loop { times; body } -> 1 + times + list_measure body
  | Lock { body; _ } | Try_lock { body; _ } | Future { body; _ } ->
      1 + list_measure body
  | If_eq { then_; else_; _ } -> 1 + list_measure then_ + list_measure else_
  | _ -> 1

and list_measure ss = List.fold_left (fun n s -> n + stmt_measure s) 0 ss

let measure (p : Ast.program) =
  List.fold_left (fun n t -> n + list_measure t) 0 p.Ast.threads

(* Replace element [i] of [l] by the list [rs] (splicing). *)
let splice l i rs =
  List.concat (List.mapi (fun j x -> if j = i then rs else [ x ]) l)

(* Simplifications of a single statement, each yielding a replacement
   statement LIST (so unwrapping splices the body in place). *)
let rec stmt_variants (s : Ast.stmt) : Ast.stmt list list =
  match s with
  | Ast.Lock { m; body } ->
      (body :: List.map (fun b -> [ Ast.Lock { m; body = b } ]) (list_variants body))
  | Ast.Try_lock { m; body } ->
      (body
      :: List.map (fun b -> [ Ast.Try_lock { m; body = b } ]) (list_variants body))
  | Ast.Future { slot; body } ->
      (* unwrapping runs the body synchronously on the spawning thread — a
         strictly smaller program that preserves the body's operations *)
      (body
      :: List.map (fun b -> [ Ast.Future { slot; body = b } ]) (list_variants body))
  | Ast.Loop { times; body } ->
      (body :: (if times > 1 then [ [ Ast.Loop { times = times - 1; body } ] ] else []))
      @ List.map (fun b -> [ Ast.Loop { times; body = b } ]) (list_variants body)
  | Ast.If_eq { var; expect; then_; else_ } ->
      [ then_; else_ ]
      @ List.map
          (fun b -> [ Ast.If_eq { var; expect; then_ = b; else_ } ])
          (list_variants then_)
      @ List.map
          (fun b -> [ Ast.If_eq { var; expect; then_; else_ = b } ])
          (list_variants else_)
  | _ -> []

(* Simplifications of a statement list: drop one element, or simplify one
   element in place, in program order. *)
and list_variants (ss : Ast.stmt list) : Ast.stmt list list =
  let drops = List.mapi (fun i _ -> splice ss i []) ss in
  let deep =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun rs -> splice ss i rs) (stmt_variants s))
         ss)
  in
  drops @ deep

let candidates (p : Ast.program) =
  let threads = p.Ast.threads in
  let drop_threads =
    List.mapi (fun i _ -> { Ast.threads = splice threads i [] }) threads
  in
  let per_thread =
    List.concat
      (List.mapi
         (fun i body ->
           List.map
             (fun b -> { Ast.threads = splice threads i [ b ] })
             (list_variants body))
         threads)
  in
  let m = measure p in
  List.filter (fun c -> measure c < m) (drop_threads @ per_thread)

let shrink ?(max_checks = 2000) ~check p =
  if not (check p) then
    invalid_arg "Sct_fuzz.Shrink.shrink: program does not fail";
  let budget = ref max_checks in
  let rec go p =
    let rec first = function
      | [] -> p
      | c :: rest ->
          if !budget <= 0 then p
          else begin
            decr budget;
            if check c then go c else first rest
          end
    in
    first (candidates p)
  in
  go p
