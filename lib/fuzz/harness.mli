(** The fuzz campaign: generate, check, shrink, report.

    Program [i] of a campaign is a pure function of [(campaign seed, i)]
    — {!one_program} touches no shared mutable state, so campaigns can be
    sharded by index across worker domains and the reports reassembled in
    index order, producing output byte-identical to the sequential run
    for every [--jobs] value. *)

type counterexample = {
  cx_index : int;  (** program index within the campaign *)
  cx_seed : int;  (** the derived per-program seed (replays the program) *)
  cx_original : Ast.program;
  cx_shrunk : Ast.program;  (** locally minimal, still violating *)
  cx_violations : Oracle.violation list;  (** violations of [cx_shrunk] *)
}

type report = {
  r_index : int;
  r_seed : int;  (** derived per-program seed *)
  r_size : int;  (** AST size of the generated program *)
  r_counterexample : counterexample option;
}

type summary = {
  s_programs : int;
  s_counterexamples : counterexample list;  (** in campaign index order *)
}

val one_program :
  ?wrap:(Oracle.runner -> Oracle.runner) ->
  ?vocab:Gen.vocab ->
  cfg:Oracle.config ->
  campaign_seed:int ->
  int ->
  report
(** [one_program ~cfg ~campaign_seed index]: generate program [index]
    (under [vocab], default {!Gen.Classic}),
    run the oracle, and — on violation — shrink
    it to a locally minimal counterexample (the shrink predicate is "the
    oracle still reports at least one violation"). Pure in its arguments:
    safe to run on any domain. *)

val summarize : report list -> summary
(** Fold reports (given in index order) into a campaign summary. *)

val run :
  ?wrap:(Oracle.runner -> Oracle.runner) ->
  ?vocab:Gen.vocab ->
  cfg:Oracle.config ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** The sequential campaign: programs [0 .. count-1]. *)

val dump : dir:string -> counterexample -> string
(** Write the counterexample as a replayable artifact
    [fuzz-s<seed>-i<index>.txt] under [dir] (created if missing,
    atomically, idempotent) and return its path. The file records the
    per-program seed, the violated invariants, and both the original and
    the shrunk program. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
