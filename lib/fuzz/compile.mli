(** Compile a fuzz AST into a runnable [Sct] program.

    The compiled thunk allocates a fresh resource environment on every
    invocation, so it is a valid program for {!Sct_core.Runtime.exec} and
    can be re-executed arbitrarily often by the explorers:

    - [n_vars] plain shared variables [fz_v0 .. ], initially 0;
    - one atomic counter [fz_a], initially 0;
    - [n_mutexes] mutexes;
    - one condition variable, one semaphore (initial value 1), one cyclic
      barrier of size 2;
    - one shared array [fz_arr] of length {!arr_len}, zero-initialised.

    The async/task-parallel statements compile against a further
    environment: [n_futures] promise slots (a {!Ast.constructor-Future}
    spawns its body as a fresh thread and publishes the handle; an
    {!Ast.constructor-Await} of an empty slot degenerates to a [yield]),
    [n_chans] capacity-1 bounded channels (a data location [fz_ch<i>]
    guarded by a slots/items semaphore pair), and one work queue (items
    semaphore, a mutex-guarded pending count [fz_wq_n], and an
    {e unsynchronised} completion counter [fz_wq_done] — a deliberate
    data-race source). The main thread joins every future after the
    top-level joins, so no execution leaks a running thread.

    Resource indices in the AST are reduced modulo the environment size, so
    every AST is compilable. [Join {thread}] is compiled to a real
    [Sct.join] only when [thread] names an earlier-spawned thread (the only
    case where the target's id is deterministically available); otherwise
    it degenerates to a [yield], keeping shrunk programs well-formed. The
    main thread spawns every body in order and joins them all. *)

val n_vars : int
val n_mutexes : int
val arr_len : int
val n_futures : int
val n_chans : int

val program : Ast.program -> unit -> unit
(** [program ast] is the runnable program; the outer application performs
    no effects, so the result can be shared across domains. *)
