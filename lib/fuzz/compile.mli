(** Compile a fuzz AST into a runnable [Sct] program.

    The compiled thunk allocates a fresh resource environment on every
    invocation, so it is a valid program for {!Sct_core.Runtime.exec} and
    can be re-executed arbitrarily often by the explorers:

    - [n_vars] plain shared variables [fz_v0 .. ], initially 0;
    - one atomic counter [fz_a], initially 0;
    - [n_mutexes] mutexes;
    - one condition variable, one semaphore (initial value 1), one cyclic
      barrier of size 2;
    - one shared array [fz_arr] of length {!arr_len}, zero-initialised.

    Resource indices in the AST are reduced modulo the environment size, so
    every AST is compilable. [Join {thread}] is compiled to a real
    [Sct.join] only when [thread] names an earlier-spawned thread (the only
    case where the target's id is deterministically available); otherwise
    it degenerates to a [yield], keeping shrunk programs well-formed. The
    main thread spawns every body in order and joins them all. *)

val n_vars : int
val n_mutexes : int
val arr_len : int

val program : Ast.program -> unit -> unit
(** [program ast] is the runnable program; the outer application performs
    no effects, so the result can be shared across domains. *)
