open Sct_explore
module Outcome = Sct_core.Outcome
module Schedule = Sct_core.Schedule
module Runtime = Sct_core.Runtime

type config = {
  limit : int;
  max_steps : int;
  race_runs : int;
  prefix_batch : bool;
  por : Por.mode option;
  techniques : Techniques.t list;
}

let default_config =
  {
    limit = 500;
    max_steps = 5_000;
    race_runs = 5;
    prefix_batch = false;
    por = None;
    techniques = Techniques.all;
  }

type violation = { v_invariant : string; v_detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s" v.v_invariant v.v_detail

type runner = Techniques.t -> Stats.t

let promote_all _ = true

(* The sub-budget of the POR cross-check and the shard-merge check: both
   re-explore, so they run on a slice of the campaign budget. *)
let sub_limit limit = min limit 200

let check ?(wrap = fun r -> r) cfg ~seed program =
  let violations = ref [] in
  let fail inv fmt =
    Format.kasprintf
      (fun detail ->
        violations := { v_invariant = inv; v_detail = detail } :: !violations)
      fmt
  in
  let require inv cond fmt =
    Format.kasprintf
      (fun detail ->
        if not cond then
          violations := { v_invariant = inv; v_detail = detail } :: !violations)
      fmt
  in
  let o =
    {
      Techniques.default_options with
      Techniques.limit = cfg.limit;
      seed;
      max_steps = cfg.max_steps;
      race_runs = cfg.race_runs;
      prefix_batch = cfg.prefix_batch;
      por = cfg.por;
    }
  in
  let detection = Techniques.detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  let base : runner = fun t -> Techniques.run ~promote o t program in
  let runner = wrap base in
  let stats = List.map (fun t -> (t, runner t)) cfg.techniques in
  let stat t = List.assoc_opt t stats in
  let selected t = List.mem t cfg.techniques in
  let tname t = Techniques.name t in

  (* ---- per-technique schedule-count algebra --------------------------- *)
  List.iter
    (fun (t, (s : Stats.t)) ->
      let n = tname t in
      require "algebra" (s.Stats.buggy >= 0 && s.Stats.buggy <= s.Stats.total)
        "%s: buggy=%d outside [0, total=%d]" n s.Stats.buggy s.Stats.total;
      require "algebra"
        (s.Stats.buggy > 0 = (s.Stats.first_bug <> None))
        "%s: buggy=%d inconsistent with first_bug presence" n s.Stats.buggy;
      (match (s.Stats.to_first_bug, s.Stats.first_bug) with
      | Some i, Some _ ->
          require "algebra"
            (i >= 1 && i <= s.Stats.total)
            "%s: to_first_bug=%d outside [1, total=%d]" n i s.Stats.total
      | None, None -> ()
      | Some i, None ->
          fail "algebra" "%s: to_first_bug=%d without a witness" n i
      | None, Some _ -> fail "algebra" "%s: witness without to_first_bug" n);
      if t <> Techniques.Maple then begin
        require "algebra"
          (s.Stats.total + s.Stats.cut_runs <= cfg.limit)
          "%s: total=%d + cuts=%d exceeds the budget %d" n s.Stats.total
          s.Stats.cut_runs cfg.limit;
        (* reduced campaigns also budget raw executions (see
           Driver.explore), so under [por] the limit may be hit with fewer
           counted schedules than the budget; cut executions (fair/length
           bounding) charge the budget the same way without counting *)
        require "algebra"
          ((not s.Stats.hit_limit)
          || s.Stats.total + s.Stats.cut_runs = cfg.limit
          || (cfg.por <> None && s.Stats.executions = cfg.limit))
          "%s: hit_limit with total=%d + cuts=%d <> limit=%d (executions=%d)"
          n s.Stats.total s.Stats.cut_runs cfg.limit s.Stats.executions
      end;
      (* only the execution-level filters may abandon runs *)
      (match t with
      | Techniques.Fair | Techniques.Length -> ()
      | _ ->
          require "algebra" (s.Stats.cut_runs = 0)
            "%s: cut_runs=%d on a technique with no execution-level filter"
            n s.Stats.cut_runs);
      (match Stats.distinct s with
      | None -> ()
      | Some d ->
          require "algebra"
            (d <= s.Stats.total && (s.Stats.total = 0) = (d = 0))
            "%s: distinct=%d inconsistent with total=%d" n d s.Stats.total);
      require "algebra" (not s.Stats.hit_deadline)
        "%s: hit_deadline on a deadline-free campaign" n;
      (* bounded techniques: the witness's own count is the level where it
         was found *)
      match (t, s.Stats.first_bug) with
      | Techniques.IPB, Some w ->
          require "algebra"
            (s.Stats.bound = Some w.Stats.w_pc)
            "IPB: bound=%s but witness pc=%d"
            (match s.Stats.bound with
            | None -> "None"
            | Some b -> string_of_int b)
            w.Stats.w_pc
      | Techniques.IDB, Some w ->
          require "algebra"
            (s.Stats.bound = Some w.Stats.w_dc)
            "IDB: bound=%s but witness dc=%d"
            (match s.Stats.bound with
            | None -> "None"
            | Some b -> string_of_int b)
            w.Stats.w_dc
      | _ -> ())
    stats;

  (* ---- every witness replays to the same bug -------------------------- *)
  List.iter
    (fun (t, (s : Stats.t)) ->
      match s.Stats.first_bug with
      | None -> ()
      | Some w -> (
          let n = tname t in
          match
            Replay.replay ~promote ~max_steps:cfg.max_steps
              ~schedule:w.Stats.w_schedule program
          with
          | None ->
              fail "witness-replay" "%s: witness schedule is infeasible" n
          | Some r ->
              require "witness-replay"
                (Outcome.is_buggy r.Runtime.r_outcome)
                "%s: witness replays without a bug (outcome %s)" n
                (Outcome.to_string r.Runtime.r_outcome);
              require "witness-replay"
                (Schedule.equal r.Runtime.r_schedule w.Stats.w_schedule)
                "%s: replayed schedule differs from the witness" n;
              (match r.Runtime.r_outcome with
              | Outcome.Bug { bug; by } ->
                  require "witness-replay"
                    (Outcome.bug_equal bug w.Stats.w_bug
                    && Sct_core.Tid.equal by w.Stats.w_by)
                    "%s: replay found a different bug or culprit" n
              | _ -> ());
              require "witness-replay"
                (r.Runtime.r_pc = w.Stats.w_pc && r.Runtime.r_dc = w.Stats.w_dc)
                "%s: replay pc/dc (%d/%d) differ from the witness (%d/%d)" n
                r.Runtime.r_pc r.Runtime.r_dc w.Stats.w_pc w.Stats.w_dc))
    stats;

  (* ---- bug-finding inclusions on exhaustible programs ------------------ *)
  (* The inclusion laws relate DFS, IPB and IDB, so they only apply when all
     three ran under this campaign's technique selection. *)
  let dfs_stat = stat Techniques.DFS in
  (match (dfs_stat, stat Techniques.IPB, stat Techniques.IDB) with
  | Some dfs, Some ipb, Some idb when dfs.Stats.complete ->
      if Stats.found dfs then begin
        require "inclusion" (Stats.found ipb)
          "DFS exhausted the space and found a bug, IPB did not";
        require "inclusion" (Stats.found idb)
          "DFS exhausted the space and found a bug, IDB did not"
      end
      else begin
        List.iter
          (fun (t, s) ->
            require "inclusion" (not (Stats.found s))
              "DFS exhausted a bug-free space but %s reports a bug" (tname t))
          stats;
        (* the count identities assume every technique walks the same full
           tree; a POR-composed campaign reduces each cell differently (the
           per-level conservative wake-ups of BPOR re-explore schedules the
           unbounded reduction sleeps through), so only the bug-freedom
           agreement above applies under [por] *)
        if cfg.por = None then begin
          require "inclusion" ipb.Stats.complete
            "DFS exhausted a bug-free space but IPB did not complete";
          require "inclusion" idb.Stats.complete
            "DFS exhausted a bug-free space but IDB did not complete";
          require "inclusion"
            (ipb.Stats.total = dfs.Stats.total)
            "IPB counted %d schedules on a bug-free exhausted space of %d"
            ipb.Stats.total dfs.Stats.total;
          require "inclusion"
            (idb.Stats.total = dfs.Stats.total)
            "IDB counted %d schedules on a bug-free exhausted space of %d"
            idb.Stats.total dfs.Stats.total
        end
      end
  | _ -> ());

  (* ---- axes agreement: complete bounding-axis campaigns vs full DFS ---- *)
  (* Fair/Length/IVB/ITB report [complete] only when no run was cut and no
     candidate was filtered — the walk provably covered the whole schedule
     space. Such a campaign must agree with exhaustive DFS on bug-freedom,
     and (comparing two plain walks of the same tree) count the same
     schedules. Under [por] the DFS cell is reduced while the axes always
     run plain, so only the bug agreement applies. *)
  (match dfs_stat with
  | Some dfs when dfs.Stats.complete ->
      List.iter
        (fun t ->
          match stat t with
          | Some s when s.Stats.complete ->
              require "axes-agreement"
                (Stats.found s = Stats.found dfs)
                "%s explored the whole space but disagrees with exhaustive \
                 DFS on bug-freedom"
                (tname t);
              if (not (Stats.found dfs)) && cfg.por = None then
                require "axes-agreement"
                  (s.Stats.total = dfs.Stats.total)
                  "%s counted %d schedules on an exhausted bug-free space \
                   of %d"
                  (tname t) s.Stats.total dfs.Stats.total
          | _ -> ())
        [ Techniques.Fair; Techniques.Length; Techniques.IVB; Techniques.ITB ]
  | _ -> ());

  (* ---- axes at an unreachable bound: nothing cut, nothing lost --------- *)
  (* Fair bounding at a bound no yield imbalance can reach admits every
     schedule the plain preemption-bounded walk admits, and length bounding
     at an unreachable cap never cuts: each must be byte-identical to its
     unrestricted counterpart (modulo the technique name) — the no-bug-lost
     direction of the execution-level filters. *)
  (let m = sub_limit cfg.limit in
   let o_sub =
     { o with Techniques.limit = m; prefix_batch = false; por = None }
   in
   if selected Techniques.Fair && selected Techniques.IPB then begin
     let ipb = Techniques.run ~promote o_sub Techniques.IPB program in
     let fair =
       Techniques.run ~promote
         { o_sub with Techniques.fair_bound = max_int }
         Techniques.Fair program
     in
     require "axes-unbounded"
       (Stats.equal { fair with Stats.technique = ipb.Stats.technique } ipb)
       "Fair at an unreachable bound differs from plain IPB (%a vs %a)"
       Stats.pp fair Stats.pp ipb
   end;
   if selected Techniques.Length && selected Techniques.DFS then begin
     let dfs = Techniques.run ~promote o_sub Techniques.DFS program in
     let len =
       Techniques.run ~promote
         { o_sub with Techniques.length_bound = max_int }
         Techniques.Length program
     in
     require "axes-unbounded"
       (Stats.equal { len with Stats.technique = dfs.Stats.technique } dfs)
       "Length at an unreachable cap differs from plain DFS (%a vs %a)"
       Stats.pp len Stats.pp dfs
   end);

  (* ---- POR vs full DFS, all locations visible -------------------------- *)
  (* A DFS-based cross-check; skipped when the campaign deselected DFS. *)
  let por_limit = sub_limit cfg.limit in
  let dfs_all =
    if not (selected Techniques.DFS) then None
    else
      Some
        (Dfs.explore ~promote:promote_all ~max_steps:cfg.max_steps
           ~bound:Dfs.Unbounded ~limit:por_limit program)
  in
  (match dfs_all with None -> () | Some dfs_all ->
  if dfs_all.Dfs.complete then
    List.iter
      (fun (mode, mode_name) ->
        let por =
          Por.explore ~promote:promote_all ~max_steps:cfg.max_steps ~mode
            ~limit:por_limit program
        in
        require "por" por.Por.complete
          "POR(%s) did not complete on a space full DFS exhausted (%d \
           schedules)"
          mode_name dfs_all.Dfs.counted;
        require "por"
          (por.Por.buggy > 0 = (dfs_all.Dfs.buggy > 0))
          "POR(%s) and full DFS disagree on bug-freedom (POR buggy=%d, DFS \
           buggy=%d)"
          mode_name por.Por.buggy dfs_all.Dfs.buggy;
        require "por"
          (por.Por.counted <= dfs_all.Dfs.counted)
          "POR(%s) counted %d terminal schedules, more than full DFS's %d"
          mode_name por.Por.counted dfs_all.Dfs.counted;
        require "por" (por.Por.counted >= 1)
          "POR(%s) counted no terminal schedule" mode_name)
      [ (Por.Sleep, "sleep"); (Por.Dpor, "dpor"); (Por.Dpor_sleep, "both") ]);

  (* ---- BPOR under a bound: equivalence with the plain bounded walk ----- *)
  (* The conservative-backtracking soundness law (por.mli): at every bound
     level, the reduced walk of the bounded tree must agree with the plain
     walk on bug-freedom and exhaustion while counting no more schedules.
     All locations are promoted so the reduction sees full dependence
     information. [Sleep] under a finite bound carries no sound pruning and
     must degenerate to the plain walk exactly. *)
  if selected Techniques.DFS then
    List.iter
      (fun bound_of ->
        List.iter
          (fun c ->
            let bound = bound_of c in
            let bname =
              match bound with
              | Dfs.Preemption c -> Printf.sprintf "pb=%d" c
              | Dfs.Delay c -> Printf.sprintf "db=%d" c
              | Dfs.Variable c -> Printf.sprintf "vb=%d" c
              | Dfs.Threads c -> Printf.sprintf "tb=%d" c
              | Dfs.Unbounded -> "unbounded"
            in
            let plain =
              Dfs.explore ~promote:promote_all ~max_steps:cfg.max_steps ~bound
                ~limit:por_limit program
            in
            List.iter
              (fun mode ->
                let mn = Por.mode_name mode in
                let bpor =
                  Por.explore ~promote:promote_all ~max_steps:cfg.max_steps
                    ~bound ~mode ~limit:por_limit program
                in
                require "bpor"
                  (bpor.Por.counted <= plain.Dfs.counted)
                  "BPOR(%s) at %s counted %d schedules, more than the plain \
                   bounded walk's %d"
                  mn bname bpor.Por.counted plain.Dfs.counted;
                if plain.Dfs.complete && not plain.Dfs.hit_limit then begin
                  require "bpor" bpor.Por.complete
                    "BPOR(%s) did not exhaust the %s tree the plain walk \
                     exhausted (%d schedules)"
                    mn bname plain.Dfs.counted;
                  require "bpor"
                    (bpor.Por.buggy > 0 = (plain.Dfs.buggy > 0))
                    "BPOR(%s) and the plain walk disagree on bug-freedom at \
                     %s (BPOR buggy=%d, plain buggy=%d)"
                    mn bname bpor.Por.buggy plain.Dfs.buggy
                end;
                if mode = Por.Sleep then
                  require "bpor"
                    (bpor.Por.counted = plain.Dfs.counted
                    && bpor.Por.buggy = plain.Dfs.buggy
                    && bpor.Por.pruned_sleep = 0)
                    "sleep-mode at %s must degenerate to the plain bounded \
                     walk (counted %d vs %d, buggy %d vs %d, sleep-pruned %d)"
                    bname bpor.Por.counted plain.Dfs.counted bpor.Por.buggy
                    plain.Dfs.buggy bpor.Por.pruned_sleep)
              [ Por.Sleep; Por.Dpor; Por.Dpor_sleep ])
          [ 0; 1; 2 ])
      [ (fun c -> Dfs.Preemption c); (fun c -> Dfs.Delay c) ];

  (* ---- POR-composed campaigns: bug-finding no worse at equal bounds ---- *)
  (* The Strategy-level composition (Techniques.run with [por]): whenever
     both campaigns resolve their space within the budget, the reduced
     IPB/IDB campaign agrees with the plain one on bug-freedom, finds its
     bug at the same bound level, and counts no more schedules. *)
  (let cmode =
     match cfg.por with Some m -> m | None -> Por.Dpor_sleep
   in
   List.iter
     (fun t ->
       let n = tname t in
       let o_sub =
         {
           o with
           Techniques.limit = por_limit;
           prefix_batch = false;
           por = None;
         }
       in
       let plain = Techniques.run ~promote:promote_all o_sub t program in
       let bpor =
         Techniques.run ~promote:promote_all
           { o_sub with Techniques.por = Some cmode }
           t program
       in
       require "bpor-campaign"
         (bpor.Stats.total <= plain.Stats.total)
         "%s+POR(%s) counted %d schedules, more than plain %s's %d" n
         (Por.mode_name cmode) bpor.Stats.total n plain.Stats.total;
       if
         (not plain.Stats.hit_limit)
         && not bpor.Stats.hit_limit
       then begin
         require "bpor-campaign"
           (Stats.found bpor = Stats.found plain)
           "%s+POR(%s) and plain %s disagree on bug-freedom" n
           (Por.mode_name cmode) n;
         if Stats.found plain then
           require "bpor-campaign"
             (bpor.Stats.bound = plain.Stats.bound)
             "%s+POR(%s) found its bug at bound %s, plain %s at %s" n
             (Por.mode_name cmode)
             (match bpor.Stats.bound with
             | None -> "None"
             | Some b -> string_of_int b)
             n
             (match plain.Stats.bound with
             | None -> "None"
             | Some b -> string_of_int b)
       end)
     (List.filter
        (fun t -> selected t && Techniques.supports_por t)
        [ Techniques.IPB; Techniques.IDB ]));

  (* ---- bound-level algebra: monotone in c, and DC >= PC ---------------- *)
  (* Also DFS-based: the bounded walks reuse the DFS explorer. *)
  if selected Techniques.DFS then begin
    let walk bound =
      Dfs.explore ~promote ~max_steps:cfg.max_steps ~bound ~limit:cfg.limit
        program
    in
    let pc_counts =
      List.map (fun c -> (walk (Dfs.Preemption c)).Dfs.counted) [ 0; 1; 2 ]
    in
    let dc_counts =
      List.map (fun c -> (walk (Dfs.Delay c)).Dfs.counted) [ 0; 1; 2 ]
    in
    let monotone name = function
      | [ a; b; c ] ->
          require "bound-algebra"
            (a <= b && b <= c)
            "%s-bounded schedule counts not monotone in the bound: %d, %d, %d"
            name a b c
      | _ -> assert false
    in
    monotone "preemption" pc_counts;
    monotone "delay" dc_counts;
    List.iteri
      (fun c (dc, pc) ->
        require "bound-algebra" (dc <= pc)
          "delay bound %d admits %d schedules, preemption bound %d only %d \
           (DC >= PC violated)"
          c dc c pc)
      (List.combine dc_counts pc_counts);
    (* the full-space cap only holds against a plain DFS total: under
       [por] the campaign's DFS is reduced, and a plain bounded count can
       legitimately exceed the reduced full-space count *)
    match dfs_stat with
    | Some dfs when dfs.Stats.complete && cfg.por = None ->
        List.iteri
          (fun c pc ->
            require "bound-algebra"
              (pc <= dfs.Stats.total)
              "preemption bound %d counts %d schedules, beyond the full \
               space's %d"
              c pc dfs.Stats.total)
          pc_counts
    | _ -> ()
  end;

  (* ---- shard-merge determinism for the seed-sharded techniques --------- *)
  List.iter
    (fun t ->
      match Techniques.sharding ~promote o t program with
      | Strategy.Shard_seed f ->
          let m = sub_limit cfg.limit in
          let whole = f ~lo:0 ~hi:m in
          let h = m / 2 in
          let merged = Stats.merge (f ~lo:0 ~hi:h) (f ~lo:h ~hi:m) in
          require "shard-merge"
            (Stats.equal whole merged)
            "%s: half-range shards do not merge to the whole range ([0,%d) \
             vs [0,%d)+[%d,%d))"
            (tname t) m h h m
      | Strategy.Shard_tree _ | Strategy.Shard_runs _ ->
          fail "shard-merge" "%s: expected a Shard_seed parallel plan"
            (tname t))
    (List.filter selected [ Techniques.Rand; Techniques.PCT; Techniques.SURW ]);

  (* ---- prefix-batch differential: batched == unbatched modulo steps ---- *)
  (* When the campaign above ran on the batched executor, re-run each tree
     technique on the plain driver: everything but the step counters must be
     byte-identical, and the batched counters must conserve total work
     (executed + saved = the unbatched step count). *)
  if cfg.prefix_batch then
    List.iter
      (fun (t, (s : Stats.t)) ->
        if Techniques.supports_prefix_batch t then begin
          let n = tname t in
          let plain =
            Techniques.run ~promote
              { o with Techniques.prefix_batch = false }
              t program
          in
          require "prefix-batch"
            (Stats.equal plain
               {
                 s with
                 Stats.steps_executed = plain.Stats.steps_executed;
                 steps_saved = plain.Stats.steps_saved;
               })
            "%s: batched statistics differ from the unbatched driver's" n;
          require "prefix-batch"
            (s.Stats.steps_executed + s.Stats.steps_saved
            = plain.Stats.steps_executed)
            "%s: steps not conserved (batched %d executed + %d saved, \
             unbatched %d executed)"
            n s.Stats.steps_executed s.Stats.steps_saved
            plain.Stats.steps_executed;
          require "prefix-batch" (plain.Stats.steps_saved = 0)
            "%s: the unbatched driver reported saved steps" n
        end)
      stats;

  List.rev !violations
