(** The typed AST of generated concurrent programs.

    A fuzz program is a list of thread bodies over a fixed, small resource
    environment (see {!Compile}): [n_vars] plain shared variables, one
    sequentially-consistent atomic, [n_mutexes] mutexes, one condition
    variable, one counting semaphore (initial value 1), one size-2 cyclic
    barrier and one bounds-checked shared array of length
    {!Compile.arr_len}. Statements cover the runtime's full visible-op
    vocabulary — spawn/join (implicit: the main thread spawns every body in
    order and joins them all, plus explicit cross-thread {!constructor-Join}),
    mutexes, condition variables, barriers, semaphores, atomics, shared
    variables and arrays, bounded loops and branches on shared state.

    Every program is well-formed by construction (resource indices are
    reduced modulo the environment size at compile time, joins only target
    earlier-spawned threads) and deterministic up to scheduling, so it is a
    valid input for every exploration technique. Programs may be buggy —
    failing {!constructor-Check_eq} assertions, deadlocks through lock
    nesting / lost signals / barrier underflow, out-of-bounds array
    accesses — which is exactly what the differential oracle wants.

    The async/task-parallel statements ({!constructor-Future},
    {!constructor-Await}, bounded channels, the work-queue idiom) extend
    the vocabulary beyond SCTBench's pthread style into the setting of
    futures and message passing: a future spawns a thread at runtime and
    publishes its handle in a promise slot; channels are capacity-1
    bounded buffers; the work queue is a semaphore-guarded shared counter
    with a racy completion count. They are generated only under the
    [Async]/[Full] vocabularies (see {!Gen.vocab}), so classic fuzz
    campaigns are byte-for-byte unchanged. *)

type stmt =
  | Yield
  | Write of { var : int; value : int }  (** v := value *)
  | Incr of { var : int }  (** v := v + 1, a non-atomic read-modify-write *)
  | Check_eq of { var : int; expect : int }
      (** [Sct.check (v = expect)] — the assertion-bug source *)
  | Lock of { m : int; body : stmt list }  (** balanced critical section *)
  | Try_lock of { m : int; body : stmt list }
      (** body runs only if the lock was acquired *)
  | Atomic_incr  (** fetch-and-add 1 on the shared atomic *)
  | Atomic_cas of { expect : int; repl : int }
  | Sem_wait
  | Sem_post
  | Cond_signal
  | Cond_broadcast
  | Cond_wait of { m : int }  (** lock m; wait c m; unlock m *)
  | Barrier_wait
  | Arr_set of { index : int; value : int }
      (** [index >= Compile.arr_len] is an out-of-bounds crash *)
  | Arr_get of { index : int }
  | Loop of { times : int; body : stmt list }  (** bounded repetition *)
  | If_eq of { var : int; expect : int; then_ : stmt list; else_ : stmt list }
      (** branch on shared state *)
  | Join of { thread : int }
      (** join thread [thread]; compiled to a no-op unless [thread] is an
          earlier-spawned thread of the program (see {!Compile}) *)
  | Future of { slot : int; body : stmt list }
      (** spawn [body] as a fresh thread and publish its handle in promise
          slot [slot mod Compile.n_futures]; the main thread joins every
          future at program end, so leaked futures never outlive the
          execution *)
  | Await of { slot : int }
      (** join the future published in [slot]; a pure scheduling point when
          the slot is still empty *)
  | Chan_send of { ch : int; value : int }
      (** blocking send on the capacity-1 bounded channel [ch] *)
  | Chan_recv of { ch : int }  (** blocking receive from channel [ch] *)
  | Wq_put of { task : int }  (** enqueue one work item *)
  | Wq_take
      (** dequeue one work item (blocking) and bump the unsynchronised
          completion counter — a deliberate data-race source *)

type program = { threads : stmt list list }

val size : program -> int
(** Total number of statement nodes, the measure the shrinker minimises. *)

val equal : program -> program -> bool

val pp : Format.formatter -> program -> unit
(** Deterministic, human-readable rendering used in counterexample
    artifacts and qcheck failure output. *)

val to_string : program -> string
