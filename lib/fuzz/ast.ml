type stmt =
  | Yield
  | Write of { var : int; value : int }
  | Incr of { var : int }
  | Check_eq of { var : int; expect : int }
  | Lock of { m : int; body : stmt list }
  | Try_lock of { m : int; body : stmt list }
  | Atomic_incr
  | Atomic_cas of { expect : int; repl : int }
  | Sem_wait
  | Sem_post
  | Cond_signal
  | Cond_broadcast
  | Cond_wait of { m : int }
  | Barrier_wait
  | Arr_set of { index : int; value : int }
  | Arr_get of { index : int }
  | Loop of { times : int; body : stmt list }
  | If_eq of { var : int; expect : int; then_ : stmt list; else_ : stmt list }
  | Join of { thread : int }
  | Future of { slot : int; body : stmt list }
  | Await of { slot : int }
  | Chan_send of { ch : int; value : int }
  | Chan_recv of { ch : int }
  | Wq_put of { task : int }
  | Wq_take

type program = { threads : stmt list list }

let rec stmt_size = function
  | Yield | Write _ | Incr _ | Check_eq _ | Atomic_incr | Atomic_cas _
  | Sem_wait | Sem_post | Cond_signal | Cond_broadcast | Cond_wait _
  | Barrier_wait | Arr_set _ | Arr_get _ | Join _ | Await _ | Chan_send _
  | Chan_recv _ | Wq_put _ | Wq_take ->
      1
  | Lock { body; _ } | Try_lock { body; _ } | Loop { body; _ }
  | Future { body; _ } ->
      1 + list_size body
  | If_eq { then_; else_; _ } -> 1 + list_size then_ + list_size else_

and list_size ss = List.fold_left (fun n s -> n + stmt_size s) 0 ss

let size p = List.fold_left (fun n t -> n + list_size t) 0 p.threads
let equal (a : program) b = a = b

let rec pp_stmt fmt = function
  | Yield -> Format.fprintf fmt "yield"
  | Write { var; value } -> Format.fprintf fmt "v%d := %d" var value
  | Incr { var } -> Format.fprintf fmt "v%d++" var
  | Check_eq { var; expect } -> Format.fprintf fmt "check(v%d = %d)" var expect
  | Lock { m; body } ->
      Format.fprintf fmt "@[<hv 2>lock(m%d) {%a@;<1 -2>}@]" m pp_body body
  | Try_lock { m; body } ->
      Format.fprintf fmt "@[<hv 2>trylock(m%d) {%a@;<1 -2>}@]" m pp_body body
  | Atomic_incr -> Format.fprintf fmt "a++"
  | Atomic_cas { expect; repl } ->
      Format.fprintf fmt "cas(a, %d, %d)" expect repl
  | Sem_wait -> Format.fprintf fmt "sem_wait"
  | Sem_post -> Format.fprintf fmt "sem_post"
  | Cond_signal -> Format.fprintf fmt "signal"
  | Cond_broadcast -> Format.fprintf fmt "broadcast"
  | Cond_wait { m } -> Format.fprintf fmt "cond_wait(m%d)" m
  | Barrier_wait -> Format.fprintf fmt "barrier"
  | Arr_set { index; value } -> Format.fprintf fmt "arr[%d] := %d" index value
  | Arr_get { index } -> Format.fprintf fmt "arr[%d]" index
  | Loop { times; body } ->
      Format.fprintf fmt "@[<hv 2>repeat %d {%a@;<1 -2>}@]" times pp_body body
  | If_eq { var; expect; then_; else_ } ->
      Format.fprintf fmt
        "@[<hv 2>if v%d = %d {%a@;<1 -2>}@ @[<hv 2>else {%a@;<1 -2>}@]@]" var
        expect pp_body then_ pp_body else_
  | Join { thread } -> Format.fprintf fmt "join(t%d)" thread
  | Future { slot; body } ->
      Format.fprintf fmt "@[<hv 2>f%d := async {%a@;<1 -2>}@]" slot pp_body
        body
  | Await { slot } -> Format.fprintf fmt "await(f%d)" slot
  | Chan_send { ch; value } -> Format.fprintf fmt "ch%d <- %d" ch value
  | Chan_recv { ch } -> Format.fprintf fmt "<-ch%d" ch
  | Wq_put { task } -> Format.fprintf fmt "wq_put(%d)" task
  | Wq_take -> Format.fprintf fmt "wq_take"

and pp_body fmt = function
  | [] -> ()
  | ss ->
      List.iteri
        (fun i s ->
          if i > 0 then Format.fprintf fmt ";";
          Format.fprintf fmt "@ %a" pp_stmt s)
        ss

let pp fmt p =
  List.iteri
    (fun i body ->
      Format.fprintf fmt "@[<hv 2>thread t%d {%a@;<1 -2>}@]@." i pp_body body)
    p.threads

let to_string p = Format.asprintf "%a" pp p
