type counterexample = {
  cx_index : int;
  cx_seed : int;
  cx_original : Ast.program;
  cx_shrunk : Ast.program;
  cx_violations : Oracle.violation list;
}

type report = {
  r_index : int;
  r_seed : int;
  r_size : int;
  r_counterexample : counterexample option;
}

type summary = { s_programs : int; s_counterexamples : counterexample list }

let one_program ?wrap ?(vocab = Gen.Classic) ~cfg ~campaign_seed index =
  let seed = Gen.derive_seed ~campaign_seed ~index in
  let ast = Gen.generate ~vocab ~seed () in
  let violations_of p = Oracle.check ?wrap cfg ~seed (Compile.program p) in
  let counterexample =
    match violations_of ast with
    | [] -> None
    | violations ->
        let shrunk =
          Shrink.shrink ~check:(fun p -> violations_of p <> []) ast
        in
        let cx_violations =
          if Ast.equal shrunk ast then violations else violations_of shrunk
        in
        Some
          {
            cx_index = index;
            cx_seed = seed;
            cx_original = ast;
            cx_shrunk = shrunk;
            cx_violations;
          }
  in
  {
    r_index = index;
    r_seed = seed;
    r_size = Ast.size ast;
    r_counterexample = counterexample;
  }

let summarize reports =
  {
    s_programs = List.length reports;
    s_counterexamples =
      List.filter_map (fun r -> r.r_counterexample) reports;
  }

let run ?wrap ?vocab ~cfg ~seed ~count () =
  let rec go i acc =
    if i >= count then List.rev acc
    else
      go (i + 1) (one_program ?wrap ?vocab ~cfg ~campaign_seed:seed i :: acc)
  in
  summarize (go 0 [])

let pp_counterexample fmt cx =
  Format.fprintf fmt
    "program %d (seed %d): %d violation(s), shrunk %d -> %d nodes@."
    cx.cx_index cx.cx_seed
    (List.length cx.cx_violations)
    (Ast.size cx.cx_original) (Ast.size cx.cx_shrunk);
  List.iter
    (fun v -> Format.fprintf fmt "  %a@." Oracle.pp_violation v)
    cx.cx_violations;
  Format.fprintf fmt "shrunk program:@.%a" Ast.pp cx.cx_shrunk

let dump ~dir cx =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "# sct-fuzz counterexample v1@.";
  Format.fprintf fmt "# program index: %d@." cx.cx_index;
  Format.fprintf fmt "# program seed:  %d@." cx.cx_seed;
  Format.fprintf fmt
    "# reproduce: the seed alone regenerates the original program \
     (Sct_fuzz.Gen.program ~seed:%d)@."
    cx.cx_seed;
  List.iter
    (fun v -> Format.fprintf fmt "# violated: %a@." Oracle.pp_violation v)
    cx.cx_violations;
  Format.fprintf fmt "@.## shrunk (%d nodes)@.%a" (Ast.size cx.cx_shrunk)
    Ast.pp cx.cx_shrunk;
  Format.fprintf fmt "@.## original (%d nodes)@.%a" (Ast.size cx.cx_original)
    Ast.pp cx.cx_original;
  Format.pp_print_flush fmt ();
  let file = Printf.sprintf "fuzz-s%d-i%d.txt" cx.cx_seed cx.cx_index in
  Sct_store.Artifact.write_atomic ~dir ~file (Buffer.contents buf)
