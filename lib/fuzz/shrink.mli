(** Delta-debugging on the program AST.

    Given a predicate that holds of a failing program (e.g. "the oracle
    reports a violation"), {!shrink} greedily applies the first
    still-failing simplification until none applies: dropping whole
    threads, dropping statements, unwrapping compound statements into
    their bodies, and reducing loop iteration counts. Every candidate
    strictly decreases the measure [size + Σ loop iterations], so the
    search terminates; the result is locally minimal (no single
    simplification preserves the failure).

    Shrinking is deterministic: candidates are enumerated in a fixed
    order, so the same failing program always shrinks to the same
    counterexample.

    {b Measure tie-breaking.} The measure orders candidates only
    partially: many one-step simplifications decrease it by the same
    amount (dropping any single [Yield], say). Ties are NOT broken by
    re-measuring — the greedy descent takes the {e first} still-failing
    candidate in enumeration order: whole-thread drops first (in thread
    order), then per-thread statement simplifications in program order,
    and within one statement the unwrap-into-body candidate before the
    iteration-count decrement before the in-place body simplifications.
    Because the order is a pure function of the AST, [shrink] is a
    deterministic — and hence idempotent — function of its input: the
    result is locally minimal, so a second application finds no passing
    candidate and returns it unchanged (the test suite asserts
    [shrink (shrink p) = shrink p]). *)

val candidates : Ast.program -> Ast.program list
(** All one-step simplifications, each strictly smaller under the
    termination measure, in the fixed exploration order (threads dropped
    first, then per-statement simplifications in program order). *)

val shrink :
  ?max_checks:int ->
  check:(Ast.program -> bool) ->
  Ast.program ->
  Ast.program
(** [shrink ~check p] requires [check p = true] and returns a locally
    minimal program on which [check] still holds. [max_checks]
    (default 2000) bounds the number of [check] evaluations as a safety
    net; on exhaustion the best program found so far is returned. *)
