(** Delta-debugging on the program AST.

    Given a predicate that holds of a failing program (e.g. "the oracle
    reports a violation"), {!shrink} greedily applies the first
    still-failing simplification until none applies: dropping whole
    threads, dropping statements, unwrapping compound statements into
    their bodies, and reducing loop iteration counts. Every candidate
    strictly decreases the measure [size + Σ loop iterations], so the
    search terminates; the result is locally minimal (no single
    simplification preserves the failure).

    Shrinking is deterministic: candidates are enumerated in a fixed
    order, so the same failing program always shrinks to the same
    counterexample. *)

val candidates : Ast.program -> Ast.program list
(** All one-step simplifications, each strictly smaller under the
    termination measure, in the fixed exploration order (threads dropped
    first, then per-statement simplifications in program order). *)

val shrink :
  ?max_checks:int ->
  check:(Ast.program -> bool) ->
  Ast.program ->
  Ast.program
(** [shrink ~check p] requires [check p = true] and returns a locally
    minimal program on which [check] still holds. [max_checks]
    (default 2000) bounds the number of [check] evaluations as a safety
    net; on exhaustion the best program found so far is returned. *)
