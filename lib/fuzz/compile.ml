open Sct_core

let n_vars = 2
let n_mutexes = 2
let arr_len = 2

let program (p : Ast.program) () =
  let vars =
    Array.init n_vars (fun i ->
        Sct.Var.make ~name:(Printf.sprintf "fz_v%d" i) 0)
  in
  let atomic = Sct.Atomic.make ~name:"fz_a" 0 in
  let mutexes = Array.init n_mutexes (fun _ -> Sct.Mutex.create ()) in
  let cond = Sct.Cond.create () in
  let sem = Sct.Sem.create 1 in
  let barrier = Sct.Barrier.create 2 in
  let arr = Sct.Arr.make ~name:"fz_arr" arr_len 0 in
  let n_threads = List.length p.Ast.threads in
  let tids = Array.make (max 1 n_threads) (-1) in
  let var i = vars.(abs i mod n_vars) in
  let mutex i = mutexes.(abs i mod n_mutexes) in
  let rec run_stmt ~me s =
    match (s : Ast.stmt) with
    | Yield -> Sct.yield ()
    | Write { var = v; value } -> Sct.Var.write (var v) value
    | Incr { var = v } ->
        let x = var v in
        Sct.Var.write x (Sct.Var.read x + 1)
    | Check_eq { var = v; expect } ->
        Sct.check
          (Sct.Var.read (var v) = expect)
          (Printf.sprintf "fz_v%d = %d" (abs v mod n_vars) expect)
    | Lock { m; body } ->
        Sct.Mutex.lock (mutex m);
        run_body ~me body;
        Sct.Mutex.unlock (mutex m)
    | Try_lock { m; body } ->
        if Sct.Mutex.try_lock (mutex m) then begin
          run_body ~me body;
          Sct.Mutex.unlock (mutex m)
        end
    | Atomic_incr -> Sct.Atomic.incr atomic
    | Atomic_cas { expect; repl } ->
        ignore (Sct.Atomic.compare_and_set atomic expect repl : bool)
    | Sem_wait -> Sct.Sem.wait sem
    | Sem_post -> Sct.Sem.post sem
    | Cond_signal -> Sct.Cond.signal cond
    | Cond_broadcast -> Sct.Cond.broadcast cond
    | Cond_wait { m } ->
        Sct.Mutex.lock (mutex m);
        Sct.Cond.wait cond (mutex m);
        Sct.Mutex.unlock (mutex m)
    | Barrier_wait -> Sct.Barrier.wait barrier
    | Arr_set { index; value } -> Sct.Arr.set arr index value
    | Arr_get { index } -> ignore (Sct.Arr.get arr index : int)
    | Loop { times; body } ->
        for _ = 1 to times do
          run_body ~me body
        done
    | If_eq { var = v; expect; then_; else_ } ->
        if Sct.Var.read (var v) = expect then run_body ~me then_
        else run_body ~me else_
    | Join { thread } ->
        (* only earlier-spawned threads have a deterministically published
           tid; anything else degenerates to a pure scheduling point *)
        if thread >= 0 && thread < me then Sct.join tids.(thread)
        else Sct.yield ()
  and run_body ~me ss = List.iter (run_stmt ~me) ss in
  List.iteri
    (fun i body -> tids.(i) <- Sct.spawn (fun () -> run_body ~me:i body))
    p.Ast.threads;
  for i = 0 to n_threads - 1 do
    Sct.join tids.(i)
  done
