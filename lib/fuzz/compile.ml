open Sct_core

let n_vars = 2
let n_mutexes = 2
let arr_len = 2
let n_futures = 2
let n_chans = 2

let program (p : Ast.program) () =
  let vars =
    Array.init n_vars (fun i ->
        Sct.Var.make ~name:(Printf.sprintf "fz_v%d" i) 0)
  in
  let atomic = Sct.Atomic.make ~name:"fz_a" 0 in
  let mutexes = Array.init n_mutexes (fun _ -> Sct.Mutex.create ()) in
  let cond = Sct.Cond.create () in
  let sem = Sct.Sem.create 1 in
  let barrier = Sct.Barrier.create 2 in
  let arr = Sct.Arr.make ~name:"fz_arr" arr_len 0 in
  (* async environment: promise slots, capacity-1 bounded channels (one
     data location guarded by a slots/items semaphore pair each), and one
     work queue (items semaphore + mutex-guarded pending count + an
     unsynchronised completion counter, a deliberate race source) *)
  let futures = Array.make n_futures None in
  let future_tids = ref [] in
  let chan_data =
    Array.init n_chans (fun i ->
        Sct.Var.make ~name:(Printf.sprintf "fz_ch%d" i) 0)
  in
  let chan_slots = Array.init n_chans (fun _ -> Sct.Sem.create 1) in
  let chan_items = Array.init n_chans (fun _ -> Sct.Sem.create 0) in
  let wq_items = Sct.Sem.create 0 in
  let wq_mutex = Sct.Mutex.create () in
  let wq_pending = Sct.Var.make ~name:"fz_wq_n" 0 in
  let wq_done = Sct.Var.make ~name:"fz_wq_done" 0 in
  let n_threads = List.length p.Ast.threads in
  let tids = Array.make (max 1 n_threads) (-1) in
  let var i = vars.(abs i mod n_vars) in
  let mutex i = mutexes.(abs i mod n_mutexes) in
  let chan i = abs i mod n_chans in
  let slot i = abs i mod n_futures in
  let rec run_stmt ~me s =
    match (s : Ast.stmt) with
    | Yield -> Sct.yield ()
    | Write { var = v; value } -> Sct.Var.write (var v) value
    | Incr { var = v } ->
        let x = var v in
        Sct.Var.write x (Sct.Var.read x + 1)
    | Check_eq { var = v; expect } ->
        Sct.check
          (Sct.Var.read (var v) = expect)
          (Printf.sprintf "fz_v%d = %d" (abs v mod n_vars) expect)
    | Lock { m; body } ->
        Sct.Mutex.lock (mutex m);
        run_body ~me body;
        Sct.Mutex.unlock (mutex m)
    | Try_lock { m; body } ->
        if Sct.Mutex.try_lock (mutex m) then begin
          run_body ~me body;
          Sct.Mutex.unlock (mutex m)
        end
    | Atomic_incr -> Sct.Atomic.incr atomic
    | Atomic_cas { expect; repl } ->
        ignore (Sct.Atomic.compare_and_set atomic expect repl : bool)
    | Sem_wait -> Sct.Sem.wait sem
    | Sem_post -> Sct.Sem.post sem
    | Cond_signal -> Sct.Cond.signal cond
    | Cond_broadcast -> Sct.Cond.broadcast cond
    | Cond_wait { m } ->
        Sct.Mutex.lock (mutex m);
        Sct.Cond.wait cond (mutex m);
        Sct.Mutex.unlock (mutex m)
    | Barrier_wait -> Sct.Barrier.wait barrier
    | Arr_set { index; value } -> Sct.Arr.set arr index value
    | Arr_get { index } -> ignore (Sct.Arr.get arr index : int)
    | Loop { times; body } ->
        for _ = 1 to times do
          run_body ~me body
        done
    | If_eq { var = v; expect; then_; else_ } ->
        if Sct.Var.read (var v) = expect then run_body ~me then_
        else run_body ~me else_
    | Join { thread } ->
        (* only earlier-spawned threads have a deterministically published
           tid; anything else degenerates to a pure scheduling point *)
        if thread >= 0 && thread < me then Sct.join tids.(thread)
        else Sct.yield ()
    | Future { slot = s; body } ->
        let tid = Sct.spawn (fun () -> run_body ~me body) in
        futures.(slot s) <- Some tid;
        future_tids := tid :: !future_tids
    | Await { slot = s } -> (
        (* an empty slot degenerates to a pure scheduling point, keeping
           shrunk programs well-formed; joining an already-finished future
           is a no-op wait *)
        match futures.(slot s) with
        | Some tid -> Sct.join tid
        | None -> Sct.yield ())
    | Chan_send { ch = c; value } ->
        Sct.Sem.wait chan_slots.(chan c);
        Sct.Var.write chan_data.(chan c) value;
        Sct.Sem.post chan_items.(chan c)
    | Chan_recv { ch = c } ->
        Sct.Sem.wait chan_items.(chan c);
        ignore (Sct.Var.read chan_data.(chan c) : int);
        Sct.Sem.post chan_slots.(chan c)
    | Wq_put { task } ->
        Sct.Mutex.lock wq_mutex;
        Sct.Var.write wq_pending (Sct.Var.read wq_pending + abs task + 1);
        Sct.Mutex.unlock wq_mutex;
        Sct.Sem.post wq_items
    | Wq_take ->
        Sct.Sem.wait wq_items;
        Sct.Mutex.lock wq_mutex;
        Sct.Var.write wq_pending (Sct.Var.read wq_pending - 1);
        Sct.Mutex.unlock wq_mutex;
        Sct.Var.write wq_done (Sct.Var.read wq_done + 1)
  and run_body ~me ss = List.iter (run_stmt ~me) ss in
  List.iteri
    (fun i body -> tids.(i) <- Sct.spawn (fun () -> run_body ~me:i body))
    p.Ast.threads;
  for i = 0 to n_threads - 1 do
    Sct.join tids.(i)
  done;
  (* futures spawned by finished threads may still be running (or blocked):
     the main thread collects every one, so no execution leaks a thread *)
  List.iter Sct.join (List.rev !future_tids)
