(** The seeded random program generator.

    Programs are a pure function of the seed: [program ~seed] builds its
    own PRNG state, so the same seed always yields the same AST — the
    property the whole fuzz pipeline (deterministic campaigns, shrunk
    counterexamples reproducible from their seed alone, byte-identical
    [--jobs 1] vs [--jobs N] output) rests on.

    Shape bounds keep the schedule spaces small enough for the systematic
    techniques to frequently exhaust them within the fuzz budget: at most
    {!max_threads} threads, at most 4 top-level statements per thread,
    nesting depth at most 2, loops of at most 3 iterations. Bug sources are
    generated deliberately: racy [Incr]/[Check_eq] pairs, lock nesting
    (self-deadlock on non-recursive mutexes), condition waits with lost or
    missing signals, barrier underflow, and occasional out-of-bounds array
    indices. *)

val max_threads : int

type vocab = Classic | Async | Full
(** The statement vocabulary offered to the generator. [Classic] is the
    original pthread-style set and consumes the PRNG exactly as it always
    has, so every historical seed regenerates its historical program.
    [Async] and [Full] additionally offer the async/task-parallel
    statements (futures, bounded channels, the work-queue idiom) — the
    corpus factory's extended program class. *)

val vocab_name : vocab -> string
val vocab_of_name : string -> vocab option

val generate : ?vocab:vocab -> seed:int -> unit -> Ast.program
(** The program of [(vocab, seed)] (default vocabulary [Classic]); total
    (never raises) and deterministic in its arguments. *)

val program : seed:int -> Ast.program
(** [generate ~vocab:Classic ~seed ()]. *)

val derive_seed : campaign_seed:int -> index:int -> int
(** The per-program seed of program [index] of a fuzz campaign — a
    deterministic mix, so campaigns can be sharded by index without
    changing any program. *)
