(** The seeded random program generator.

    Programs are a pure function of the seed: [program ~seed] builds its
    own PRNG state, so the same seed always yields the same AST — the
    property the whole fuzz pipeline (deterministic campaigns, shrunk
    counterexamples reproducible from their seed alone, byte-identical
    [--jobs 1] vs [--jobs N] output) rests on.

    Shape bounds keep the schedule spaces small enough for the systematic
    techniques to frequently exhaust them within the fuzz budget: at most
    {!max_threads} threads, at most 4 top-level statements per thread,
    nesting depth at most 2, loops of at most 3 iterations. Bug sources are
    generated deliberately: racy [Incr]/[Check_eq] pairs, lock nesting
    (self-deadlock on non-recursive mutexes), condition waits with lost or
    missing signals, barrier underflow, and occasional out-of-bounds array
    indices. *)

val max_threads : int

val program : seed:int -> Ast.program
(** The program of [seed]; total (never raises) and deterministic. *)

val derive_seed : campaign_seed:int -> index:int -> int
(** The per-program seed of program [index] of a fuzz campaign — a
    deterministic mix, so campaigns can be sharded by index without
    changing any program. *)
