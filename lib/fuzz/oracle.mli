(** The cross-technique differential oracle.

    One generated program is run under every technique of the study
    (DFS, IPB, IDB, Rand, PCT, MapleAlg, SURW, and the Fair/Length/IVB/ITB
    bounding axes) through the real pipeline —
    race detection, promotion, then {!Sct_explore.Techniques.run} — and the
    relational guarantees the paper's headline claims rest on are checked:

    - {b Inclusions} (paper §6): on programs whose schedule space DFS
      exhausts within the budget, a DFS-found bug must also be found by IPB
      and by IDB; if exhaustive DFS finds no bug, {e no} technique may
      report one, IPB/IDB must also complete, and all three must count the
      same number of distinct terminal schedules.
    - {b POR equivalence} (paper §7): with every location visible, sleep
      sets, DPOR and their combination must agree with full DFS on
      bug-freedom whenever full DFS completes, while never counting more
      terminal schedules.
    - {b BPOR bound equivalence}: at every preemption/delay bound level
      [c] in [0..2], the bound-parameterized reduction walk must agree
      with the plain bounded walk on bug-freedom and exhaustion while
      counting no more schedules — the conservative-backtracking soundness
      law of por.mli; sleep-only mode under a finite bound must degenerate
      to the plain walk exactly. At the campaign level, a POR-composed
      IPB/IDB run must find its bug at the same bound level as the plain
      campaign whenever both resolve within the budget.
    - {b Witness replayability} (paper §1): every reported bug witness must
      replay through {!Sct_explore.Replay} to the same bug, by the same
      thread, with the same preemption and delay counts.
    - {b Axes agreement / no bug lost}: a Fair/Length/IVB/ITB campaign
      reporting [complete] provably covered the whole schedule space, so
      it must agree with exhaustive DFS on bug-freedom (and, two plain
      walks of one tree, on the schedule count); Fair at an unreachable
      yield bound must be byte-identical to plain IPB, and Length at an
      unreachable cap byte-identical to plain DFS, modulo the technique
      name — nothing is cut, so nothing is lost.
    - {b Schedule-count algebra}: counted schedules plus cut runs never
      exceed the budget; [hit_limit] means the budget was spent exactly
      (cut executions charge it without counting); only the
      execution-level filters (Fair, Length) may cut runs; distinct
      schedules are between 1 and [total]; bound-[c] walk counts are
      monotone in [c], and delay-bounded counts never exceed
      preemption-bounded counts at the same level (DC ≥ PC, paper §2);
      witness bound consistency for IPB ([w_pc = bound]) and IDB
      ([w_dc = bound]).
    - {b Shard-merge determinism}: for the seed-sharded techniques
      (Rand, PCT, SURW), running a prefix range and merging two half-range
      shards with {!Sct_explore.Stats.merge} must be
      {!Sct_explore.Stats.equal} — the algebra that makes [--jobs N]
      byte-identical.

    The oracle is parametric in the per-technique runner so the test suite
    can inject a deliberately broken strategy and assert that the harness
    catches (and shrinks) the violation. *)

type config = {
  limit : int;  (** schedule budget per technique campaign *)
  max_steps : int;  (** per-execution live-lock guard *)
  race_runs : int;  (** executions of the race-detection phase *)
  prefix_batch : bool;
      (** run DFS/IPB/IDB campaigns on the prefix-memoizing batched
          executor, and additionally cross-check each batched campaign
          against the plain driver: identical statistics modulo the step
          counters, which must conserve total work
          ([executed + saved = unbatched executed]). *)
  por : Sct_explore.Por.mode option;
      (** compose the main DFS/IPB/IDB campaigns with partial-order
          reduction, so every generic invariant (algebra, witness replay,
          inclusions' bug agreement) also exercises the reduced walks. The
          dedicated BPOR cross-checks run regardless of this field (the
          campaign-level comparison uses [Dpor_sleep] when unset); the
          inclusion count identities are skipped under [por], where each
          cell reduces its tree differently. *)
  techniques : Sct_explore.Techniques.t list;
      (** techniques the oracle runs and cross-checks. Invariants that
          relate specific techniques degrade gracefully: the inclusion
          checks need DFS, IPB and IDB all selected; the POR and
          bound-algebra cross-checks need DFS; shard-merge runs on the
          selected subset of [Rand; PCT; SURW]. *)
}

val default_config : config
(** [limit = 500; max_steps = 5_000; race_runs = 5;
    prefix_batch = false; por = None; techniques = Techniques.all]. *)

type violation = {
  v_invariant : string;  (** stable invariant identifier, e.g. ["inclusion"] *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type runner = Sct_explore.Techniques.t -> Sct_explore.Stats.t
(** A per-technique campaign, already closed over program and options. *)

val check :
  ?wrap:(runner -> runner) ->
  config ->
  seed:int ->
  (unit -> unit) ->
  violation list
(** [check cfg ~seed program] returns every invariant violation observed
    (empty on a healthy build). [seed] seeds the randomised techniques and
    the race-detection phase. [wrap] (default: identity) intercepts the
    technique runner — test-only, for fault injection. *)
