module Ast = Sct_fuzz.Ast

let header = "# sct-corpus program v1"

(* ---- printing ---------------------------------------------------------- *)

let rec print_stmt buf indent (s : Ast.stmt) =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  let atom fmt = Printf.ksprintf (fun l -> pad (); Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  let block head body =
    pad ();
    Buffer.add_string buf head;
    if body = [] then Buffer.add_string buf ")\n"
    else begin
      Buffer.add_char buf '\n';
      print_body buf (indent + 2) body;
      (* close on the last child's line *)
      let n = Buffer.length buf in
      if n > 0 && Buffer.nth buf (n - 1) = '\n' then
        Buffer.truncate buf (n - 1);
      Buffer.add_string buf ")\n"
    end
  in
  match s with
  | Ast.Yield -> atom "(yield)"
  | Ast.Write { var; value } -> atom "(write %d %d)" var value
  | Ast.Incr { var } -> atom "(incr %d)" var
  | Ast.Check_eq { var; expect } -> atom "(check %d %d)" var expect
  | Ast.Atomic_incr -> atom "(atomic-incr)"
  | Ast.Atomic_cas { expect; repl } -> atom "(cas %d %d)" expect repl
  | Ast.Sem_wait -> atom "(sem-wait)"
  | Ast.Sem_post -> atom "(sem-post)"
  | Ast.Cond_signal -> atom "(signal)"
  | Ast.Cond_broadcast -> atom "(broadcast)"
  | Ast.Cond_wait { m } -> atom "(cond-wait %d)" m
  | Ast.Barrier_wait -> atom "(barrier)"
  | Ast.Arr_set { index; value } -> atom "(arr-set %d %d)" index value
  | Ast.Arr_get { index } -> atom "(arr-get %d)" index
  | Ast.Join { thread } -> atom "(join %d)" thread
  | Ast.Await { slot } -> atom "(await %d)" slot
  | Ast.Chan_send { ch; value } -> atom "(send %d %d)" ch value
  | Ast.Chan_recv { ch } -> atom "(recv %d)" ch
  | Ast.Wq_put { task } -> atom "(wq-put %d)" task
  | Ast.Wq_take -> atom "(wq-take)"
  | Ast.Lock { m; body } -> block (Printf.sprintf "(lock %d" m) body
  | Ast.Try_lock { m; body } -> block (Printf.sprintf "(trylock %d" m) body
  | Ast.Loop { times; body } -> block (Printf.sprintf "(loop %d" times) body
  | Ast.Future { slot; body } -> block (Printf.sprintf "(future %d" slot) body
  | Ast.If_eq { var; expect; then_; else_ } ->
      pad ();
      Buffer.add_string buf (Printf.sprintf "(if %d %d\n" var expect);
      print_branch buf (indent + 2) "then" then_;
      print_branch buf (indent + 2) "else" else_;
      let n = Buffer.length buf in
      if n > 0 && Buffer.nth buf (n - 1) = '\n' then Buffer.truncate buf (n - 1);
      Buffer.add_string buf ")\n"

and print_branch buf indent kw body =
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_char buf '(';
  Buffer.add_string buf kw;
  if body = [] then Buffer.add_string buf ")\n"
  else begin
    Buffer.add_char buf '\n';
    print_body buf (indent + 2) body;
    let n = Buffer.length buf in
    if n > 0 && Buffer.nth buf (n - 1) = '\n' then Buffer.truncate buf (n - 1);
    Buffer.add_string buf ")\n"
  end

and print_body buf indent body = List.iter (print_stmt buf indent) body

let to_string (p : Ast.program) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun body ->
      Buffer.add_string buf "(thread";
      if body = [] then Buffer.add_string buf ")\n"
      else begin
        Buffer.add_char buf '\n';
        print_body buf 2 body;
        let n = Buffer.length buf in
        if n > 0 && Buffer.nth buf (n - 1) = '\n' then
          Buffer.truncate buf (n - 1);
        Buffer.add_string buf ")\n"
      end)
    p.Ast.threads;
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

type sexp = Atom of string | List of sexp list

exception Bad of string

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    match src.[!i] with
    | '#' -> while !i < n && src.[!i] <> '\n' do incr i done
    | ' ' | '\t' | '\r' | '\n' -> incr i
    | '(' -> toks := `L :: !toks; incr i
    | ')' -> toks := `R :: !toks; incr i
    | _ ->
        let start = !i in
        while
          !i < n
          && not
               (match src.[!i] with
               | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '#' -> true
               | _ -> false)
        do
          incr i
        done;
        toks := `A (String.sub src start (!i - start)) :: !toks
  done;
  List.rev !toks

let parse_sexps toks =
  (* one pass with an explicit stack of open lists *)
  let rec go stack acc = function
    | [] -> (
        match stack with
        | [] -> List.rev acc
        | _ -> raise (Bad "unbalanced parentheses: missing ')'"))
    | `A a :: rest -> go stack (Atom a :: acc) rest
    | `L :: rest -> go (acc :: stack) [] rest
    | `R :: rest -> (
        match stack with
        | [] -> raise (Bad "unbalanced parentheses: stray ')'")
        | parent :: stack -> go stack (List (List.rev acc) :: parent) rest)
  in
  go [] [] toks

let rec sexp_to_string = function
  | Atom a -> a
  | List l -> "(" ^ String.concat " " (List.map sexp_to_string l) ^ ")"

let int_of = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> n
      | None -> raise (Bad (Printf.sprintf "expected an integer, got %s" a)))
  | List _ as s ->
      raise (Bad ("expected an integer, got " ^ sexp_to_string s))

let rec stmt_of (s : sexp) : Ast.stmt =
  match s with
  | Atom a -> raise (Bad (Printf.sprintf "expected a statement form, got %s" a))
  | List (Atom kw :: args) -> (
      let wrong () =
        raise
          (Bad (Printf.sprintf "bad arity in %s" (sexp_to_string s)))
      in
      match (kw, args) with
      | "yield", [] -> Ast.Yield
      | "write", [ v; n ] -> Ast.Write { var = int_of v; value = int_of n }
      | "incr", [ v ] -> Ast.Incr { var = int_of v }
      | "check", [ v; n ] -> Ast.Check_eq { var = int_of v; expect = int_of n }
      | "atomic-incr", [] -> Ast.Atomic_incr
      | "cas", [ e; r ] -> Ast.Atomic_cas { expect = int_of e; repl = int_of r }
      | "sem-wait", [] -> Ast.Sem_wait
      | "sem-post", [] -> Ast.Sem_post
      | "signal", [] -> Ast.Cond_signal
      | "broadcast", [] -> Ast.Cond_broadcast
      | "cond-wait", [ m ] -> Ast.Cond_wait { m = int_of m }
      | "barrier", [] -> Ast.Barrier_wait
      | "arr-set", [ i; v ] -> Ast.Arr_set { index = int_of i; value = int_of v }
      | "arr-get", [ i ] -> Ast.Arr_get { index = int_of i }
      | "join", [ t ] -> Ast.Join { thread = int_of t }
      | "await", [ s ] -> Ast.Await { slot = int_of s }
      | "send", [ c; v ] -> Ast.Chan_send { ch = int_of c; value = int_of v }
      | "recv", [ c ] -> Ast.Chan_recv { ch = int_of c }
      | "wq-put", [ t ] -> Ast.Wq_put { task = int_of t }
      | "wq-take", [] -> Ast.Wq_take
      | "lock", m :: body -> Ast.Lock { m = int_of m; body = body_of body }
      | "trylock", m :: body ->
          Ast.Try_lock { m = int_of m; body = body_of body }
      | "loop", n :: body -> Ast.Loop { times = int_of n; body = body_of body }
      | "future", sl :: body ->
          Ast.Future { slot = int_of sl; body = body_of body }
      | ( "if",
          [ v; e; List (Atom "then" :: then_); List (Atom "else" :: else_) ] )
        ->
          Ast.If_eq
            {
              var = int_of v;
              expect = int_of e;
              then_ = body_of then_;
              else_ = body_of else_;
            }
      | ( ( "yield" | "write" | "incr" | "check" | "atomic-incr" | "cas"
          | "sem-wait" | "sem-post" | "signal" | "broadcast" | "cond-wait"
          | "barrier" | "arr-set" | "arr-get" | "join" | "await" | "send"
          | "recv" | "wq-put" | "wq-take" | "if" ),
          _ ) ->
          wrong ()
      | _ -> raise (Bad (Printf.sprintf "unknown statement form %s" kw)))
  | List _ ->
      raise (Bad ("expected a statement form, got " ^ sexp_to_string s))

and body_of stmts = List.map stmt_of stmts

let thread_of = function
  | List (Atom "thread" :: body) -> body_of body
  | s -> raise (Bad ("expected a (thread ...) form, got " ^ sexp_to_string s))

(* The first non-blank line must be the version header: a v2 file (or a
   file that is not a corpus program at all) is an error, not a guess. *)
let check_header src =
  let rec first_line i =
    if i >= String.length src then None
    else
      match String.index_from_opt src i '\n' with
      | None ->
          let l = String.trim (String.sub src i (String.length src - i)) in
          if l = "" then None else Some l
      | Some j ->
          let l = String.trim (String.sub src i (j - i)) in
          if l = "" then first_line (j + 1) else Some l
  in
  match first_line 0 with
  | Some l when l = header -> Ok ()
  | Some l -> Error (Printf.sprintf "expected header %S, got %S" header l)
  | None -> Error (Printf.sprintf "empty input (expected header %S)" header)

let parse src =
  match check_header src with
  | Error _ as e -> e
  | Ok () -> (
  match parse_sexps (tokenize src) with
  | exception Bad msg -> Error msg
  | sexps -> (
      match List.map thread_of sexps with
      | threads -> Ok { Ast.threads }
      | exception Bad msg -> Error msg))
