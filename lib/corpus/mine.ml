open Sct_explore
module Gen = Sct_fuzz.Gen
module Ast = Sct_fuzz.Ast
module Compile = Sct_fuzz.Compile
module Shrink = Sct_fuzz.Shrink

type config = {
  campaign_seed : int;
  count : int;
  vocab : Gen.vocab;
  limit : int;
  max_steps : int;
  race_runs : int;
  techniques : Techniques.t list;
  shrink_checks : int;
  sig_limit : int;
}

let default_config =
  {
    campaign_seed = 0;
    count = 100;
    vocab = Gen.Full;
    limit = 300;
    max_steps = 5_000;
    race_runs = 3;
    techniques = Techniques.all;
    shrink_checks = 60;
    sig_limit = 400;
  }

type probe = {
  p_index : int;
  p_seed : int;
  p_racy : int;
  p_stats : (Techniques.t * Stats.t) list;
}

let options_of cfg ~seed =
  {
    Techniques.default_options with
    Techniques.limit = cfg.limit;
    seed;
    max_steps = cfg.max_steps;
    race_runs = cfg.race_runs;
  }

let survey cfg ~seed ast =
  let program = Compile.program ast in
  let o = options_of cfg ~seed in
  let detection = Techniques.detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  ( List.length detection.Sct_race.Promotion.racy,
    List.map (fun t -> (t, Techniques.run ~promote o t program)) cfg.techniques
  )

let probe cfg index =
  let seed = Gen.derive_seed ~campaign_seed:cfg.campaign_seed ~index in
  let ast = Gen.generate ~vocab:cfg.vocab ~seed () in
  let racy, stats = survey cfg ~seed ast in
  { p_index = index; p_seed = seed; p_racy = racy; p_stats = stats }

type candidate = {
  c_index : int;
  c_seed : int;
  c_program : Ast.program;
  c_original_size : int;
  c_size : int;
  c_digest : string;
  c_hardness : Hardness.t;
}

type outcome = {
  o_programs : int;
  o_hard : int;
  o_duplicates : int;
  o_candidates : candidate list;
}

let collect cfg probes =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let hard = ref 0 and dups = ref 0 in
  let candidates =
    List.filter_map
      (fun p ->
        let h = Hardness.classify p.p_stats in
        if not (Hardness.keep h) then None
        else begin
          incr hard;
          let ast = Gen.generate ~vocab:cfg.vocab ~seed:p.p_seed () in
          (* shrink while the hardness class survives: the minimal program
             still exhibiting the same kind of challenge *)
          let same_class q =
            let hq = Hardness.classify (snd (survey cfg ~seed:p.p_seed q)) in
            Hardness.keep hq && hq.Hardness.h_class = h.Hardness.h_class
          in
          let shrunk =
            Shrink.shrink ~max_checks:cfg.shrink_checks ~check:same_class ast
          in
          let hardness =
            if Ast.equal shrunk ast then h
            else Hardness.classify (snd (survey cfg ~seed:p.p_seed shrunk))
          in
          let digest =
            Signature.digest ~limit:cfg.sig_limit ~max_steps:cfg.max_steps
              (Compile.program shrunk)
          in
          if Hashtbl.mem seen digest then begin
            incr dups;
            None
          end
          else begin
            Hashtbl.add seen digest ();
            Some
              {
                c_index = p.p_index;
                c_seed = p.p_seed;
                c_program = shrunk;
                c_original_size = Ast.size ast;
                c_size = Ast.size shrunk;
                c_digest = digest;
                c_hardness = hardness;
              }
          end
        end)
      probes
  in
  {
    o_programs = List.length probes;
    o_hard = !hard;
    o_duplicates = !dups;
    o_candidates = candidates;
  }

let run cfg =
  let rec go i acc =
    if i >= cfg.count then List.rev acc else go (i + 1) (probe cfg i :: acc)
  in
  collect cfg (go 0 [])
