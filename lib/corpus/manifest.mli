(** The corpus manifest: one versioned, line-oriented record of what was
    promoted and why.

    [manifest.jsonl] holds a header line followed by one line per entry,
    in promotion (campaign index) order:

    {v
    {"v":1,"kind":"sct-corpus","campaign_seed":42,"count":200,...}
    {"name":"s42-i17","file":"programs/s42-i17.sct","index":17,...}
    v}

    The header records the full mining configuration — seed, count,
    vocabulary, budgets, surveyed techniques — so a corpus is reproducible
    from its manifest alone. Each entry records the derived generator
    seed, the sizes before and after shrinking, the behavioural digest
    ({!Signature}) and the {!Hardness} record, which downstream doubles as
    the entry's expected Table-3 row. Encoding is deterministic (ordered
    fields, no floats, no timestamps): promoting the same mine twice
    writes byte-identical manifests. *)

val version : int
(** 1. *)

type header = {
  hd_campaign_seed : int;
  hd_count : int;
  hd_vocab : string;
  hd_limit : int;
  hd_max_steps : int;
  hd_race_runs : int;
  hd_techniques : string list;
  hd_shrink_checks : int;
  hd_sig_limit : int;
}

type entry = {
  m_name : string;  (** unqualified benchmark name, e.g. ["s42-i17"] *)
  m_file : string;  (** program file, relative to the corpus directory *)
  m_index : int;  (** index within the mining campaign *)
  m_seed : int;  (** derived generator seed *)
  m_size : int;  (** AST size of the promoted (shrunk) program *)
  m_original_size : int;
  m_digest : string;  (** behavioural digest of the promoted program *)
  m_hardness : Hardness.t;
}

type t = { header : header; entries : entry list }

val entry_name : campaign_seed:int -> index:int -> string
(** ["s<seed>-i<index>"]. *)

val of_mine : Mine.config -> Mine.candidate list -> t
(** Assemble the manifest of a mining outcome (candidates in index
    order). *)

val to_string : t -> string
(** The jsonl rendering, trailing newline included; deterministic. *)

val of_string : string -> (t, string) result
(** Parse a manifest; blank lines are ignored, version mismatches and
    malformed lines are errors (the corpus format is small enough that
    silent skipping would only mask corruption). *)
