module Json = Sct_store.Json

let version = 1

type header = {
  hd_campaign_seed : int;
  hd_count : int;
  hd_vocab : string;
  hd_limit : int;
  hd_max_steps : int;
  hd_race_runs : int;
  hd_techniques : string list;
  hd_shrink_checks : int;
  hd_sig_limit : int;
}

type entry = {
  m_name : string;
  m_file : string;
  m_index : int;
  m_seed : int;
  m_size : int;
  m_original_size : int;
  m_digest : string;
  m_hardness : Hardness.t;
}

type t = { header : header; entries : entry list }

let entry_name ~campaign_seed ~index = Printf.sprintf "s%d-i%d" campaign_seed index

let of_mine (cfg : Mine.config) candidates =
  let header =
    {
      hd_campaign_seed = cfg.Mine.campaign_seed;
      hd_count = cfg.Mine.count;
      hd_vocab = Sct_fuzz.Gen.vocab_name cfg.Mine.vocab;
      hd_limit = cfg.Mine.limit;
      hd_max_steps = cfg.Mine.max_steps;
      hd_race_runs = cfg.Mine.race_runs;
      hd_techniques =
        List.map Sct_explore.Techniques.name cfg.Mine.techniques;
      hd_shrink_checks = cfg.Mine.shrink_checks;
      hd_sig_limit = cfg.Mine.sig_limit;
    }
  in
  let entries =
    List.map
      (fun (c : Mine.candidate) ->
        let name =
          entry_name ~campaign_seed:cfg.Mine.campaign_seed ~index:c.Mine.c_index
        in
        {
          m_name = name;
          m_file = Filename.concat "programs" (name ^ ".sct");
          m_index = c.Mine.c_index;
          m_seed = c.Mine.c_seed;
          m_size = c.Mine.c_size;
          m_original_size = c.Mine.c_original_size;
          m_digest = c.Mine.c_digest;
          m_hardness = c.Mine.c_hardness;
        })
      candidates
  in
  { header; entries }

let header_json h =
  Json.Obj
    [
      ("v", Json.Int version);
      ("kind", Json.Str "sct-corpus");
      ("campaign_seed", Json.Int h.hd_campaign_seed);
      ("count", Json.Int h.hd_count);
      ("vocab", Json.Str h.hd_vocab);
      ("limit", Json.Int h.hd_limit);
      ("max_steps", Json.Int h.hd_max_steps);
      ("race_runs", Json.Int h.hd_race_runs);
      ("techniques", Json.Arr (List.map (fun s -> Json.Str s) h.hd_techniques));
      ("shrink_checks", Json.Int h.hd_shrink_checks);
      ("sig_limit", Json.Int h.hd_sig_limit);
    ]

let entry_json e =
  Json.Obj
    [
      ("name", Json.Str e.m_name);
      ("file", Json.Str e.m_file);
      ("index", Json.Int e.m_index);
      ("seed", Json.Int e.m_seed);
      ("size", Json.Int e.m_size);
      ("original_size", Json.Int e.m_original_size);
      ("digest", Json.Str e.m_digest);
      ("hardness", Hardness.to_json e.m_hardness);
    ]

let to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Json.to_string (header_json m.header));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_json e));
      Buffer.add_char buf '\n')
    m.entries;
  Buffer.contents buf

let ( let* ) = Result.bind

let int_field j k =
  match Json.member k j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "manifest: missing int field %s" k)

let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "manifest: missing string field %s" k)

let header_of_json j =
  let* v = int_field j "v" in
  if v <> version then
    Error (Printf.sprintf "manifest: unsupported version %d (want %d)" v version)
  else
    let* kind = str_field j "kind" in
    if kind <> "sct-corpus" then
      Error (Printf.sprintf "manifest: unexpected kind %s" kind)
    else
      let* hd_campaign_seed = int_field j "campaign_seed" in
      let* hd_count = int_field j "count" in
      let* hd_vocab = str_field j "vocab" in
      let* hd_limit = int_field j "limit" in
      let* hd_max_steps = int_field j "max_steps" in
      let* hd_race_runs = int_field j "race_runs" in
      let* hd_techniques =
        match Json.member "techniques" j with
        | Some (Json.Arr l) -> (
            try
              Ok (List.map (function Json.Str s -> s | _ -> raise Exit) l)
            with Exit -> Error "manifest: non-string technique name")
        | _ -> Error "manifest: missing techniques"
      in
      let* hd_shrink_checks = int_field j "shrink_checks" in
      let* hd_sig_limit = int_field j "sig_limit" in
      Ok
        {
          hd_campaign_seed;
          hd_count;
          hd_vocab;
          hd_limit;
          hd_max_steps;
          hd_race_runs;
          hd_techniques;
          hd_shrink_checks;
          hd_sig_limit;
        }

let entry_of_json j =
  let* m_name = str_field j "name" in
  let* m_file = str_field j "file" in
  let* m_index = int_field j "index" in
  let* m_seed = int_field j "seed" in
  let* m_size = int_field j "size" in
  let* m_original_size = int_field j "original_size" in
  let* m_digest = str_field j "digest" in
  let* m_hardness =
    match Json.member "hardness" j with
    | Some h -> Hardness.of_json h
    | None -> Error "manifest: missing hardness"
  in
  Ok
    {
      m_name;
      m_file;
      m_index;
      m_seed;
      m_size;
      m_original_size;
      m_digest;
      m_hardness;
    }

let of_string src =
  let lines =
    String.split_on_char '\n' src
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "manifest: empty file"
  | hd :: rest -> (
      let parse_line decode line =
        match Json.of_string line with
        | j -> decode j
        | exception Json.Parse_error { pos; msg } ->
            Error (Printf.sprintf "manifest: bad JSON at byte %d: %s" pos msg)
      in
      let* header = parse_line header_of_json hd in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest ->
            let* e = parse_line entry_of_json l in
            go (e :: acc) rest
      in
      match go [] rest with
      | Ok entries -> Ok { header; entries }
      | Error _ as e -> e)
