(** Deterministic textual reports over a corpus manifest.

    {!stats} renders from the manifest alone — no exploration — so its
    output is a pure function of the corpus bytes; the test suite pins it
    with a golden file (regenerate with [SCT_CORPUS_GOLDEN_UPDATE=1]). *)

val stats : Format.formatter -> Manifest.t -> unit
(** The [corpus stats] report: the mining configuration, the per-class
    census, and one line per entry (size, shrink ratio, mined bounds,
    finding techniques). *)
