(** The on-disk program format of the corpus: a small s-expression
    language over the fuzz AST.

    A program file is a sequence of [(thread stmt...)] forms, one per
    thread, preceded by the version header comment
    [# sct-corpus program v1]. Lines starting with [#] are comments.
    Statement forms:

    {v
    (yield)                 (write V N)        (incr V)
    (check V N)             (atomic-incr)      (cas E R)
    (sem-wait)              (sem-post)         (signal)
    (broadcast)             (cond-wait M)      (barrier)
    (arr-set I V)           (arr-get I)        (join T)
    (lock M stmt...)        (trylock M stmt...)
    (loop N stmt...)
    (if V N (then stmt...) (else stmt...))
    (future S stmt...)      (await S)
    (send C V)              (recv C)
    (wq-put T)              (wq-take)
    v}

    {!to_string} is canonical — equal ASTs render to equal bytes — and
    {!parse} is its exact inverse ([parse (to_string p) = Ok p] for every
    AST, asserted by a qcheck law in the test suite), so promoted corpus
    files are byte-stable and diffable. *)

val header : string
(** ["# sct-corpus program v1"]. *)

val to_string : Sct_fuzz.Ast.program -> string
(** The canonical rendering, header included, 2-space indentation. *)

val parse : string -> (Sct_fuzz.Ast.program, string) result
(** Parse a program file. The first non-blank line must be exactly
    {!header} (a future v2 file is an error, not a guess). Otherwise
    whitespace-insensitive; [#] comments run to end of line. Errors carry
    a human-readable description (and, where available, the offending
    form). *)
