module Ast = Sct_fuzz.Ast
module Compile = Sct_fuzz.Compile
module Bench = Sctbench.Bench

let manifest_file = "manifest.jsonl"
let default_base_id = 1000

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Unconditional atomic write: the corpus is re-promotable, so existing
   files are replaced (unlike content-addressed artifacts, which
   Sct_store.Artifact.write_atomic leaves untouched). *)
let overwrite_atomic ~dir ~file content =
  mkdir_p dir;
  let final = Filename.concat dir file in
  let tmp = Filename.concat dir ("." ^ file ^ ".tmp") in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp final;
  final

let write ~dir cfg candidates =
  let manifest = Manifest.of_mine cfg candidates in
  List.iter2
    (fun (e : Manifest.entry) (c : Mine.candidate) ->
      ignore
        (overwrite_atomic
           ~dir:(Filename.concat dir "programs")
           ~file:(Filename.basename e.Manifest.m_file)
           (Program_text.to_string c.Mine.c_program)))
    manifest.Manifest.entries candidates;
  ignore
    (overwrite_atomic ~dir ~file:manifest_file (Manifest.to_string manifest));
  manifest

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let ( let* ) = Result.bind

let load ~dir =
  let* src = read_file (Filename.concat dir manifest_file) in
  let* manifest = Manifest.of_string src in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (e : Manifest.entry) :: rest ->
        let path = Filename.concat dir e.Manifest.m_file in
        let* src = read_file path in
        let* ast =
          Result.map_error
            (fun m -> Printf.sprintf "%s: %s" path m)
            (Program_text.parse src)
        in
        go ((e, ast) :: acc) rest
  in
  let* programs = go [] manifest.Manifest.entries in
  Ok (manifest, programs)

let to_bench ~id (e : Manifest.entry) ast =
  let h = e.Manifest.m_hardness in
  let paper =
    {
      Bench.p_threads = h.Hardness.h_threads;
      p_max_enabled = h.Hardness.h_max_enabled;
      p_ipb_bound = h.Hardness.h_ipb_bound;
      p_idb_bound = h.Hardness.h_idb_bound;
      p_dfs_found = List.mem "DFS" h.Hardness.h_found_by;
      p_rand_found = List.mem "Rand" h.Hardness.h_found_by;
      p_maple_found = List.mem "MapleAlg" h.Hardness.h_found_by;
    }
  in
  {
    Bench.id;
    suite = Bench.Corpus;
    name = Bench.qualified_name Bench.Corpus e.Manifest.m_name;
    program = Compile.program ast;
    description =
      Printf.sprintf "mined %s program (seed %d, digest %s)"
        (Hardness.cls_name h.Hardness.h_class)
        e.Manifest.m_seed
        (String.sub e.Manifest.m_digest 0 12);
    paper;
    expect_ipb = h.Hardness.h_ipb_bound;
    expect_idb = h.Hardness.h_idb_bound;
  }

let register ?(base_id = default_base_id) ~dir () =
  let* _, programs = load ~dir in
  let benches =
    List.mapi (fun i (e, ast) -> to_bench ~id:(base_id + i) e ast) programs
  in
  let rec go = function
    | [] -> Ok benches
    | b :: rest -> (
        match Sctbench.Registry.register b with
        | Ok () -> go rest
        | Error _ as e -> e)
  in
  go benches
