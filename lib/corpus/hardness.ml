open Sct_explore
module Json = Sct_store.Json

type cls = Deep_bound | Rare | Elusive | Easy | Safe

let deep_bound = 2
let elusive_schedules = 20

let cls_name = function
  | Deep_bound -> "deep-bound"
  | Rare -> "rare"
  | Elusive -> "elusive"
  | Easy -> "easy"
  | Safe -> "safe"

let cls_of_name s =
  match String.lowercase_ascii s with
  | "deep-bound" -> Some Deep_bound
  | "rare" -> Some Rare
  | "elusive" -> Some Elusive
  | "easy" -> Some Easy
  | "safe" -> Some Safe
  | _ -> None

type t = {
  h_class : cls;
  h_found_by : string list;
  h_surveyed : string list;
  h_ipb_bound : int option;
  h_idb_bound : int option;
  h_max_to_first : int option;
  h_threads : int;
  h_max_enabled : int;
}

let classify (survey : (Techniques.t * Stats.t) list) =
  let finders = List.filter (fun (_, s) -> Stats.found s) survey in
  let h_found_by = List.map (fun (t, _) -> Techniques.name t) finders in
  let h_surveyed = List.map (fun (t, _) -> Techniques.name t) survey in
  let bound_of t =
    match List.assoc_opt t survey with
    | Some s when Stats.found s -> s.Stats.bound
    | _ -> None
  in
  let h_ipb_bound = bound_of Techniques.IPB in
  let h_idb_bound = bound_of Techniques.IDB in
  let h_max_to_first =
    List.fold_left
      (fun acc (_, s) ->
        match (acc, s.Stats.to_first_bug) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (max a b))
      None finders
  in
  let h_threads =
    List.fold_left (fun n (_, s) -> max n s.Stats.n_threads) 0 survey
  in
  let h_max_enabled =
    List.fold_left (fun n (_, s) -> max n s.Stats.max_enabled) 0 survey
  in
  let buggy = finders <> [] in
  (* deep: every bounded finder needed a bound >= deep_bound, counting a
     bounded technique that ran but missed a bug others found as deeper
     still; requires at least one bounded technique surveyed *)
  let deep =
    buggy
    &&
    let bounded =
      List.filter
        (fun (t, _) -> t = Techniques.IPB || t = Techniques.IDB)
        survey
    in
    bounded <> []
    && List.for_all
         (fun (_, s) ->
           (not (Stats.found s))
           || match s.Stats.bound with Some b -> b >= deep_bound | None -> true)
         bounded
  in
  let rare = buggy && 3 * List.length finders <= List.length survey in
  let elusive =
    buggy
    && match h_max_to_first with Some n -> n >= elusive_schedules | None -> false
  in
  let h_class =
    if not buggy then Safe
    else if deep then Deep_bound
    else if rare then Rare
    else if elusive then Elusive
    else Easy
  in
  {
    h_class;
    h_found_by;
    h_surveyed;
    h_ipb_bound;
    h_idb_bound;
    h_max_to_first;
    h_threads;
    h_max_enabled;
  }

let keep h =
  match h.h_class with
  | Deep_bound | Rare | Elusive -> true
  | Easy | Safe -> false

let opt_int = function None -> Json.Null | Some n -> Json.Int n
let strs l = Json.Arr (List.map (fun s -> Json.Str s) l)

let to_json h =
  Json.Obj
    [
      ("class", Json.Str (cls_name h.h_class));
      ("found_by", strs h.h_found_by);
      ("surveyed", strs h.h_surveyed);
      ("ipb_bound", opt_int h.h_ipb_bound);
      ("idb_bound", opt_int h.h_idb_bound);
      ("max_to_first", opt_int h.h_max_to_first);
      ("threads", Json.Int h.h_threads);
      ("max_enabled", Json.Int h.h_max_enabled);
    ]

let of_json j =
  let str_list k =
    match Json.member k j with
    | Some (Json.Arr l) ->
        Ok
          (List.map
             (function Json.Str s -> s | _ -> raise Exit)
             l)
    | _ -> Error (Printf.sprintf "hardness: missing list field %s" k)
  in
  let int_opt k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok (Some n)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "hardness: bad field %s" k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "hardness: missing int field %s" k)
  in
  let ( let* ) = Result.bind in
  match
    let* cls =
      match Json.member "class" j with
      | Some (Json.Str s) -> (
          match cls_of_name s with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "hardness: unknown class %s" s))
      | _ -> Error "hardness: missing class"
    in
    let* h_found_by = str_list "found_by" in
    let* h_surveyed = str_list "surveyed" in
    let* h_ipb_bound = int_opt "ipb_bound" in
    let* h_idb_bound = int_opt "idb_bound" in
    let* h_max_to_first = int_opt "max_to_first" in
    let* h_threads = int "threads" in
    let* h_max_enabled = int "max_enabled" in
    Ok
      {
        h_class = cls;
        h_found_by;
        h_surveyed;
        h_ipb_bound;
        h_idb_bound;
        h_max_to_first;
        h_threads;
        h_max_enabled;
      }
  with
  | r -> r
  | exception Exit -> Error "hardness: non-string element in a name list"
