(** The mining pipeline: generate, survey, score, shrink, dedupe.

    Mining reuses the fuzz generator as a benchmark factory. Phase A
    ({!probe}) generates program [i] of the campaign and surveys it — race
    detection, promotion, then every configured technique through the real
    {!Sct_explore.Techniques.run} pipeline. [probe] is a pure function of
    [(config, index)], the same discipline as the fuzz harness: campaigns
    shard by index across worker domains and reassemble in index order,
    byte-identical for every [--jobs], and a per-index×technique cell
    journals into {!Sct_store.Db} for crash-safe resume (the caller owns
    the store and the pool; this module stays engine-agnostic).

    Phase B ({!collect}) is sequential and cheap relative to the survey:
    score each probe ({!Hardness.classify}), shrink the keepers with
    {!Sct_fuzz.Shrink} under the predicate "still the same hardness
    class", and dedupe behaviourally equal survivors by their
    {!Signature} digest — first index wins, so the output is
    deterministic in [(seed, count)]. *)

type config = {
  campaign_seed : int;
  count : int;
  vocab : Sct_fuzz.Gen.vocab;
  limit : int;  (** schedule budget per technique and program *)
  max_steps : int;
  race_runs : int;
  techniques : Sct_explore.Techniques.t list;
  shrink_checks : int;
      (** budget of hardness re-surveys per shrink (each candidate check
          re-runs the full survey, the expensive part of phase B) *)
  sig_limit : int;  (** schedule budget of the dedupe digest *)
}

val default_config : config
(** [campaign_seed = 0; count = 100; vocab = Full; limit = 300;
    max_steps = 5_000; race_runs = 3; techniques = Techniques.all;
    shrink_checks = 60; sig_limit = 400]. *)

type probe = {
  p_index : int;
  p_seed : int;  (** the derived per-program generator seed *)
  p_racy : int;  (** racy locations reported by the detection phase *)
  p_stats : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list;
      (** in [config.techniques] order *)
}

val options_of : config -> seed:int -> Sct_explore.Techniques.options
(** The exploration options of one program's survey — also the options a
    resuming caller must fingerprint store cells with. *)

val survey :
  config -> seed:int -> Sct_fuzz.Ast.program ->
  int * (Sct_explore.Techniques.t * Sct_explore.Stats.t) list
(** Detect races, promote, run every configured technique; the first
    component is the racy-location count of the detection phase (what a
    resuming caller journals as the cell's [racy] field). *)

val probe : config -> int -> probe
(** [probe cfg i]: generate program [i] (from the derived seed, under
    [cfg.vocab]) and survey it. Pure in [(cfg, i)] — safe on any domain. *)

type candidate = {
  c_index : int;
  c_seed : int;
  c_program : Sct_fuzz.Ast.program;  (** shrunk *)
  c_original_size : int;
  c_size : int;  (** of the shrunk program *)
  c_digest : string;  (** {!Signature.digest} of the shrunk program *)
  c_hardness : Hardness.t;  (** of the shrunk program *)
}

type outcome = {
  o_programs : int;  (** probes examined (= [config.count]) *)
  o_hard : int;  (** probes scored keep-worthy before dedupe *)
  o_duplicates : int;  (** keepers dropped as behavioural duplicates *)
  o_candidates : candidate list;  (** survivors, in index order *)
}

val collect : config -> probe list -> outcome
(** Phase B over the probes (given in index order). *)

val run : config -> outcome
(** The sequential campaign: [collect cfg (List.map (probe cfg) [0..count-1])]. *)
