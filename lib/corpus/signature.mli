(** Behavioural digests of programs, used as the corpus dedupe key.

    Two generated programs frequently differ syntactically yet exercise
    the same interleavings — the generator has a small vocabulary and the
    shrinker funnels counterexamples toward the same minima. The corpus
    therefore dedupes on {e behaviour}: the set of happens-before
    signatures ({!Sct_explore.Hb_signature}) of the program's terminal
    schedules under a bounded promote-all DFS. Programs with equal digests
    exhibit the same partial orders — per-object access sequences and
    per-thread operation counts — so keeping one of them loses no
    scheduling challenge.

    The digest is deterministic: DFS exploration order is deterministic,
    signatures render canonically, and the set is sorted before hashing.
    A budget-truncated exploration is truncated at the same point on every
    run, so the digest stays stable (and is marked partial). *)

val digest :
  ?limit:int -> ?max_steps:int -> (unit -> unit) -> string
(** [digest program] is the MD5 hex of the sorted canonical signature set
    of up to [limit] (default 400) terminal schedules, each execution
    bounded by [max_steps] (default 5000) steps; every shared location is
    visible (promote-all), so the digest sees all conflicts. If the limit
    truncated the exploration, the digest input carries a partial marker —
    a truncated space never collides with an exhausted one. *)
