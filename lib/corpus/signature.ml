open Sct_explore
module Runtime = Sct_core.Runtime

let digest ?(limit = 400) ?(max_steps = 5_000) program =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let r =
    Dfs.explore
      ~promote:(fun _ -> true)
      ~max_steps ~record_decisions:true
      ~on_schedule:(fun res ->
        Hashtbl.replace seen
          (Hb_signature.to_string
             (Hb_signature.of_decisions res.Runtime.r_decisions))
          ())
      ~bound:Dfs.Unbounded ~limit program
  in
  let sigs = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (if r.Dfs.complete then "complete\n" else "partial\n");
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_string buf "--\n")
    sigs;
  Digest.to_hex (Digest.string (Buffer.contents buf))
