(** Hardness scoring: which mined programs are worth keeping.

    The paper's empirical point is that benchmarks differ wildly in how
    hard their bugs are to expose; a corpus of trivially-buggy generated
    programs would add nothing to the 52. A mined program is scored from
    its per-technique statistics and kept only when its bug is {e hard}
    along one of three axes:

    - {b deep}: the bug needs a preemption/delay bound of at least
      {!deep_bound} — or escapes bounded search entirely while another
      technique finds it;
    - {b rare}: at most a third of the surveyed techniques find the bug;
    - {b elusive}: some finder explored at least {!elusive_schedules}
      schedules before its first buggy one.

    The record persists into the corpus manifest, where it doubles as the
    entry's expected behaviour: re-running the promoted suite compares
    current bounds and finders against mining-time ones — a standing
    regression study in the shape of the paper's Table 3. *)

type cls =
  | Deep_bound  (** found only at preemption/delay bound >= {!deep_bound} *)
  | Rare  (** found by at most a third of the surveyed techniques *)
  | Elusive  (** >= {!elusive_schedules} schedules before the first bug *)
  | Easy  (** buggy, but none of the above *)
  | Safe  (** no surveyed technique found a bug *)

val deep_bound : int
(** 2. *)

val elusive_schedules : int
(** 20 — calibrated against the generator: at 50 keepers all but vanish
    (about 1 in 600 probes), at 20 a mine yields on the order of 1%. *)

val cls_name : cls -> string
val cls_of_name : string -> cls option

type t = {
  h_class : cls;
  h_found_by : string list;
      (** display names of the finding techniques, in survey order *)
  h_surveyed : string list;  (** every technique surveyed, in survey order *)
  h_ipb_bound : int option;
      (** bound at which IPB exposed the bug; [None] = IPB did not find it
          (or was not surveyed) *)
  h_idb_bound : int option;
  h_max_to_first : int option;
      (** max over finders of schedules-to-first-bug *)
  h_threads : int;  (** max threads observed across the survey *)
  h_max_enabled : int;
}

val classify : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list -> t
(** Score one program from its survey. The class priority is
    [Deep_bound > Rare > Elusive > Easy]: a deep bug that is also rare
    classifies as deep. *)

val keep : t -> bool
(** Kept classes: [Deep_bound], [Rare] and [Elusive]. *)

val to_json : t -> Sct_store.Json.t
val of_json : Sct_store.Json.t -> (t, string) result
