let classes =
  [
    Hardness.Deep_bound;
    Hardness.Rare;
    Hardness.Elusive;
    Hardness.Easy;
    Hardness.Safe;
  ]

let opt_bound = function None -> "-" | Some b -> string_of_int b

let stats fmt (m : Manifest.t) =
  let h = m.Manifest.header in
  Format.fprintf fmt "corpus v%d: %d programs (campaign seed %d, count %d, vocab %s)@."
    Manifest.version
    (List.length m.Manifest.entries)
    h.Manifest.hd_campaign_seed h.Manifest.hd_count h.Manifest.hd_vocab;
  Format.fprintf fmt
    "survey: limit %d, max-steps %d, race-runs %d, techniques %s@.@."
    h.Manifest.hd_limit h.Manifest.hd_max_steps h.Manifest.hd_race_runs
    (String.concat "," h.Manifest.hd_techniques);
  Format.fprintf fmt "%-12s %5s@." "class" "count";
  List.iter
    (fun c ->
      let n =
        List.length
          (List.filter
             (fun (e : Manifest.entry) ->
               e.Manifest.m_hardness.Hardness.h_class = c)
             m.Manifest.entries)
      in
      Format.fprintf fmt "%-12s %5d@." (Hardness.cls_name c) n)
    classes;
  Format.fprintf fmt "@.%-14s %-12s %5s %12s %4s %4s  %s@." "name" "class"
    "size" "shrunk-from" "ipb" "idb" "found-by";
  List.iter
    (fun (e : Manifest.entry) ->
      let hd = e.Manifest.m_hardness in
      Format.fprintf fmt "%-14s %-12s %5d %12d %4s %4s  %s@."
        e.Manifest.m_name
        (Hardness.cls_name hd.Hardness.h_class)
        e.Manifest.m_size e.Manifest.m_original_size
        (opt_bound hd.Hardness.h_ipb_bound)
        (opt_bound hd.Hardness.h_idb_bound)
        (match hd.Hardness.h_found_by with
        | [] -> "-"
        | fs -> String.concat "," fs))
    m.Manifest.entries
