(** Promotion and loading of corpus directories.

    On-disk layout of a promoted corpus:

    {v
    DIR/manifest.jsonl        header + one line per entry ({!Manifest})
    DIR/programs/<name>.sct   the promoted programs ({!Program_text})
    v}

    {!write} is deterministic and atomic per file (temp file + rename,
    always overwriting): promoting the same mining outcome twice produces
    byte-identical trees. {!register} makes a corpus a first-class
    extension of the benchmark registry — entries land in the
    {!Sctbench.Bench.Corpus} suite with ids from [base_id] up, carrying
    their mining-time hardness as the paper row, so every downstream
    consumer (tables, campaign cells, the parallel suite, the oracle)
    sees them exactly like the 52. *)

val manifest_file : string
(** ["manifest.jsonl"]. *)

val default_base_id : int
(** 1000 — clear of the paper's benchmark ids 0..51. *)

val write :
  dir:string -> Mine.config -> Mine.candidate list -> Manifest.t
(** Promote a mining outcome into [dir] (created if needed): every
    candidate's program file plus the manifest. Returns the written
    manifest. *)

val load :
  dir:string ->
  (Manifest.t * (Manifest.entry * Sct_fuzz.Ast.program) list, string) result
(** Read a corpus back: parse the manifest, then each program file. Fails
    on the first malformed file; an entry whose program file is missing is
    an error, not a skip. *)

val to_bench :
  id:int -> Manifest.entry -> Sct_fuzz.Ast.program -> Sctbench.Bench.t
(** The registry entry of one corpus program: suite [Corpus], qualified
    name [corpus.<name>], the mining-time hardness as paper row and
    expected bounds. *)

val register :
  ?base_id:int -> dir:string -> unit -> (Sctbench.Bench.t list, string) result
(** Load [dir] and register every entry (ids [base_id], [base_id + 1],
    ... in manifest order) through {!Sctbench.Registry.register}. Returns
    the registered benches; the first failure (parse error, id or name
    clash) aborts with nothing further registered. *)
