(** Total-store-order (TSO) simulation on top of the SCT engine.

    The paper's threat-to-validity discussion (§5) notes that its method
    explores "sequentially consistent outcomes of racy memory accesses", so
    "bugs that depend on relaxed memory effects ... will be missed" — and
    its hardest benchmark, Vyukov's safestack, comes from the weak-memory
    world (reproduced by the authors with Relacy, §6). This module closes
    that gap for the x86-TSO fragment: each thread's plain stores go through
    a FIFO store buffer drained asynchronously by a companion flusher
    thread, and loads forward from the own buffer before reading memory.
    Buffer-drain points are ordinary scheduling decisions, so every
    systematic and random technique in [Sct_explore] explores TSO
    reorderings with no changes.

    The classic store-buffering litmus (SB):
    {v
        T1: store x 1; r1 := load y      T2: store y 1; r2 := load x
    v}
    can end with [r1 = r2 = 0] under this module (both stores parked in
    buffers) — an outcome no sequentially consistent interleaving of
    [Sct.Var] operations produces. [fence] drains the calling thread's
    buffer (x86 [mfence]).

    Values are integers, as in litmus tests. Memory cells are named
    [Sct.Var]s underneath, so the data-race detection phase sees the
    flusher/reader races and promotes them as usual. *)

type ctx
(** Per-test TSO context: owns the store buffers and flusher threads. *)

val create : unit -> ctx

val thread : ctx -> (unit -> unit) -> Sct_core.Tid.t
(** [thread ctx body] spawns a TSO thread (plus its flusher). The thread's
    buffered stores keep draining after [body] returns; {!finish} waits for
    everything. Threads created with plain [Sct.spawn] do not buffer. *)

val finish : ctx -> unit
(** Join every TSO thread and flusher; afterwards all stores are in
    memory. *)

(** Shared integer locations with store-buffer semantics. *)
module Var : sig
  type t

  val make : ctx -> ?name:string -> int -> t

  val store : t -> int -> unit
  (** Enqueue into the calling TSO thread's buffer (a plain write to memory
      when called from a non-TSO thread, e.g. the initial thread). *)

  val load : t -> int
  (** Forward from the calling thread's buffer when it holds a store to
      this location (newest wins); otherwise read memory. *)
end

val fence : ctx -> unit
(** Drain the calling TSO thread's store buffer ([mfence]): returns only
    after every earlier store by this thread reached memory. *)
