open Sct_core

type cell = int Sct.Var.t

type entry =
  | Store of cell * int
  | Fence_marker of Sct.Sem.t
  | End

type tbuf = { queue : entry Queue.t; items : Sct.Sem.t }

type ctx = {
  mutable buffers : (Tid.t * tbuf) list;
  mutable owners : Tid.t list;
  mutable flushers : Tid.t list;
}

let create () = { buffers = []; owners = []; flushers = [] }

let buffer_of ctx tid = List.assoc_opt tid ctx.buffers

(* The flusher drains its owner's buffer one entry per wake-up; each queued
   entry is matched by one post on [items], and the terminal [End] entry
   (queued when the owner's body returns) shuts the flusher down. The
   memory write is an ordinary (racy, promotable) [Sct.Var] write, so the
   drain point is a first-class scheduling decision. *)
let flusher_loop buf =
  let running = ref true in
  while !running do
    Sct.Sem.wait buf.items;
    match Queue.pop buf.queue with
    | Store (cell, v) -> Sct.Var.write cell v
    | Fence_marker waiting -> Sct.Sem.post waiting
    | End -> running := false
  done

let thread ctx body =
  let buf = { queue = Queue.create (); items = Sct.Sem.create 0 } in
  let owner =
    Sct.spawn (fun () ->
        ctx.buffers <- (Sct.self (), buf) :: ctx.buffers;
        body ();
        Queue.add End buf.queue;
        Sct.Sem.post buf.items)
  in
  let flusher = Sct.spawn (fun () -> flusher_loop buf) in
  ctx.owners <- owner :: ctx.owners;
  ctx.flushers <- flusher :: ctx.flushers;
  owner

let finish ctx =
  List.iter Sct.join (List.rev ctx.owners);
  List.iter Sct.join (List.rev ctx.flushers)

module Var = struct
  type t = { cell : cell; ctx : ctx }

  let make ctx ?name v = { cell = Sct.Var.make ?name v; ctx }

  let store v x =
    match buffer_of v.ctx (Sct.self ()) with
    | Some buf ->
        Queue.add (Store (v.cell, x)) buf.queue;
        Sct.Sem.post buf.items
    | None -> Sct.Var.write v.cell x

  (* Store-to-load forwarding: the newest buffered store to this location
     wins; a forwarded load touches no memory (and is thus invisible, as on
     real TSO hardware). *)
  let load v =
    match buffer_of v.ctx (Sct.self ()) with
    | None -> Sct.Var.read v.cell
    | Some buf ->
        let forwarded =
          Queue.fold
            (fun acc entry ->
              match entry with
              | Store (cell, x) when cell == v.cell -> Some x
              | Store _ | Fence_marker _ | End -> acc)
            None buf.queue
        in
        (match forwarded with
        | Some x -> x
        | None -> Sct.Var.read v.cell)
end

let fence ctx =
  match buffer_of ctx (Sct.self ()) with
  | None -> ()
  | Some buf ->
      let drained = Sct.Sem.create 0 in
      Queue.add (Fence_marker drained) buf.queue;
      Sct.Sem.post buf.items;
      Sct.Sem.wait drained
