module Techniques = Sct_explore.Techniques

type t = {
  index : int;
  bench : Sctbench.Bench.t;
  technique : Techniques.t;
  options : Techniques.options;
  key : string;
}

let name c =
  c.bench.Sctbench.Bench.name ^ "/" ^ Techniques.name c.technique

let grid ?(techniques = Techniques.all_paper) options benches =
  let cells =
    List.concat_map
      (fun bench ->
        List.map
          (fun technique ->
            let key =
              Sct_store.Db.fingerprint ~bench:bench.Sctbench.Bench.name
                ~technique:(Techniques.name technique) options
            in
            { index = 0; bench; technique; options; key })
          techniques)
      benches
  in
  List.mapi (fun index c -> { c with index }) cells

let shard ~k ~n cells =
  if n < 1 || k < 0 || k >= n then
    invalid_arg
      (Printf.sprintf "Sct_campaign.Cell.shard: shard %d/%d is not valid" k n);
  List.filter (fun c -> c.index mod n = k) cells
