module Techniques = Sct_explore.Techniques
module Db = Sct_store.Db

type outcome = { cells : int; finished : int; slices : int }

let check_distinct cells =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt seen c.Cell.key with
      | Some other ->
          invalid_arg
            (Printf.sprintf
               "Sct_campaign.Orchestrator.run: cells %s and %s share a \
                fingerprint"
               (Cell.name other) (Cell.name c))
      | None -> Hashtbl.replace seen c.Cell.key c)
    cells

let run ?(policy = Scheduler.Uniform) ?(slice = 500)
    ?(on_slice = fun _ _ -> ()) ~pool ~db cells =
  if slice < 1 then
    invalid_arg "Sct_campaign.Orchestrator.run: slice must be at least 1";
  check_distinct cells;
  let cells = Array.of_list cells in
  let states =
    Array.map
      (fun c -> Option.map Scheduler.state_of_entry (Db.find_any db c.Cell.key))
      cells
  in
  (* one detection phase per benchmark per process; deterministic, so a
     restarted campaign re-derives the same promotion set and racy count
     the journalled slices were explored under *)
  let detections = Hashtbl.create 16 in
  let detection (c : Cell.t) =
    let name = c.Cell.bench.Sctbench.Bench.name in
    match Hashtbl.find_opt detections name with
    | Some d -> d
    | None ->
        let d =
          Techniques.detect_races c.Cell.options c.Cell.bench.Sctbench.Bench.program
        in
        Hashtbl.replace detections name d;
        d
  in
  let granted = ref 0 in
  let rec loop () =
    match Scheduler.pick ~policy states with
    | None -> ()
    | Some i ->
        let c = cells.(i) in
        let det = detection c in
        let promote = Sct_race.Promotion.promote det in
        let racy = List.length det.Sct_race.Promotion.racy in
        let prev = Db.find_any db c.Cell.key in
        let r = Runner.run_slice ~pool ~promote ~slice ~prev c in
        Db.record ~progress:r.Runner.progress db ~key:c.Cell.key
          ~bench:c.Cell.bench.Sctbench.Bench.name
          ~technique:(Techniques.name c.Cell.technique)
          ~racy ~options:c.Cell.options r.Runner.stats;
        states.(i) <-
          Some
            {
              Scheduler.s_consumed = r.Runner.progress.Sct_store.Codec.p_consumed;
              s_slices = r.Runner.progress.Sct_store.Codec.p_slices;
              s_coverage = Sct_explore.Stats.coverage r.Runner.stats;
              s_bound = r.Runner.stats.Sct_explore.Stats.bound;
              s_finished = r.Runner.progress.Sct_store.Codec.p_done;
            };
        incr granted;
        on_slice c r.Runner.progress;
        loop ()
  in
  loop ();
  let finished =
    Array.fold_left
      (fun acc st ->
        match st with
        | Some s when s.Scheduler.s_finished -> acc + 1
        | _ -> acc)
      0 states
  in
  { cells = Array.length cells; finished; slices = !granted }
