module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques
module Strategy = Sct_explore.Strategy
module Db = Sct_store.Db
module Codec = Sct_store.Codec
module Pool = Sct_parallel.Pool
module Drivers = Sct_parallel.Drivers

type slice_result = { stats : Stats.t; progress : Codec.progress }

(* One contiguous sub-range of the seed space per pool worker; the merge
   equals the sequential [lo, hi) shard (the Shard_seed contract). *)
let seed_slice ~pool shard ~lo ~hi =
  let n = hi - lo in
  if Pool.size pool <= 1 || n <= 1 then shard ~lo ~hi
  else
    let futs =
      List.map
        (fun (slo, shi) ->
          Pool.submit pool (fun () -> shard ~lo:(lo + slo) ~hi:(lo + shi)))
        (Drivers.shard_ranges ~shards:(Pool.size pool) ~n)
    in
    Drivers.merge_all (List.map Pool.await futs)

let run_slice ~pool ~promote ~slice ~prev (cell : Cell.t) =
  if slice < 1 then
    invalid_arg "Sct_campaign.Runner.run_slice: slice must be at least 1";
  let o = cell.Cell.options in
  let program = cell.Cell.bench.Sctbench.Bench.program in
  let prev_stats = Option.map (fun e -> e.Db.e_stats) prev in
  let consumed, slices =
    match prev with
    | None -> (0, 0)
    | Some e -> (
        match e.Db.e_progress with
        | Some p -> (p.Codec.p_consumed, p.Codec.p_slices)
        | None ->
            (* a finished study-runner record; the orchestrator never
               grants such a cell a slice, but stay total *)
            (e.Db.e_stats.Stats.total, 1))
  in
  (* Re-run the cumulative prefix under a geometrically growing limit:
     doubling bounds the total re-executed work by ~2x the final run, and
     the last slice explores under the cell's exact limit. Consumed budget
     counts cut runs (fair/length bounding): a cut execution charges the
     budget without counting, and when the limit is hit
     [total + cut_runs = target], so every slice strictly advances. *)
  let rerun_growing () =
    let target =
      min o.Techniques.limit (max (consumed + slice) (2 * consumed))
    in
    let s =
      Drivers.run ~pool ~promote
        { o with Techniques.limit = target }
        cell.Cell.technique program
    in
    let finished = (not s.Stats.hit_limit) || target >= o.Techniques.limit in
    {
      stats = s;
      progress =
        {
          Codec.p_consumed = s.Stats.total + s.Stats.cut_runs;
          p_slices = slices + 1;
          p_done = finished;
        };
    }
  in
  if Techniques.sequential_only cell.Cell.technique then
    (* the Axes bounding techniques declare no parallel plan; their cells
       still slice by cumulative re-running on the sequential driver *)
    rerun_growing ()
  else
  match Techniques.sharding ~promote o cell.Cell.technique program with
  | Strategy.Shard_seed shard ->
      let hi = min o.Techniques.limit (consumed + slice) in
      let slice_stats = seed_slice ~pool shard ~lo:consumed ~hi in
      let stats =
        match prev_stats with
        | None -> slice_stats
        | Some p -> Stats.merge p slice_stats
      in
      {
        stats;
        progress =
          {
            Codec.p_consumed = hi;
            p_slices = slices + 1;
            p_done = hi >= o.Techniques.limit;
          };
      }
  | Strategy.Shard_tree _ -> rerun_growing ()
  | Strategy.Shard_runs _ ->
      (* intrinsic-length campaign: one atomic slice *)
      let s = Drivers.run ~pool ~promote o cell.Cell.technique program in
      {
        stats = s;
        progress =
          {
            Codec.p_consumed = s.Stats.total;
            p_slices = slices + 1;
            p_done = true;
          };
      }
