(** Adaptive budget allocation across the campaign's cells.

    The scheduler treats cells as bandit arms and decides which one gets
    the next budget slice. Its entire state is a pure function of the
    store's journal records ({!state_of_entry}) — nothing lives only in
    memory — so a campaign killed at any instant (even SIGKILL mid-write,
    which at worst tears the final journal line) resumes into exactly the
    scheduling state it died in.

    Both policies are deterministic. Since each cell's exploration is
    itself deterministic and slice-resumable (see {!Runner}), the final
    per-cell statistics of a completed campaign are {e policy-independent}:
    the policy only chooses the interleaving of slices, never their
    content. *)

type policy =
  | Uniform
      (** round-robin: every unfinished cell gets a slice before any cell
          gets its next one; ties broken by grid index, so the first pass
          runs cells in the one-shot study runner's order *)
  | Bandit
      (** explore/exploit: untried cells first, then the cell with the
          best {!score} — favouring cells whose distinct-schedule coverage
          still grows fast per unit of budget and whose bound is still
          low, with a UCB-style term that keeps starving cells alive *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

val policy_names : string list
(** Canonical names accepted by {!policy_of_name} (["uniform"; "bandit"]),
    for CLI error messages. *)

type state = {
  s_consumed : int;  (** budget banked by previous slices *)
  s_slices : int;  (** slices taken so far *)
  s_coverage : int;  (** [Stats.coverage]: distinct schedules (or total) *)
  s_bound : int option;  (** current bound level, if bounded *)
  s_finished : bool;
}

val state_of_entry : Sct_store.Db.entry -> state
(** The scheduling state encoded in one journal record. A record written
    by the one-shot study runner (no progress field) reads as one finished
    slice that consumed the whole run. *)

val score : total_slices:int -> state -> float
(** The bandit priority of an unfinished arm:
    [coverage/consumed + 1/(1+bound) + 0.5·sqrt(ln(1+T)/(1+slices))]
    where [T] is the campaign-wide slice count. The first term is the
    cell's distinct-schedule growth rate per schedule of budget, the
    second prefers cells still exploring low bounds (where schedules are
    cheap and bugs are shallow — the paper's core observation), and the
    third is the usual exploration bonus. *)

val pick : policy:policy -> state option array -> int option
(** The index of the cell to run next ([None] = campaign finished). The
    array is indexed by grid position; [None] elements are cells never
    journalled. Deterministic: equal priorities resolve to the lowest
    index. *)
