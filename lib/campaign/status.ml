module Stats = Sct_explore.Stats
module Db = Sct_store.Db

type row = {
  r_bench : string;
  r_technique : string;
  r_state : Scheduler.state;
  r_bugs : bool;
}

let row_of_entry (e : Db.entry) =
  {
    r_bench = e.Db.e_bench;
    r_technique = e.Db.e_technique;
    r_state = Scheduler.state_of_entry e;
    r_bugs = Stats.found e.Db.e_stats;
  }

let render ppf db =
  let rows =
    Db.entries_any db
    |> List.map (fun (_, e) -> row_of_entry e)
    |> List.sort (fun a b ->
           match String.compare a.r_bench b.r_bench with
           | 0 -> String.compare a.r_technique b.r_technique
           | c -> c)
  in
  let finished =
    List.length (List.filter (fun r -> r.r_state.Scheduler.s_finished) rows)
  in
  let slices =
    List.fold_left (fun acc r -> acc + r.r_state.Scheduler.s_slices) 0 rows
  in
  let bugs = List.length (List.filter (fun r -> r.r_bugs) rows) in
  Format.fprintf ppf
    "Campaign: %d cells (%d finished, %d in flight), %d slices, %d with bugs@."
    (List.length rows) finished
    (List.length rows - finished)
    slices bugs;
  if rows <> [] then begin
    Format.fprintf ppf "%-30s %-9s %-8s %9s %7s %9s %6s %14s@." "benchmark"
      "technique" "state" "consumed" "slices" "distinct" "bound"
      "distinct/slice";
    List.iter
      (fun r ->
        let st = r.r_state in
        let rate =
          float_of_int st.Scheduler.s_coverage
          /. float_of_int (max 1 st.Scheduler.s_slices)
        in
        Format.fprintf ppf "%-30s %-9s %-8s %9d %7d %9d %6s %14.1f@."
          r.r_bench r.r_technique
          (if st.Scheduler.s_finished then "done" else "running")
          st.Scheduler.s_consumed st.Scheduler.s_slices
          st.Scheduler.s_coverage
          (match st.Scheduler.s_bound with
          | Some b -> string_of_int b
          | None -> "-")
          rate)
      rows
  end
