(** Human-readable campaign progress, rendered from any store.

    Works on stores written by [campaign run], by sharded [campaign
    worker]s (before or after merging), or by the one-shot study runner —
    the report is a pure function of the journal records, sorted by
    (benchmark, technique) so its bytes are stable across filesystems and
    process interleavings. *)

val render : Format.formatter -> Sct_store.Db.t -> unit
(** One row per journalled cell: state, banked budget, slices taken,
    distinct-schedule coverage, current bound, and the coverage-growth
    rate ([distinct/slice]) the bandit policy allocates budget by. A
    summary header counts cells, finished cells, slices and bugs. *)
