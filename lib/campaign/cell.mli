(** The campaign's unit of work: one benchmark × technique pair under
    fixed exploration options, identified by the store's options
    fingerprint — the same key the one-shot study runner journals under,
    so campaign stores and run stores name cells identically. *)

type t = {
  index : int;
      (** position in the campaign grid: the scheduler's deterministic
          tie-break order, and the basis of {!shard} *)
  bench : Sctbench.Bench.t;
  technique : Sct_explore.Techniques.t;
  options : Sct_explore.Techniques.options;
  key : string;  (** [Sct_store.Db.fingerprint] of the cell *)
}

val name : t -> string
(** ["CS.account_bad/IPB"] — for log lines and error messages. *)

val grid :
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t list ->
  t list
(** The full campaign grid, benchmark-major ([techniques] defaults to
    [Techniques.all_paper]) — the same cell order the one-shot study
    runner executes, so a uniform round-robin campaign completes cells in
    a store-compatible order. Indices are consecutive from 0. *)

val shard : k:int -> n:int -> t list -> t list
(** The [k]-th of [n] disjoint leases: cells whose grid index is congruent
    to [k] modulo [n]. Striding (rather than chunking) gives every worker
    a mix of benchmarks, so shard wall-clock times stay balanced. The [n]
    shards partition the grid: merging the resulting worker stores covers
    every cell exactly once.
    @raise Invalid_argument unless [0 <= k < n]. *)
