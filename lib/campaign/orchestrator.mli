(** The campaign loop: lease cells budget slices until every cell is done.

    One iteration picks a cell ({!Scheduler.pick}), runs the data-race
    detection phase for its benchmark if this process has not yet (the
    detection is deterministic, so re-running it after a restart
    reproduces the promoted-location set the journalled slices were
    explored under), grants the cell one slice ({!Runner.run_slice}) and
    journals the cumulative snapshot. The loop's only state is the store:
    restarting after any crash — including SIGKILL mid-write — resumes
    the exact schedule, and a finished campaign's tables are byte-identical
    to the one-shot study runner's under either policy. *)

type outcome = {
  cells : int;  (** cells in the campaign grid *)
  finished : int;  (** cells finished when the loop stopped *)
  slices : int;  (** slices granted by {e this} process *)
}

val run :
  ?policy:Scheduler.policy ->
  ?slice:int ->
  ?on_slice:(Cell.t -> Sct_store.Codec.progress -> unit) ->
  pool:Sct_parallel.Pool.t ->
  db:Sct_store.Db.t ->
  Cell.t list ->
  outcome
(** Run the campaign over [cells] to completion, resuming from whatever
    the store already holds. [policy] defaults to [Uniform], [slice] (the
    per-lease budget in schedules) to 500. [on_slice] is called after each
    slice's record is journalled — a progress hook for the CLI and the
    test suite's interruption harness.
    @raise Invalid_argument if [slice < 1] or two cells share a key. *)
