module Stats = Sct_explore.Stats
module Db = Sct_store.Db
module Codec = Sct_store.Codec

type policy = Uniform | Bandit

let policy_name = function Uniform -> "uniform" | Bandit -> "bandit"

let policy_of_name = function
  | "uniform" -> Some Uniform
  | "bandit" -> Some Bandit
  | _ -> None

let policy_names = [ "uniform"; "bandit" ]

type state = {
  s_consumed : int;
  s_slices : int;
  s_coverage : int;
  s_bound : int option;
  s_finished : bool;
}

let state_of_entry (e : Db.entry) =
  let s_consumed, s_slices =
    match e.Db.e_progress with
    | Some p -> (p.Codec.p_consumed, p.Codec.p_slices)
    | None -> (e.Db.e_stats.Stats.total, 1)
  in
  {
    s_consumed;
    s_slices;
    s_coverage = Stats.coverage e.Db.e_stats;
    s_bound = e.Db.e_stats.Stats.bound;
    s_finished = Db.finished e;
  }

let score ~total_slices st =
  let rate = float_of_int st.s_coverage /. float_of_int (max 1 st.s_consumed) in
  let bound_bonus =
    match st.s_bound with
    | Some b -> 1.0 /. float_of_int (1 + b)
    | None -> 0.0
  in
  let explore =
    0.5
    *. sqrt
         (log (float_of_int (1 + total_slices))
         /. float_of_int (1 + st.s_slices))
  in
  rate +. bound_bonus +. explore

(* Fold [f] over the unfinished arms, carrying the best (acc, index). *)
let best_arm states f =
  let best = ref None in
  Array.iteri
    (fun i st ->
      match st with
      | Some s when s.s_finished -> ()
      | _ ->
          let v = f st in
          let better =
            match !best with None -> true | Some (v', _) -> v > v'
          in
          if better then best := Some (v, i))
    states;
  Option.map snd !best

let pick ~policy states =
  match policy with
  | Uniform ->
      (* fewest slices first; [iteri] order makes ties resolve to the
         lowest grid index, so the first pass is the study runner's order *)
      best_arm states (fun st ->
          let slices = match st with None -> 0 | Some s -> s.s_slices in
          -slices)
  | Bandit -> (
      (* optimism under ignorance: every arm gets one slice before any
         scoring happens, in grid order *)
      let untried = ref None in
      Array.iteri
        (fun i st -> if st = None && !untried = None then untried := Some i)
        states;
      match !untried with
      | Some i -> Some i
      | None ->
          let total_slices =
            Array.fold_left
              (fun acc st ->
                match st with None -> acc | Some s -> acc + s.s_slices)
              0 states
          in
          best_arm states (function
            | None -> infinity
            | Some st -> score ~total_slices st))
