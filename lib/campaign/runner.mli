(** Slice-resumable execution of one cell.

    A campaign never runs a cell to completion in one go: it grants budget
    {e slices} and journals a snapshot after each, so a killed campaign
    loses at most one slice of work. The per-capability slice models keep
    the final statistics byte-identical to the one-shot
    [Sct_explore.Techniques.run] (and hence to the whole study pipeline):

    - [Shard_seed] (Rand, PCT, SURW): run [i] is a pure function of the
      campaign seed and [i], so a slice is the contiguous run range
      [\[consumed, consumed+slice)] and cumulative statistics fold with
      [Stats.merge] — exactly the contiguous-slice merge the parallel
      drivers already prove equal to the sequential run. A slice is
      itself sub-sharded across the pool.
    - [Shard_tree] (DFS, IPB, IDB) and the sequential-only bounding axes
      (Fair, Length, IVB, ITB): tree walks carry backtracking state that
      cannot be banked in a [Stats.t], so each slice {e re-runs} the
      cumulative prefix with a geometrically growing schedule limit
      [min limit (max (consumed+slice) (2·consumed))] — the doubling keeps
      total re-execution within a constant factor of the final run, and
      the last slice runs with the cell's exact limit (or exhausts the
      bounded space below it), making the final statistics literally the
      one-shot statistics. Cumulative stats {e replace} the previous
      snapshot. Consumed budget counts cut runs (fair/length bounding
      charge abandoned executions to the budget without counting them),
      so a cut-heavy cell still advances every slice.
    - [Shard_runs] (MapleAlg): the campaign's length is intrinsic
      ([respects_limit = false]), so the cell runs as one atomic slice.

    Dispatch is from the declared sharding capability alone, like the
    parallel drivers — no per-technique case analysis (the sequential-only
    techniques are routed to the cumulative re-run model before the
    capability probe, which they do not implement). *)

type slice_result = {
  stats : Sct_explore.Stats.t;
      (** cumulative statistics after this slice — what gets journalled *)
  progress : Sct_store.Codec.progress;
      (** the matching slice-resume state ([p_done] marks the cell
          finished) *)
}

val run_slice :
  pool:Sct_parallel.Pool.t ->
  promote:(string -> bool) ->
  slice:int ->
  prev:Sct_store.Db.entry option ->
  Cell.t ->
  slice_result
(** Grant one budget slice to an unfinished cell. [prev] is the cell's
    latest journal record ([None] if never run); it must not be finished.
    @raise Invalid_argument if [slice < 1]. *)
