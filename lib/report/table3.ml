open Sct_explore

let opt_i = function None -> "-" | Some i -> string_of_int i

(* 'L' marks the schedule limit, as in the paper. *)
let count ~limit n = if n >= limit then "L" else string_of_int n

let axes_techniques =
  [ Techniques.Fair; Techniques.Length; Techniques.IVB; Techniques.ITB ]

let print ?(out = Format.std_formatter) ~limit rows =
  let pr fmt = Format.fprintf out fmt in
  (* the Axes bounding columns appear only when some row carries their
     stats, so the paper-shaped table (and its goldens) is unchanged
     unless fair/length/ivb/itb were requested *)
  let axes =
    List.filter
      (fun t ->
        List.exists (fun r -> Run_data.stats_of r t <> None) rows)
      axes_techniques
  in
  pr "Table 3: systematic and non-systematic testing results (limit %d)@."
    limit;
  pr
    "%-3s %-26s %4s %4s %5s | %-24s | %-24s | %-18s | %-12s | %-12s"
    "id" "name" "thr" "en" "pts" "IPB b/first/tot/new/bug"
    "IDB b/first/tot/new/bug" "DFS first/tot/bug" "Rand first/bug"
    "Maple f?/tot";
  List.iter
    (fun t ->
      pr " | %-26s"
        (Techniques.name t ^ " b/first/tot/cut/bug"))
    axes;
  pr "@.";
  List.iter
    (fun (row : Run_data.row) ->
      let b = row.Run_data.bench in
      let get t = Run_data.stats_of row t in
      let thr, en, pts =
        match get Techniques.IDB with
        | Some s ->
            (s.Stats.n_threads, s.Stats.max_enabled, s.Stats.max_sched_points)
        | None -> (0, 0, 0)
      in
      let bounded t =
        match get t with
        | None -> "-"
        | Some s ->
            Printf.sprintf "%s/%s/%s/%s/%d" (opt_i s.Stats.bound)
              (opt_i s.Stats.to_first_bug)
              (count ~limit s.Stats.total)
              (count ~limit s.Stats.new_at_bound)
              s.Stats.buggy
      in
      let dfs =
        match get Techniques.DFS with
        | None -> "-"
        | Some s ->
            let pct =
              if s.Stats.total = 0 then "-"
              else
                Printf.sprintf "%s%d%%"
                  (if s.Stats.hit_limit then "*" else "")
                  (100 * s.Stats.buggy / s.Stats.total)
            in
            Printf.sprintf "%s/%s/%d %s" (opt_i s.Stats.to_first_bug)
              (count ~limit s.Stats.total)
              s.Stats.buggy pct
      in
      let rand =
        match get Techniques.Rand with
        | None -> "-"
        | Some s ->
            Printf.sprintf "%s/%d" (opt_i s.Stats.to_first_bug) s.Stats.buggy
      in
      let maple =
        match get Techniques.Maple with
        | None -> "-"
        | Some s ->
            Printf.sprintf "%s/%d"
              (if Stats.found s then "y" else "n")
              s.Stats.total
      in
      pr "%-3d %-26s %4d %4d %5d | %-24s | %-24s | %-18s | %-12s | %-12s"
        b.Sctbench.Bench.id b.Sctbench.Bench.name thr en pts
        (bounded Techniques.IPB) (bounded Techniques.IDB) dfs rand maple;
      List.iter
        (fun t ->
          let cell =
            match get t with
            | None -> "-"
            | Some s ->
                Printf.sprintf "%s/%s/%s/%s/%d" (opt_i s.Stats.bound)
                  (opt_i s.Stats.to_first_bug)
                  (count ~limit s.Stats.total)
                  (count ~limit s.Stats.cut_runs)
                  s.Stats.buggy
          in
          pr " | %-26s" cell)
        axes;
      pr "@.")
    rows

let print_agreement ?(out = Format.std_formatter) rows =
  let pr fmt = Format.fprintf out fmt in
  let total = ref 0 and agree = ref 0 in
  let deviations = ref [] in
  let check name expected actual =
    incr total;
    if expected = actual then incr agree
    else deviations := Printf.sprintf "%s (paper:%b ours:%b)" name expected actual :: !deviations
  in
  List.iter
    (fun (row : Run_data.row) ->
      let b = row.Run_data.bench in
      if b.Sctbench.Bench.suite = Sctbench.Bench.Yield then ()
        (* the yield-loop family is a study extension with no paper row;
           its recorded expectations are this model's own *)
      else begin
      let p = b.Sctbench.Bench.paper in
      let f t = Run_data.found_by row t in
      let n tech = b.Sctbench.Bench.name ^ "/" ^ tech in
      check (n "IPB") (p.Sctbench.Bench.p_ipb_bound <> None) (f Techniques.IPB);
      check (n "IDB") (p.Sctbench.Bench.p_idb_bound <> None) (f Techniques.IDB);
      check (n "DFS") p.Sctbench.Bench.p_dfs_found (f Techniques.DFS);
      check (n "Rand") p.Sctbench.Bench.p_rand_found (f Techniques.Rand);
      check (n "Maple") p.Sctbench.Bench.p_maple_found (f Techniques.Maple)
      end)
    rows;
  pr "@.Paper-vs-measured bug-finding agreement: %d/%d cells@." !agree !total;
  List.iter (fun d -> pr "  deviation: %s@." d) (List.rev !deviations)
