(** Table 1: overview of the benchmark suites — types, counts used, counts
    skipped (the skips are carried as registry metadata, since they describe
    the paper's collection process, not runnable code). *)

val print : ?out:Format.formatter -> Sctbench.Bench.t list -> unit
