open Sct_explore

let header =
  "id,name,threads,max_enabled,max_points,racy_locations,"
  ^ "ipb_bound,ipb_first,ipb_total,ipb_new,ipb_buggy,"
  ^ "idb_bound,idb_first,idb_total,idb_new,idb_buggy,"
  ^ "dfs_first,dfs_total,dfs_buggy,rand_first,rand_buggy,rand_distinct,"
  ^ "maple_found,maple_total"

let opt = function None -> "" | Some i -> string_of_int i

let table3 ?(out = Format.std_formatter) ~limit rows =
  ignore limit;
  Format.fprintf out "%s@." header;
  List.iter
    (fun (row : Run_data.row) ->
      let b = row.Run_data.bench in
      let get t = Run_data.stats_of row t in
      let thr, en, pts =
        match get Techniques.IDB with
        | Some s -> (s.Stats.n_threads, s.Stats.max_enabled, s.Stats.max_sched_points)
        | None -> (0, 0, 0)
      in
      let bounded t =
        match get t with
        | None -> ",,,,"
        | Some s ->
            Printf.sprintf "%s,%s,%d,%d,%d" (opt s.Stats.bound)
              (opt s.Stats.to_first_bug) s.Stats.total s.Stats.new_at_bound
              s.Stats.buggy
      in
      let dfs =
        match get Techniques.DFS with
        | None -> ",,"
        | Some s ->
            Printf.sprintf "%s,%d,%d" (opt s.Stats.to_first_bug) s.Stats.total
              s.Stats.buggy
      in
      let rand =
        match get Techniques.Rand with
        | None -> ",,"
        | Some s ->
            Printf.sprintf "%s,%d,%s" (opt s.Stats.to_first_bug) s.Stats.buggy
              (opt (Stats.distinct s))
      in
      let maple =
        match get Techniques.Maple with
        | None -> ","
        | Some s ->
            Printf.sprintf "%b,%d" (Stats.found s) s.Stats.total
      in
      Format.fprintf out "%d,%s,%d,%d,%d,%d,%s,%s,%s,%s,%s@."
        b.Sctbench.Bench.id b.Sctbench.Bench.name thr en pts
        row.Run_data.racy_locations (bounded Techniques.IPB)
        (bounded Techniques.IDB) dfs rand maple)
    rows
