open Sct_explore

type three = {
  only_a : int;
  only_b : int;
  only_c : int;
  ab : int;
  ac : int;
  bc : int;
  abc : int;
  none : int;
}

let compute rows a b c =
  let z = { only_a = 0; only_b = 0; only_c = 0; ab = 0; ac = 0; bc = 0; abc = 0; none = 0 } in
  List.fold_left
    (fun acc row ->
      let fa = Run_data.found_by row a
      and fb = Run_data.found_by row b
      and fc = Run_data.found_by row c in
      match (fa, fb, fc) with
      | true, false, false -> { acc with only_a = acc.only_a + 1 }
      | false, true, false -> { acc with only_b = acc.only_b + 1 }
      | false, false, true -> { acc with only_c = acc.only_c + 1 }
      | true, true, false -> { acc with ab = acc.ab + 1 }
      | true, false, true -> { acc with ac = acc.ac + 1 }
      | false, true, true -> { acc with bc = acc.bc + 1 }
      | true, true, true -> { acc with abc = acc.abc + 1 }
      | false, false, false -> { acc with none = acc.none + 1 })
    z rows

let print_one out title (na, nb, nc) v =
  Format.fprintf out "%s@." title;
  Format.fprintf out "  only %-8s: %d@." na v.only_a;
  Format.fprintf out "  only %-8s: %d@." nb v.only_b;
  Format.fprintf out "  only %-8s: %d@." nc v.only_c;
  Format.fprintf out "  %s+%s (not %s): %d@." na nb nc v.ab;
  Format.fprintf out "  %s+%s (not %s): %d@." na nc nb v.ac;
  Format.fprintf out "  %s+%s (not %s): %d@." nb nc na v.bc;
  Format.fprintf out "  all three     : %d@." v.abc;
  Format.fprintf out "  none          : %d@." v.none

let print_figure2 ?(out = Format.std_formatter) rows =
  let a = compute rows Techniques.IPB Techniques.IDB Techniques.DFS in
  print_one out "Figure 2a: systematic techniques (IPB / IDB / DFS)"
    ("IPB", "IDB", "DFS") a;
  let b = compute rows Techniques.IDB Techniques.Rand Techniques.Maple in
  print_one out "Figure 2b: IDB vs. others (IDB / Rand / MapleAlg)"
    ("IDB", "Rand", "MapleAlg") b
