(** Table 2: benchmarks where bug-finding is arguably trivial (paper §6),
    derived from the Table 3 run. *)

type t = {
  db0 : int;  (** bug found with a delay bound of 0 *)
  small_space : int;  (** total terminal schedules below the limit (DFS) *)
  rand_over_half : int;  (** more than 50% of random schedules buggy *)
  rand_all : int;  (** every random schedule buggy *)
}

val compute : limit:int -> Run_data.row list -> t
val print : ?out:Format.formatter -> limit:int -> Run_data.row list -> unit

val trivial : limit:int -> Run_data.row -> bool
(** A benchmark is "arguably trivial" if it hits any Table 2 property. *)
