type row = {
  bench : Sctbench.Bench.t;
  racy_locations : int;
  results : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list;
}

let stats_of row t = List.assoc_opt t row.results

let found_by row t =
  match stats_of row t with
  | Some s -> Sct_explore.Stats.found s
  | None -> false

(* The (technique, journal key) pairs of one benchmark's cells. *)
let keyed_cells o (bench : Sctbench.Bench.t) techniques =
  List.map
    (fun t ->
      ( t,
        Sct_store.Db.fingerprint ~bench:bench.Sctbench.Bench.name
          ~technique:(Sct_explore.Techniques.name t) o ))
    techniques

let cached_racy db = function
  | (_, key) :: _ -> (
      match Sct_store.Db.find db key with
      | Some e -> Some e.Sct_store.Db.e_racy
      | None -> None)
  | [] -> None

let run_benchmark ?store ?(techniques = Sct_explore.Techniques.all_paper) o
    (bench : Sctbench.Bench.t) =
  match store with
  | None ->
      let detection, results =
        Sct_explore.Techniques.run_all ~techniques o
          bench.Sctbench.Bench.program
      in
      {
        bench;
        racy_locations = List.length detection.Sct_race.Promotion.racy;
        results;
      }
  | Some db ->
      let keyed = keyed_cells o bench techniques in
      let missing =
        List.exists (fun (_, key) -> not (Sct_store.Db.mem db key)) keyed
      in
      if not missing then
        (* every cell journalled: rebuild the row without touching the
           program (the detection phase ran when the cells were written,
           and its racy count rode along in each record) *)
        {
          bench;
          racy_locations = Option.value ~default:0 (cached_racy db keyed);
          results =
            List.map
              (fun (t, key) ->
                (t, (Option.get (Sct_store.Db.find db key)).Sct_store.Db.e_stats))
              keyed;
        }
      else begin
        let detection =
          Sct_explore.Techniques.detect_races o bench.Sctbench.Bench.program
        in
        let promote = Sct_race.Promotion.promote detection in
        let racy = List.length detection.Sct_race.Promotion.racy in
        let results =
          List.map
            (fun (t, key) ->
              match Sct_store.Db.find db key with
              | Some e -> (t, e.Sct_store.Db.e_stats)
              | None ->
                  let s =
                    Sct_explore.Techniques.run ~promote o t
                      bench.Sctbench.Bench.program
                  in
                  Sct_store.Db.record db ~key ~bench:bench.Sctbench.Bench.name
                    ~technique:(Sct_explore.Techniques.name t) ~racy
                    ~options:o s;
                  (t, s))
            keyed
        in
        { bench; racy_locations = racy; results }
      end

let run_all ?store ?techniques ?(progress = fun _ -> ()) o benches =
  List.map
    (fun b ->
      progress b;
      run_benchmark ?store ?techniques o b)
    benches
