type row = {
  bench : Sctbench.Bench.t;
  racy_locations : int;
  results : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list;
}

let stats_of row t = List.assoc_opt t row.results

let found_by row t =
  match stats_of row t with
  | Some s -> Sct_explore.Stats.found s
  | None -> false

let run_benchmark ?techniques o (bench : Sctbench.Bench.t) =
  let detection, results =
    Sct_explore.Techniques.run_all ?techniques o bench.Sctbench.Bench.program
  in
  {
    bench;
    racy_locations = List.length detection.Sct_race.Promotion.racy;
    results;
  }

let run_all ?techniques ?(progress = fun _ -> ()) o benches =
  List.map
    (fun b ->
      progress b;
      run_benchmark ?techniques o b)
    benches
