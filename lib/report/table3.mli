(** Regenerates the paper's Table 3: per-benchmark results for IPB, IDB,
    DFS, Rand and MapleAlg, in the paper's column layout, plus a
    paper-vs-measured agreement summary. *)

val print : ?out:Format.formatter -> limit:int -> Run_data.row list -> unit
(** When any row carries stats for the {!Sct_explore.Axes} bounding
    techniques (Fair, Length, IVB, ITB), one [b/first/tot/cut/bug] column
    per present technique is appended after the paper's five — the paper's
    layout (and committed goldens) is byte-identical whenever they were
    not requested. *)

val print_agreement : ?out:Format.formatter -> Run_data.row list -> unit
(** For each benchmark and technique, compare "bug found?" (and the bound,
    for IPB/IDB) against the paper's row; print per-benchmark deviations
    and the aggregate agreement count. Yield-suite rows are excluded —
    the yield-loop family is a study extension with no paper row. *)
