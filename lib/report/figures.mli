(** Figures 3 and 4: per-benchmark IPB-vs-IDB scatter series, printed as CSV
    so they can be plotted directly.

    Figure 3 plots, per benchmark where at least one technique found the
    bug, the number of schedules to the first bug (cross) and the total
    number of schedules explored up to the bound that found the bug
    (square); a not-found entry sits at the schedule limit. Figure 4 plots
    the worst case instead: the number of *non-buggy* schedules within the
    bound (total - buggy), meaningful where the bound level was fully
    explored. *)

val print_figure3 :
  ?out:Format.formatter -> limit:int -> Run_data.row list -> unit

val print_figure4 :
  ?out:Format.formatter -> limit:int -> Run_data.row list -> unit

val print_scatter :
  ?out:Format.formatter ->
  limit:int ->
  title:string ->
  (int * int) list ->
  unit
(** Log-log ASCII scatter plot (x = IDB, y = IPB), with the diagonal drawn;
    points above the diagonal mean IPB needed more schedules than IDB —
    visually, the paper's Figure 3/4 claim. *)

val figure3_points : limit:int -> Run_data.row list -> (int * int) list
(** The (idb, ipb) schedules-to-first-bug pairs of Figure 3 (not-found is
    plotted at the limit, as the paper does). *)
