open Sct_explore

type t = {
  db0 : int;
  small_space : int;
  rand_over_half : int;
  rand_all : int;
}

let db0_found row =
  match Run_data.stats_of row Techniques.IDB with
  | Some s -> Stats.found s && s.Stats.bound = Some 0
  | None -> false

let small_space ~limit row =
  match Run_data.stats_of row Techniques.DFS with
  | Some s -> s.Stats.complete && s.Stats.total < limit
  | None -> false

let rand_fraction row =
  match Run_data.stats_of row Techniques.Rand with
  | Some s when s.Stats.total > 0 ->
      float_of_int s.Stats.buggy /. float_of_int s.Stats.total
  | _ -> 0.

let compute ~limit rows =
  let count p = List.length (List.filter p rows) in
  {
    db0 = count db0_found;
    small_space = count (small_space ~limit);
    rand_over_half = count (fun r -> rand_fraction r > 0.5);
    rand_all = count (fun r -> rand_fraction r >= 1.);
  }

let trivial ~limit row =
  db0_found row || small_space ~limit row || rand_fraction row > 0.5

let print ?(out = Format.std_formatter) ~limit rows =
  let t = compute ~limit rows in
  Format.fprintf out "Table 2: benchmarks where bug-finding is arguably trivial@.";
  Format.fprintf out "  %-52s %d@." "Bug found with DB = 0" t.db0;
  Format.fprintf out "  %-52s %d@."
    (Printf.sprintf "Total terminal schedules < %d" limit)
    t.small_space;
  Format.fprintf out "  %-52s %d@." "> 50% of random schedules were buggy"
    t.rand_over_half;
  Format.fprintf out "  %-52s %d@." "Every random schedule was buggy" t.rand_all
