(** Figure 2: Venn diagrams of the per-technique bug-finding sets. *)

type three = {
  only_a : int;
  only_b : int;
  only_c : int;
  ab : int;  (** in a and b, not c *)
  ac : int;
  bc : int;
  abc : int;
  none : int;  (** found by none of the three *)
}

val compute :
  Run_data.row list ->
  Sct_explore.Techniques.t ->
  Sct_explore.Techniques.t ->
  Sct_explore.Techniques.t ->
  three

val print_figure2 : ?out:Format.formatter -> Run_data.row list -> unit
(** Prints both Venn diagrams of Figure 2: (a) IPB/IDB/DFS and
    (b) IDB/Rand/MapleAlg, as region counts. *)
