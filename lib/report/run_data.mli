(** The result of running the full study pipeline on one benchmark: the
    inputs to every table and figure.

    With a [store], runs become incremental and crash-safe: cells
    (benchmark×technique pairs) already journalled are reused without
    re-execution, and every freshly computed cell is persisted the moment
    it finishes — so a killed campaign relaunched on the same store
    re-executes only the incomplete cells and produces rows identical to
    an uninterrupted run. *)

type row = {
  bench : Sctbench.Bench.t;
  racy_locations : int;  (** from the data-race detection phase *)
  results : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list;
}

val stats_of : row -> Sct_explore.Techniques.t -> Sct_explore.Stats.t option
val found_by : row -> Sct_explore.Techniques.t -> bool

val run_benchmark :
  ?store:Sct_store.Db.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t ->
  row
(** Run (or, with [store], complete) one benchmark's cells. When every cell
    is already journalled the program is not executed at all — not even the
    race-detection phase. *)

val run_all :
  ?store:Sct_store.Db.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  ?progress:(Sctbench.Bench.t -> unit) ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t list ->
  row list
