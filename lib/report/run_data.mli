(** The result of running the full study pipeline on one benchmark: the
    inputs to every table and figure. *)

type row = {
  bench : Sctbench.Bench.t;
  racy_locations : int;  (** from the data-race detection phase *)
  results : (Sct_explore.Techniques.t * Sct_explore.Stats.t) list;
}

val stats_of : row -> Sct_explore.Techniques.t -> Sct_explore.Stats.t option
val found_by : row -> Sct_explore.Techniques.t -> bool

val run_benchmark :
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t ->
  row

val run_all :
  ?techniques:Sct_explore.Techniques.t list ->
  ?progress:(Sctbench.Bench.t -> unit) ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t list ->
  row list
