(** Machine-readable exports of the study's results, for plotting the
    figures with external tools. *)

val table3 : ?out:Format.formatter -> limit:int -> Run_data.row list -> unit
(** One CSV row per benchmark with every Table 3 column. *)

val header : string
(** The column header line of {!table3}. *)
