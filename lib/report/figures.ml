open Sct_explore

let series ~out ~limit ~value ~header rows =
  Format.fprintf out "%s@." header;
  Format.fprintf out "id,name,idb_x,ipb_y,idb_total,ipb_total@.";
  List.iter
    (fun (row : Run_data.row) ->
      let ipb = Run_data.stats_of row Techniques.IPB in
      let idb = Run_data.stats_of row Techniques.IDB in
      match (ipb, idb) with
      | Some ipb, Some idb when Stats.found ipb || Stats.found idb ->
          let v s = if Stats.found s then value s else limit in
          Format.fprintf out "%d,%s,%d,%d,%d,%d@." row.Run_data.bench.Sctbench.Bench.id
            row.Run_data.bench.Sctbench.Bench.name (v idb) (v ipb)
            (min limit idb.Stats.total)
            (min limit ipb.Stats.total)
      | _ -> ())
    rows

let figure3_points ~limit rows =
  List.filter_map
    (fun (row : Run_data.row) ->
      let ipb = Run_data.stats_of row Techniques.IPB in
      let idb = Run_data.stats_of row Techniques.IDB in
      match (ipb, idb) with
      | Some ipb, Some idb when Stats.found ipb || Stats.found idb ->
          let v (s : Stats.t) =
            match s.Stats.to_first_bug with Some i -> i | None -> limit
          in
          Some (v idb, v ipb)
      | _ -> None)
    rows

let print_scatter ?(out = Format.std_formatter) ~limit ~title points =
  let width = 56 and height = 24 in
  let lmax = log10 (float_of_int (max 10 limit)) in
  let scale extent v =
    let f = log10 (float_of_int (max 1 v)) /. lmax in
    min (extent - 1) (int_of_float (f *. float_of_int (extent - 1)))
  in
  let grid = Array.make_matrix height width ' ' in
  (* the diagonal x = y *)
  for gx = 0 to width - 1 do
    let gy = gx * (height - 1) / (width - 1) in
    grid.(gy).(gx) <- '.'
  done;
  List.iter
    (fun (x, y) ->
      let gx = scale width x and gy = scale height y in
      grid.(gy).(gx) <- (if grid.(gy).(gx) = '*' then '#' else '*'))
    points;
  Format.fprintf out "%s@." title;
  Format.fprintf out
    "  y = IPB schedules-to-first-bug (log), x = IDB (log); points above \
     the diagonal: IDB faster@.";
  for gy = height - 1 downto 0 do
    let label =
      if gy = height - 1 then Printf.sprintf "%6d |" limit
      else if gy = 0 then "     1 |"
      else "       |"
    in
    Format.fprintf out "%s%s@." label (String.init width (fun gx -> grid.(gy).(gx)))
  done;
  Format.fprintf out "        %s@." (String.make width '-');
  Format.fprintf out "        1%s%d@."
    (String.make (width - 1 - String.length (string_of_int limit)) ' ')
    limit

let print_figure3 ?(out = Format.std_formatter) ~limit rows =
  series ~out ~limit
    ~value:(fun s ->
      match s.Stats.to_first_bug with Some i -> i | None -> limit)
    ~header:
      "Figure 3: # schedules to first bug (x=IDB, y=IPB); totals within the \
       discovering bound"
    rows;
  print_scatter ~out ~limit
    ~title:"Figure 3 (scatter): schedules to first bug"
    (figure3_points ~limit rows)

let print_figure4 ?(out = Format.std_formatter) ~limit rows =
  series ~out ~limit
    ~value:(fun s -> max 0 (s.Stats.total - s.Stats.buggy))
    ~header:
      "Figure 4: worst case — total non-buggy schedules within the \
       discovering bound (x=IDB, y=IPB)"
    rows
