open Sctbench

let print ?(out = Format.std_formatter) benches =
  Format.fprintf out "Table 1: overview of the benchmark suites@.";
  Format.fprintf out "%-10s %-62s %6s %s@." "Set" "Benchmark types" "# used"
    "# skipped (reason)";
  List.iter
    (fun (skip : Bench.skip) ->
      let suite = skip.Bench.s_suite in
      let used =
        List.length (List.filter (fun (b : Bench.t) -> b.Bench.suite = suite) benches)
      in
      Format.fprintf out "%-10s %-62s %6d %d %s@." (Bench.suite_name suite)
        (Bench.table1_types suite) used skip.Bench.s_count
        (if skip.Bench.s_reason = "" then "" else "(" ^ skip.Bench.s_reason ^ ")"))
    Bench.table1_skips;
  Format.fprintf out "Total used: %d@." (List.length benches)
