open Sct_core

(* Per-object access sequences plus per-thread step counts. Objects are
   identified by footprint ids; operations whose effect is global (spawn,
   join) are folded into a pseudo-object so reorderings around them are
   never conflated. *)
type t = {
  per_object : (int * (Tid.t * string) list) list;  (** sorted by object *)
  per_thread : (Tid.t * int) list;  (** sorted by thread *)
}

let equal a b = a = b
let hash = Hashtbl.hash
let global_object = -1

let op_tag (op : Op.t) =
  (* constructor-level tag: enough to distinguish conflicting effects *)
  Op.to_string op

let of_decisions decisions =
  let objects : (int, (Tid.t * string) list) Hashtbl.t = Hashtbl.create 32 in
  let threads : (Tid.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Runtime.decision) ->
      let t = d.Runtime.d_chosen in
      Hashtbl.replace threads t
        (1 + Option.value ~default:0 (Hashtbl.find_opt threads t));
      let touch x =
        let prev = Option.value ~default:[] (Hashtbl.find_opt objects x) in
        Hashtbl.replace objects x ((t, op_tag d.Runtime.d_op) :: prev)
      in
      if Op_depend.global d.Runtime.d_op then touch global_object
      else
        List.iter (fun (x, _) -> touch x) (Op_depend.footprint d.Runtime.d_op))
    decisions;
  {
    per_object =
      Hashtbl.fold (fun x seq acc -> (x, List.rev seq) :: acc) objects []
      |> List.sort compare;
    per_thread =
      Hashtbl.fold (fun t n acc -> (t, n) :: acc) threads []
      |> List.sort compare;
  }

(* Canonical text form: both field lists are sorted by construction, so
   equal signatures render to equal strings — stable across processes and
   OCaml versions, unlike the polymorphic hash. *)
let to_string (s : t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (x, seq) ->
      Buffer.add_string buf
        (if x = global_object then "o:global" else Printf.sprintf "o:%d" x);
      List.iter
        (fun (t, tag) ->
          Buffer.add_string buf (Printf.sprintf " %s:%s" (Tid.to_string t) tag))
        seq;
      Buffer.add_char buf '\n')
    s.per_object;
  List.iter
    (fun (t, n) ->
      Buffer.add_string buf (Printf.sprintf "t:%s=%d\n" (Tid.to_string t) n))
    s.per_thread;
  Buffer.contents buf

let distinct_under_dfs ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ~limit program =
  let seen : (t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let r =
    Dfs.explore ~promote ~max_steps ~record_decisions:true
      ~on_schedule:(fun res ->
        Hashtbl.replace seen (of_decisions res.Runtime.r_decisions) ())
      ~bound:Dfs.Unbounded ~limit program
  in
  (r.Dfs.counted, Hashtbl.length seen)
