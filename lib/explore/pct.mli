(** The PCT randomised priority scheduler (Burckhardt et al., ASPLOS 2010;
    paper §7 related work).

    Each thread receives a distinct random priority above [change_points];
    the scheduler always runs the highest-priority enabled thread. At
    [change_points] randomly chosen step depths, the priority of the thread
    about to be scheduled is lowered to a unique value below all initial
    priorities, forcing an interleaving change. With bug depth [d], PCT
    detects the bug with probability at least [1/(n·k^(d-1))].

    Not part of the paper's Table 3 — implemented as the study extension the
    paper's related-work section points at, and benchmarked in the ablation
    benches. *)

val strategy :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?change_points:int ->
  ?k:int ->
  ?lo:int ->
  seed:int ->
  (unit -> unit) ->
  unit ->
  Strategy.t
(** The PCT strategy starting at absolute run index [lo]. Without [k], the
    campaign's length estimate is fixed by one uncounted {!probe} run on
    setup. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?change_points:int ->
  ?deadline:float ->
  seed:int ->
  runs:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed ~runs program] performs [runs] PCT executions
    ([change_points] defaults to 2). The execution-length estimate [k] is
    fixed for the whole campaign by {!probe} — PCT's a-priori [k] — which
    makes each run a pure function of [(seed, i, k)] and the campaign
    shardable. *)

val probe : ?promote:(string -> bool) -> ?max_steps:int -> (unit -> unit) -> int
(** One uncounted deterministic round-robin execution; returns the step
    count (at least 1) used as the campaign's depth-sampling range [k]. *)

val explore_shard :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?change_points:int ->
  ?deadline:float ->
  seed:int ->
  k:int ->
  lo:int ->
  hi:int ->
  (unit -> unit) ->
  Stats.t
(** [explore_shard ~seed ~k ~lo ~hi program] performs runs [lo, hi) of the
    campaign with the fixed length estimate [k]. [to_first_bug] is an
    absolute 1-based run index; folding {!Stats.merge} over a partition of
    [0, runs) equals the sequential {!explore} result. *)

val sharding :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?change_points:int ->
  ?deadline:float ->
  seed:int ->
  (unit -> unit) ->
  Strategy.sharding
(** The declared parallel plan: one probe on the collector fixes [k], then
    {!Strategy.Shard_seed} over {!explore_shard}. *)
