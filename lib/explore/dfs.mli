(** Stateless depth-first exploration of the schedule space, with optional
    schedule bounding (paper §3, "Maple's systematic mode").

    The explorer maintains an explicit stack of scheduling decisions; every
    terminal schedule costs one full re-execution of the program from its
    initial state (stateless model checking). Children at a scheduling point
    are ordered by round-robin distance from the previously scheduled thread,
    so the first terminal schedule explored is the non-preemptive round-robin
    schedule — identical for IPB, IDB and DFS, as in the paper. *)

type bound =
  | Unbounded
  | Preemption of int  (** prune schedules with [PC > c] *)
  | Delay of int  (** prune schedules with [DC > c] *)

type level_result = {
  counted : int;  (** terminal schedules counted by this call *)
  buggy : int;
  to_first_bug : int option;  (** 1-based index among counted schedules *)
  first_bug : Stats.bug_witness option;
  pruned : bool;  (** at least one child was cut off by the bound *)
  hit_limit : bool;  (** stopped because [limit] schedules were counted *)
  complete : bool;  (** the (bounded) tree was exhausted *)
  executions : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type frontier_info = {
  fi_prefix : (Sct_core.Tid.t * Sct_core.Tid.t list) array;
      (** the (chosen, enabled) decisions of this execution above
          [max_branch_depth] — a replayable subtree prefix *)
  fi_branched_below : bool;
      (** some decision at depth ≥ [max_branch_depth] had more than one
          in-bound child, i.e. the prefix denotes a subtree with more than
          one terminal schedule *)
}
(** Per-execution frontier information reported to [on_exec]; used by the
    parallel engine (lib/parallel) to partition the schedule tree. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?on_schedule:(Sct_core.Runtime.result -> unit) ->
  ?record_decisions:bool ->
  ?prefix:(Sct_core.Tid.t * Sct_core.Tid.t list) array ->
  ?max_branch_depth:int ->
  ?on_exec:(Sct_core.Runtime.result -> frontier_info -> unit) ->
  bound:bound ->
  limit:int ->
  (unit -> unit) ->
  level_result
(** [explore ~bound ~limit program] walks the schedule tree within [bound].
    With [count_exact = Some c], only terminal schedules whose exact
    preemption (resp. delay) count equals [c] are counted — this is how
    iterative bounding counts each distinct schedule exactly once across
    levels (see DESIGN.md). Exploration never stops early on a bug: the
    paper completes the current bound level to enable worst-case analysis.

    [on_schedule] is called on every counted terminal schedule's execution
    result; pass [record_decisions:true] if the callback needs the decision
    trace (off by default for speed).

    [prefix] pins the first decisions: they are replayed (with the
    determinism check and bound accounting) on every execution and never
    backtracked, so the walk explores exactly the subtree below the prefix
    in standard DFS order. [max_branch_depth = d] restricts backtracking to
    decisions at depth < [d]; deeper decisions deterministically follow the
    first in-bound child, so each execution reaches the first terminal
    schedule of its depth-[d] subtree — the frontier-enumeration mode of the
    parallel engine. [on_exec] is called on {e every} execution (counted or
    not) with its frontier information.

    @raise Failure if the program is nondeterministic (the enabled set at a
    replayed decision differs from the recorded one). *)
