(** Stateless depth-first exploration of the schedule space, with optional
    schedule bounding (paper §3, "Maple's systematic mode").

    The walk maintains an explicit stack of scheduling decisions; every
    terminal schedule costs one full re-execution of the program from its
    initial state (stateless model checking). Children at a scheduling point
    are ordered by round-robin distance from the previously scheduled thread,
    so the first terminal schedule explored is the non-preemptive round-robin
    schedule — identical for IPB, IDB and DFS, as in the paper.

    The campaign loop lives in {!Driver}; this module provides the walk as
    a {!Strategy.STRATEGY} instance plus the {!Strategy.tree_walk} sharding
    capability the parallel engine partitions. *)

type bound =
  | Unbounded
  | Preemption of int  (** prune schedules with [PC > c] *)
  | Delay of int  (** prune schedules with [DC > c] *)
  | Variable of int
      (** variable bounding: prune schedules that preempt around more than
          [c] distinct shared objects — the cost of a preemption is 1 only
          the first time the preempted thread's pending shared object (id
          [-1] for objectless operations) enters the run's footprint *)
  | Threads of int
      (** thread bounding: prune schedules that preempt more than [c]
          distinct threads — the cost of a preemption is 1 only the first
          time the preempted thread enters the run's footprint *)

type level_result = Strategy.walk_result = {
  counted : int;  (** terminal schedules counted by this call *)
  buggy : int;
  to_first_bug : int option;  (** 1-based index among counted schedules *)
  first_bug : Stats.bug_witness option;
  pruned : bool;  (** at least one child was cut off by the bound *)
  hit_limit : bool;  (** stopped because [limit] schedules were counted *)
  hit_deadline : bool;  (** stopped because the wall-clock deadline passed *)
  complete : bool;  (** the (bounded) tree was exhausted *)
  executions : int;
  steps_executed : int;  (** analytic step cost (see {!Stats.t}) *)
  steps_saved : int;  (** steps avoided by prefix batching *)
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type frontier_info = Strategy.frontier_info = {
  fi_prefix : (Sct_core.Tid.t * Sct_core.Tid.t list) array;
      (** the (chosen, enabled) decisions of this execution above
          [max_branch_depth] — a replayable subtree prefix *)
  fi_branched_below : bool;
      (** some decision at depth ≥ [max_branch_depth] had more than one
          in-bound child, i.e. the prefix denotes a subtree with more than
          one terminal schedule *)
}
(** Per-execution frontier information reported to [on_exec]; used by the
    parallel engine (lib/parallel) to partition the schedule tree. *)

(** The reusable walk machinery: decision stack, prefix replay, bound
    accounting and backtracking for one (bounded) level of the schedule
    tree. {!Bounded} drives one walk per bound level through its own
    strategy. *)
module Walk : sig
  type t

  val make :
    ?prefix:(Sct_core.Tid.t * Sct_core.Tid.t list) array ->
    ?max_branch_depth:int ->
    ?count_exact:int ->
    ?fair:int ->
    ?length:int ->
    ?on_exec:(Sct_core.Runtime.result -> frontier_info -> unit) ->
    bound:bound ->
    unit ->
    t
  (** [fair] composes fair bounding with the structural bound: a thread may
      yield only while its per-run yield count stays within [fair] of the
      least-yielding live thread; when every enabled candidate is an
      over-bound yield the execution is abandoned ({!Sct_core.Runtime.Cut},
      a [v_cut] verdict). [length] cuts executions asking for more than
      [length] decisions (schedules of exactly [length] still count). Both
      filters only remove whole runs, never restructure the tree, so the
      walk order of surviving schedules is unchanged. *)

  val begin_run : t -> unit
  val choose : t -> Sct_core.Runtime.ctx -> Sct_core.Tid.t

  val on_terminal : t -> Sct_core.Runtime.result -> Strategy.verdict
  (** Report frontier info, decide whether the schedule counts
      ([count_exact]), and backtrack; the phase is over when the tree is
      exhausted. *)

  val counts : t -> Sct_core.Runtime.result -> bool
  val pruned : t -> bool

  val aux_pruned : t -> bool
  (** Some execution was cut (or some candidate filtered) by the fair or
      length filter: the walk is no longer complete for the underlying
      structural bound, and no larger structural bound restores the cut
      children (iterative bounding must not climb levels over it). *)

  val exhausted : t -> bool

  val restricted : t -> bool
  (** The walk carries a fair or length filter. Restricted walks declare
      [supports_prefix_batch = false] and [supports_por = false]: both
      machineries restructure the schedule tree, which is only sound for
      unrestricted walks. *)
end

val strategy_of_walk : ?technique:string -> Walk.t -> Strategy.t
(** The single-phase strategy driving the given walk; the caller keeps the
    walk to read {!Walk.pruned} after the campaign. *)

val strategy :
  ?count_exact:int -> ?fair:int -> ?length:int -> bound:bound -> unit ->
  Strategy.t
(** A fresh single-level DFS strategy (the [--technique dfs] registration;
    with [fair]/[length], the execution-level bounding axes of
    {!Axes}). *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?fair:int ->
  ?length:int ->
  ?on_schedule:(Sct_core.Runtime.result -> unit) ->
  ?record_decisions:bool ->
  ?prefix:(Sct_core.Tid.t * Sct_core.Tid.t list) array ->
  ?max_branch_depth:int ->
  ?on_exec:(Sct_core.Runtime.result -> frontier_info -> unit) ->
  ?deadline:float ->
  bound:bound ->
  limit:int ->
  (unit -> unit) ->
  level_result
(** [explore ~bound ~limit program] walks the schedule tree within [bound]
    — {!Driver.explore} over {!strategy_of_walk}, lifted back to a
    {!level_result}. With [count_exact = Some c], only terminal schedules
    whose exact preemption (resp. delay) count equals [c] are counted —
    this is how iterative bounding counts each distinct schedule exactly
    once across levels (see DESIGN.md). Exploration never stops early on a
    bug: the paper completes the current bound level to enable worst-case
    analysis.

    [on_schedule] is called on every counted terminal schedule's execution
    result; pass [record_decisions:true] if the callback needs the decision
    trace (off by default for speed).

    [prefix] pins the first decisions: they are replayed (with the
    determinism check and bound accounting) on every execution and never
    backtracked, so the walk explores exactly the subtree below the prefix
    in standard DFS order. [max_branch_depth = d] restricts backtracking to
    decisions at depth < [d]; deeper decisions deterministically follow the
    first in-bound child, so each execution reaches the first terminal
    schedule of its depth-[d] subtree — the frontier-enumeration mode of the
    parallel engine. [on_exec] is called on {e every} execution (counted or
    not) with its frontier information.

    @raise Failure if the program is nondeterministic (the enabled set at a
    replayed decision differs from the recorded one). *)

val level_result_of_stats : pruned:bool -> Stats.t -> level_result

val stats_of : technique:string -> level_result -> Stats.t
(** Lift a walk result into the Table 3 statistics record. *)

val tree_walk :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?deadline:float ->
  bound:bound ->
  (unit -> unit) ->
  Strategy.tree_walk
(** The subtree-sharding capability of this walk: frontier enumeration,
    pinned-prefix sub-walks, and the exact-count filter. *)

val tree_campaign :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?deadline:float ->
  bound:bound ->
  limit:int ->
  (unit -> unit) ->
  (Strategy.tree_walk -> limit:int -> Strategy.walk_result) ->
  Stats.t
(** The whole DFS campaign as a function of a walk runner — instantiated
    sequentially or with [Sct_parallel.Frontier.run]. *)
