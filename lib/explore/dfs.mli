(** Stateless depth-first exploration of the schedule space, with optional
    schedule bounding (paper §3, "Maple's systematic mode").

    The explorer maintains an explicit stack of scheduling decisions; every
    terminal schedule costs one full re-execution of the program from its
    initial state (stateless model checking). Children at a scheduling point
    are ordered by round-robin distance from the previously scheduled thread,
    so the first terminal schedule explored is the non-preemptive round-robin
    schedule — identical for IPB, IDB and DFS, as in the paper. *)

type bound =
  | Unbounded
  | Preemption of int  (** prune schedules with [PC > c] *)
  | Delay of int  (** prune schedules with [DC > c] *)

type level_result = {
  counted : int;  (** terminal schedules counted by this call *)
  buggy : int;
  to_first_bug : int option;  (** 1-based index among counted schedules *)
  first_bug : Stats.bug_witness option;
  pruned : bool;  (** at least one child was cut off by the bound *)
  hit_limit : bool;  (** stopped because [limit] schedules were counted *)
  complete : bool;  (** the (bounded) tree was exhausted *)
  executions : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?on_schedule:(Sct_core.Runtime.result -> unit) ->
  ?record_decisions:bool ->
  bound:bound ->
  limit:int ->
  (unit -> unit) ->
  level_result
(** [explore ~bound ~limit program] walks the schedule tree within [bound].
    With [count_exact = Some c], only terminal schedules whose exact
    preemption (resp. delay) count equals [c] are counted — this is how
    iterative bounding counts each distinct schedule exactly once across
    levels (see DESIGN.md). Exploration never stops early on a bug: the
    paper completes the current bound level to enable worst-case analysis.

    [on_schedule] is called on every counted terminal schedule's execution
    result; pass [record_decisions:true] if the callback needs the decision
    trace (off by default for speed).

    @raise Failure if the program is nondeterministic (the enabled set at a
    replayed decision differs from the recorded one). *)
