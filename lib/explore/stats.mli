(** Per-technique exploration statistics: the columns of the paper's
    Table 3. *)

type bug_witness = {
  w_bug : Sct_core.Outcome.bug;
  w_by : Sct_core.Tid.t;
  w_schedule : Sct_core.Schedule.t;
  w_pc : int;  (** preemption count of the witness schedule *)
  w_dc : int;  (** delay count of the witness schedule *)
}

type t = {
  technique : string;
  bound : int option;
      (** bound at which the bug was found, or the bound reached when the
          schedule limit was hit; [None] for unbounded techniques *)
  bound_complete : bool;
      (** the final bound level was fully explored (Figures 3/4 worst-case
          analysis is valid only in this case) *)
  to_first_bug : int option;
      (** number of terminal schedules explored up to and including the
          first buggy one *)
  total : int;  (** total terminal schedules explored (counted once each) *)
  new_at_bound : int;
      (** schedules with exactly the final bound (the paper's
          "# new schedules") *)
  buggy : int;  (** buggy schedules among [total] *)
  complete : bool;  (** the entire schedule space was explored *)
  hit_limit : bool;
  first_bug : bug_witness option;
  n_threads : int;  (** max threads created over all runs *)
  max_enabled : int;  (** max simultaneously enabled threads over all runs *)
  max_sched_points : int;
      (** max number of decisions with >1 enabled thread in one run *)
  executions : int;
      (** real program executions, including bounded-level replays *)
  distinct : int option;
      (** distinct schedules among [total], when the technique tracks it
          (the random scheduler re-explores duplicates, paper §3) *)
}

val found : t -> bool
val base : technique:string -> t
(** All-zero statistics to be folded over. *)

val observe_run : t -> Sct_core.Runtime.result -> t
(** Fold a run's structural aggregates (threads / enabled / points). *)

val pp : Format.formatter -> t -> unit
