(** Per-technique exploration statistics: the columns of the paper's
    Table 3. *)

module Sched_set : Set.S with type elt = Sct_core.Tid.t list
(** Sets of terminal schedules, used to count distinct schedules exactly
    even when shards of a campaign are merged. *)

type bug_witness = {
  w_bug : Sct_core.Outcome.bug;
  w_by : Sct_core.Tid.t;
  w_schedule : Sct_core.Schedule.t;
  w_pc : int;  (** preemption count of the witness schedule *)
  w_dc : int;  (** delay count of the witness schedule *)
}

type t = {
  technique : string;
  bound : int option;
      (** bound at which the bug was found, or the bound reached when the
          schedule limit was hit; [None] for unbounded techniques *)
  bound_complete : bool;
      (** the final bound level was fully explored (Figures 3/4 worst-case
          analysis is valid only in this case) *)
  to_first_bug : int option;
      (** number of terminal schedules explored up to and including the
          first buggy one *)
  total : int;  (** total terminal schedules explored (counted once each) *)
  new_at_bound : int;
      (** schedules with exactly the final bound (the paper's
          "# new schedules") *)
  buggy : int;  (** buggy schedules among [total] *)
  complete : bool;  (** the entire schedule space was explored *)
  hit_limit : bool;  (** stopped because the schedule limit was reached *)
  hit_deadline : bool;
      (** stopped because the wall-clock [--time-limit] deadline passed;
          never set on deadline-free campaigns, whose statistics are
          byte-for-byte deterministic *)
  first_bug : bug_witness option;
  n_threads : int;  (** max threads created over all runs *)
  max_enabled : int;  (** max simultaneously enabled threads over all runs *)
  max_sched_points : int;
      (** max number of decisions with >1 enabled thread in one run *)
  executions : int;
      (** real program executions, including bounded-level replays *)
  steps_executed : int;
      (** scheduler decisions actually paid for. Counted analytically: an
          unbatched campaign pays every decision of every terminal
          schedule; a prefix-batched campaign pays each shared prefix once
          per batch, so [steps_executed] drops by exactly [steps_saved].
          Both execution back-ends (fork server and re-execution fallback)
          report the same analytic value, keeping statistics byte-identical
          across platforms and [--jobs] values. *)
  steps_saved : int;
      (** decisions that prefix batching avoided re-executing; [0] on
          unbatched campaigns. Invariant:
          [steps_executed + steps_saved] equals the sum of terminal
          schedule lengths, independent of execution mode. *)
  por_pruned : int;
      (** schedules pruned by partial-order reduction: executions cut
          because every in-bound enabled thread was asleep (the branch
          only held interleavings equivalent to already-explored ones).
          [0] on campaigns without [--por]; summed by {!merge}; emitted by
          the store codec only when nonzero, so pre-POR journals and
          fingerprints round-trip byte-identically. *)
  cut_runs : int;
      (** executions abandoned mid-run by an execution-level bound (fair or
          length bounding): truncated prefixes, not terminal schedules, but
          charged against the budget alongside [total]. [0] for every other
          technique; summed by {!merge}; emitted by the store codec only
          when nonzero, so pre-existing journals and fingerprints
          round-trip byte-identically. *)
  distinct_schedules : Sched_set.t option;
      (** the distinct schedules among [total], when the technique tracks
          them (the random scheduler re-explores duplicates, paper §3);
          kept as a set so shard merges union rather than double-count *)
}

val found : t -> bool

val distinct : t -> int option
(** Number of distinct schedules, when tracked. *)

val coverage : t -> int
(** Distinct schedules when tracked, the counted total otherwise
    (systematic techniques count every schedule once, so the total {e is}
    the distinct count). The campaign scheduler's per-cell coverage
    signal. *)

val base : technique:string -> t
(** All-zero statistics to be folded over. *)

val observe_run : t -> Sct_core.Runtime.result -> t
(** Fold a run's structural aggregates (threads / enabled / points). *)

val merge : t -> t -> t
(** Combine the statistics of two disjoint shards of one campaign (seed
    ranges of a random technique, partitions of a schedule space, repeated
    multi-seed campaigns). Counters are summed, structural maxima taken,
    distinct-schedule sets unioned, and the first bug is the one with the
    smaller [to_first_bug] — provided shards report [to_first_bug] in a
    common (absolute) index space. Equal indices are resolved by a stable
    total order on witnesses, making [merge] associative and commutative,
    with [base ~technique] as identity:
    {ul
    {- [merge a (merge b c) = merge (merge a b) c]}
    {- [merge a b = merge b a]}
    {- [merge (base ~technique:a.technique) a = a]}} *)

val compare_witness : bug_witness -> bug_witness -> int
(** The stable total order on witnesses used to break [merge] ties. *)

val equal_witness : bug_witness -> bug_witness -> bool

val equal : t -> t -> bool
(** Structural equality; distinct-schedule sets are compared as sets. *)

val pp : Format.formatter -> t -> unit
