(** The bounding axes beyond the paper's preemption/delay study, each a
    first-class {!Strategy.STRATEGY} run by the same generic
    {!Driver.explore} loop as every other technique.

    - {b Fair bounding} ({!fair}): iterative preemption bounding composed
      with a fairness filter — a thread may [yield] only while its per-run
      yield count stays within the bound of the least-yielding live thread.
      Plain (preemption-)bounded DFS diverges or exhausts its budget on
      spin/yield loops, whose schedule trees are astronomically wide in the
      yield dimension; the fair filter cuts exactly the unfair spins (a
      [v_cut] verdict charged against the budget as [Stats.cut_runs]), so
      yield-loop benchmarks terminate. This is dejafu's [sctFairBound]
      (default bound 5) composed with preemption bounding.
    - {b Length bounding} ({!length}): unbounded DFS over executions of at
      most [bound] scheduling decisions; longer executions are cut.
      dejafu's [sctLengthBound] (default 250).
    - {b Variable bounding} ({!variable}): iterative bounding on the number
      of {e distinct shared objects} preempted around — level [c] counts
      the schedules whose preemption footprint holds exactly [c] object
      ids (see {!Dfs.bound.Variable}).
    - {b Thread bounding} ({!threads}): iterative bounding on the number of
      {e distinct threads} preempted (see {!Dfs.bound.Threads}). Both
      footprint axes follow the local/variable/thread bounding proposals of
      arXiv:1207.2544.

    All four declare [supports_prefix_batch = false] and
    [supports_por = false] (their trees cannot be restructured), and
    [Techniques.sequential_only] keeps their cells on the sequential driver
    for every [--jobs] value, so campaign statistics stay byte-identical. *)

val default_fair_bound : int
(** [5], dejafu's default. *)

val default_length_bound : int
(** [250], dejafu's default. *)

val fair : ?max_levels:int -> ?bound:int -> unit -> Strategy.t
(** Technique ["Fair"]: iterative preemption bounding over executions
    fairly bounded by [bound] (default {!default_fair_bound}). *)

val length : ?bound:int -> unit -> Strategy.t
(** Technique ["Length"]: single-phase unbounded DFS over executions of at
    most [bound] (default {!default_length_bound}) decisions. *)

val variable : ?max_levels:int -> unit -> Strategy.t
(** Technique ["IVB"]: iterative variable bounding. *)

val threads : ?max_levels:int -> unit -> Strategy.t
(** Technique ["ITB"]: iterative thread bounding. *)
