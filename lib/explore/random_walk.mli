(** The naive random scheduler (paper §3, "Rand").

    At every scheduling point one enabled thread is chosen uniformly at
    random. No information is saved between executions, so the same schedule
    may be explored multiple times and the search never "completes" — as in
    Maple's random mode. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?stop_on_bug:bool ->
  seed:int ->
  runs:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed ~runs program] performs [runs] independent executions.
    With [stop_on_bug] (default [false], as in the paper) the walk stops at
    the first buggy schedule. *)
