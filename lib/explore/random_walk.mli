(** The naive random scheduler (paper §3, "Rand").

    At every scheduling point one enabled thread is chosen uniformly at
    random. No information is saved between executions, so the same schedule
    may be explored multiple times and the search never "completes" — as in
    Maple's random mode.

    Run [i] of a campaign is a pure function of [(seed, i)], so the run
    range can be partitioned into shards whose statistics merge (with
    {!Stats.merge}) into exactly the sequential campaign's statistics. *)

val strategy : ?seed:int -> ?lo:int -> unit -> Strategy.t
(** The random-walk strategy starting at absolute run index [lo]
    (default 0). *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?stop_on_bug:bool ->
  ?deadline:float ->
  seed:int ->
  runs:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed ~runs program] performs [runs] independent executions.
    With [stop_on_bug] (default [false], as in the paper) the walk stops at
    the first buggy schedule. *)

val explore_shard :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?stop_on_bug:bool ->
  ?deadline:float ->
  seed:int ->
  lo:int ->
  hi:int ->
  (unit -> unit) ->
  Stats.t
(** [explore_shard ~seed ~lo ~hi program] performs runs [lo, hi) of the
    campaign [explore ~seed ~runs]. [to_first_bug] is reported as a 1-based
    {e absolute} run index and distinct schedules are carried as a set, so
    folding {!Stats.merge} over any partition of [0, runs) into shards
    equals the sequential result ({!Stats.equal}). *)

val sharding :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?deadline:float ->
  seed:int ->
  (unit -> unit) ->
  Strategy.sharding
(** The declared parallel plan: {!Strategy.Shard_seed} over
    {!explore_shard}. *)
