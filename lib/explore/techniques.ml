type t =
  | IPB
  | IDB
  | DFS
  | Rand
  | PCT
  | Maple
  | SURW
  | Fair
  | Length
  | IVB
  | ITB

let all_paper = [ IPB; IDB; DFS; Rand; Maple ]
let all = [ IPB; IDB; DFS; Rand; PCT; Maple; SURW; Fair; Length; IVB; ITB ]

let name = function
  | IPB -> "IPB"
  | IDB -> "IDB"
  | DFS -> "DFS"
  | Rand -> "Rand"
  | PCT -> "PCT"
  | Maple -> "MapleAlg"
  | SURW -> "SURW"
  | Fair -> "Fair"
  | Length -> "Length"
  | IVB -> "IVB"
  | ITB -> "ITB"

let of_name s =
  match String.lowercase_ascii s with
  | "ipb" -> Some IPB
  | "idb" -> Some IDB
  | "dfs" -> Some DFS
  | "rand" | "random" -> Some Rand
  | "pct" -> Some PCT
  | "maple" | "maplealg" -> Some Maple
  | "surw" -> Some SURW
  | "fair" -> Some Fair
  | "length" -> Some Length
  | "ivb" -> Some IVB
  | "itb" -> Some ITB
  | _ -> None

let valid_names =
  [
    "ipb"; "idb"; "dfs"; "rand"; "pct"; "maple"; "surw"; "fair"; "length";
    "ivb"; "itb";
  ]

let parse_list ?(default = all_paper) specs =
  let names =
    List.concat_map
      (fun spec ->
        List.filter (fun s -> s <> "") (String.split_on_char ',' spec))
      specs
  in
  match (specs, names) with
  | [], _ -> Ok default
  | _, [] ->
      Error
        (Printf.sprintf "no technique names given (valid: %s)"
           (String.concat ", " valid_names))
  | _, names ->
      let rec go seen acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match of_name n with
            | None ->
                Error
                  (Printf.sprintf "unknown technique: %s (valid: %s)" n
                     (String.concat ", " valid_names))
            | Some t ->
                if List.mem t seen then go seen acc rest
                else go (t :: seen) (t :: acc) rest)
      in
      go [] [] names

type options = {
  limit : int;
  seed : int;
  max_steps : int;
  race_runs : int;
  pct_change_points : int;
  maple_profile_runs : int;
  jobs : int;
  split_depth : int;
  time_limit : float option;
  prefix_batch : bool;
  por : Por.mode option;
  fair_bound : int;
  length_bound : int;
}

let default_options =
  {
    limit = 10_000;
    seed = 0;
    max_steps = 100_000;
    race_runs = 10;
    pct_change_points = 2;
    maple_profile_runs = 10;
    jobs = 1;
    split_depth = 3;
    time_limit = None;
    prefix_batch = false;
    por = None;
    fair_bound = Axes.default_fair_bound;
    length_bound = Axes.default_length_bound;
  }

let deadline_of o = Driver.deadline_of_time_limit o.time_limit
let dfs_stats = Dfs.stats_of

(* Pure STRATEGY registration: which strategy value a technique name
   denotes, under the campaign options. All exploration control flow lives
   in Driver.explore. *)
let strategy ?(promote = fun _ -> false) o technique program =
  match technique with
  | IPB -> Bounded.strategy ~kind:Bounded.Preemption_bounding ()
  | IDB -> Bounded.strategy ~kind:Bounded.Delay_bounding ()
  | DFS -> Dfs.strategy ~bound:Dfs.Unbounded ()
  | Rand -> Random_walk.strategy ~seed:o.seed ()
  | PCT ->
      Pct.strategy ~promote ~max_steps:o.max_steps
        ~change_points:o.pct_change_points ~seed:o.seed program ()
  | Maple ->
      Maple_lite.strategy ~promote ~profile_runs:o.maple_profile_runs
        ~seed:o.seed ()
  | SURW ->
      Surw.strategy ~promote ~max_steps:o.max_steps ~seed:o.seed program ()
  | Fair -> Axes.fair ~bound:o.fair_bound ()
  | Length -> Axes.length ~bound:o.length_bound ()
  | IVB -> Axes.variable ()
  | ITB -> Axes.threads ()

(* The bounding axes beyond the paper run on the sequential driver for
   every [--jobs] value: their schedule trees cannot be partitioned by the
   frontier (path-dependent footprint counting, execution-level cuts), and
   a sequential cell inside a parallel suite stays byte-identical. *)
let sequential_only = function
  | Fair | Length | IVB | ITB -> true
  | IPB | IDB | DFS | Rand | PCT | Maple | SURW -> false

(* Declared parallel plan per technique, consumed by Sct_parallel.Drivers.
   Again pure registration: the technique only names its capability
   ({!Strategy.sharding}); how shards are dispatched, merged and truncated
   lives in lib/parallel. *)
let sharding ?(promote = fun _ -> false) o technique program =
  let deadline = deadline_of o in
  match technique with
  | IPB ->
      Strategy.Shard_tree
        (fun run ->
          Bounded.tree_campaign ~promote ~max_steps:o.max_steps ?deadline
            ~kind:Bounded.Preemption_bounding ~limit:o.limit program run)
  | IDB ->
      Strategy.Shard_tree
        (fun run ->
          Bounded.tree_campaign ~promote ~max_steps:o.max_steps ?deadline
            ~kind:Bounded.Delay_bounding ~limit:o.limit program run)
  | DFS ->
      Strategy.Shard_tree
        (fun run ->
          Dfs.tree_campaign ~promote ~max_steps:o.max_steps ?deadline
            ~bound:Dfs.Unbounded ~limit:o.limit program run)
  | Rand ->
      Random_walk.sharding ~promote ~max_steps:o.max_steps ?deadline
        ~seed:o.seed program
  | PCT ->
      Pct.sharding ~promote ~max_steps:o.max_steps
        ~change_points:o.pct_change_points ?deadline ~seed:o.seed program
  | Maple ->
      Strategy.Shard_runs
        (Maple_lite.batches ~promote ~max_steps:o.max_steps
           ~profile_runs:o.maple_profile_runs ~seed:o.seed program)
  | SURW ->
      Surw.sharding ~promote ~max_steps:o.max_steps ?deadline ~seed:o.seed
        program
  | Fair | Length | IVB | ITB ->
      invalid_arg
        (Printf.sprintf
           "Sct_explore.Techniques.sharding: %s is sequential-only \
            (Sct_parallel.Drivers.run routes it to the sequential driver)"
           (name technique))

let supports_prefix_batch technique =
  (* read off the strategy's declared capability; options/program do not
     affect it, so probe with the defaults *)
  let (module S : Strategy.STRATEGY) =
    strategy default_options technique ignore
  in
  S.supports_prefix_batch

let supports_por technique =
  let (module S : Strategy.STRATEGY) =
    strategy default_options technique ignore
  in
  S.supports_por

(* The POR-composed campaign: the technique's schedule tree walked by the
   Por.Walk reduction core. Exclusive with prefix batching (see por.mli's
   interaction contract): when a cell requests both, POR wins and the cell
   runs unbatched — visible as [steps_saved = 0] in its statistics. The
   sleep-pruned-run counter is threaded out of the walks through
   [on_prune] and patched into the final statistics. *)
let run_por ~promote ~(mode : Por.mode) o technique program =
  let deadline = deadline_of o in
  let pruned = ref 0 in
  let on_prune () = incr pruned in
  let s =
    match technique with
    | DFS ->
        let w =
          Por.Walk.make ~on_prune ~mode ~bound:Dfs.Unbounded ()
        in
        Driver.explore ~promote ~max_steps:o.max_steps ?deadline
          ~max_executions:o.limit ~limit:o.limit
          (Por.strategy_of_walk w)
          program
    | IPB ->
        Bounded.explore ~promote ~max_steps:o.max_steps ~por:mode ~on_prune
          ?deadline ~kind:Bounded.Preemption_bounding ~limit:o.limit program
    | IDB ->
        Bounded.explore ~promote ~max_steps:o.max_steps ~por:mode ~on_prune
          ?deadline ~kind:Bounded.Delay_bounding ~limit:o.limit program
    | Rand | PCT | Maple | SURW | Fair | Length | IVB | ITB -> assert false
  in
  { s with Stats.por_pruned = !pruned }

let run ?(promote = fun _ -> false) o technique program =
  match o.por with
  | Some mode when supports_por technique -> run_por ~promote ~mode o technique program
  | _ ->
  if o.prefix_batch && supports_prefix_batch technique then begin
    (* the systematic tree walkers route through the prefix-batching
       executor; statistics are identical to the driver loop below except
       for the steps_executed / steps_saved counters *)
    let deadline = deadline_of o in
    match technique with
    | DFS ->
        Dfs.stats_of ~technique:"DFS"
          (Prefix_exec.explore ~promote ~max_steps:o.max_steps ?deadline
             ~bound:Dfs.Unbounded ~limit:o.limit program)
    | IPB ->
        Bounded.explore_batched ~promote ~max_steps:o.max_steps ?deadline
          ~kind:Bounded.Preemption_bounding ~limit:o.limit program
    | IDB ->
        Bounded.explore_batched ~promote ~max_steps:o.max_steps ?deadline
          ~kind:Bounded.Delay_bounding ~limit:o.limit program
    | Rand | PCT | Maple | SURW | Fair | Length | IVB | ITB -> assert false
  end
  else
    Driver.explore ~promote ~max_steps:o.max_steps ?deadline:(deadline_of o)
      ~limit:o.limit
      (strategy ~promote o technique program)
      program

let detect_races o program =
  Sct_race.Promotion.detect ~runs:o.race_runs ~seed:o.seed
    ~max_steps:o.max_steps program

let run_all ?(techniques = all_paper) o program =
  let detection = detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  let results = List.map (fun t -> (t, run ~promote o t program)) techniques in
  (detection, results)
