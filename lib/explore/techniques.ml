type t = IPB | IDB | DFS | Rand | PCT | Maple

let all_paper = [ IPB; IDB; DFS; Rand; Maple ]

let name = function
  | IPB -> "IPB"
  | IDB -> "IDB"
  | DFS -> "DFS"
  | Rand -> "Rand"
  | PCT -> "PCT"
  | Maple -> "MapleAlg"

let of_name s =
  match String.lowercase_ascii s with
  | "ipb" -> Some IPB
  | "idb" -> Some IDB
  | "dfs" -> Some DFS
  | "rand" | "random" -> Some Rand
  | "pct" -> Some PCT
  | "maple" | "maplealg" -> Some Maple
  | _ -> None

type options = {
  limit : int;
  seed : int;
  max_steps : int;
  race_runs : int;
  pct_change_points : int;
  maple_profile_runs : int;
  jobs : int;
  split_depth : int;
}

let default_options =
  {
    limit = 10_000;
    seed = 0;
    max_steps = 100_000;
    race_runs = 10;
    pct_change_points = 2;
    maple_profile_runs = 10;
    jobs = 1;
    split_depth = 3;
  }

let dfs_stats ~technique (r : Dfs.level_result) =
  {
    (Stats.base ~technique) with
    Stats.to_first_bug = r.Dfs.to_first_bug;
    total = r.Dfs.counted;
    buggy = r.Dfs.buggy;
    complete = r.Dfs.complete;
    hit_limit = r.Dfs.hit_limit;
    first_bug = r.Dfs.first_bug;
    n_threads = r.Dfs.n_threads;
    max_enabled = r.Dfs.max_enabled;
    max_sched_points = r.Dfs.max_sched_points;
    executions = r.Dfs.executions;
  }

let run ?(promote = fun _ -> false) o technique program =
  match technique with
  | IPB ->
      Bounded.explore ~promote ~max_steps:o.max_steps
        ~kind:Bounded.Preemption_bounding ~limit:o.limit program
  | IDB ->
      Bounded.explore ~promote ~max_steps:o.max_steps
        ~kind:Bounded.Delay_bounding ~limit:o.limit program
  | DFS ->
      dfs_stats ~technique:"DFS"
        (Dfs.explore ~promote ~max_steps:o.max_steps ~bound:Dfs.Unbounded
           ~limit:o.limit program)
  | Rand ->
      Random_walk.explore ~promote ~max_steps:o.max_steps ~seed:o.seed
        ~runs:o.limit program
  | PCT ->
      Pct.explore ~promote ~max_steps:o.max_steps
        ~change_points:o.pct_change_points ~seed:o.seed ~runs:o.limit program
  | Maple ->
      Maple_lite.explore ~promote ~max_steps:o.max_steps
        ~profile_runs:o.maple_profile_runs ~seed:o.seed program

let detect_races o program =
  Sct_race.Promotion.detect ~runs:o.race_runs ~seed:o.seed
    ~max_steps:o.max_steps program

let run_all ?(techniques = all_paper) o program =
  let detection = detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  let results = List.map (fun t -> (t, run ~promote o t program)) techniques in
  (detection, results)
