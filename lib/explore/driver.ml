open Sct_core

(* The one generic campaign loop. Every technique runs through here (the
   parallel engine runs shards of campaigns, each shard again through
   here); all budget, deadline, statistics and hook logic lives in this
   file only. *)

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(record_decisions = false) ?(stop_on_bug = false) ?(count_offset = 0)
    ?max_executions ?deadline ?(on_schedule = fun _ -> ()) ~limit
    (module S : Strategy.STRATEGY) program =
  let st = S.init () in
  let limit = if S.respects_limit then limit else max_int in
  let counted = ref 0 in
  let cuts = ref 0 in
  let phase_counted = ref 0 in
  let buggy = ref 0 in
  let to_first_bug = ref None in
  let first_bug = ref None in
  let executions = ref 0 in
  let steps = ref 0 in
  let n_threads = ref 0 in
  let max_enabled = ref 0 in
  let max_points = ref 0 in
  let hit_limit = ref false in
  let hit_deadline = ref false in
  let complete = ref false in
  let bound = ref None in
  let bound_complete = ref false in
  let new_at_bound = ref 0 in
  let seen = ref (if S.tracks_distinct then Some Stats.Sched_set.empty else None) in
  let scheduler ctx = S.choose st ctx in
  (* Record the phase bookkeeping when the campaign stops inside a phase
     (budget, deadline, or stop_on_bug): the bound reached is the phase's,
     and the phase's counted schedules are the "new at bound" statistic
     when the phase says so. [bound_complete]/[complete] stay false — the
     phase did not finish. *)
  let stop_in (ph : Strategy.phase) =
    bound := ph.ph_bound;
    if ph.ph_new_at_bound then new_at_bound := !phase_counted
  in
  let finish (f : Strategy.finish) =
    complete := f.f_complete;
    bound := f.f_bound;
    bound_complete := f.f_bound_complete;
    if f.f_new_at_bound then new_at_bound := !phase_counted
  in
  (* Reduced (POR) campaigns budget raw executions, not only counted
     schedules: a reduction that counts few schedules would otherwise
     never spend its budget and climb bound levels through an
     astronomically larger raw tree. Cut executions (fair/length bounding)
     are charged the same way: a cut prefix is not a terminal schedule, but
     a cut-heavy space must not spin without budget progress. *)
  let budget_spent () =
    !counted + !cuts >= limit
    || match max_executions with Some m -> !executions >= m | None -> false
  in
  let rec phases () =
    match S.next_phase st with
    | Strategy.Finished f -> finish f
    | Strategy.Phase ph ->
        phase_counted := 0;
        if budget_spent () then begin
          hit_limit := true;
          stop_in ph
        end
        else runs ph
  and runs ph =
    S.begin_run st;
    let res =
      Runtime.exec ~promote ?listener:(S.listener st) ~max_steps
        ~record_decisions ~scheduler program
    in
    incr executions;
    steps := !steps + res.Runtime.r_steps;
    n_threads := max !n_threads res.Runtime.r_n_threads;
    max_enabled := max !max_enabled res.Runtime.r_max_enabled;
    max_points := max !max_points res.Runtime.r_multi_points;
    let v = S.on_terminal st res in
    if v.Strategy.v_cut then incr cuts;
    if v.Strategy.v_counts then begin
      incr counted;
      incr phase_counted;
      (match !seen with
      | Some set ->
          seen :=
            Some (Stats.Sched_set.add (Schedule.to_list res.r_schedule) set)
      | None -> ());
      on_schedule res;
      match res.Runtime.r_outcome with
      | Outcome.Bug { bug; by } ->
          incr buggy;
          if !to_first_bug = None then begin
            to_first_bug := Some (count_offset + !counted);
            first_bug :=
              Some
                {
                  Stats.w_bug = bug;
                  w_by = by;
                  w_schedule = res.r_schedule;
                  w_pc = res.r_pc;
                  w_dc = res.r_dc;
                }
          end
      | Outcome.Ok | Outcome.Step_limit -> ()
    end;
    if budget_spent () then begin
      hit_limit := true;
      stop_in ph
    end
    else if stop_on_bug && !to_first_bug <> None then stop_in ph
    else
      match deadline with
      | Some dl when Unix.gettimeofday () > dl ->
          hit_deadline := true;
          stop_in ph
      | _ -> if v.Strategy.v_phase_over then phases () else runs ph
  in
  phases ();
  {
    (Stats.base ~technique:S.technique) with
    Stats.bound = !bound;
    bound_complete = !bound_complete;
    to_first_bug = !to_first_bug;
    total = !counted;
    new_at_bound = !new_at_bound;
    buggy = !buggy;
    complete = !complete;
    hit_limit = !hit_limit;
    hit_deadline = !hit_deadline;
    first_bug = !first_bug;
    n_threads = !n_threads;
    max_enabled = !max_enabled;
    max_sched_points = !max_points;
    executions = !executions;
    steps_executed = !steps;
    cut_runs = !cuts;
    distinct_schedules = !seen;
  }

let deadline_of_time_limit = function
  | None -> None
  | Some seconds -> Some (Unix.gettimeofday () +. seconds)
