(** Prefix-memoizing batched executor for systematic schedule-tree walks.

    A backtracking walk ({!Dfs.explore}) re-executes the program from the
    root for every terminal schedule, although consecutive terminals share
    every decision above their divergence point. {!explore} walks the same
    bounded tree, in the same depth-first order, with the same statistics —
    but pays for each shared prefix once per batch of sibling
    continuations:

    - {b fork server} (the fast path, Unix + single-domain only): the
      program runs once under a scheduler that [Unix.fork]s one child per
      untried sibling branch at every in-bound branching decision. The
      forked child {e is} the memoized frontier state — OCaml 5 effect
      continuations are one-shot, so process duplication is the only way to
      resume one execution state twice. Terminal results stream back over a
      pipe in exact sequential DFS order; each is answered with a control
      byte that propagates the budget/deadline stop into the process tree.
    - {b re-execution fallback} (portable): delegates to the classic
      backtracking walk, physically replaying every prefix.

    Both back-ends report identical {e analytic} step counters computed
    from the terminal-schedule stream (divergence depth of consecutive
    terminals = fork depth = decisions not re-executed), so campaign
    statistics are byte-identical whichever back-end ran. See DESIGN.md
    §14.

    {b Partial-order-reduced walks are never batched.} Forking one child
    per untried sibling at a branching decision assumes the sibling set is
    known when the decision is first reached. A reduction walk
    ({!Por.Walk}) violates this twice over: DPOR adds backtrack points to
    a frame only {e after} deeper steps observe races, and the sleep set a
    sibling starts with contains the siblings explored {e before} it — the
    continuation state threads through siblings in walk order instead of
    being fixed at fork time. When a cell requests both [--por] and
    [--prefix-batch], POR wins and the cell runs on the unbatched driver;
    the fallback is visible in the cell's statistics ([steps_saved = 0])
    and both options are recorded in the store fingerprint. *)

val fork_available : unit -> bool
(** Whether the fork server may run right now: a Unix system, on the main
    domain, in a process that never spawned a second domain. *)

val note_domains_spawned : unit -> unit
(** Record that a worker domain was spawned. The OCaml runtime permanently
    refuses [Unix.fork] in a process that ever ran more than one domain, so
    this disables the fork server for the rest of the process — the
    portable fallback (with identical results) takes over. The parallel
    pool calls this before its first [Domain.spawn]. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?prefix:Strategy.prefix ->
  ?fork:bool ->
  ?deadline:float ->
  bound:Dfs.bound ->
  limit:int ->
  (unit -> unit) ->
  Strategy.walk_result
(** Explore the (bounded) schedule tree below [prefix], batching sibling
    continuations. Equal to
    [Dfs.explore ?promote ?max_steps ?count_exact ?prefix ?deadline ~bound
    ~limit] in every field except [steps_executed]/[steps_saved], which
    carry the batched analytic step cost (their sum is the unbatched
    cost). [fork] overrides back-end selection (default
    {!fork_available}); both back-ends return identical results, bit for
    bit. *)
