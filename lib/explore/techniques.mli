(** Uniform front-end over the concurrency-testing techniques of the study
    (paper §5): the race-detection phase followed by any of the IPB, IDB,
    DFS, Rand and MapleAlg phases, plus the PCT and SURW extensions.

    Every technique is a {!Strategy.STRATEGY} value; {!run} is nothing but
    {!Driver.explore} applied to the registered strategy. *)

type t =
  | IPB
  | IDB
  | DFS
  | Rand
  | PCT
  | Maple
  | SURW
  | Fair  (** fair bounding over iterative preemption bounding ({!Axes}) *)
  | Length  (** length bounding ({!Axes}) *)
  | IVB  (** iterative variable bounding ({!Axes}) *)
  | ITB  (** iterative thread bounding ({!Axes}) *)

val all_paper : t list
(** The five techniques of Table 3, in the paper's column order. PCT and
    SURW are study extensions, excluded from the paper tables by default;
    so are the {!Axes} bounding axes (Fair, Length, IVB, ITB). *)

val all : t list
(** Every technique, paper order first, then the extensions. *)

val name : t -> string
val of_name : string -> t option

val valid_names : string list
(** The canonical names accepted by {!of_name}, for CLI error messages. *)

val parse_list : ?default:t list -> string list -> (t list, string) result
(** Parse a [--technique] specification: each element may hold several
    comma-separated names; empty fragments (as in ["ipb,,rand"] or a
    trailing comma) are ignored. Duplicate names are {e deduplicated} —
    the first occurrence wins and order is preserved — so repeating a
    technique never runs it twice. An empty [specs] list yields [default]
    ([all_paper] unless overridden); a non-empty [specs] that reduces to
    zero names is an error (the flag was given but named nothing), as is
    any unknown name — both errors list every valid name. *)

type options = {
  limit : int;  (** schedule limit per technique (paper: 10,000) *)
  seed : int;
  max_steps : int;  (** per-execution live-lock guard *)
  race_runs : int;  (** data-race detection executions (paper: 10) *)
  pct_change_points : int;
  maple_profile_runs : int;
  jobs : int;
      (** worker domains for the parallel engine (lib/parallel); [run] and
          [run_all] below are always sequential — a value > 1 takes effect
          through [Sct_parallel.Drivers] / [Sct_parallel.Suite], which
          produce identical statistics for every [jobs] value *)
  split_depth : int;
      (** decision depth at which the parallel engine splits the DFS/IPB/IDB
          schedule tree into subtree partitions *)
  time_limit : float option;
      (** wall-clock budget in seconds per campaign; [None] (the default)
          disables the deadline and keeps runs fully deterministic *)
  prefix_batch : bool;
      (** route the systematic tree walkers (DFS/IPB/IDB — strategies
          declaring [supports_prefix_batch]) through {!Prefix_exec},
          paying each shared schedule prefix once per sibling batch.
          Statistics are identical except [Stats.steps_executed] /
          [Stats.steps_saved]; other techniques are unaffected *)
  por : Por.mode option;
      (** compose the systematic tree walkers (strategies declaring
          [supports_por]) with the bounded partial-order reduction of
          {!Por.Walk}: sleep sets / DPOR with BPOR's conservative
          backtracking points under IPB/IDB bounds. Exclusive with
          [prefix_batch] — a POR cell always runs unbatched (visible as
          [Stats.steps_saved = 0]) and sequential for every [jobs] value;
          other techniques are unaffected *)
  fair_bound : int;
      (** the Fair technique's yield-difference bound ([--fair-bound],
          default {!Axes.default_fair_bound}); other techniques ignore it *)
  length_bound : int;
      (** the Length technique's schedule-length bound ([--length-bound],
          default {!Axes.default_length_bound}); other techniques ignore
          it *)
}

val default_options : options
(** [limit = 10_000; seed = 0; max_steps = 100_000; race_runs = 10;
    pct_change_points = 2; maple_profile_runs = 10; jobs = 1;
    split_depth = 3; time_limit = None; prefix_batch = false; por = None;
    fair_bound = 5; length_bound = 250]. *)

val deadline_of : options -> float option
(** The absolute deadline for a campaign starting now, from
    [options.time_limit]. *)

val dfs_stats : technique:string -> Dfs.level_result -> Stats.t
(** Lift a DFS level result into the Table 3 statistics record. *)

val strategy :
  ?promote:(string -> bool) -> options -> t -> (unit -> unit) -> Strategy.t
(** The registered strategy of a technique under the given options — pure
    registration; all control flow lives in {!Driver.explore}. *)

val sequential_only : t -> bool
(** The technique runs on the sequential driver for every [--jobs] value
    (the {!Axes} techniques: their schedule trees cannot be partitioned by
    the frontier). [Sct_parallel.Drivers.run] consults this before
    {!sharding}; suite-level cell parallelism still applies, and cell
    statistics stay byte-identical across [jobs]. *)

val sharding :
  ?promote:(string -> bool) ->
  options ->
  t ->
  (unit -> unit) ->
  Strategy.sharding
(** The declared parallel plan of a technique, dispatched by
    [Sct_parallel.Drivers] from the capability constructor alone.
    @raise Invalid_argument on a {!sequential_only} technique. *)

val supports_prefix_batch : t -> bool
(** The technique's declared [supports_prefix_batch] capability (read off
    its {!Strategy.STRATEGY} instance). *)

val supports_por : t -> bool
(** The technique's declared [supports_por] capability (read off its
    {!Strategy.STRATEGY} instance): true for the systematic tree walkers
    DFS, IPB and IDB. *)

val run :
  ?promote:(string -> bool) -> options -> t -> (unit -> unit) -> Stats.t
(** Run one technique with an externally supplied promotion predicate
    (defaults to promoting nothing): {!Driver.explore} over {!strategy},
    budgeted by [options.limit] and [options.time_limit]. With
    [options.prefix_batch], techniques whose strategy declares
    [supports_prefix_batch] run through {!Prefix_exec} instead — same
    statistics, plus the step counters. With [options.por], techniques
    whose strategy declares [supports_por] run the {!Por.Walk} reduction
    instead — fewer executions to the same bugs, [Stats.por_pruned]
    counting the sleep-pruned runs; POR takes precedence over
    [prefix_batch] (see por.mli's interaction contract). *)

val detect_races : options -> (unit -> unit) -> Sct_race.Promotion.result
(** Phase 1: the data-race detection phase. *)

val run_all :
  ?techniques:t list ->
  options ->
  (unit -> unit) ->
  Sct_race.Promotion.result * (t * Stats.t) list
(** The full per-benchmark pipeline: detect races, promote racy locations,
    then run each technique ([all_paper] by default). *)
