(** Uniform front-end over the concurrency-testing techniques of the study
    (paper §5): the race-detection phase followed by any of the IPB, IDB,
    DFS, Rand and MapleAlg phases, plus the PCT extension. *)

type t = IPB | IDB | DFS | Rand | PCT | Maple

val all_paper : t list
(** The five techniques of Table 3, in the paper's column order. *)

val name : t -> string
val of_name : string -> t option

type options = {
  limit : int;  (** schedule limit per technique (paper: 10,000) *)
  seed : int;
  max_steps : int;  (** per-execution live-lock guard *)
  race_runs : int;  (** data-race detection executions (paper: 10) *)
  pct_change_points : int;
  maple_profile_runs : int;
  jobs : int;
      (** worker domains for the parallel engine (lib/parallel); [run] and
          [run_all] below are always sequential — a value > 1 takes effect
          through [Sct_parallel.Drivers] / [Sct_parallel.Suite], which
          produce identical statistics for every [jobs] value *)
  split_depth : int;
      (** decision depth at which the parallel engine splits the DFS/IPB/IDB
          schedule tree into subtree partitions *)
}

val default_options : options
(** [limit = 10_000; seed = 0; max_steps = 100_000; race_runs = 10;
    pct_change_points = 2; maple_profile_runs = 10; jobs = 1;
    split_depth = 3]. *)

val dfs_stats : technique:string -> Dfs.level_result -> Stats.t
(** Lift a DFS level result into the Table 3 statistics record. *)

val run :
  ?promote:(string -> bool) -> options -> t -> (unit -> unit) -> Stats.t
(** Run one technique with an externally supplied promotion predicate
    (defaults to promoting nothing). *)

val detect_races : options -> (unit -> unit) -> Sct_race.Promotion.result
(** Phase 1: the data-race detection phase. *)

val run_all :
  ?techniques:t list ->
  options ->
  (unit -> unit) ->
  Sct_race.Promotion.result * (t * Stats.t) list
(** The full per-benchmark pipeline: detect races, promote racy locations,
    then run each technique ([all_paper] by default). *)
