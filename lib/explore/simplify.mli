(** Counterexample trace simplification.

    The paper motivates schedule bounding partly by trace quality: "a trace
    with a small number of preemptions is likely to be easy to understand",
    citing the trace-simplification lines of work (§1, refs [15, 16]). This
    module turns any buggy schedule — e.g. a high-preemption witness from
    the random scheduler — into an equivalent low-preemption one, by
    repeatedly extending interrupted thread runs across context switches and
    keeping each transformed schedule only if it still reproduces a bug. *)

type outcome = {
  schedule : Sct_core.Schedule.t;  (** the simplified, still-buggy schedule *)
  result : Sct_core.Runtime.result;  (** the replayed execution *)
  rounds : int;  (** accepted transformations *)
}

val preemptions : Sct_core.Schedule.t -> int
(** Number of context switches in the schedule (an upper bound on its
    preemption count, cheap to compute without replay). *)

val minimize :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_rounds:int ->
  program:(unit -> unit) ->
  Sct_core.Schedule.t ->
  outcome option
(** [minimize ~program schedule] greedily reduces the witness; [None] if
    [schedule] does not reproduce a bug in the first place. The result's
    preemption count never exceeds the input's. *)
