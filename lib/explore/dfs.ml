open Sct_core

type bound = Unbounded | Preemption of int | Delay of int

type level_result = Strategy.walk_result = {
  counted : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  pruned : bool;
  hit_limit : bool;
  hit_deadline : bool;
  complete : bool;
  executions : int;
  steps_executed : int;
  steps_saved : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type frame = {
  mutable chosen : Tid.t;
  mutable rest : Tid.t list;
  mutable f_enabled : Tid.t list;
  mutable f_fp : int;  (** [Runtime.fingerprint f_enabled] *)
}

let fresh_frame () = { chosen = 0; rest = []; f_enabled = []; f_fp = 0 }

(* Growable stack of decision frames. The frame records are preallocated
   (each slot holds a distinct record) and mutated in place, so pushing a
   decision during the millions of executions of an exploration does not
   allocate. *)
type stack = { mutable frames : frame array; mutable len : int }

let push st ~chosen ~rest ~enabled ~fp =
  if st.len = Array.length st.frames then begin
    let old = st.frames in
    let n = Array.length old in
    st.frames <-
      Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_frame ())
  end;
  let fr = st.frames.(st.len) in
  fr.chosen <- chosen;
  fr.rest <- rest;
  fr.f_enabled <- enabled;
  fr.f_fp <- fp;
  st.len <- st.len + 1

type frontier_info = Strategy.frontier_info = {
  fi_prefix : (Tid.t * Tid.t list) array;
  fi_branched_below : bool;
}

(* --- the walk: one (bounded) level of the schedule tree ----------------- *)

module Walk = struct
  type t = {
    w_bound : bound;
    w_bound_c : int;
    w_count_exact : int option;
    w_max_branch_depth : int;
    w_on_exec : (Runtime.result -> frontier_info -> unit) option;
    st : stack;
    mutable replay_len : int;
    mutable depth : int;
    mutable cur_count : int;
    mutable pruned : bool;
    mutable branched_below : bool;
    mutable exhausted : bool;
  }

  let make ?prefix ?(max_branch_depth = max_int) ?count_exact ?on_exec ~bound
      () =
    let w =
      {
        w_bound = bound;
        w_bound_c =
          (match bound with
          | Unbounded -> max_int
          | Preemption c | Delay c -> c);
        w_count_exact = count_exact;
        w_max_branch_depth = max_branch_depth;
        w_on_exec = on_exec;
        st = { frames = Array.init 1024 (fun _ -> fresh_frame ()); len = 0 };
        replay_len = 0;
        depth = 0;
        cur_count = 0;
        pruned = false;
        branched_below = false;
        exhausted = false;
      }
    in
    (* A pinned prefix is seeded as exhausted frames: it is replayed (with
       the enabled-set determinism check and bound accounting) on every
       execution and never advanced by backtracking, so the walk covers
       exactly the subtree below the prefix. *)
    (match prefix with
    | None -> ()
    | Some p ->
        Array.iter
          (fun (chosen, f_enabled) ->
            push w.st ~chosen ~rest:[] ~enabled:f_enabled
              ~fp:(Runtime.fingerprint f_enabled))
          p;
        w.replay_len <- w.st.len);
    w

  let delta w (ctx : Runtime.ctx) t =
    match w.w_bound with
    | Unbounded -> 0
    | Preemption _ ->
        Preemption.delta ~last:ctx.c_last ~enabled:ctx.c_enabled t
    | Delay _ ->
        Delay.delays ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled:ctx.c_enabled
          t

  let begin_run w =
    w.depth <- 0;
    w.cur_count <- 0;
    w.branched_below <- false

  let choose w (ctx : Runtime.ctx) =
    let i = w.depth in
    w.depth <- i + 1;
    if i < w.replay_len then begin
      let fr = w.st.frames.(i) in
      if fr.f_fp <> ctx.c_enabled_fp then
        failwith
          (Printf.sprintf
             "Sct_explore.Dfs: nondeterministic program: enabled set \
              mismatch at decision %d (is the program's state created \
              inside its closure?)"
             i);
      w.cur_count <- w.cur_count + delta w ctx fr.chosen;
      fr.chosen
    end
    else begin
      match ctx.c_enabled with
      | [ t ] ->
          (* the only child; its delta is 0, so it is always in bound *)
          if i < w.w_max_branch_depth then
            push w.st ~chosen:t ~rest:[] ~enabled:ctx.c_enabled
              ~fp:ctx.c_enabled_fp;
          t
      | enabled -> (
          let order =
            Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled
          in
          let allowed =
            List.filter
              (fun t -> w.cur_count + delta w ctx t <= w.w_bound_c)
              order
          in
          if List.compare_lengths allowed order < 0 then w.pruned <- true;
          match allowed with
          | [] ->
              (* A zero-cost child always exists within any bound (see
                 DESIGN), so the filtered list cannot be empty. *)
              assert false
          | t :: rest ->
              if i >= w.w_max_branch_depth then begin
                (* frontier-enumeration mode: below the split depth, follow
                   the first in-bound child without recording a backtrack
                   point *)
                if rest <> [] then w.branched_below <- true
              end
              else push w.st ~chosen:t ~rest ~enabled ~fp:ctx.c_enabled_fp;
              w.cur_count <- w.cur_count + delta w ctx t;
              t)
    end

  (* Drop exhausted frames; advance the deepest frame with an untried
     alternative. Returns false when the tree is exhausted. *)
  let backtrack w =
    let st = w.st in
    let rec drop () =
      if st.len = 0 then false
      else
        let top = st.frames.(st.len - 1) in
        match top.rest with
        | [] ->
            st.len <- st.len - 1;
            drop ()
        | t :: rest ->
            top.chosen <- t;
            top.rest <- rest;
            true
    in
    let more = drop () in
    w.replay_len <- st.len;
    more

  let counts w (res : Runtime.result) =
    let exact =
      match w.w_bound with
      | Unbounded | Preemption _ -> res.r_pc
      | Delay _ -> res.r_dc
    in
    match w.w_count_exact with None -> true | Some c -> exact = c

  (* Observe one terminal execution: report the frontier info, decide
     whether the schedule counts, and advance the walk — it is over when no
     untried alternative remains. Backtracking eagerly (before the driver's
     budget check) is harmless: it only mutates the decision stack, which
     is dropped when the campaign stops. *)
  let on_terminal w (res : Runtime.result) =
    (match w.w_on_exec with
    | None -> ()
    | Some f ->
        let fi_prefix =
          Array.init w.st.len (fun j ->
              let fr = w.st.frames.(j) in
              (fr.chosen, fr.f_enabled))
        in
        f res { fi_prefix; fi_branched_below = w.branched_below });
    let v_counts = counts w res in
    w.exhausted <- not (backtrack w);
    { Strategy.v_counts; v_phase_over = w.exhausted }

  let pruned w = w.pruned
  let exhausted w = w.exhausted
end

(* --- the single-level STRATEGY instance --------------------------------- *)

let strategy_of_walk ?(technique = "DFS") (w : Walk.t) : Strategy.t =
  (module struct
    let technique = technique
    let tracks_distinct = false
    let respects_limit = true
    let supports_prefix_batch = true
    let supports_por = true

    type state = { w : Walk.t; mutable started : bool }

    let init () = { w; started = false }

    let next_phase st =
      if st.started then
        Strategy.Finished
          {
            f_complete = Walk.exhausted st.w;
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else begin
        st.started <- true;
        Strategy.Phase { ph_bound = None; ph_new_at_bound = false }
      end

    let begin_run st = Walk.begin_run st.w
    let listener _ = None
    let choose st ctx = Walk.choose st.w ctx
    let on_terminal st res = Walk.on_terminal st.w res
  end)

let strategy ?count_exact ~bound () =
  strategy_of_walk (Walk.make ?count_exact ~bound ())

(* --- walk-result lifting and the compatibility front-end ---------------- *)

let level_result_of_stats ~pruned (s : Stats.t) =
  {
    counted = s.Stats.total;
    buggy = s.Stats.buggy;
    to_first_bug = s.Stats.to_first_bug;
    first_bug = s.Stats.first_bug;
    pruned;
    hit_limit = s.Stats.hit_limit;
    hit_deadline = s.Stats.hit_deadline;
    complete = s.Stats.complete;
    executions = s.Stats.executions;
    steps_executed = s.Stats.steps_executed;
    steps_saved = s.Stats.steps_saved;
    n_threads = s.Stats.n_threads;
    max_enabled = s.Stats.max_enabled;
    max_sched_points = s.Stats.max_sched_points;
  }

let stats_of ~technique (r : level_result) =
  {
    (Stats.base ~technique) with
    Stats.to_first_bug = r.to_first_bug;
    total = r.counted;
    buggy = r.buggy;
    complete = r.complete;
    hit_limit = r.hit_limit;
    hit_deadline = r.hit_deadline;
    first_bug = r.first_bug;
    n_threads = r.n_threads;
    max_enabled = r.max_enabled;
    max_sched_points = r.max_sched_points;
    executions = r.executions;
    steps_executed = r.steps_executed;
    steps_saved = r.steps_saved;
  }

let explore ?promote ?max_steps ?count_exact ?on_schedule ?record_decisions
    ?prefix ?max_branch_depth ?on_exec ?deadline ~bound ~limit program =
  let w =
    Walk.make ?prefix ?max_branch_depth ?count_exact ?on_exec ~bound ()
  in
  let s =
    Driver.explore ?promote ?max_steps ?record_decisions ?on_schedule
      ?deadline ~limit (strategy_of_walk w) program
  in
  level_result_of_stats ~pruned:(Walk.pruned w) s

(* --- the tree-walk sharding capability ---------------------------------- *)

let tree_walk ?promote ?max_steps ?count_exact ?deadline ~bound program :
    Strategy.tree_walk =
  (* a never-run walk, used only for the exact-count filter *)
  let filter = Walk.make ?count_exact ~bound () in
  {
    Strategy.tw_enum =
      (fun ~max_branch_depth ~on_exec ~limit ->
        explore ?promote ?max_steps ?count_exact ?deadline ~max_branch_depth
          ~on_exec ~bound ~limit program);
    tw_sub =
      (fun ~prefix ~limit ->
        explore ?promote ?max_steps ?count_exact ?deadline ~prefix ~bound
          ~limit program);
    tw_counts = (fun res -> Walk.counts filter res);
  }

let tree_campaign ?promote ?max_steps ?deadline ~bound ~limit program run =
  stats_of ~technique:"DFS"
    (run (tree_walk ?promote ?max_steps ?deadline ~bound program) ~limit)
