open Sct_core

type bound = Unbounded | Preemption of int | Delay of int

type level_result = {
  counted : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  pruned : bool;
  hit_limit : bool;
  complete : bool;
  executions : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type frame = {
  mutable chosen : Tid.t;
  mutable rest : Tid.t list;
  mutable f_enabled : Tid.t list;
  mutable f_fp : int;  (** [Runtime.fingerprint f_enabled] *)
}

let fresh_frame () = { chosen = 0; rest = []; f_enabled = []; f_fp = 0 }

(* Growable stack of decision frames. The frame records are preallocated
   (each slot holds a distinct record) and mutated in place, so pushing a
   decision during the millions of executions of an exploration does not
   allocate. *)
type stack = { mutable frames : frame array; mutable len : int }

let push st ~chosen ~rest ~enabled ~fp =
  if st.len = Array.length st.frames then begin
    let old = st.frames in
    let n = Array.length old in
    st.frames <-
      Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_frame ())
  end;
  let fr = st.frames.(st.len) in
  fr.chosen <- chosen;
  fr.rest <- rest;
  fr.f_enabled <- enabled;
  fr.f_fp <- fp;
  st.len <- st.len + 1

type frontier_info = {
  fi_prefix : (Tid.t * Tid.t list) array;
  fi_branched_below : bool;
}

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000) ?count_exact
    ?(on_schedule = fun _ -> ()) ?(record_decisions = false) ?prefix
    ?(max_branch_depth = max_int) ?on_exec ~bound ~limit program =
  let bound_c =
    match bound with Unbounded -> max_int | Preemption c | Delay c -> c
  in
  let delta (ctx : Runtime.ctx) t =
    match bound with
    | Unbounded -> 0
    | Preemption _ -> Preemption.delta ~last:ctx.c_last ~enabled:ctx.c_enabled t
    | Delay _ ->
        Delay.delays ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled:ctx.c_enabled t
  in
  let st = { frames = Array.init 1024 (fun _ -> fresh_frame ()); len = 0 } in
  let replay_len = ref 0 in
  (* A pinned prefix is seeded as exhausted frames: it is replayed (with the
     enabled-set determinism check and bound accounting) on every execution
     and never advanced by backtracking, so the walk covers exactly the
     subtree below the prefix. *)
  (match prefix with
  | None -> ()
  | Some p ->
      Array.iter
        (fun (chosen, f_enabled) ->
          push st ~chosen ~rest:[] ~enabled:f_enabled
            ~fp:(Runtime.fingerprint f_enabled))
        p;
      replay_len := st.len);
  let depth = ref 0 in
  let cur_count = ref 0 in
  let pruned = ref false in
  let branched_below = ref false in
  let scheduler (ctx : Runtime.ctx) =
    let i = !depth in
    depth := i + 1;
    if i < !replay_len then begin
      let fr = st.frames.(i) in
      if fr.f_fp <> ctx.c_enabled_fp then
        failwith
          (Printf.sprintf
             "Sct_explore.Dfs: nondeterministic program: enabled set \
              mismatch at decision %d (is the program's state created \
              inside its closure?)"
             i);
      cur_count := !cur_count + delta ctx fr.chosen;
      fr.chosen
    end
    else begin
      match ctx.c_enabled with
      | [ t ] ->
          (* the only child; its delta is 0, so it is always in bound *)
          if i < max_branch_depth then
            push st ~chosen:t ~rest:[] ~enabled:ctx.c_enabled
              ~fp:ctx.c_enabled_fp;
          t
      | enabled -> (
          let order =
            Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled
          in
          let allowed =
            List.filter (fun t -> !cur_count + delta ctx t <= bound_c) order
          in
          if List.compare_lengths allowed order < 0 then pruned := true;
          match allowed with
          | [] ->
              (* A zero-cost child always exists within any bound (see
                 DESIGN), so the filtered list cannot be empty. *)
              assert false
          | t :: rest ->
              if i >= max_branch_depth then begin
                (* frontier-enumeration mode: below the split depth, follow
                   the first in-bound child without recording a backtrack
                   point *)
                if rest <> [] then branched_below := true
              end
              else
                push st ~chosen:t ~rest ~enabled ~fp:ctx.c_enabled_fp;
              cur_count := !cur_count + delta ctx t;
              t)
    end
  in
  (* Drop exhausted frames; advance the deepest frame with an untried
     alternative. Returns false when the tree is exhausted. *)
  let backtrack () =
    let rec drop () =
      if st.len = 0 then false
      else
        let top = st.frames.(st.len - 1) in
        match top.rest with
        | [] ->
            st.len <- st.len - 1;
            drop ()
        | t :: rest ->
            top.chosen <- t;
            top.rest <- rest;
            true
    in
    let more = drop () in
    replay_len := st.len;
    more
  in
  let counted = ref 0 in
  let buggy = ref 0 in
  let to_first_bug = ref None in
  let first_bug = ref None in
  let executions = ref 0 in
  let n_threads = ref 0 in
  let max_enabled = ref 0 in
  let max_points = ref 0 in
  let hit_limit = ref false in
  let complete = ref false in
  let continue_ = ref (limit > 0) in
  while !continue_ do
    depth := 0;
    cur_count := 0;
    branched_below := false;
    let res =
      Runtime.exec ~promote ~max_steps ~record_decisions ~scheduler program
    in
    incr executions;
    (match on_exec with
    | None -> ()
    | Some f ->
        let fi_prefix =
          Array.init st.len (fun j ->
              let fr = st.frames.(j) in
              (fr.chosen, fr.f_enabled))
        in
        f res { fi_prefix; fi_branched_below = !branched_below });
    n_threads := max !n_threads res.r_n_threads;
    max_enabled := max !max_enabled res.r_max_enabled;
    max_points := max !max_points res.r_multi_points;
    let exact =
      match bound with
      | Unbounded | Preemption _ -> res.r_pc
      | Delay _ -> res.r_dc
    in
    let counts = match count_exact with None -> true | Some c -> exact = c in
    if counts then begin
      incr counted;
      on_schedule res;
      match res.r_outcome with
      | Outcome.Bug { bug; by } ->
          incr buggy;
          if !to_first_bug = None then begin
            to_first_bug := Some !counted;
            first_bug :=
              Some
                {
                  Stats.w_bug = bug;
                  w_by = by;
                  w_schedule = res.r_schedule;
                  w_pc = res.r_pc;
                  w_dc = res.r_dc;
                }
          end
      | Outcome.Ok | Outcome.Step_limit -> ()
    end;
    if !counted >= limit then begin
      hit_limit := true;
      continue_ := false
    end
    else if not (backtrack ()) then begin
      complete := true;
      continue_ := false
    end
  done;
  {
    counted = !counted;
    buggy = !buggy;
    to_first_bug = !to_first_bug;
    first_bug = !first_bug;
    pruned = !pruned;
    hit_limit = !hit_limit;
    complete = !complete;
    executions = !executions;
    n_threads = !n_threads;
    max_enabled = !max_enabled;
    max_sched_points = !max_points;
  }
