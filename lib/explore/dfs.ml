open Sct_core

type bound =
  | Unbounded
  | Preemption of int
  | Delay of int
  | Variable of int
  | Threads of int

type level_result = Strategy.walk_result = {
  counted : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  pruned : bool;
  hit_limit : bool;
  hit_deadline : bool;
  complete : bool;
  executions : int;
  steps_executed : int;
  steps_saved : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type frame = {
  mutable chosen : Tid.t;
  mutable rest : Tid.t list;
  mutable f_enabled : Tid.t list;
  mutable f_fp : int;  (** [Runtime.fingerprint f_enabled] *)
}

let fresh_frame () = { chosen = 0; rest = []; f_enabled = []; f_fp = 0 }

(* Growable stack of decision frames. The frame records are preallocated
   (each slot holds a distinct record) and mutated in place, so pushing a
   decision during the millions of executions of an exploration does not
   allocate. *)
type stack = { mutable frames : frame array; mutable len : int }

let push st ~chosen ~rest ~enabled ~fp =
  if st.len = Array.length st.frames then begin
    let old = st.frames in
    let n = Array.length old in
    st.frames <-
      Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_frame ())
  end;
  let fr = st.frames.(st.len) in
  fr.chosen <- chosen;
  fr.rest <- rest;
  fr.f_enabled <- enabled;
  fr.f_fp <- fp;
  st.len <- st.len + 1

type frontier_info = Strategy.frontier_info = {
  fi_prefix : (Tid.t * Tid.t list) array;
  fi_branched_below : bool;
}

(* --- the walk: one (bounded) level of the schedule tree ----------------- *)

module Walk = struct
  type t = {
    w_bound : bound;
    w_bound_c : int;
    w_count_exact : int option;
    w_fair : int option;
    w_length : int option;
    w_max_branch_depth : int;
    w_on_exec : (Runtime.result -> frontier_info -> unit) option;
    st : stack;
    mutable replay_len : int;
    mutable depth : int;
    mutable cur_count : int;
    mutable pruned : bool;
    mutable aux_pruned : bool;
    mutable cut_run : bool;
    mutable branched_below : bool;
    mutable exhausted : bool;
    (* per-run footprint of preemption keys (Variable/Threads bounds):
       [cur_count] is its cardinality *)
    mutable foot : int array;
    mutable foot_len : int;
    (* per-run yield counts by tid (fair bounding only) *)
    mutable yields : int array;
  }

  let make ?prefix ?(max_branch_depth = max_int) ?count_exact ?fair ?length
      ?on_exec ~bound () =
    let w =
      {
        w_bound = bound;
        w_bound_c =
          (match bound with
          | Unbounded -> max_int
          | Preemption c | Delay c | Variable c | Threads c -> c);
        w_count_exact = count_exact;
        w_fair = fair;
        w_length = length;
        w_max_branch_depth = max_branch_depth;
        w_on_exec = on_exec;
        st = { frames = Array.init 1024 (fun _ -> fresh_frame ()); len = 0 };
        replay_len = 0;
        depth = 0;
        cur_count = 0;
        pruned = false;
        aux_pruned = false;
        cut_run = false;
        branched_below = false;
        exhausted = false;
        foot = Array.make 16 0;
        foot_len = 0;
        yields = Array.make 8 0;
      }
    in
    (* A pinned prefix is seeded as exhausted frames: it is replayed (with
       the enabled-set determinism check and bound accounting) on every
       execution and never advanced by backtracking, so the walk covers
       exactly the subtree below the prefix. *)
    (match prefix with
    | None -> ()
    | Some p ->
        Array.iter
          (fun (chosen, f_enabled) ->
            push w.st ~chosen ~rest:[] ~enabled:f_enabled
              ~fp:(Runtime.fingerprint f_enabled))
          p;
        w.replay_len <- w.st.len);
    w

  (* Per-run footprint membership: linear scan over a handful of keys. The
     footprints of the iterated footprint bounds (Variable/Threads) are at
     most the bound level + 1 long, tiny by construction. *)
  let foot_mem w key =
    let rec go i = i < w.foot_len && (w.foot.(i) = key || go (i + 1)) in
    go 0

  let foot_add w key =
    if w.foot_len = Array.length w.foot then begin
      let old = w.foot in
      w.foot <- Array.make (2 * Array.length old) 0;
      Array.blit old 0 w.foot 0 (Array.length old)
    end;
    w.foot.(w.foot_len) <- key;
    w.foot_len <- w.foot_len + 1

  (* The footprint key a preemption at this decision charges: the shared
     object the preempted thread was about to touch (Variable bounding) or
     the preempted thread itself (Threads bounding). *)
  let foot_key w (ctx : Runtime.ctx) =
    match (w.w_bound, ctx.c_last) with
    | Variable _, Some l -> Runtime.pending_obj_id ctx.c_rt l
    | Threads _, Some l -> l
    | _ -> -1

  (* Cost of scheduling [t] next, without committing anything. For the
     footprint bounds a preemption costs 1 only the first time its key
     enters this run's footprint, so the cost of a path is the cardinality
     of its footprint — path-determined, hence monotone in the bound. *)
  let delta w (ctx : Runtime.ctx) t =
    match w.w_bound with
    | Unbounded -> 0
    | Preemption _ ->
        Preemption.delta ~last:ctx.c_last ~enabled:ctx.c_enabled t
    | Delay _ ->
        Delay.delays ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled:ctx.c_enabled
          t
    | Variable _ | Threads _ ->
        if Preemption.delta ~last:ctx.c_last ~enabled:ctx.c_enabled t = 0 then 0
        else if foot_mem w (foot_key w ctx) then 0
        else 1

  (* Commit the chosen decision's bound cost (recording the footprint key
     when it is new). *)
  let commit_count w (ctx : Runtime.ctx) t =
    let d = delta w ctx t in
    (match w.w_bound with
    | (Variable _ | Threads _) when d > 0 -> foot_add w (foot_key w ctx)
    | _ -> ());
    w.cur_count <- w.cur_count + d

  let yield_count w t = if t < Array.length w.yields then w.yields.(t) else 0

  (* Record the chosen decision's yield, growing the per-tid counts on
     demand. Only called when fair bounding is on. *)
  let note_yield w (ctx : Runtime.ctx) t =
    if Runtime.pending_is_yield ctx.c_rt t then begin
      if t >= Array.length w.yields then begin
        let old = w.yields in
        let n = max (2 * Array.length old) (t + 1) in
        w.yields <- Array.make n 0;
        Array.blit old 0 w.yields 0 (Array.length old)
      end;
      w.yields.(t) <- w.yields.(t) + 1
    end

  (* Fair bounding admits a yield by [t] only while its yield count stays
     within [b] of the least-yielding live thread — so a thread spinning in
     a yield loop is forced to let the threads it waits on run. Non-yield
     operations are never restricted. *)
  let fair_ok w (ctx : Runtime.ctx) t =
    match w.w_fair with
    | None -> true
    | Some b ->
        (not (Runtime.pending_is_yield ctx.c_rt t))
        ||
        let min_y = ref max_int in
        for tid = 0 to ctx.c_n_threads - 1 do
          if Runtime.thread_live ctx.c_rt tid then
            min_y := min !min_y (yield_count w tid)
        done;
        yield_count w t + 1 - !min_y <= b

  let cut w =
    w.aux_pruned <- true;
    w.cut_run <- true;
    raise Runtime.Cut

  let begin_run w =
    w.depth <- 0;
    w.cur_count <- 0;
    w.branched_below <- false;
    w.cut_run <- false;
    w.foot_len <- 0;
    if w.w_fair <> None then Array.fill w.yields 0 (Array.length w.yields) 0

  let choose w (ctx : Runtime.ctx) =
    let i = w.depth in
    (* length bounding: schedules of length exactly [l] are still admitted;
       asking for decision [l] means the run would exceed it *)
    (match w.w_length with Some l when i >= l -> cut w | _ -> ());
    w.depth <- i + 1;
    if i < w.replay_len then begin
      let fr = w.st.frames.(i) in
      if fr.f_fp <> ctx.c_enabled_fp then
        failwith
          (Printf.sprintf
             "Sct_explore.Dfs: nondeterministic program: enabled set \
              mismatch at decision %d (is the program's state created \
              inside its closure?)"
             i);
      commit_count w ctx fr.chosen;
      if w.w_fair <> None then note_yield w ctx fr.chosen;
      fr.chosen
    end
    else begin
      match ctx.c_enabled with
      | [ t ] ->
          (* the only child; its delta is 0, so it is always in bound —
             but fair bounding may still cut an unaccompanied yield loop *)
          if w.w_fair <> None then begin
            if not (fair_ok w ctx t) then cut w;
            note_yield w ctx t
          end;
          if i < w.w_max_branch_depth then
            push w.st ~chosen:t ~rest:[] ~enabled:ctx.c_enabled
              ~fp:ctx.c_enabled_fp;
          t
      | enabled -> (
          let order =
            Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled
          in
          let allowed =
            List.filter
              (fun t ->
                w.cur_count + delta w ctx t <= w.w_bound_c && fair_ok w ctx t)
              order
          in
          if List.compare_lengths allowed order < 0 then begin
            (* attribute the shortfall: a structural-bound cut climbs
               iterated-bounding levels ([pruned]); a fair cut only clears
               completeness ([aux_pruned]) — no larger structural bound
               would restore the filtered children *)
            if
              List.exists
                (fun t -> w.cur_count + delta w ctx t > w.w_bound_c)
                order
            then w.pruned <- true;
            if
              List.exists
                (fun t ->
                  w.cur_count + delta w ctx t <= w.w_bound_c
                  && not (fair_ok w ctx t))
                order
            then w.aux_pruned <- true
          end;
          match allowed with
          | [] ->
              (* A zero-cost child always exists within any structural
                 bound (see DESIGN), so only the fair filter can empty the
                 list: every enabled thread is an over-bound yield.
                 Abandon the execution. *)
              w.cut_run <- true;
              raise Runtime.Cut
          | t :: rest ->
              if i >= w.w_max_branch_depth then begin
                (* frontier-enumeration mode: below the split depth, follow
                   the first in-bound child without recording a backtrack
                   point *)
                if rest <> [] then w.branched_below <- true
              end
              else push w.st ~chosen:t ~rest ~enabled ~fp:ctx.c_enabled_fp;
              commit_count w ctx t;
              if w.w_fair <> None then note_yield w ctx t;
              t)
    end

  (* Drop exhausted frames; advance the deepest frame with an untried
     alternative. Returns false when the tree is exhausted. *)
  let backtrack w =
    let st = w.st in
    let rec drop () =
      if st.len = 0 then false
      else
        let top = st.frames.(st.len - 1) in
        match top.rest with
        | [] ->
            st.len <- st.len - 1;
            drop ()
        | t :: rest ->
            top.chosen <- t;
            top.rest <- rest;
            true
    in
    let more = drop () in
    w.replay_len <- st.len;
    more

  let counts w (res : Runtime.result) =
    let exact =
      match w.w_bound with
      | Unbounded | Preemption _ -> res.r_pc
      | Delay _ -> res.r_dc
      (* footprint cardinality is path-dependent, so it is read off the
         walk's own accounting at the terminal, not the result record *)
      | Variable _ | Threads _ -> w.cur_count
    in
    match w.w_count_exact with None -> true | Some c -> exact = c

  (* Observe one terminal execution: report the frontier info, decide
     whether the schedule counts, and advance the walk — it is over when no
     untried alternative remains. Backtracking eagerly (before the driver's
     budget check) is harmless: it only mutates the decision stack, which
     is dropped when the campaign stops. *)
  let on_terminal w (res : Runtime.result) =
    (match w.w_on_exec with
    | None -> ()
    | Some f ->
        let fi_prefix =
          Array.init w.st.len (fun j ->
              let fr = w.st.frames.(j) in
              (fr.chosen, fr.f_enabled))
        in
        f res { fi_prefix; fi_branched_below = w.branched_below });
    let cut = w.cut_run in
    let v_counts = (not cut) && counts w res in
    w.exhausted <- not (backtrack w);
    { Strategy.v_counts; v_phase_over = w.exhausted; v_cut = cut }

  let pruned w = w.pruned
  let aux_pruned w = w.aux_pruned
  let exhausted w = w.exhausted

  (* Whether the walk carries an execution-level filter (fair or length
     bounding). Unrestricted walks are the only ones whose schedule trees
     the prefix-batch and POR machineries may restructure. *)
  let restricted w = w.w_fair <> None || w.w_length <> None
end

(* --- the single-level STRATEGY instance --------------------------------- *)

let strategy_of_walk ?(technique = "DFS") (w : Walk.t) : Strategy.t =
  (module struct
    let technique = technique
    let tracks_distinct = false
    let respects_limit = true
    let supports_prefix_batch = not (Walk.restricted w)
    let supports_por = not (Walk.restricted w)

    type state = { w : Walk.t; mutable started : bool }

    let init () = { w; started = false }

    let next_phase st =
      if st.started then
        Strategy.Finished
          {
            f_complete = Walk.exhausted st.w && not (Walk.aux_pruned st.w);
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else begin
        st.started <- true;
        Strategy.Phase { ph_bound = None; ph_new_at_bound = false }
      end

    let begin_run st = Walk.begin_run st.w
    let listener _ = None
    let choose st ctx = Walk.choose st.w ctx
    let on_terminal st res = Walk.on_terminal st.w res
  end)

let strategy ?count_exact ?fair ?length ~bound () =
  strategy_of_walk (Walk.make ?count_exact ?fair ?length ~bound ())

(* --- walk-result lifting and the compatibility front-end ---------------- *)

let level_result_of_stats ~pruned (s : Stats.t) =
  {
    counted = s.Stats.total;
    buggy = s.Stats.buggy;
    to_first_bug = s.Stats.to_first_bug;
    first_bug = s.Stats.first_bug;
    pruned;
    hit_limit = s.Stats.hit_limit;
    hit_deadline = s.Stats.hit_deadline;
    complete = s.Stats.complete;
    executions = s.Stats.executions;
    steps_executed = s.Stats.steps_executed;
    steps_saved = s.Stats.steps_saved;
    n_threads = s.Stats.n_threads;
    max_enabled = s.Stats.max_enabled;
    max_sched_points = s.Stats.max_sched_points;
  }

let stats_of ~technique (r : level_result) =
  {
    (Stats.base ~technique) with
    Stats.to_first_bug = r.to_first_bug;
    total = r.counted;
    buggy = r.buggy;
    complete = r.complete;
    hit_limit = r.hit_limit;
    hit_deadline = r.hit_deadline;
    first_bug = r.first_bug;
    n_threads = r.n_threads;
    max_enabled = r.max_enabled;
    max_sched_points = r.max_sched_points;
    executions = r.executions;
    steps_executed = r.steps_executed;
    steps_saved = r.steps_saved;
  }

let explore ?promote ?max_steps ?count_exact ?fair ?length ?on_schedule
    ?record_decisions ?prefix ?max_branch_depth ?on_exec ?deadline ~bound
    ~limit program =
  let w =
    Walk.make ?prefix ?max_branch_depth ?count_exact ?fair ?length ?on_exec
      ~bound ()
  in
  let s =
    Driver.explore ?promote ?max_steps ?record_decisions ?on_schedule
      ?deadline ~limit (strategy_of_walk w) program
  in
  level_result_of_stats ~pruned:(Walk.pruned w) s

(* --- the tree-walk sharding capability ---------------------------------- *)

let tree_walk ?promote ?max_steps ?count_exact ?deadline ~bound program :
    Strategy.tree_walk =
  (* a never-run walk, used only for the exact-count filter *)
  let filter = Walk.make ?count_exact ~bound () in
  {
    Strategy.tw_enum =
      (fun ~max_branch_depth ~on_exec ~limit ->
        explore ?promote ?max_steps ?count_exact ?deadline ~max_branch_depth
          ~on_exec ~bound ~limit program);
    tw_sub =
      (fun ~prefix ~limit ->
        explore ?promote ?max_steps ?count_exact ?deadline ~prefix ~bound
          ~limit program);
    tw_counts = (fun res -> Walk.counts filter res);
  }

let tree_campaign ?promote ?max_steps ?deadline ~bound ~limit program run =
  stats_of ~technique:"DFS"
    (run (tree_walk ?promote ?max_steps ?deadline ~bound program) ~limit)
