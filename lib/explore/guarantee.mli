(** Bounded coverage guarantees (paper §1): "if the search manages to
    explore all schedules with at most c preemptions, then any undiscovered
    bugs in the program require at least c + 1 preemptions". *)

type t =
  | Verified  (** the entire schedule space was explored, no bug *)
  | Bounded of { kind : [ `Preemptions | `Delays ]; bound : int }
      (** every schedule within [bound] explored without a bug: a remaining
          bug needs at least [bound + 1] preemptions (resp. delays) *)
  | Falsified of { bound : int option }  (** a bug was found *)
  | None_  (** nothing can be guaranteed (limit hit inside the first level,
               or a non-systematic technique) *)

val of_stats : Stats.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
