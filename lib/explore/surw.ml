open Sct_core

(* SURW — selectively uniform random walk.

   A naive random walk (random_walk.ml) picks uniformly among the enabled
   threads at every scheduling point, which skews the sampled distribution
   over terminal schedules: threads with few remaining events keep
   receiving the same per-point probability as threads with many, so
   schedules that exhaust a short thread early are heavily over-sampled.
   SURW reweights each point by an a-priori estimate of how many events
   each thread still has to execute — the walk descends the schedule tree
   with probability proportional to the (estimated) number of leaves under
   each branch, approximating a uniform draw over terminal schedules.

   The estimates come from one uncounted deterministic round-robin probe
   (the same a-priori setup PCT uses for its depth range [k]): the probe
   counts how many times each thread was scheduled, and every run of the
   campaign starts from that per-thread budget, decrementing the chosen
   thread's budget at each point. A thread the probe never saw (spawned
   only under reordering) defaults to one remaining event; when every
   enabled thread's budget is exhausted the pick falls back to uniform. *)

type estimates = (Tid.t, int) Hashtbl.t

(* Exact per-thread event counts from a traversed schedule prefix. The
   runtime records one entry per scheduling point (singleton points
   included), so counting occurrences of each tid in the recorded schedule
   is exactly the count an instrumented scheduler would have accumulated —
   but it works on any recorded prefix, not just a live execution. This is
   the offline path-count probing of the SURW repo: traverse once, count,
   reuse the counts for the whole campaign. *)
let counts_of_schedule sched : estimates =
  let counts : estimates = Hashtbl.create 16 in
  List.iter
    (fun t ->
      Hashtbl.replace counts t
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
    (Schedule.to_list sched);
  counts

let probe ?(promote = fun _ -> false) ?(max_steps = 100_000) program :
    estimates =
  (* the probe scheduler is a pure round-robin pick: the counting moved off
     the execution path into [counts_of_schedule] over the recorded
     traversal, which yields byte-identical estimates *)
  let rr (ctx : Runtime.ctx) =
    match
      Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  let res =
    Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler:rr
      program
  in
  counts_of_schedule res.Runtime.r_schedule

(* Per-run state: the RNG and the mutable events-left budgets, seeded from
   the campaign estimates. *)
type run_state = { rng : Random.State.t; remaining : (Tid.t, int) Hashtbl.t }

let make_run ~(estimates : estimates) ~seed i =
  { rng = Random.State.make [| seed; i; 0x5a1 |]; remaining = Hashtbl.copy estimates }

(* one event left for threads the probe never saw *)
let left rs t = match Hashtbl.find_opt rs.remaining t with Some n -> n | None -> 1

let surw_choose rs (ctx : Runtime.ctx) =
  let weight t = max 0 (left rs t) in
  let total = List.fold_left (fun acc t -> acc + weight t) 0 ctx.c_enabled in
  let chosen =
    if total = 0 then
      (* all budgets spent: the estimate was short, fall back to uniform *)
      match ctx.c_enabled with
      | [ t ] ->
          ignore (Random.State.int rs.rng 1 : int);
          t
      | enabled ->
          let enabled = Array.of_list enabled in
          enabled.(Random.State.int rs.rng (Array.length enabled))
    else begin
      (* one draw per point, weighted by events left *)
      let x = ref (Random.State.int rs.rng total) in
      let rec pick = function
        | [] -> assert false
        | [ t ] -> t
        | t :: rest ->
            let w = weight t in
            if !x < w then t
            else begin
              x := !x - w;
              pick rest
            end
      in
      pick ctx.c_enabled
    end
  in
  Hashtbl.replace rs.remaining chosen (left rs chosen - 1);
  chosen

(* [estimates = None] probes on campaign setup; shards of one campaign
   share the collector's probe instead, keeping run [i] identical for every
   shard assignment. *)
let strategy ?(promote = fun _ -> false) ?(max_steps = 100_000) ?estimates
    ?(lo = 0) ~seed program () : Strategy.t =
  (module struct
    let technique = "SURW"
    let tracks_distinct = true
    let respects_limit = true
    let supports_prefix_batch = false
    let supports_por = false

    type state = {
      estimates : estimates;
      mutable i : int;
      mutable run : run_state;
    }

    let init () =
      let estimates =
        match estimates with
        | Some e -> e
        | None -> probe ~promote ~max_steps program
      in
      { estimates; i = lo; run = make_run ~estimates ~seed lo }

    (* a single never-ending phase, like the naive random walk *)
    let next_phase st =
      if st.i > lo then
        Strategy.Finished
          {
            f_complete = false;
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else Strategy.Phase { ph_bound = None; ph_new_at_bound = false }

    let begin_run st =
      st.run <- make_run ~estimates:st.estimates ~seed st.i;
      st.i <- st.i + 1

    let listener _ = None
    let choose st ctx = surw_choose st.run ctx
    let on_terminal _ _ =
      { Strategy.v_counts = true; v_phase_over = false; v_cut = false }
  end)

let explore_shard ?promote ?max_steps ?deadline ~estimates ~seed ~lo ~hi
    program =
  Driver.explore ?promote ?max_steps ?deadline ~count_offset:lo
    ~limit:(hi - lo)
    (strategy ?promote ?max_steps ~estimates ~lo ~seed program ())
    program

let explore ?promote ?max_steps ?deadline ~seed ~runs program =
  let estimates = probe ?promote ?max_steps program in
  explore_shard ?promote ?max_steps ?deadline ~estimates ~seed ~lo:0 ~hi:runs
    program

let sharding ?promote ?max_steps ?deadline ~seed program =
  (* one probe for the whole campaign, on the collector *)
  let estimates = probe ?promote ?max_steps program in
  Strategy.Shard_seed
    (fun ~lo ~hi ->
      explore_shard ?promote ?max_steps ?deadline ~estimates ~seed ~lo ~hi
        program)
