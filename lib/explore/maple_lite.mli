(** MapleLite: a faithful reduction of the Maple algorithm (paper §3,
    "MapleAlg"; Yu et al., OOPSLA 2012) to idiom-1 inter-thread access
    patterns.

    Profiling runs record, per shared location, the ordered pairs of
    adjacent accesses by different threads (at least one a write) — the
    idiom-1 "iRoots". Every pair whose reversal was never observed becomes a
    candidate; one active run per candidate tries to force the reversal by
    withholding the thread that is about to perform the second access of the
    reversed pair until another thread performs the first. The algorithm
    terminates when every candidate has been attempted, like Maple's own
    heuristic termination — it explores very few schedules and can therefore
    both find bugs quickly and miss bugs whose idiom is richer than idiom-1
    (the behaviour Table 3 shows for MapleAlg).

    Active scheduling can only act at visible operations, so candidates are
    restricted to promoted (racy) locations — the analogue of Maple
    profiling dependencies through instrumented racy instructions. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?profile_runs:int ->
  seed:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed program] runs the profiling phase ([profile_runs]
    defaults to 10 random executions) followed by one active run per
    candidate reversal. Stops at the first bug. [total] counts profiling and
    active runs, matching how the paper reports MapleAlg schedule counts. *)
