(** MapleLite: a faithful reduction of the Maple algorithm (paper §3,
    "MapleAlg"; Yu et al., OOPSLA 2012) to idiom-1 inter-thread access
    patterns.

    Profiling runs record, per shared location, the ordered pairs of
    adjacent accesses by different threads (at least one a write) — the
    idiom-1 "iRoots". Every pair whose reversal was never observed becomes a
    candidate; one active run per candidate tries to force the reversal by
    withholding the thread that is about to perform the second access of the
    reversed pair until another thread performs the first. The algorithm
    terminates when every candidate has been attempted, like Maple's own
    heuristic termination — it explores very few schedules and can therefore
    both find bugs quickly and miss bugs whose idiom is richer than idiom-1
    (the behaviour Table 3 shows for MapleAlg).

    Active scheduling can only act at visible operations, so candidates are
    restricted to promoted (racy) locations — the analogue of Maple
    profiling dependencies through instrumented racy instructions. *)

val strategy :
  ?promote:(string -> bool) ->
  ?profile_runs:int ->
  seed:int ->
  unit ->
  Strategy.t
(** The MapleLite campaign as a {!Strategy.STRATEGY}: [profile_runs]
    profiling runs (default 10), then one active run per candidate, stopping
    at the first bug. The campaign length is intrinsic ([respects_limit] is
    [false]); the generic driver runs it to heuristic completion. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?profile_runs:int ->
  ?deadline:float ->
  seed:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed program] runs the profiling phase ([profile_runs]
    defaults to 10 random executions) followed by one active run per
    candidate reversal. Stops at the first bug. [total] counts profiling and
    active runs, matching how the paper reports MapleAlg schedule counts. *)

(** {1 Phases}

    The pieces of {!explore}, exposed so the parallel drivers
    (lib/parallel) can shard profiling runs and active runs across domains
    while merging results in the sequential order. *)

type iroot
(** An idiom-1 iRoot: an ordered pair of access kinds on one location. *)

module Iroot_set : Set.S with type elt = iroot

val profile_one :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  seed:int ->
  int ->
  (unit -> unit) ->
  Sct_core.Runtime.result * Iroot_set.t * Iroot_set.t
(** [profile_one ~seed i program] performs profiling run [i] (a pure
    function of [(seed, i)]) and returns its execution result together with
    the observed and adjacent iRoot sets of that run. Unioning the sets of
    runs [0..n-1] reproduces a sequential profiling phase of [n] runs. *)

val candidates :
  promote:(string -> bool) ->
  observed:Iroot_set.t ->
  adjacent:Iroot_set.t ->
  iroot list
(** The candidate reversals, in the deterministic order {!explore} attempts
    them. *)

val active_run :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  iroot ->
  (unit -> unit) ->
  Sct_core.Runtime.result
(** One deterministic active run forcing the given candidate. *)

val count_run : Stats.t -> Sct_core.Runtime.result -> Stats.t
(** Fold one profiling/active execution into the statistics exactly as
    {!explore} does (total, executions, buggy, first bug). *)

val batches :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?profile_runs:int ->
  seed:int ->
  (unit -> unit) ->
  Strategy.run_batches
(** The declared parallel plan ({!Strategy.Shard_runs}): a batch of
    independent profiling runs whose iRoot sets are unioned by commit
    closures in run order, then — unless a profiling run was buggy — a batch
    of active runs generated from the absorbed sets. *)
