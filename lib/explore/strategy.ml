open Sct_core

(* The first-class technique interface. See strategy.mli and DESIGN.md §10
   for the contract; this file is deliberately pure data + one module
   signature so every technique and every driver layer depends on it
   without depending on each other. *)

type phase = { ph_bound : int option; ph_new_at_bound : bool }

type finish = {
  f_complete : bool;
  f_bound : int option;
  f_bound_complete : bool;
  f_new_at_bound : bool;
}

type phase_step = Phase of phase | Finished of finish
type verdict = { v_counts : bool; v_phase_over : bool; v_cut : bool }

module type STRATEGY = sig
  val technique : string

  (* declared capabilities *)
  val tracks_distinct : bool
  val respects_limit : bool
  val supports_prefix_batch : bool
  val supports_por : bool

  type state

  val init : unit -> state
  val next_phase : state -> phase_step
  val begin_run : state -> unit
  val listener : state -> (Event.t -> unit) option
  val choose : state -> Runtime.ctx -> Tid.t
  val on_terminal : state -> Runtime.result -> verdict
end

type t = (module STRATEGY)

(* --- sharding capabilities (used by lib/parallel) ----------------------- *)

type prefix = (Tid.t * Tid.t list) array
type frontier_info = { fi_prefix : prefix; fi_branched_below : bool }

type walk_result = {
  counted : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  pruned : bool;
  hit_limit : bool;
  hit_deadline : bool;
  complete : bool;
  executions : int;
  steps_executed : int;
  steps_saved : int;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}

type tree_walk = {
  tw_enum :
    max_branch_depth:int ->
    on_exec:(Runtime.result -> frontier_info -> unit) ->
    limit:int ->
    walk_result;
  tw_sub : prefix:prefix -> limit:int -> walk_result;
  tw_counts : Runtime.result -> bool;
}

type batched_run = unit -> Runtime.result * (unit -> unit)

type run_batches = {
  rb_next : unit -> batched_run list option;
  rb_found : unit -> bool;
  rb_absorb : Runtime.result -> unit;
  rb_finish : unit -> Stats.t;
}

type sharding =
  | Shard_seed of (lo:int -> hi:int -> Stats.t)
  | Shard_tree of ((tree_walk -> limit:int -> walk_result) -> Stats.t)
  | Shard_runs of run_batches
