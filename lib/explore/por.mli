(** Partial-order reduction for the stateless depth-first search — the
    paper's named future work (§7/§8): sleep sets (Godefroid 1996) and the
    classic dynamic partial-order reduction of Flanagan & Godefroid
    (POPL 2005), optionally combined.

    Both techniques prune schedules that are guaranteed equivalent (up to
    commuting independent operations) to schedules explored elsewhere, so
    safety violations — assertion failures, deadlocks, crashes — are still
    found, with far fewer executions:

    - {b Sleep sets}: after exploring child [t] of a node, [t] (with its
      pending operation) is put to sleep for the node's remaining children
      and stays asleep down those subtrees until a dependent operation
      executes; branches where every enabled thread sleeps are pruned.
    - {b DPOR}: a node initially explores only its round-robin child; when a
      later step is found to race (be dependent and concurrent) with an
      earlier one, the racing thread is added to the earlier node's
      backtrack set. Happens-before is tracked with vector clocks.

    The reduction assumes full dependence information, so it requires every
    shared location to be visible ([promote] everything the program
    touches); see {!Op_depend} for the dependence relation. Schedule
    bounding is deliberately not combined with POR — the paper cites the
    interaction as an open research topic — so this explorer is unbounded. *)

type mode = Sleep | Dpor | Dpor_sleep

type result = {
  counted : int;  (** terminal schedules explored *)
  pruned_sleep : int;  (** branches cut because every enabled thread slept *)
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  complete : bool;
  hit_limit : bool;
  executions : int;
}

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  mode:mode ->
  limit:int ->
  (unit -> unit) ->
  result
