(** Partial-order reduction as a reusable, bound-parameterized walk: sleep
    sets (Godefroid 1996), the dynamic partial-order reduction of Flanagan
    & Godefroid (POPL 2005), and their bounded combination — BPOR (Coons,
    Musuvathi, McKinley; the recipe of dejafu's [sctBound]).

    Both unbounded techniques prune schedules that are guaranteed
    equivalent (up to commuting independent operations) to schedules
    explored elsewhere, so safety violations — assertion failures,
    deadlocks, crashes — are still found, with far fewer executions:

    - {b Sleep sets}: after exploring child [t] of a node, [t] (with its
      pending operation) is put to sleep for the node's remaining children
      and stays asleep down those subtrees until a dependent operation
      executes; branches where every enabled thread sleeps are pruned.
    - {b DPOR}: a node initially explores only its round-robin child; when a
      later step is found to race (be dependent and concurrent) with an
      earlier one, the racing thread is added to the earlier node's
      backtrack set. Happens-before is tracked with vector clocks.

    {b The conservative-backtracking invariant (BPOR).} Under a finite
    {!Dfs.bound} the plain algorithms are {e unsound}: a backtrack point
    records that "scheduling thread [p] at frame [j] reaches a genuinely
    different state", but the bound may make that alternative — or the
    states below it — unreachable at the current level even though an
    equivalent execution spending its preemption/delay budget {e earlier}
    stays in bound. Likewise a sleeping thread's covering execution may
    have been cut by the bound. The walk therefore maintains the BPOR
    invariant: whenever a non-conservative backtrack point is added at
    frame [j], a {e conservative} point for the same thread is also added
    at the prior context switch at or before [j] (the deepest frame whose
    decision switched threads). Conservative points are explored
    {e ignoring the sleep set}, and the subtree below a conservatively
    explored child starts with an {e empty} sleep set — a sleeping
    thread's justification ("an equivalent interleaving is covered
    elsewhere") may point at executions the bound cut off. Points whose
    own bound delta exceeds the level bound are recorded as bound pruning
    ([Walk.pruned]) so the iterative-bounding level loop re-explores them
    at the next level, and every in-bound sibling at that frame becomes a
    conservative point: bound deltas depend on the decisions between the
    frame and the race (delay counting charges by round-robin position),
    so an interposed independent step can make the cut reordering
    affordable deeper in the tree, where re-run race discovery re-derives
    it.

    {b Sleep-set/bound soundness caveat.} Sleep sets {e alone} cannot be
    patched this way — there is no backtrack set to wake conservatively.
    A thread asleep at a node is justified by an already-explored
    equivalent execution, but under a bound that execution's continuation
    may have cost more preemptions/delays and been cut, while the pruned
    branch was in bound. [Walk.make] with [mode = Sleep] and a finite
    bound therefore disables sleep pruning and degenerates to the plain
    bounded walk (counted schedules identical to {!Dfs.Walk}); bounded
    reduction requires the DPOR machinery ([Dpor] or [Dpor_sleep]).

    {b Interaction contract with the other tree machineries.} A POR cell
    always runs on the one-run-at-a-time driver:
    - {e prefix_exec batching}: the sleep set and the DPOR clocks thread
      through sibling continuations in walk order — sibling [k+1]'s sleep
      set contains sibling [k] — so continuations cannot be forked ahead
      of time as {!Prefix_exec} does. When both [--por] and
      [--prefix-batch] are requested, the cell falls back to unbatched
      execution (the choice is visible in the cell's statistics:
      [steps_saved = 0]) and the store fingerprint records both options.
    - {e frontier split-depth partitioning}: backtrack sets and sleep sets
      are global to the walk, so depth-[split_depth] subtrees are not
      independent; [Sct_parallel.Drivers.run] routes POR cells to the
      sequential path for every [--jobs] value, exactly as it already does
      for batched cells. Statistics are therefore byte-identical for every
      [jobs] value.

    The reduction assumes full dependence information for the {e visible}
    operations (see {!Op_depend}); unpromoted locations must be race-free,
    which is what the race-detection phase establishes probabilistically.
    The [por] CLI subcommand promotes every location instead. *)

type mode = Sleep | Dpor | Dpor_sleep

val mode_name : mode -> string
(** ["sleep"], ["dpor"] or ["dpor+sleep"]. *)

val of_mode_name : string -> mode option
(** Case-insensitive; accepts ["both"] as an alias of ["dpor+sleep"]. *)

val valid_mode_names : string list
(** The canonical names accepted by {!of_mode_name}, for CLI errors. *)

val parse_mode : string -> (mode, string) result
(** Parse one [--por] mode name; the error message lists every valid mode,
    matching the {!Techniques.parse_list} convention. *)

(** The reduction walk, mirroring {!Dfs.Walk}: a strategy/driver-shaped
    core usable on its own ({!strategy_of_walk}) or one bound level at a
    time inside the iterative-bounding campaign ([Bounded.strategy] with
    [~por]). *)
module Walk : sig
  type t

  val make :
    ?on_prune:(unit -> unit) ->
    ?count_exact:int ->
    mode:mode ->
    bound:Dfs.bound ->
    unit ->
    t
  (** A fresh walk of the [bound]-restricted schedule tree. [count_exact]
      is the iterative-bounding level filter (count only schedules whose
      exact preemption/delay count equals the level). [on_prune] fires
      once per sleep-pruned run — the [Stats.por_pruned] counter. *)

  val begin_run : t -> unit
  val choose : t -> Sct_core.Runtime.ctx -> Sct_core.Tid.t

  val on_terminal : t -> Sct_core.Runtime.result -> Strategy.verdict
  (** Sleep-pruned runs never count, whatever their exact bound count. *)

  val counts : t -> Sct_core.Runtime.result -> bool

  val pruned : t -> bool
  (** The bound cut off a reachable reordering (an in-run child or a
      backtrack point out of bound): the level is incomplete and the
      iterative campaign must continue at the next bound. Sleep-set
      pruning never sets this — those branches are covered elsewhere. *)

  val pruned_runs : t -> int
  (** Runs cut because every in-bound enabled thread was asleep. *)

  val exhausted : t -> bool
end

val strategy_of_walk : ?technique:string -> Walk.t -> Strategy.t
(** One walk as a single-phase strategy for {!Driver.explore}, mirroring
    [Dfs.strategy_of_walk]. Declares [supports_por] and {e not}
    [supports_prefix_batch] (see the interaction contract above). *)

type result = {
  counted : int;  (** terminal schedules explored *)
  pruned_sleep : int;  (** branches cut because every enabled thread slept *)
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  complete : bool;
  hit_limit : bool;
  executions : int;
}

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?bound:Dfs.bound ->
  mode:mode ->
  limit:int ->
  (unit -> unit) ->
  result
(** One reduction walk (default [bound = Unbounded]) through the unified
    {!Driver.explore} loop — the [por] CLI subcommand's engine.
    [executions] counts every run, including the [pruned_sleep] ones. *)
