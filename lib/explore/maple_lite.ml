open Sct_core

type akind = R | W | A

let akind_of = function
  | Op.Plain_read -> R
  | Op.Plain_write -> W
  | Op.Atomic_op _ -> A

let is_write = function W | A -> true | R -> false

(* An idiom-1 iRoot: on [loc], an access of kind [first] is immediately
   followed (in the location's access history) by an access of kind [second]
   from a different thread. *)
type iroot = { loc : string; first : akind; second : akind }

module Iroot_set = Set.Make (struct
  type t = iroot

  let compare = compare
end)

(* Profiling state: the observed iRoots, the latest access kind per
   (location, thread), and the lockset context of each (location, kind) —
   the synchronisation objects held when such an access was performed.
   Maple forces iRoots at the instruction level, where a thread can be held
   just before the lock acquisition guarding the access; the lockset lets
   the active phase do the same. *)
type profile = {
  mutable observed : Iroot_set.t;
      (** pairs built from every kind each peer thread has used: the
          candidate-generating set *)
  mutable adjacent : Iroot_set.t;
      (** pairs built from each peer's latest access only: the (stricter)
          already-seen set used to filter candidates *)
  last_access :
    (string, (Sct_core.Tid.t, akind * akind list) Hashtbl.t) Hashtbl.t;
      (** per location: each thread's latest access kind and kind set *)
}

let new_profile () =
  {
    observed = Iroot_set.empty;
    adjacent = Iroot_set.empty;
    last_access = Hashtbl.create 64;
  }

(* Record, for every access, iRoot pairs with other threads' previous
   accesses to the same location (Maple's idiom-1 inter-thread
   dependencies), provided at least one side is a write: against each
   peer's latest kind for the already-seen set, and against each peer's
   whole kind set for the candidate-generating set. *)
let observe_run_pairs p (ev : Event.t) =
  match ev with
  | Event.Access { tid; name; kind; _ } ->
      let k = akind_of kind in
      let per_thread =
        match Hashtbl.find_opt p.last_access name with
        | Some m -> m
        | None ->
            let m = Hashtbl.create 4 in
            Hashtbl.replace p.last_access name m;
            m
      in
      Hashtbl.iter
        (fun prev_tid (latest, prev_ks) ->
          if prev_tid <> tid then begin
            if is_write latest || is_write k then
              p.adjacent <-
                Iroot_set.add { loc = name; first = latest; second = k }
                  p.adjacent;
            List.iter
              (fun prev_k ->
                if is_write prev_k || is_write k then
                  p.observed <-
                    Iroot_set.add
                      { loc = name; first = prev_k; second = k }
                      p.observed)
              prev_ks
          end)
        per_thread;
      let ks =
        match Hashtbl.find_opt per_thread tid with
        | Some (_, ks) -> if List.mem k ks then ks else k :: ks
        | None -> [ k ]
      in
      Hashtbl.replace per_thread tid (k, ks)
  | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Joined _ -> ()

let bug_stats s (res : Runtime.result) =
  match res.Runtime.r_outcome with
  | Outcome.Bug { bug; by } ->
      let s = { s with Stats.buggy = s.Stats.buggy + 1 } in
      if s.Stats.to_first_bug = None then
        {
          s with
          Stats.to_first_bug = Some s.Stats.total;
          first_bug =
            Some
              {
                Stats.w_bug = bug;
                w_by = by;
                w_schedule = res.Runtime.r_schedule;
                w_pc = res.Runtime.r_pc;
                w_dc = res.Runtime.r_dc;
              };
        }
      else s
  | Outcome.Ok | Outcome.Step_limit -> s

let count_run s res =
  let s = Stats.observe_run s res in
  let s =
    { s with Stats.total = s.Stats.total + 1; executions = s.executions + 1 }
  in
  bug_stats s res

(* The profiling scheduler. Maple profiles under native, uncontrolled
   execution, which is mostly run-to-block scheduling with occasional OS
   preemptions; we model that as round-robin with sparse random
   deviations. *)
let profile_choose rng (ctx : Runtime.ctx) =
  if Random.State.int rng 16 = 0 then
    match ctx.c_enabled with
    | [ t ] ->
        (* still draw, keeping the RNG stream identical *)
        ignore (Random.State.int rng 1 : int);
        t
    | enabled ->
        let enabled = Array.of_list enabled in
        enabled.(Random.State.int rng (Array.length enabled))
  else
    match
      Sct_core.Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false

(* One profiling run. The RNG is re-seeded from [(seed, i)] and the access
   history is per-run, so run [i] is independent of every other run —
   profiling shards merge by unioning the returned iRoot sets. *)
let profile_one ?(promote = fun _ -> false) ?(max_steps = 100_000) ~seed i
    program =
  let profile = new_profile () in
  let rng = Random.State.make [| seed; i; 0x3aF |] in
  let res =
    Runtime.exec ~promote ~max_steps ~record_decisions:false
      ~listener:(observe_run_pairs profile)
      ~scheduler:(profile_choose rng) program
  in
  (res, profile.observed, profile.adjacent)

(* Candidates = unobserved reversals on promoted locations, in the
   (deterministic) set order. *)
let candidates ~promote ~observed ~adjacent =
  Iroot_set.elements
    (Iroot_set.fold
       (fun r acc ->
         let rev = { r with first = r.second; second = r.first } in
         if promote r.loc && not (Iroot_set.mem rev adjacent) then
           Iroot_set.add rev acc
         else acc)
       observed Iroot_set.empty)

let kind_matches k op_kind = akind_of op_kind = k

(* The active scheduler: round-robin, but a thread about to perform the
   [second] access of the target is withheld until some other thread
   performs the [first] access — then scheduling returns to plain
   round-robin. Maple's own forcing gives up after a bounded wait (its
   "timeout" heuristics); we model that with a withholding budget
   ([patience]). *)
let active_choose ~forced ~patience target (ctx : Runtime.ctx) =
  let rt = ctx.c_rt in
  let pending_matches t k =
    match Runtime.pending_op rt t with
    | Some (Op.Access { name; kind; _ }) ->
        name = target.loc && kind_matches k kind
    | _ -> false
  in
  let pending_second t = pending_matches t target.second in
  let order =
    Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled:ctx.c_enabled
  in
  if !forced || !patience = 0 then List.hd order
  else begin
    let withheld, rest = List.partition pending_second order in
    match rest with
    | [] ->
        (* every enabled thread is withheld: release the most recently
           created one, keeping earlier ones (usually the forced party)
           parked *)
        List.fold_left max (List.hd withheld) withheld
    | t :: _ ->
        if withheld <> [] then decr patience;
        if withheld <> [] && pending_matches t target.first then
          forced := true;
        t
  end

let active_run ?(promote = fun _ -> false) ?(max_steps = 100_000) target
    program =
  let forced = ref false in
  let patience = ref 400 in
  Runtime.exec ~promote ~max_steps ~record_decisions:false
    ~scheduler:(active_choose ~forced ~patience target)
    program

(* --- the STRATEGY instance --------------------------------------------- *)

type stage = Profiling of int | Forcing of iroot list | Finished_

let strategy ?(promote = fun _ -> false) ?(profile_runs = 10) ~seed () :
    Strategy.t =
  (module struct
    let technique = "MapleAlg"
    let tracks_distinct = false

    (* the campaign length is intrinsic: [profile_runs] profiling runs plus
       one active run per candidate, regardless of the schedule limit *)
    let respects_limit = false
    let supports_prefix_batch = false
    let supports_por = false

    type state = {
      mutable stage : stage;
      mutable observed : Iroot_set.t;
      mutable adjacent : Iroot_set.t;
      (* per-run scheduler state *)
      mutable profile : profile;
      mutable rng : Random.State.t;
      a_forced : bool ref;
      a_patience : int ref;
      mutable started : bool;
    }

    let init () =
      {
        stage = (if profile_runs <= 0 then Finished_ else Profiling 0);
        observed = Iroot_set.empty;
        adjacent = Iroot_set.empty;
        profile = new_profile ();
        rng = Random.State.make [| 0 |];
        a_forced = ref false;
        a_patience = ref 400;
        started = false;
      }

    let finished =
      Strategy.Finished
        {
          (* every candidate was attempted: Maple's heuristic termination *)
          f_complete = true;
          f_bound = None;
          f_bound_complete = false;
          f_new_at_bound = false;
        }

    let next_phase st =
      if st.started then finished
      else begin
        st.started <- true;
        match st.stage with
        | Finished_ -> finished
        | Profiling _ | Forcing _ ->
            Strategy.Phase { ph_bound = None; ph_new_at_bound = false }
      end

    let begin_run st =
      match st.stage with
      | Profiling i ->
          st.profile <- new_profile ();
          st.rng <- Random.State.make [| seed; i; 0x3aF |]
      | Forcing (_ :: _) ->
          st.a_forced := false;
          st.a_patience := 400
      | Forcing [] | Finished_ -> assert false

    let listener st =
      match st.stage with
      | Profiling _ -> Some (observe_run_pairs st.profile)
      | Forcing _ | Finished_ -> None

    let choose st ctx =
      match st.stage with
      | Profiling _ -> profile_choose st.rng ctx
      | Forcing (c :: _) ->
          active_choose ~forced:st.a_forced ~patience:st.a_patience c ctx
      | Forcing [] | Finished_ -> assert false

    let on_terminal st (res : Runtime.result) =
      let bug =
        match res.Runtime.r_outcome with
        | Outcome.Bug _ -> true
        | Outcome.Ok | Outcome.Step_limit -> false
      in
      (match st.stage with
      | Profiling i ->
          st.observed <- Iroot_set.union st.observed st.profile.observed;
          st.adjacent <- Iroot_set.union st.adjacent st.profile.adjacent;
          if bug then st.stage <- Finished_
          else if i + 1 < profile_runs then st.stage <- Profiling (i + 1)
          else begin
            match
              candidates ~promote ~observed:st.observed ~adjacent:st.adjacent
            with
            | [] -> st.stage <- Finished_
            | cs -> st.stage <- Forcing cs
          end
      | Forcing (_ :: rest) ->
          if bug || rest = [] then st.stage <- Finished_
          else st.stage <- Forcing rest
      | Forcing [] | Finished_ -> assert false);
      {
        Strategy.v_counts = true;
        v_phase_over =
          (match st.stage with Finished_ -> true | _ -> false);
        v_cut = false;
      }
  end)

let explore ?promote ?max_steps ?(profile_runs = 10) ?deadline ~seed program =
  Driver.explore ?promote ?max_steps ?deadline ~limit:max_int
    (strategy ?promote ~profile_runs ~seed ())
    program

(* --- the batched sharding capability ------------------------------------ *)

(* Profiling runs are independent: they execute on any domain and their
   iRoot sets are unioned by commit closures in run order, truncated at the
   first buggy run (the point where the sequential algorithm stops
   profiling). Candidates are generated once the profiling batch is fully
   absorbed; active runs are deterministic per candidate and merged in
   candidate order up to the first bug. *)
let batches ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(profile_runs = 10) ~seed program : Strategy.run_batches =
  let stats = ref (Stats.base ~technique:"MapleAlg") in
  let observed = ref Iroot_set.empty in
  let adjacent = ref Iroot_set.empty in
  let stage = ref `Profile in
  let rb_next () =
    match !stage with
    | `Profile ->
        stage := `Force;
        Some
          (List.init profile_runs (fun i () ->
               let res, obs, adj =
                 profile_one ~promote ~max_steps ~seed i program
               in
               ( res,
                 fun () ->
                   observed := Iroot_set.union !observed obs;
                   adjacent := Iroot_set.union !adjacent adj )))
    | `Force ->
        stage := `Done;
        if Stats.found !stats then None
        else
          Some
            (List.map
               (fun c () ->
                 (active_run ~promote ~max_steps c program, fun () -> ()))
               (candidates ~promote ~observed:!observed ~adjacent:!adjacent))
    | `Done -> None
  in
  {
    Strategy.rb_next;
    rb_found = (fun () -> Stats.found !stats);
    rb_absorb = (fun res -> stats := count_run !stats res);
    rb_finish = (fun () -> { !stats with Stats.complete = true });
  }
