open Sct_core

type kind =
  | Preemption_bounding
  | Delay_bounding
  | Variable_bounding
  | Thread_bounding

let technique_name = function
  | Preemption_bounding -> "IPB"
  | Delay_bounding -> "IDB"
  | Variable_bounding -> "IVB"
  | Thread_bounding -> "ITB"

let bound_of kind c =
  match kind with
  | Preemption_bounding -> Dfs.Preemption c
  | Delay_bounding -> Dfs.Delay c
  | Variable_bounding -> Dfs.Variable c
  | Thread_bounding -> Dfs.Threads c

(* The structural kinds are the paper's: their per-level trees can be
   restructured by the prefix-batch and POR machineries. The footprint
   kinds (IVB/ITB) have path-dependent level counting, which neither
   machinery supports. *)
let structural = function
  | Preemption_bounding | Delay_bounding -> true
  | Variable_bounding | Thread_bounding -> false

(* One bound level's walk, plain or reduced: the level strategy below is
   generic over which core enumerates the level's tree. *)
type level_walk = {
  lw_begin_run : unit -> unit;
  lw_choose : Sct_core.Runtime.ctx -> Sct_core.Tid.t;
  lw_on_terminal : Sct_core.Runtime.result -> Strategy.verdict;
  lw_pruned : unit -> bool;
  lw_aux_pruned : unit -> bool;
      (** the level lost executions to an execution-level filter (fair
          bounding): exhausting an unpruned level no longer proves the
          whole space explored *)
}

let plain_walk ?fair c ~kind =
  let w = Dfs.Walk.make ~count_exact:c ?fair ~bound:(bound_of kind c) () in
  {
    lw_begin_run = (fun () -> Dfs.Walk.begin_run w);
    lw_choose = Dfs.Walk.choose w;
    lw_on_terminal = Dfs.Walk.on_terminal w;
    lw_pruned = (fun () -> Dfs.Walk.pruned w);
    lw_aux_pruned = (fun () -> Dfs.Walk.aux_pruned w);
  }

let por_walk c ~kind ~mode ~on_prune =
  let w =
    Por.Walk.make ~on_prune ~count_exact:c ~mode ~bound:(bound_of kind c) ()
  in
  {
    lw_begin_run = (fun () -> Por.Walk.begin_run w);
    lw_choose = Por.Walk.choose w;
    lw_on_terminal = Por.Walk.on_terminal w;
    lw_pruned = (fun () -> Por.Walk.pruned w);
    lw_aux_pruned = (fun () -> false);
  }

(* The iterative-bounding campaign as a STRATEGY: one phase per bound
   level, each phase a fresh count-exact walk of the whole tree. The level
   progression of the paper (§2, §5):

   - a bug among the level's counted schedules finishes the campaign once
     the level is exhausted (the paper completes the level for worst-case
     analysis; [bound_complete] is true in that case);
   - a level that exhausts without pruning anything has explored the whole
     schedule space ([complete]);
   - otherwise the next level starts, up to [max_levels].

   With [por], each level runs the BPOR reduction walk instead of the
   plain count-exact walk: the level progression is unchanged, because
   [Por.Walk.pruned] reports bound cut-offs exactly like the plain walk
   (including backtrack points deferred to the next level) and never
   reports sleep-set pruning, which is covered within the level. *)
let strategy ?(max_levels = 64) ?por ?fair ?technique
    ?(on_prune = fun () -> ()) ~kind () : Strategy.t =
  (module struct
    let technique =
      match technique with Some t -> t | None -> technique_name kind

    let tracks_distinct = false
    let respects_limit = true

    (* the batch/POR machineries restructure the level's tree, which is
       only sound for the structural kinds without execution-level
       filters *)
    let supports_prefix_batch = structural kind && fair = None
    let supports_por = structural kind && fair = None

    type state = {
      mutable c : int;
      mutable walk : level_walk;
      mutable found : bool;  (** bug among this level's counted schedules *)
      mutable any_aux : bool;
          (** some level lost executions to the fair filter *)
      mutable started : bool;
    }

    let walk_at c =
      match por with
      | None -> plain_walk ?fair c ~kind
      | Some mode -> por_walk c ~kind ~mode ~on_prune

    let init () =
      { c = 0; walk = walk_at 0; found = false; any_aux = false;
        started = false }

    let phase c =
      Strategy.Phase { ph_bound = Some c; ph_new_at_bound = true }

    let next_phase st =
      if not st.started then begin
        st.started <- true;
        phase 0
      end
      else begin
      if st.walk.lw_aux_pruned () then st.any_aux <- true;
      if st.found then
        (* the level is exhausted here (the driver consults us only on a
           phase-over verdict), hence bound_complete *)
        Strategy.Finished
          {
            f_complete = false;
            f_bound = Some st.c;
            f_bound_complete = true;
            f_new_at_bound = true;
          }
      else if not (st.walk.lw_pruned ()) then
        (* nothing was cut off by the structural bound: the whole schedule
           space has been explored — unless the fair filter cut some
           executions, which no structural bound level would restore *)
        Strategy.Finished
          {
            f_complete = not st.any_aux;
            f_bound = Some st.c;
            f_bound_complete = true;
            f_new_at_bound = true;
          }
      else begin
        let c = st.c + 1 in
        if c > max_levels then
          Strategy.Finished
            {
              f_complete = false;
              f_bound = Some c;
              f_bound_complete = false;
              f_new_at_bound = false;
            }
        else begin
          st.c <- c;
          st.walk <- walk_at c;
          st.found <- false;
          phase c
        end
      end
      end

    let begin_run st = st.walk.lw_begin_run ()
    let listener _ = None
    let choose st ctx = st.walk.lw_choose ctx

    let on_terminal st res =
      let v = st.walk.lw_on_terminal res in
      (if v.Strategy.v_counts then
         match res.Runtime.r_outcome with
         | Outcome.Bug _ -> st.found <- true
         | Outcome.Ok | Outcome.Step_limit -> ());
      v
  end)

let explore ?promote ?max_steps ?max_levels ?por ?fair ?technique ?on_prune
    ?deadline ~kind ~limit program =
  (* reduced campaigns budget raw executions too (see Driver.explore) *)
  let max_executions = match por with Some _ -> Some limit | None -> None in
  Driver.explore ?promote ?max_steps ?max_executions ?deadline ~limit
    (strategy ?max_levels ?por ?fair ?technique ?on_prune ~kind ())
    program

(* The same level progression over an abstract walk runner — the shape the
   frontier-partitioned parallel engine instantiates ([Shard_tree]). The
   sequential path above goes through the driver instead; the two agree by
   the level-by-level correspondence checked in test/test_parallel.ml. *)
let level_loop ?(max_levels = 64) ~technique
    ~(walk : c:int -> limit:int -> Strategy.walk_result) ~limit () =
  let rec level c (acc : Stats.t) =
    if acc.Stats.total >= limit then
      { acc with Stats.bound = Some c; hit_limit = true }
    else if c > max_levels then { acc with Stats.bound = Some c }
    else begin
      let r = walk ~c ~limit:(limit - acc.Stats.total) in
      let acc =
        {
          acc with
          Stats.total = acc.Stats.total + r.Strategy.counted;
          buggy = acc.Stats.buggy + r.Strategy.buggy;
          executions = acc.Stats.executions + r.Strategy.executions;
          steps_executed = acc.Stats.steps_executed + r.Strategy.steps_executed;
          steps_saved = acc.Stats.steps_saved + r.Strategy.steps_saved;
          hit_deadline = acc.Stats.hit_deadline || r.Strategy.hit_deadline;
          n_threads = max acc.Stats.n_threads r.Strategy.n_threads;
          max_enabled = max acc.Stats.max_enabled r.Strategy.max_enabled;
          max_sched_points =
            max acc.Stats.max_sched_points r.Strategy.max_sched_points;
        }
      in
      match r.Strategy.to_first_bug with
      | Some i ->
          (* Bug found at this level; the level has been fully explored
             (unless the limit or the deadline intervened), per the paper's
             method. *)
          {
            acc with
            Stats.bound = Some c;
            bound_complete = r.Strategy.complete;
            to_first_bug = Some (acc.Stats.total - r.Strategy.counted + i);
            new_at_bound = r.Strategy.counted;
            first_bug = r.Strategy.first_bug;
            hit_limit = r.Strategy.hit_limit;
          }
      | None ->
          if r.Strategy.hit_limit then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = false;
              new_at_bound = r.Strategy.counted;
              hit_limit = true;
            }
          else if r.Strategy.hit_deadline then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = false;
              new_at_bound = r.Strategy.counted;
            }
          else if not r.Strategy.pruned then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = true;
              new_at_bound = r.Strategy.counted;
              complete = true;
            }
          else level (c + 1) acc
    end
  in
  level 0 (Stats.base ~technique)

(* The batched campaign: the same level progression, each level's
   count-exact walk routed through the prefix-batching executor. *)
let explore_batched ?promote ?max_steps ?max_levels ?fork ?deadline ~kind
    ~limit program =
  level_loop ?max_levels ~technique:(technique_name kind)
    ~walk:(fun ~c ~limit ->
      Prefix_exec.explore ?promote ?max_steps ?fork ?deadline ~count_exact:c
        ~bound:(bound_of kind c) ~limit program)
    ~limit ()

let tree_campaign ?promote ?max_steps ?max_levels ?deadline ~kind ~limit
    program run =
  level_loop ?max_levels ~technique:(technique_name kind)
    ~walk:(fun ~c ~limit ->
      run
        (Dfs.tree_walk ?promote ?max_steps ?deadline ~count_exact:c
           ~bound:(bound_of kind c) program)
        ~limit)
    ~limit ()
