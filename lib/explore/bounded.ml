type kind = Preemption_bounding | Delay_bounding

let technique_name = function
  | Preemption_bounding -> "IPB"
  | Delay_bounding -> "IDB"

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(max_levels = 64) ~kind ~limit program =
  let wrap c =
    match kind with
    | Preemption_bounding -> Dfs.Preemption c
    | Delay_bounding -> Dfs.Delay c
  in
  let rec level c (acc : Stats.t) =
    if acc.Stats.total >= limit then
      { acc with Stats.bound = Some c; hit_limit = true }
    else if c > max_levels then { acc with Stats.bound = Some c }
    else begin
      let r =
        Dfs.explore ~promote ~max_steps ~count_exact:c ~bound:(wrap c)
          ~limit:(limit - acc.Stats.total) program
      in
      let acc =
        {
          acc with
          Stats.total = acc.Stats.total + r.Dfs.counted;
          buggy = acc.Stats.buggy + r.Dfs.buggy;
          executions = acc.Stats.executions + r.Dfs.executions;
          n_threads = max acc.Stats.n_threads r.Dfs.n_threads;
          max_enabled = max acc.Stats.max_enabled r.Dfs.max_enabled;
          max_sched_points =
            max acc.Stats.max_sched_points r.Dfs.max_sched_points;
        }
      in
      match r.Dfs.to_first_bug with
      | Some i ->
          (* Bug found at this level; the level has been fully explored
             (unless the limit intervened), per the paper's method. *)
          {
            acc with
            Stats.bound = Some c;
            bound_complete = r.Dfs.complete;
            to_first_bug = Some (acc.Stats.total - r.Dfs.counted + i);
            new_at_bound = r.Dfs.counted;
            first_bug = r.Dfs.first_bug;
            hit_limit = r.Dfs.hit_limit;
          }
      | None ->
          if r.Dfs.hit_limit then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = false;
              new_at_bound = r.Dfs.counted;
              hit_limit = true;
            }
          else if not r.Dfs.pruned then
            (* Nothing was cut off by the bound: the whole schedule space
               has been explored; no bug exists for this benchmark model. *)
            {
              acc with
              Stats.bound = Some c;
              bound_complete = true;
              new_at_bound = r.Dfs.counted;
              complete = true;
            }
          else level (c + 1) acc
    end
  in
  level 0 (Stats.base ~technique:(technique_name kind))
