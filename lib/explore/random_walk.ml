open Sct_core

(* Run [i] of a campaign depends only on [seed] and [i]: the RNG is
   re-seeded per run, so any contiguous sharding of the run range replays
   the sequential campaign exactly (lib/parallel relies on this). *)
let run_one ~promote ~max_steps ~seed i program =
  let rng = Random.State.make [| seed; i |] in
  let scheduler (ctx : Runtime.ctx) =
    match ctx.c_enabled with
    | [ t ] ->
        (* still draw, so the RNG stream matches the general case exactly *)
        ignore (Random.State.int rng 1 : int);
        t
    | enabled ->
        (* one O(n) conversion, then O(1) indexing — [List.nth] here cost a
           second traversal of the enabled list at every decision *)
        let enabled = Array.of_list enabled in
        enabled.(Random.State.int rng (Array.length enabled))
  in
  Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler program

let explore_shard ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(stop_on_bug = false) ~seed ~lo ~hi program =
  let stats = ref (Stats.base ~technique:"Rand") in
  let seen = ref Stats.Sched_set.empty in
  let continue_ = ref true in
  let i = ref lo in
  while !continue_ && !i < hi do
    let res = run_one ~promote ~max_steps ~seed !i program in
    seen := Stats.Sched_set.add (Schedule.to_list res.Runtime.r_schedule) !seen;
    let s = Stats.observe_run !stats res in
    let s =
      { s with Stats.total = s.Stats.total + 1; executions = s.executions + 1 }
    in
    let s =
      match res.Runtime.r_outcome with
      | Outcome.Bug { bug; by } ->
          let s = { s with Stats.buggy = s.Stats.buggy + 1 } in
          if s.Stats.to_first_bug = None then begin
            if stop_on_bug then continue_ := false;
            {
              s with
              (* 1-based absolute run index, so shard results merge into
                 the same index space as a sequential campaign *)
              Stats.to_first_bug = Some (!i + 1);
              first_bug =
                Some
                  {
                    Stats.w_bug = bug;
                    w_by = by;
                    w_schedule = res.Runtime.r_schedule;
                    w_pc = res.Runtime.r_pc;
                    w_dc = res.Runtime.r_dc;
                  };
            }
          end
          else s
      | Outcome.Ok | Outcome.Step_limit -> s
    in
    stats := s;
    incr i
  done;
  { !stats with Stats.hit_limit = true; distinct_schedules = Some !seen }

let explore ?promote ?max_steps ?stop_on_bug ~seed ~runs program =
  explore_shard ?promote ?max_steps ?stop_on_bug ~seed ~lo:0 ~hi:runs program
