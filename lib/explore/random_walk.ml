open Sct_core

(* Run [i] of a campaign depends only on [seed] and [i]: the RNG is
   re-seeded per run, so any contiguous sharding of the run range replays
   the sequential campaign exactly (lib/parallel relies on this). *)

(* One uniform draw per scheduling point. On a singleton enabled set the
   draw is still performed, so the RNG stream matches the general case
   exactly. *)
let uniform_choose rng (ctx : Runtime.ctx) =
  match ctx.c_enabled with
  | [ t ] ->
      ignore (Random.State.int rng 1 : int);
      t
  | enabled ->
      (* one O(n) conversion, then O(1) indexing — [List.nth] here cost a
         second traversal of the enabled list at every decision *)
      let enabled = Array.of_list enabled in
      enabled.(Random.State.int rng (Array.length enabled))

let strategy ?(seed = 0) ?(lo = 0) () : Strategy.t =
  (module struct
    let technique = "Rand"
    let tracks_distinct = true
    let respects_limit = true
    let supports_prefix_batch = false
    let supports_por = false

    type state = { mutable i : int; mutable rng : Random.State.t }

    let init () = { i = lo; rng = Random.State.make [| 0 |] }

    (* a single never-ending phase: only the budget or the deadline stops a
       random walk *)
    let next_phase st =
      if st.i > lo then
        Strategy.Finished
          {
            f_complete = false;
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else Strategy.Phase { ph_bound = None; ph_new_at_bound = false }

    let begin_run st =
      st.rng <- Random.State.make [| seed; st.i |];
      st.i <- st.i + 1

    let listener _ = None
    let choose st ctx = uniform_choose st.rng ctx
    let on_terminal _ _ =
      { Strategy.v_counts = true; v_phase_over = false; v_cut = false }
  end)

let explore_shard ?promote ?max_steps ?stop_on_bug ?deadline ~seed ~lo ~hi
    program =
  let s =
    Driver.explore ?promote ?max_steps ?stop_on_bug ?deadline
      ~count_offset:lo ~limit:(hi - lo)
      (strategy ~seed ~lo ())
      program
  in
  (* a random campaign is always budget-truncated, even when it stopped on
     a bug or covers an empty shard *)
  { s with Stats.hit_limit = true }

let explore ?promote ?max_steps ?stop_on_bug ?deadline ~seed ~runs program =
  explore_shard ?promote ?max_steps ?stop_on_bug ?deadline ~seed ~lo:0
    ~hi:runs program

let sharding ?promote ?max_steps ?deadline ~seed program =
  Strategy.Shard_seed
    (fun ~lo ~hi ->
      explore_shard ?promote ?max_steps ?deadline ~seed ~lo ~hi program)
