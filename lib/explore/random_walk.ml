open Sct_core

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(stop_on_bug = false) ~seed ~runs program =
  let stats = ref (Stats.base ~technique:"Rand") in
  (* keyed by the schedule itself: the default hash only inspects a prefix,
     but full structural equality resolves collisions correctly *)
  let seen : (Tid.t list, unit) Hashtbl.t = Hashtbl.create 1024 in
  let continue_ = ref true in
  let i = ref 0 in
  while !continue_ && !i < runs do
    let rng = Random.State.make [| seed; !i |] in
    let scheduler (ctx : Runtime.ctx) =
      List.nth ctx.c_enabled (Random.State.int rng (List.length ctx.c_enabled))
    in
    let res =
      Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler
        program
    in
    Hashtbl.replace seen (Schedule.to_list res.Runtime.r_schedule) ();
    let s = Stats.observe_run !stats res in
    let s =
      {
        s with
        Stats.total = s.Stats.total + 1;
        executions = s.executions + 1;
        distinct = Some (Hashtbl.length seen);
      }
    in
    let s =
      match res.Runtime.r_outcome with
      | Outcome.Bug { bug; by } ->
          let s = { s with Stats.buggy = s.Stats.buggy + 1 } in
          if s.Stats.to_first_bug = None then begin
            if stop_on_bug then continue_ := false;
            {
              s with
              Stats.to_first_bug = Some s.Stats.total;
              first_bug =
                Some
                  {
                    Stats.w_bug = bug;
                    w_by = by;
                    w_schedule = res.Runtime.r_schedule;
                    w_pc = res.Runtime.r_pc;
                    w_dc = res.Runtime.r_dc;
                  };
            }
          end
          else s
      | Outcome.Ok | Outcome.Step_limit -> s
    in
    stats := s;
    incr i
  done;
  { !stats with Stats.hit_limit = true }
