(** SURW — a selectively uniform random walk.

    A naive random walk (Rand) draws uniformly at every scheduling point,
    which over-samples schedules that exhaust short threads early. SURW
    weights each point by an a-priori estimate of the events each thread
    has left to execute, descending the schedule tree with probability
    roughly proportional to the number of terminal schedules under each
    branch — an approximately uniform sample over terminal schedules.

    The per-thread estimates are fixed for the whole campaign by one
    uncounted deterministic round-robin {!probe} (the same a-priori setup
    PCT uses for its depth range), which makes run [i] a pure function of
    [(seed, i, estimates)] and the campaign shardable by seed range.

    Not part of the paper's Table 3 — a study extension, excluded from the
    paper tables by default. *)

type estimates
(** Per-thread event-count estimates from a probe run. *)

val counts_of_schedule : Sct_core.Schedule.t -> estimates
(** Exact per-thread event counts from a traversed schedule: the runtime
    records one tid per scheduling point, so the occurrence count of each
    tid in a recorded schedule equals the count an instrumented scheduler
    would have accumulated live. This is offline path-count probing: any
    recorded prefix traversal can seed a campaign's budgets without
    re-instrumenting an execution. *)

val probe :
  ?promote:(string -> bool) -> ?max_steps:int -> (unit -> unit) -> estimates
(** One uncounted deterministic round-robin execution; its recorded
    traversal is folded through {!counts_of_schedule}, yielding how many
    times each thread was scheduled — the campaign's per-thread budgets. *)

val strategy :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?estimates:estimates ->
  ?lo:int ->
  seed:int ->
  (unit -> unit) ->
  unit ->
  Strategy.t
(** The SURW strategy starting at absolute run index [lo]. Without
    [estimates], the per-thread budgets are fixed by one uncounted {!probe}
    run on setup. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?deadline:float ->
  seed:int ->
  runs:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~seed ~runs program] probes once and performs [runs] weighted
    random executions. *)

val explore_shard :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?deadline:float ->
  estimates:estimates ->
  seed:int ->
  lo:int ->
  hi:int ->
  (unit -> unit) ->
  Stats.t
(** [explore_shard ~estimates ~seed ~lo ~hi program] performs runs [lo, hi)
    of the campaign with the fixed estimates. [to_first_bug] is an absolute
    1-based run index; folding {!Stats.merge} over a partition of [0, runs)
    equals the sequential {!explore} result. *)

val sharding :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?deadline:float ->
  seed:int ->
  (unit -> unit) ->
  Strategy.sharding
(** The declared parallel plan: one probe on the collector fixes the
    estimates, then {!Strategy.Shard_seed} over {!explore_shard}. *)
