open Sct_core

(* Prefix-memoizing batched executor for systematic schedule-tree walks.

   A depth-first walk re-executes the whole program for every terminal
   schedule, yet consecutive terminals share all decisions above their
   divergence point. This module walks the same (bounded) tree in the same
   order while paying for each shared prefix once per batch of sibling
   continuations:

   - fork server (the fast path): the program runs once under a scheduler
     that, at every in-bound branching decision, [Unix.fork]s one child per
     sibling branch except the last. A forked child IS the memoized prefix
     state — process duplication is the only way to snapshot an OCaml 5
     effects-based execution, whose continuations are one-shot. Terminal
     results are piped back to the collector (the original process) in
     exact sequential DFS order; a control byte per terminal propagates the
     budget/deadline stop decision back into the process tree.

   - re-execution fallback (the portable path): delegate to the classic
     backtracking walk ({!Dfs.explore}), which replays every prefix.

   Both back-ends report the same *analytic* step counters, derived from
   the stream of terminal schedules alone: the divergence depth of
   consecutive terminals is exactly the fork depth, so [steps_saved] is the
   number of decisions the fork server did not re-execute and
   [steps_executed + steps_saved] is the sum of terminal schedule lengths
   (what an unbatched campaign pays). Statistics are therefore
   byte-identical whichever back-end ran — and identical to the unbatched
   driver except for the two step counters. *)

(* --- fork availability -------------------------------------------------- *)

(* The OCaml runtime permanently refuses [Unix.fork] in any process that
   ever spawned a second domain — not just while one is alive. The parallel
   pool records its first domain spawn here, which disables the fork server
   for the remainder of the process; single-domain runs (the CLI's inline
   one-job pool, sequential campaigns) keep the fast path. *)
let domains_spawned = Atomic.make false
let note_domains_spawned () = Atomic.set domains_spawned true

let fork_available () =
  Sys.os_type = "Unix"
  && Domain.is_main_domain ()
  && not (Atomic.get domains_spawned)

(* --- analytic step accounting ------------------------------------------- *)

let rec common_prefix_len n (a : Tid.t list) (b : Tid.t list) =
  match (a, b) with
  | x :: a', y :: b' when Tid.equal x y -> common_prefix_len (n + 1) a' b'
  | _ -> n

(* Folds the terminal-schedule stream into the two step counters. The
   divergence depth of consecutive terminals (in DFS order) is the length
   of the prefix the fork server kept alive — the first terminal of a walk
   pays its full schedule. *)
type steps_acc = {
  mutable sa_prev : Tid.t list option;
  mutable sa_executed : int;
  mutable sa_saved : int;
}

let steps_acc () = { sa_prev = None; sa_executed = 0; sa_saved = 0 }

let steps_observe acc (res : Runtime.result) =
  let sched = Schedule.to_list res.r_schedule in
  let div =
    match acc.sa_prev with
    | None -> 0
    | Some prev -> common_prefix_len 0 prev sched
  in
  acc.sa_executed <- acc.sa_executed + res.r_steps - div;
  acc.sa_saved <- acc.sa_saved + div;
  acc.sa_prev <- Some sched

(* --- re-execution fallback ---------------------------------------------- *)

let fallback_explore ?promote ?max_steps ?count_exact ?prefix ?deadline ~bound
    ~limit program =
  let acc = steps_acc () in
  let on_exec res _fi = steps_observe acc res in
  let r =
    Dfs.explore ?promote ?max_steps ?count_exact ?prefix ?deadline ~on_exec
      ~bound ~limit program
  in
  { r with Strategy.steps_executed = acc.sa_executed; steps_saved = acc.sa_saved }

(* --- fork-server pipes --------------------------------------------------- *)

let rec really_write fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    really_write fd buf (pos + n) (len - n)
  end

(* [Some] on a full read, [None] on EOF at the first byte; EOF mid-record
   can only follow a worker crash, which the root exit status reports. *)
let really_read fd buf len =
  let rec go pos =
    if pos >= len then true
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> if pos = 0 then false else failwith "Prefix_exec: torn record"
      | n -> go (pos + n)
  in
  go 0

let write_frame fd payload =
  let header = Bytes.create 4 in
  Bytes.set_int32_le header 0 (Int32.of_int (Bytes.length payload));
  really_write fd header 0 4;
  really_write fd payload 0 (Bytes.length payload)

let read_frame fd =
  let header = Bytes.create 4 in
  if not (really_read fd header 4) then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_le header 0) in
    let payload = Bytes.create len in
    if not (really_read fd payload len) then
      failwith "Prefix_exec: torn record";
    Some payload
  end

(* --- the fork-server worker --------------------------------------------- *)

let exit_ok = 0
let exit_error = 2
let exit_stopped = 3

(* Runs in the forked worker tree; never returns. The process executes the
   program once under a scheduler that forks at every branching decision:
   the child takes the first untried branch, the parent waits for the
   child's whole subtree before trying the next. Exactly one process is
   ever running (the rest block in [waitpid]), so terminal frames hit the
   result pipe strictly in sequential DFS order and never interleave. *)
let run_worker ~result_w ~control_r ?promote ?max_steps ~(prefix : Strategy.prefix)
    ~bound program : 'never =
  let bound_c =
    match bound with
    | Dfs.Unbounded -> max_int
    | Dfs.Preemption c | Dfs.Delay c -> c
    | Dfs.Variable _ | Dfs.Threads _ ->
        (* the footprint bounds declare [supports_prefix_batch = false] *)
        invalid_arg "Sct_explore.Prefix_exec: footprint bounds are unsupported"
  in
  let depth = ref 0 in
  let cur = ref 0 in
  let pruned = ref false in
  let delta (ctx : Runtime.ctx) t =
    match bound with
    | Dfs.Unbounded -> 0
    | Dfs.Preemption _ ->
        Preemption.delta ~last:ctx.c_last ~enabled:ctx.c_enabled t
    | Dfs.Delay _ ->
        Delay.delays ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled:ctx.c_enabled
          t
    | Dfs.Variable _ | Dfs.Threads _ -> assert false (* rejected above *)
  in
  let reap pid =
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n when n = exit_stopped ->
        (* the collector stopped the campaign inside the child's subtree:
           abandon our remaining branches and tell our own parent *)
        Unix._exit exit_stopped
    | _ -> Unix._exit exit_error
  in
  (* all but the last branch go to forked children, in sibling order; the
     reap between forks is what serializes the process tree *)
  let rec branch = function
    | [] -> assert false
    | [ t ] -> t
    | t :: rest -> (
        match Unix.fork () with
        | 0 -> t
        | pid ->
            reap pid;
            branch rest)
  in
  let scheduler (ctx : Runtime.ctx) =
    let i = !depth in
    incr depth;
    if i < Array.length prefix then begin
      let chosen, enabled = prefix.(i) in
      if Runtime.fingerprint enabled <> ctx.c_enabled_fp then
        failwith
          (Printf.sprintf
             "Sct_explore.Prefix_exec: nondeterministic program: enabled \
              set mismatch at decision %d (is the program's state created \
              inside its closure?)"
             i);
      cur := !cur + delta ctx chosen;
      chosen
    end
    else
      match ctx.c_enabled with
      | [ t ] -> t (* the only child; its delta is 0 *)
      | enabled ->
          let order =
            Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last ~enabled
          in
          let allowed =
            List.filter (fun t -> !cur + delta ctx t <= bound_c) order
          in
          if List.compare_lengths allowed order < 0 then pruned := true;
          (* children inherit [pruned]: a pruning event reaches the
             collector with the first terminal of the pruned decision's
             subtree, exactly when a sequential walk would observe it *)
          let t = branch allowed in
          cur := !cur + delta ctx t;
          t
  in
  let code =
    try
      let res =
        Runtime.exec ?promote ?max_steps ~record_decisions:false ~scheduler
          program
      in
      write_frame result_w (Marshal.to_bytes (res, !pruned) []);
      let b = Bytes.create 1 in
      if really_read control_r b 1 && Bytes.get b 0 = 'c' then exit_ok
      else exit_stopped
    with _ -> exit_error
  in
  (* [_exit]: never flush channel buffers inherited from the collector *)
  Unix._exit code

(* --- the collector ------------------------------------------------------ *)

(* Replicates Driver.explore's stop bookkeeping exactly: the budget check
   precedes the deadline check after every terminal (counted or not), and a
   stop leaves [complete] false even when it lands on the last terminal. *)
let fork_explore ?promote ?max_steps ?count_exact ?(prefix = [||]) ?deadline
    ~bound ~limit program : Strategy.walk_result =
  let counts (res : Runtime.result) =
    let exact =
      match bound with
      | Dfs.Unbounded | Dfs.Preemption _ -> res.r_pc
      | Dfs.Delay _ -> res.r_dc
      | Dfs.Variable _ | Dfs.Threads _ ->
          invalid_arg
            "Sct_explore.Prefix_exec: footprint bounds are unsupported"
    in
    match count_exact with None -> true | Some c -> exact = c
  in
  let result_r, result_w = Unix.pipe ~cloexec:false () in
  let control_r, control_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close result_r;
      Unix.close control_w;
      run_worker ~result_w ~control_r ?promote ?max_steps ~prefix ~bound
        program
  | root_pid ->
      Unix.close result_w;
      Unix.close control_r;
      let counted = ref 0 in
      let buggy = ref 0 in
      let to_first_bug = ref None in
      let first_bug = ref None in
      let executions = ref 0 in
      let n_threads = ref 0 in
      let max_enabled = ref 0 in
      let max_points = ref 0 in
      let pruned = ref false in
      let hit_limit = ref false in
      let hit_deadline = ref false in
      let stopped = ref false in
      let acc = steps_acc () in
      let finish () =
        Unix.close result_r;
        Unix.close control_w;
        match snd (Unix.waitpid [] root_pid) with
        | Unix.WEXITED n when n = exit_error ->
            failwith "Sct_explore.Prefix_exec: worker process failed"
        | _ -> ()
      in
      let collect () =
        let control = Bytes.create 1 in
        let rec loop () =
          match read_frame result_r with
          | None -> () (* EOF: the tree is exhausted *)
          | Some payload ->
              let (res : Runtime.result), (w_pruned : bool) =
                Marshal.from_bytes payload 0
              in
              incr executions;
              steps_observe acc res;
              n_threads := max !n_threads res.r_n_threads;
              max_enabled := max !max_enabled res.r_max_enabled;
              max_points := max !max_points res.r_multi_points;
              pruned := !pruned || w_pruned;
              if counts res then begin
                incr counted;
                match res.r_outcome with
                | Outcome.Bug { bug; by } ->
                    incr buggy;
                    if !to_first_bug = None then begin
                      to_first_bug := Some !counted;
                      first_bug :=
                        Some
                          {
                            Stats.w_bug = bug;
                            w_by = by;
                            w_schedule = res.r_schedule;
                            w_pc = res.r_pc;
                            w_dc = res.r_dc;
                          }
                    end
                | Outcome.Ok | Outcome.Step_limit -> ()
              end;
              let stop =
                if !counted >= limit then begin
                  hit_limit := true;
                  true
                end
                else
                  match deadline with
                  | Some dl when Unix.gettimeofday () > dl ->
                      hit_deadline := true;
                      true
                  | _ -> false
              in
              Bytes.set control 0 (if stop then 's' else 'c');
              really_write control_w control 0 1;
              if stop then stopped := true else loop ()
        in
        loop ()
      in
      (match collect () with
      | () -> finish ()
      | exception e ->
          (try finish () with _ -> ());
          raise e);
      {
        Strategy.counted = !counted;
        buggy = !buggy;
        to_first_bug = !to_first_bug;
        first_bug = !first_bug;
        pruned = !pruned;
        hit_limit = !hit_limit;
        hit_deadline = !hit_deadline;
        complete = not !stopped;
        executions = !executions;
        steps_executed = acc.sa_executed;
        steps_saved = acc.sa_saved;
        n_threads = !n_threads;
        max_enabled = !max_enabled;
        max_sched_points = !max_points;
      }

(* --- entry point -------------------------------------------------------- *)

let explore ?promote ?max_steps ?count_exact ?prefix ?fork ?deadline ~bound
    ~limit program =
  let use_fork =
    match fork with Some b -> b | None -> fork_available ()
  in
  if (not use_fork) || limit <= 0 then
    fallback_explore ?promote ?max_steps ?count_exact ?prefix ?deadline ~bound
      ~limit program
  else
    fork_explore ?promote ?max_steps ?count_exact ?prefix ?deadline ~bound
      ~limit program
