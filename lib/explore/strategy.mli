(** The first-class technique interface.

    Every concurrency-testing technique of the study — DFS, IPB, IDB, Rand,
    PCT, MapleAlg, and the SURW extension — is an instance of the
    {!STRATEGY} signature, executed by the single generic driver
    ({!Driver.explore}). The strategy owns {e what to run next}; the driver
    owns everything cross-cutting: the schedule budget, the wall-clock
    deadline, statistics accumulation into {!Stats.t}, distinct-schedule
    tracking, bug witnesses and event hooks. See DESIGN.md §10.

    A campaign is a sequence of {e phases} (iterative bounding runs one
    phase per bound level; every other technique has exactly one phase).
    Within a phase the driver repeatedly asks the strategy to schedule one
    execution; the strategy's {!STRATEGY.on_terminal} verdict says whether
    the terminal schedule counts against the budget and whether the phase
    is over. *)

type phase = {
  ph_bound : int option;
      (** the bound level being explored; recorded as [Stats.bound] when
          the budget or the deadline stops the campaign inside this phase *)
  ph_new_at_bound : bool;
      (** when true, the schedules counted during this phase are the
          paper's "new at final bound" statistic if the campaign stops
          inside (or right after) this phase *)
}

type finish = {
  f_complete : bool;  (** the whole schedule space was explored *)
  f_bound : int option;  (** final [Stats.bound] *)
  f_bound_complete : bool;  (** the final bound level was fully explored *)
  f_new_at_bound : bool;
      (** when true, the last phase's counted schedules are recorded as
          [Stats.new_at_bound] *)
}

type phase_step = Phase of phase | Finished of finish

type verdict = {
  v_counts : bool;
      (** the terminal schedule counts against the budget (iterative
          bounding replays out-of-level schedules without counting them) *)
  v_phase_over : bool;  (** the phase is exhausted; ask for the next one *)
  v_cut : bool;
      (** the execution was cut mid-run by an execution-level bound (fair
          or length bounding raised {!Sct_core.Runtime.Cut}): the truncated
          prefix is not a terminal schedule ([v_counts] is false), but the
          driver charges it against the budget so cut-heavy spaces cannot
          spin without budget progress *)
}

module type STRATEGY = sig
  val technique : string
  (** Name recorded in the statistics (e.g. ["IPB"]). *)

  (** {2 Declared capabilities} *)

  val tracks_distinct : bool
  (** The technique may re-explore schedules, so the driver keeps the set
      of distinct terminal schedules (randomised techniques). *)

  val respects_limit : bool
  (** When [false] the campaign's length is intrinsic (MapleAlg attempts
      each candidate once) and the driver ignores the schedule limit. *)

  val supports_prefix_batch : bool
  (** The technique enumerates a deterministic schedule tree whose sibling
      continuations share a pinned prefix, so [Techniques.run] may route
      the campaign through {!Prefix_exec} (pay each shared prefix once per
      batch) instead of the one-run-at-a-time driver loop. True only for
      the systematic tree walkers (DFS, IPB, IDB); randomised and
      profile-guided techniques pick schedules independently, so there is
      no shared prefix structure to batch. *)

  val supports_por : bool
  (** The technique's schedule tree can be walked by the partial-order
      reduction core ({!Por.Walk}): sleep sets and DPOR backtracking prune
      schedules that only commute independent operations, and for the
      bounded walkers the reduction adds the conservative backtracking
      points of BPOR (Coons, Musuvathi, McKinley). True only for the
      systematic tree walkers (DFS, IPB, IDB) — the same set as
      [supports_prefix_batch], but the two capabilities are exclusive at
      run time: a POR cell always runs unbatched, because sleep-set state
      threads through sibling continuations in walk order and cannot be
      forked into batched children (see prefix_exec.mli). *)

  (** {2 Campaign state} *)

  type state

  val init : unit -> state
  (** Per-campaign setup; may execute uncounted probe runs (PCT, SURW). *)

  val next_phase : state -> phase_step
  (** Called before the first execution and after every phase-over verdict. *)

  val begin_run : state -> unit
  (** Called before each execution (reset per-run scheduler state). *)

  val listener : state -> (Sct_core.Event.t -> unit) option
  (** Event listener for the next execution (MapleAlg profiling); read
      after {!begin_run}. *)

  val choose : state -> Sct_core.Runtime.ctx -> Sct_core.Tid.t
  (** The scheduler: pick one of [ctx.c_enabled] at each scheduling point. *)

  val on_terminal : state -> Sct_core.Runtime.result -> verdict
  (** Observe the terminal state of the execution just run and advance the
      strategy (backtrack, move to the next seed / candidate, ...). *)
end

type t = (module STRATEGY)

(** {1 Sharding capabilities}

    How a campaign may be parallelised, declared per technique and
    interpreted generically by [Sct_parallel.Drivers] — the shape of the
    value, not the identity of the technique, decides the parallel plan. *)

type prefix = (Sct_core.Tid.t * Sct_core.Tid.t list) array
(** Pinned (chosen, enabled) decisions — a replayable subtree prefix. *)

type frontier_info = {
  fi_prefix : prefix;
  fi_branched_below : bool;
      (** the prefix denotes a subtree with more than one terminal
          schedule *)
}

type walk_result = {
  counted : int;  (** terminal schedules counted by this walk *)
  buggy : int;
  to_first_bug : int option;  (** 1-based index among counted schedules *)
  first_bug : Stats.bug_witness option;
  pruned : bool;  (** at least one child was cut off by the bound *)
  hit_limit : bool;  (** stopped because [limit] schedules were counted *)
  hit_deadline : bool;  (** stopped because the wall-clock deadline passed *)
  complete : bool;  (** the (bounded) tree was exhausted *)
  executions : int;
  steps_executed : int;
      (** analytic step cost of the walk (see {!Stats.t}): sum of terminal
          schedule lengths minus [steps_saved] *)
  steps_saved : int;
      (** steps avoided by prefix batching; [0] for unbatched walks *)
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
}
(** Result of one (bounded) schedule-tree walk; [Dfs.level_result] is an
    alias of this type. *)

type tree_walk = {
  tw_enum :
    max_branch_depth:int ->
    on_exec:(Sct_core.Runtime.result -> frontier_info -> unit) ->
    limit:int ->
    walk_result;
      (** frontier-enumeration walk: backtracking restricted to decisions
          above [max_branch_depth]; [on_exec] sees every execution's
          frontier info *)
  tw_sub : prefix:prefix -> limit:int -> walk_result;
      (** walk exactly the subtree below [prefix] *)
  tw_counts : Sct_core.Runtime.result -> bool;
      (** whether a terminal schedule counts (the level's exact-count
          filter) *)
}
(** A systematic walk, abstract enough for [Sct_parallel.Frontier] to
    partition it by subtree without knowing the bound function. *)

type batched_run = unit -> Sct_core.Runtime.result * (unit -> unit)
(** An independent run: executed on any domain, it returns the execution
    result and a commit closure the collector applies in sequential order
    (MapleAlg unions per-run iRoot sets this way). *)

type run_batches = {
  rb_next : unit -> batched_run list option;
      (** next batch of independent runs, or [None] when the campaign is
          over; called on the collector after the previous batch was fully
          absorbed *)
  rb_found : unit -> bool;
      (** campaign already found its bug: remaining runs of the current
          batch are discarded unabsorbed, exactly as the sequential
          algorithm would not have executed them *)
  rb_absorb : Sct_core.Runtime.result -> unit;
      (** fold one run's result, in batch order, after its commit closure *)
  rb_finish : unit -> Stats.t;
}

type sharding =
  | Shard_seed of (lo:int -> hi:int -> Stats.t)
      (** run [i] is a pure function of the campaign seed and [i]: shard
          the run range [\[0, limit)] into contiguous slices and fold
          {!Stats.merge} (Rand, PCT, SURW) *)
  | Shard_tree of ((tree_walk -> limit:int -> walk_result) -> Stats.t)
      (** systematic walks: the campaign is a function of a walk runner,
          instantiated with the frontier-partitioned parallel runner
          (DFS, IPB, IDB) *)
  | Shard_runs of run_batches
      (** finite batches of independent runs merged in order (MapleAlg) *)
