open Sct_core

type mode = Sleep | Dpor | Dpor_sleep

let mode_name = function
  | Sleep -> "sleep"
  | Dpor -> "dpor"
  | Dpor_sleep -> "dpor+sleep"

let of_mode_name s =
  match String.lowercase_ascii s with
  | "sleep" -> Some Sleep
  | "dpor" -> Some Dpor
  | "dpor+sleep" | "both" -> Some Dpor_sleep
  | _ -> None

let valid_mode_names = [ "sleep"; "dpor"; "dpor+sleep" ]

let parse_mode s =
  match of_mode_name s with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown POR mode: %s (valid: %s)" s
           (String.concat ", " valid_mode_names))

type result = {
  counted : int;
  pruned_sleep : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  complete : bool;
  hit_limit : bool;
  executions : int;
}

let op_of enabled t =
  match List.assoc_opt t enabled with
  | Some op -> op
  | None -> invalid_arg "Sct_explore.Por: thread not in enabled set"

(* The child's sleep set: parent sleep plus explored siblings, minus
   everything woken by the chosen operation. *)
let advance_sleep sleep done_ chosen_op =
  List.filter
    (fun (_, op) -> not (Op_depend.dependent chosen_op op))
    (sleep @ done_)

(* --- the reduction walk: one (bounded) level of the schedule tree ------- *)

module Walk = struct
  type frame = {
    mutable chosen : Tid.t;
    mutable todo : Tid.t list;
        (** children still to explore (added respecting the sleep set) *)
    mutable wake : Tid.t list;
        (** conservative backtracking points: explored {e ignoring} the
            sleep set, restoring soundness under a finite bound *)
    mutable done_ : (Tid.t * Op.t) list;  (** explored children, with ops *)
    mutable via_wake : bool;
        (** [chosen] was taken from [wake]: the child is explored with an
            {e empty} sleep set, because a sleeping thread's covering
            execution may itself have been cut by the bound *)
    mutable woke_all : bool;
        (** a bound-cut backtrack add already promoted every in-bound
            sibling to [wake]; later cut adds at this frame are no-ops *)
    f_enabled : (Tid.t * Op.t) list;  (** enabled threads at the node *)
    f_in_bound : Tid.t list;
        (** the enabled threads whose bound delta at this node fits the
            level bound — fixed at node creation, memoized because the
            race-driven backtrack adds query it hot (delay deltas are
            O(n·distance) to recompute) *)
    f_fp : int;  (** [Runtime.fingerprint] of the enabled tids *)
    f_sleep : (Tid.t * Op.t) list;  (** sleep set on entry to the node *)
    f_count : int;  (** bound count (preemptions / delays) on entry *)
    f_last : Tid.t option;  (** the thread that executed the previous step *)
    f_n : int;  (** thread count at the node *)
  }

  let dummy_frame =
    {
      chosen = 0;
      todo = [];
      wake = [];
      done_ = [];
      via_wake = false;
      woke_all = false;
      f_enabled = [];
      f_in_bound = [];
      f_fp = 0;
      f_sleep = [];
      f_count = 0;
      f_last = None;
      f_n = 0;
    }

  type stack = { mutable frames : frame array; mutable len : int }

  let push st fr =
    if st.len = Array.length st.frames then begin
      let bigger = Array.make (2 * st.len) dummy_frame in
      Array.blit st.frames 0 bigger 0 st.len;
      st.frames <- bigger
    end;
    st.frames.(st.len) <- fr;
    st.len <- st.len + 1

  type t = {
    with_sleep : bool;
    with_dpor : bool;
    w_bound : Dfs.bound;
    w_bound_c : int;
    w_count_exact : int option;
    w_on_prune : unit -> unit;
    st : stack;
    mutable replay_len : int;
    mutable depth : int;
    mutable cur_count : int;
    mutable cur_sleep : (Tid.t * Op.t) list;
    mutable run_pruned : bool;
        (** the current run crossed a node where every in-bound enabled
            thread slept: it does not count and records no frames *)
    mutable pruned : bool;  (** the bound cut off a reachable reordering *)
    mutable pruned_runs : int;
    mutable exhausted : bool;
    (* DPOR per-execution happens-before state. Accesses are kept per
       (object, thread) as a full history: keeping only the last access
       would shadow the lock-acquire races that make lock-handover
       reorderings reachable (a blocked thread can never be scheduled at
       the inner frames, so the only usable backtrack points are at
       earlier acquires). *)
    clocks : (Tid.t, Sct_race.Vclock.t) Hashtbl.t;
    accesses :
      (int, (Tid.t, (int * Sct_race.Vclock.t * Op.t) list) Hashtbl.t)
      Hashtbl.t;
  }

  let make ?(on_prune = fun () -> ()) ?count_exact ~mode ~bound () =
    let bounded = bound <> Dfs.Unbounded in
    {
      (* Sleep sets alone cannot prune soundly under a finite bound (see
         por.mli): without DPOR's conservative wake-ups, [Sleep] under a
         bound degenerates to the plain bounded walk. *)
      with_sleep =
        (match mode with
        | Dpor -> false
        | Dpor_sleep -> true
        | Sleep -> not bounded);
      with_dpor = (match mode with Sleep -> false | Dpor | Dpor_sleep -> true);
      w_bound = bound;
      w_bound_c =
        (match bound with
        | Dfs.Unbounded -> max_int
        | Dfs.Preemption c | Dfs.Delay c -> c
        | Dfs.Variable _ | Dfs.Threads _ ->
            (* the footprint bounds declare [supports_por = false] *)
            invalid_arg "Sct_explore.Por: footprint bounds are unsupported");
      w_count_exact = count_exact;
      w_on_prune = on_prune;
      st = { frames = Array.make 1024 dummy_frame; len = 0 };
      replay_len = 0;
      depth = 0;
      cur_count = 0;
      cur_sleep = [];
      run_pruned = false;
      pruned = false;
      pruned_runs = 0;
      exhausted = false;
      clocks = Hashtbl.create 16;
      accesses = Hashtbl.create 64;
    }

  let delta w ~last ~enabled ~n t =
    match w.w_bound with
    | Dfs.Unbounded -> 0
    | Dfs.Preemption _ -> Preemption.delta ~last ~enabled t
    | Dfs.Delay _ -> Delay.delays ~n ~last ~enabled t
    | Dfs.Variable _ | Dfs.Threads _ -> assert false (* rejected by [make] *)

  let clock_of w t =
    match Hashtbl.find_opt w.clocks t with
    | Some c -> c
    | None -> Sct_race.Vclock.tick Sct_race.Vclock.zero t

  (* Add thread [t] to a backtrack list of frame [j]. Conservative points
     ignore the sleep set (a slept thread's covering execution may have
     been cut by the bound, so it must be re-explorable). A point whose
     own bound delta at [j] exceeds the level bound is recorded as bound
     pruning — the reordering it denotes is only reachable at a higher
     bound level along {e this} prefix — and every in-bound sibling at [j]
     becomes a conservative point: the bound cost of the cut reordering
     depends on the decisions taken between [j] and the race (delay
     counting charges by position in the round-robin order), so an
     interposed independent step can make the same reordering affordable
     deeper in the tree. Exploring the in-bound siblings re-runs race
     discovery below them, which re-derives the cut point at its new,
     possibly cheaper, position. *)
  let add_point w ~conservative j p =
    let fr = w.st.frames.(j) in
    let in_bound t = List.exists (Tid.equal t) fr.f_in_bound in
    let explored t =
      Tid.equal t fr.chosen
      || List.mem_assoc t fr.done_
      || List.exists (Tid.equal t) fr.todo
      || List.exists (Tid.equal t) fr.wake
    in
    let add t =
      let asleep =
        (not conservative) && w.with_sleep && List.mem_assoc t fr.f_sleep
      in
      if (not (explored t)) && not asleep then begin
        if in_bound t then
          if conservative then fr.wake <- t :: fr.wake
          else fr.todo <- t :: fr.todo
        else begin
          w.pruned <- true;
          if not fr.woke_all then begin
            fr.woke_all <- true;
            List.iter
              (fun t ->
                if not (explored t) then fr.wake <- t :: fr.wake)
              fr.f_in_bound
          end
        end
      end
    in
    if List.mem_assoc p fr.f_enabled then add p
    else List.iter (fun (t, _) -> add t) fr.f_enabled

  (* The prior context switch at or before frame [j]: the deepest frame
     whose decision switched away from the thread that executed the
     previous step. When no switch exists the prefix is the zero-cost
     deterministic schedule; fall back to the root decision, which is
     still a point where alternative choices change bound-reachability
     (delay counting charges non-round-robin root choices). *)
  let conservative_index w j =
    let rec scan k =
      if k < 1 then 0
      else
        let fr = w.st.frames.(k) in
        let switched =
          match fr.f_last with
          | None -> true
          | Some l -> not (Tid.equal fr.chosen l)
        in
        if switched then k else scan (k - 1)
    in
    scan j

  (* Add [p] to the backtrack set of frame [j]; if [p] was not enabled
     there, add every enabled thread (Flanagan & Godefroid 2005). Under a
     finite bound, also add the conservative point of BPOR (Coons,
     Musuvathi, McKinley) at the prior context switch: bounding makes the
     non-conservative point insufficient, because alternative decisions
     at the switch change which states are reachable within the bound. *)
  let add_backtrack w j p =
    add_point w ~conservative:false j p;
    if w.w_bound_c <> max_int then
      add_point w ~conservative:true (conservative_index w j) p

  (* DPOR bookkeeping for the op about to execute at frame [i] by [p]. *)
  let dpor_step w i p op =
    let c = ref (clock_of w p) in
    (match op with
    | Op.Join target -> c := Sct_race.Vclock.join !c (clock_of w target)
    | _ -> ());
    (* Race checks are evaluated against the clock as it was before this
       scan: joining during the scan would make a thread's later accesses
       mask the races with its earlier ones. *)
    let before = !c in
    List.iter
      (fun (x, _) ->
        match Hashtbl.find_opt w.accesses x with
        | None -> ()
        | Some per_thread ->
            Hashtbl.iter
              (fun q history ->
                if not (Tid.equal q p) then
                  List.iter
                    (fun (j, cq, oq) ->
                      if Op_depend.dependent op oq then begin
                        (* race: q's access at frame j is concurrent with
                           the current operation *)
                        if
                          j < i
                          && not
                               (Sct_race.Vclock.get cq q
                               <= Sct_race.Vclock.get before q)
                        then add_backtrack w j p;
                        c := Sct_race.Vclock.join !c cq
                      end)
                    history)
              per_thread)
      (Op_depend.footprint op);
    c := Sct_race.Vclock.tick !c p;
    Hashtbl.replace w.clocks p !c;
    List.iter
      (fun (x, _) ->
        let per_thread =
          match Hashtbl.find_opt w.accesses x with
          | Some m -> m
          | None ->
              let m = Hashtbl.create 4 in
              Hashtbl.replace w.accesses x m;
              m
        in
        let history =
          Option.value ~default:[] (Hashtbl.find_opt per_thread p)
        in
        Hashtbl.replace per_thread p ((i, !c, op) :: history))
      (Op_depend.footprint op)

  let dpor_spawned w parent child =
    Hashtbl.replace w.clocks child
      (Sct_race.Vclock.tick (clock_of w parent) child)

  let begin_run w =
    w.depth <- 0;
    w.cur_count <- 0;
    w.cur_sleep <- [];
    w.run_pruned <- false;
    Hashtbl.reset w.clocks;
    Hashtbl.reset w.accesses

  (* Per-decision bookkeeping shared by the replay and expansion paths:
     dependence tracking, sleep propagation, bound accounting. A chosen
     thread originating from a conservative wake-up may itself be in the
     frame's sleep set; its whole subtree is explored with an empty sleep
     set (BPOR: a sleeping thread's justification — "an equivalent
     interleaving is covered elsewhere" — may point at executions the
     bound cut off, so conservative re-exploration must forget it). *)
  let account w i fr (ctx : Runtime.ctx) =
    let op = op_of fr.f_enabled fr.chosen in
    if w.with_dpor then begin
      dpor_step w i fr.chosen op;
      if op = Op.Spawn then dpor_spawned w fr.chosen ctx.c_n_threads
    end;
    if w.with_sleep then
      w.cur_sleep <-
        (if fr.via_wake then []
         else advance_sleep (List.remove_assoc fr.chosen fr.f_sleep) fr.done_ op);
    w.cur_count <-
      w.cur_count
      + delta w ~last:ctx.c_last ~enabled:ctx.c_enabled ~n:ctx.c_n_threads
          fr.chosen;
    fr.chosen

  let choose w (ctx : Runtime.ctx) =
    let i = w.depth in
    w.depth <- i + 1;
    let in_bound t =
      w.cur_count
      + delta w ~last:ctx.c_last ~enabled:ctx.c_enabled ~n:ctx.c_n_threads t
      <= w.w_bound_c
    in
    if w.run_pruned then begin
      (* past a sleep-pruned node: follow the cheapest in-bound child to
         the end of the run without recording anything — the whole branch
         is discarded by [on_terminal] *)
      let order =
        Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last
          ~enabled:ctx.c_enabled
      in
      match List.filter in_bound order with
      | t :: _ ->
          w.cur_count <-
            w.cur_count
            + delta w ~last:ctx.c_last ~enabled:ctx.c_enabled
                ~n:ctx.c_n_threads t;
          t
      | [] -> assert false (* a zero-cost child always exists (see DESIGN) *)
    end
    else if i < w.replay_len then begin
      let fr = w.st.frames.(i) in
      if fr.f_fp <> ctx.c_enabled_fp then
        failwith
          "Sct_explore.Por: nondeterministic program: enabled set mismatch";
      account w i fr ctx
    end
    else begin
      let rt = ctx.c_rt in
      let pending t =
        match Runtime.pending_op rt t with
        | Some op -> op
        | None -> invalid_arg "Sct_explore.Por: enabled thread without an op"
      in
      let enabled = List.map (fun t -> (t, pending t)) ctx.c_enabled in
      let order =
        Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last
          ~enabled:ctx.c_enabled
      in
      let candidates = List.filter in_bound order in
      if List.compare_lengths candidates order < 0 then w.pruned <- true;
      let allowed =
        if w.with_sleep then
          List.filter (fun t -> not (List.mem_assoc t w.cur_sleep)) candidates
        else candidates
      in
      match allowed with
      | [] -> (
          (* every in-bound enabled thread is asleep: the branch only
             contains interleavings equivalent to already-explored ones *)
          w.run_pruned <- true;
          match candidates with
          | t :: _ ->
              w.cur_count <-
                w.cur_count
                + delta w ~last:ctx.c_last ~enabled:ctx.c_enabled
                    ~n:ctx.c_n_threads t;
              t
          | [] -> assert false)
      | c :: rest ->
          let todo = if w.with_dpor then [] else rest in
          let fr =
            {
              chosen = c;
              todo;
              wake = [];
              done_ = [];
              via_wake = false;
              woke_all = false;
              f_enabled = enabled;
              f_in_bound = candidates;
              f_fp = ctx.c_enabled_fp;
              f_sleep = w.cur_sleep;
              f_count = w.cur_count;
              f_last = ctx.c_last;
              f_n = ctx.c_n_threads;
            }
          in
          push w.st fr;
          account w i fr ctx
    end

  (* Advance the deepest frame with an unexplored child: sleep-respecting
     [todo] entries first, then conservative [wake] entries, which ignore
     the sleep set. *)
  let backtrack w =
    let st = w.st in
    let rec drop () =
      if st.len = 0 then false
      else begin
        let top = st.frames.(st.len - 1) in
        top.done_ <- (top.chosen, op_of top.f_enabled top.chosen) :: top.done_;
        let skip_done t = List.mem_assoc t top.done_ in
        let rec next skip = function
          | [] -> None
          | t :: rest -> if skip t then next skip rest else Some (t, rest)
        in
        let skip_todo t =
          skip_done t || (w.with_sleep && List.mem_assoc t top.f_sleep)
        in
        match next skip_todo top.todo with
        | Some (t, rest) ->
            top.chosen <- t;
            top.todo <- rest;
            top.via_wake <- false;
            true
        | None -> (
            match next skip_done top.wake with
            | Some (t, rest) ->
                top.chosen <- t;
                top.wake <- rest;
                top.via_wake <- true;
                true
            | None ->
                st.len <- st.len - 1;
                drop ())
      end
    in
    let more = drop () in
    w.replay_len <- st.len;
    more

  let counts w (res : Runtime.result) =
    if w.run_pruned then false
    else
      let exact =
        match w.w_bound with
        | Dfs.Unbounded | Dfs.Preemption _ -> res.Runtime.r_pc
        | Dfs.Delay _ -> res.Runtime.r_dc
        | Dfs.Variable _ | Dfs.Threads _ -> assert false (* rejected by [make] *)
      in
      match w.w_count_exact with None -> true | Some c -> exact = c

  let on_terminal w (res : Runtime.result) =
    let v_counts = counts w res in
    if w.run_pruned then begin
      w.pruned_runs <- w.pruned_runs + 1;
      w.w_on_prune ()
    end;
    w.exhausted <- not (backtrack w);
    { Strategy.v_counts; v_phase_over = w.exhausted; v_cut = false }

  let pruned w = w.pruned
  let pruned_runs w = w.pruned_runs
  let exhausted w = w.exhausted
end

(* --- the single-level STRATEGY instance --------------------------------- *)

let strategy_of_walk ?(technique = "DFS") (w : Walk.t) : Strategy.t =
  (module struct
    let technique = technique
    let tracks_distinct = false
    let respects_limit = true
    let supports_prefix_batch = false
    let supports_por = true

    type state = { w : Walk.t; mutable started : bool }

    let init () = { w; started = false }

    let next_phase st =
      if st.started then
        Strategy.Finished
          {
            f_complete = Walk.exhausted st.w;
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else begin
        st.started <- true;
        Strategy.Phase { ph_bound = None; ph_new_at_bound = false }
      end

    let begin_run st = Walk.begin_run st.w
    let listener _ = None
    let choose st ctx = Walk.choose st.w ctx
    let on_terminal st res = Walk.on_terminal st.w res
  end)

(* --- the compatibility front-end (unified driver underneath) ------------ *)

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(bound = Dfs.Unbounded) ~mode ~limit program =
  let w = Walk.make ~mode ~bound () in
  let s =
    (* the budget charges executions, counted or not: a reduced walk
       deliberately counts few schedules (see Driver.explore) *)
    Driver.explore ~promote ~max_steps ~max_executions:limit ~limit
      (strategy_of_walk w) program
  in
  {
    counted = s.Stats.total;
    pruned_sleep = Walk.pruned_runs w;
    buggy = s.Stats.buggy;
    to_first_bug = s.Stats.to_first_bug;
    first_bug = s.Stats.first_bug;
    complete = s.Stats.complete;
    hit_limit = s.Stats.hit_limit;
    executions = s.Stats.executions;
  }
