open Sct_core

type mode = Sleep | Dpor | Dpor_sleep

type result = {
  counted : int;
  pruned_sleep : int;
  buggy : int;
  to_first_bug : int option;
  first_bug : Stats.bug_witness option;
  complete : bool;
  hit_limit : bool;
  executions : int;
}

(* Raised by the scheduler when every enabled thread is asleep: the branch
   only contains interleavings equivalent to already-explored ones. *)
exception Sleep_pruned

type frame = {
  mutable chosen : Tid.t;
  mutable todo : Tid.t list;  (** children still to explore *)
  mutable done_ : (Tid.t * Op.t) list;  (** explored children, with ops *)
  f_enabled : (Tid.t * Op.t) list;  (** enabled threads at the node *)
  f_fp : int;  (** [Runtime.fingerprint] of the enabled tids *)
  f_sleep : (Tid.t * Op.t) list;  (** sleep set on entry to the node *)
}

let dummy_frame =
  { chosen = 0; todo = []; done_ = []; f_enabled = []; f_fp = 0; f_sleep = [] }

type stack = { mutable frames : frame array; mutable len : int }

let push st fr =
  if st.len = Array.length st.frames then begin
    let bigger = Array.make (2 * st.len) dummy_frame in
    Array.blit st.frames 0 bigger 0 st.len;
    st.frames <- bigger
  end;
  st.frames.(st.len) <- fr;
  st.len <- st.len + 1

let op_of enabled t =
  match List.assoc_opt t enabled with
  | Some op -> op
  | None -> invalid_arg "Sct_explore.Por: thread not in enabled set"

(* The child's sleep set: parent sleep plus explored siblings, minus
   everything woken by the chosen operation. *)
let advance_sleep sleep done_ chosen_op =
  List.filter
    (fun (_, op) -> not (Op_depend.dependent chosen_op op))
    (sleep @ done_)

let explore ?(promote = fun _ -> false) ?(max_steps = 100_000) ~mode ~limit
    program =
  let with_sleep = mode = Sleep || mode = Dpor_sleep in
  let with_dpor = mode = Dpor || mode = Dpor_sleep in
  let st = { frames = Array.make 1024 dummy_frame; len = 0 } in
  let replay_len = ref 0 in
  let depth = ref 0 in
  (* running sleep set along the current path *)
  let cur_sleep = ref [] in
  (* DPOR per-execution happens-before state. Accesses are kept per
     (object, thread) as a full history: keeping only the last access would
     shadow the lock-acquire races that make lock-handover reorderings
     reachable (a blocked thread can never be scheduled at the inner frames,
     so the only usable backtrack points are at earlier acquires). *)
  let clocks : (Tid.t, Sct_race.Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let accesses :
      (int, (Tid.t, (int * Sct_race.Vclock.t * Op.t) list) Hashtbl.t) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let clock_of t =
    match Hashtbl.find_opt clocks t with
    | Some c -> c
    | None -> Sct_race.Vclock.tick Sct_race.Vclock.zero t
  in
  (* Add [p] to the backtrack set of frame [j]; if [p] was not enabled
     there, add every enabled thread (Flanagan & Godefroid 2005). *)
  let add_backtrack j p =
    let fr = st.frames.(j) in
    let add t =
      let explored =
        Tid.equal t fr.chosen || List.mem_assoc t fr.done_
        || List.exists (Tid.equal t) fr.todo
      in
      let asleep = with_sleep && List.mem_assoc t fr.f_sleep in
      if (not explored) && not asleep then fr.todo <- t :: fr.todo
    in
    if List.mem_assoc p fr.f_enabled then add p
    else List.iter (fun (t, _) -> add t) fr.f_enabled
  in
  (* DPOR bookkeeping for the op about to execute at frame [i] by [p]. *)
  let dpor_step i p op =
    let c = ref (clock_of p) in
    (match op with
    | Op.Join target -> c := Sct_race.Vclock.join !c (clock_of target)
    | _ -> ());
    (* Race checks are evaluated against the clock as it was before this
       scan: joining during the scan would make a thread's later accesses
       mask the races with its earlier ones. *)
    let before = !c in
    List.iter
      (fun (x, _) ->
        match Hashtbl.find_opt accesses x with
        | None -> ()
        | Some per_thread ->
            Hashtbl.iter
              (fun q history ->
                if not (Tid.equal q p) then
                  List.iter
                    (fun (j, cq, oq) ->
                      if Op_depend.dependent op oq then begin
                        (* race: q's access at frame j is concurrent with
                           the current operation *)
                        if
                          j < i
                          && not
                               (Sct_race.Vclock.get cq q
                               <= Sct_race.Vclock.get before q)
                        then add_backtrack j p;
                        c := Sct_race.Vclock.join !c cq
                      end)
                    history)
              per_thread)
      (Op_depend.footprint op);
    c := Sct_race.Vclock.tick !c p;
    Hashtbl.replace clocks p !c;
    List.iter
      (fun (x, _) ->
        let per_thread =
          match Hashtbl.find_opt accesses x with
          | Some m -> m
          | None ->
              let m = Hashtbl.create 4 in
              Hashtbl.replace accesses x m;
              m
        in
        let history =
          Option.value ~default:[] (Hashtbl.find_opt per_thread p)
        in
        Hashtbl.replace per_thread p ((i, !c, op) :: history))
      (Op_depend.footprint op)
  in
  let dpor_spawned parent child =
    Hashtbl.replace clocks child
      (Sct_race.Vclock.tick (clock_of parent) child)
  in
  let scheduler (ctx : Runtime.ctx) =
    let i = !depth in
    depth := i + 1;
    let rt = ctx.c_rt in
    let pending t =
      match Runtime.pending_op rt t with
      | Some op -> op
      | None -> invalid_arg "Sct_explore.Por: enabled thread without an op"
    in
    let chosen, fr =
      if i < !replay_len then begin
        let fr = st.frames.(i) in
        if fr.f_fp <> ctx.c_enabled_fp then
          failwith
            "Sct_explore.Por: nondeterministic program: enabled set mismatch"
        else (fr.chosen, fr)
      end
      else begin
        let enabled = List.map (fun t -> (t, pending t)) ctx.c_enabled in
        let order =
          Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last
            ~enabled:ctx.c_enabled
        in
        let allowed =
          if with_sleep then
            List.filter (fun t -> not (List.mem_assoc t !cur_sleep)) order
          else order
        in
        match allowed with
        | [] -> raise Sleep_pruned
        | c :: rest ->
            let todo = if with_dpor then [] else rest in
            let fr =
              {
                chosen = c;
                todo;
                done_ = [];
                f_enabled = enabled;
                f_fp = ctx.c_enabled_fp;
                f_sleep = !cur_sleep;
              }
            in
            push st fr;
            (c, fr)
      end
    in
    let op = op_of fr.f_enabled chosen in
    if with_dpor then begin
      dpor_step i chosen op;
      if op = Op.Spawn then dpor_spawned chosen ctx.c_n_threads
    end;
    if with_sleep then cur_sleep := advance_sleep fr.f_sleep fr.done_ op;
    chosen
  in
  (* Advance the deepest frame with an unexplored, non-sleeping child. *)
  let backtrack () =
    let rec drop () =
      if st.len = 0 then false
      else begin
        let top = st.frames.(st.len - 1) in
        top.done_ <- (top.chosen, op_of top.f_enabled top.chosen) :: top.done_;
        let skip t =
          List.mem_assoc t top.done_
          || (with_sleep && List.mem_assoc t top.f_sleep)
        in
        let rec next = function
          | [] -> None
          | t :: rest -> if skip t then next rest else Some (t, rest)
        in
        match next top.todo with
        | Some (t, rest) ->
            top.chosen <- t;
            top.todo <- rest;
            true
        | None ->
            st.len <- st.len - 1;
            drop ()
      end
    in
    let more = drop () in
    replay_len := st.len;
    more
  in
  let counted = ref 0 in
  let pruned = ref 0 in
  let buggy = ref 0 in
  let to_first_bug = ref None in
  let first_bug = ref None in
  let executions = ref 0 in
  let hit_limit = ref false in
  let complete = ref false in
  let continue_ = ref (limit > 0) in
  while !continue_ do
    depth := 0;
    cur_sleep := [];
    Hashtbl.reset clocks;
    Hashtbl.reset accesses;
    incr executions;
    let outcome =
      match
        Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler
          program
      with
      | res -> Some res
      | exception Sleep_pruned ->
          incr pruned;
          None
    in
    (match outcome with
    | None -> ()
    | Some res -> (
        incr counted;
        match res.Runtime.r_outcome with
        | Outcome.Bug { bug; by } ->
            incr buggy;
            if !to_first_bug = None then begin
              to_first_bug := Some !counted;
              first_bug :=
                Some
                  {
                    Stats.w_bug = bug;
                    w_by = by;
                    w_schedule = res.Runtime.r_schedule;
                    w_pc = res.Runtime.r_pc;
                    w_dc = res.Runtime.r_dc;
                  }
            end
        | Outcome.Ok | Outcome.Step_limit -> ()));
    if !counted >= limit then begin
      hit_limit := true;
      continue_ := false
    end
    else if not (backtrack ()) then begin
      complete := true;
      continue_ := false
    end
  done;
  {
    counted = !counted;
    pruned_sleep = !pruned;
    buggy = !buggy;
    to_first_bug = !to_first_bug;
    first_bug = !first_bug;
    complete = !complete;
    hit_limit = !hit_limit;
    executions = !executions;
  }
