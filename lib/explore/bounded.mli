(** Iterative schedule bounding (paper §2, §5).

    All terminal schedules with zero preemptions (resp. delays) are explored
    first, then those with one, etc., until a bug is found (the level is
    still completed), the schedule limit is reached, or the whole space has
    been explored. Each distinct terminal schedule is counted exactly once,
    at the level equal to its exact preemption/delay count.

    The campaign is a multi-phase {!Strategy.STRATEGY} (one phase per bound
    level) run by {!Driver.explore}; {!tree_campaign} exposes the same
    level progression over an abstract walk runner for the
    frontier-partitioned parallel engine.

    {b Partial-order reduction (BPOR).} {!strategy} with [~por] runs each
    level's count-exact walk on the {!Por.Walk} reduction core instead of
    the plain {!Dfs.Walk}: sleep sets and DPOR backtracking prune
    schedules that only commute independent operations, with the
    conservative backtracking points of BPOR at the prior context switch
    restoring soundness under the bound (plain DPOR is {e unsound} under
    preemption/delay bounding — the bound can make a recorded backtrack
    alternative unreachable at the level even though an equivalent
    execution spending its budget earlier stays in bound; see por.mli for
    the full invariant and the sleep-set caveat). The level progression is
    unchanged: [Por.Walk.pruned] reports bound cut-offs — including
    backtrack points whose bound delta exceeds the level — exactly like
    the plain walk, so a level that exhausts unpruned still proves the
    whole space explored.

    {b Interaction contract.} POR campaigns are exclusive with the other
    two tree-shaped execution machineries:
    - {!explore_batched} / {!Prefix_exec} never run reduced walks —
      sleep-set and clock state threads through sibling continuations in
      walk order, so continuations cannot be forked ahead of time. When a
      cell requests both, [Techniques.run] falls back to the unbatched
      driver (visible as [steps_saved = 0] in the cell's statistics).
    - {!tree_campaign} / [Sct_parallel.Frontier] never partition reduced
      walks — backtrack and sleep sets are global to the walk.
      [Sct_parallel.Drivers.run] routes POR cells to the sequential path
      for every [--jobs] value, as it already does for batched cells, so
      statistics stay byte-identical across [jobs]. *)

type kind =
  | Preemption_bounding
  | Delay_bounding
  | Variable_bounding
      (** iterative variable bounding: level [c] counts the schedules that
          preempt around at most (exactly, for counting) [c] distinct
          shared objects ({!Dfs.bound.Variable}) *)
  | Thread_bounding
      (** iterative thread bounding: level [c] counts the schedules that
          preempt at most (exactly) [c] distinct threads
          ({!Dfs.bound.Threads}) *)

val technique_name : kind -> string
(** ["IPB"], ["IDB"], ["IVB"] or ["ITB"]. *)

val bound_of : kind -> int -> Dfs.bound
(** The level-[c] walk bound of this kind. *)

val structural : kind -> bool
(** Whether the kind's per-level trees may be restructured by the
    prefix-batch and POR machineries (IPB/IDB only: the footprint kinds
    count levels path-dependently). *)

val strategy :
  ?max_levels:int ->
  ?por:Por.mode ->
  ?fair:int ->
  ?technique:string ->
  ?on_prune:(unit -> unit) ->
  kind:kind ->
  unit ->
  Strategy.t
(** The iterative-bounding strategy; [max_levels] (default 64) caps the
    number of bound levels as a safety net. [por] runs each level on the
    BPOR reduction walk (see the module preamble); [on_prune] fires once
    per sleep-pruned run, feeding the [Stats.por_pruned] counter.

    [fair] composes the fair filter of {!Dfs.Walk.make} with every level's
    walk (the [Axes.fair] technique: iterative preemption bounding over
    fairly-bounded executions, the composition of the dejafu default
    bounds). A campaign with [fair] (or a non-structural [kind]) declares
    [supports_prefix_batch = false] and [supports_por = false], and its
    [Stats.complete] additionally requires that no level cut an execution
    on the fair filter. [technique] overrides the recorded technique
    name. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_levels:int ->
  ?por:Por.mode ->
  ?fair:int ->
  ?technique:string ->
  ?on_prune:(unit -> unit) ->
  ?deadline:float ->
  kind:kind ->
  limit:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~kind ~limit program] performs the full iterative search with a
    total budget of [limit] counted terminal schedules —
    {!Driver.explore} over {!strategy}. *)

val level_loop :
  ?max_levels:int ->
  technique:string ->
  walk:(c:int -> limit:int -> Strategy.walk_result) ->
  limit:int ->
  unit ->
  Stats.t
(** The level progression over an abstract per-level walk: explore level
    [c] with the remaining budget, stop on bug / limit / deadline /
    unpruned completion, else continue at [c + 1]. Produces statistics
    equal to {!explore} when [walk] behaves like the sequential
    count-exact walk. *)

val explore_batched :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_levels:int ->
  ?fork:bool ->
  ?deadline:float ->
  kind:kind ->
  limit:int ->
  (unit -> unit) ->
  Stats.t
(** {!explore} with every level walked by {!Prefix_exec.explore}: identical
    statistics except that [steps_executed]/[steps_saved] carry the batched
    step cost. [fork] overrides the executor's back-end selection. *)

val tree_campaign :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_levels:int ->
  ?deadline:float ->
  kind:kind ->
  limit:int ->
  (unit -> unit) ->
  (Strategy.tree_walk -> limit:int -> Strategy.walk_result) ->
  Stats.t
(** The whole campaign as a function of a walk runner: each level's
    count-exact {!Dfs.tree_walk} is handed to the runner — sequential, or
    [Sct_parallel.Frontier.run] for the subtree-sharded parallel plan. *)
