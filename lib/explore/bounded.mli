(** Iterative schedule bounding (paper §2, §5).

    All terminal schedules with zero preemptions (resp. delays) are explored
    first, then those with one, etc., until a bug is found (the level is
    still completed), the schedule limit is reached, or the whole space has
    been explored. Each distinct terminal schedule is counted exactly once,
    at the level equal to its exact preemption/delay count. *)

type kind = Preemption_bounding | Delay_bounding

val technique_name : kind -> string
(** ["IPB"] or ["IDB"]. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_levels:int ->
  kind:kind ->
  limit:int ->
  (unit -> unit) ->
  Stats.t
(** [explore ~kind ~limit program] performs the full iterative search with a
    total budget of [limit] counted terminal schedules. [max_levels]
    (default 64) caps the number of bound levels as a safety net. *)
