open Sct_core

(* Estimate the execution length with one deterministic round-robin run
   (the same initial schedule the systematic techniques start from). PCT's
   [k] is an a-priori estimate fixed for the whole campaign — keeping it
   independent of the sampled runs is what makes run [i] a pure function of
   [(seed, i, k)] and therefore shardable across domains. *)
let probe ?(promote = fun _ -> false) ?(max_steps = 100_000) program =
  let rr (ctx : Runtime.ctx) =
    match
      Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  let res =
    Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler:rr
      program
  in
  max 1 res.Runtime.r_steps

(* Per-run scheduler state: the lazily drawn priorities and the sampled
   change depths. Distinct-with-high-probability initial priorities above
   the change values; change value j is j itself (all below initial
   priorities). *)
type run_state = {
  rng : Random.State.t;
  priorities : (Tid.t, int) Hashtbl.t;
  depths : (int * int) list;
}

let make_run ~change_points ~seed ~k i =
  let rng = Random.State.make [| seed; i; 0x9c7 |] in
  let priorities : (Tid.t, int) Hashtbl.t = Hashtbl.create 16 in
  let depths =
    List.init change_points (fun j -> (1 + Random.State.int rng k, j))
  in
  { rng; priorities; depths }

let pct_choose ~change_points rs (ctx : Runtime.ctx) =
  let priority t =
    match Hashtbl.find_opt rs.priorities t with
    | Some p -> p
    | None ->
        let p = change_points + 1 + Random.State.int rs.rng 1_000_000 in
        Hashtbl.replace rs.priorities t p;
        p
  in
  let best () =
    List.fold_left
      (fun acc t ->
        match acc with
        | None -> Some t
        | Some u -> if priority t > priority u then Some t else acc)
      None ctx.c_enabled
  in
  (match best () with
  | Some t ->
      List.iter
        (fun (d, j) ->
          if d = ctx.c_step + 1 then Hashtbl.replace rs.priorities t j)
        rs.depths
  | None -> ());
  match best () with Some t -> t | None -> assert false

(* [k = None] probes on campaign setup; shards of one campaign share the
   collector's probe instead, keeping run [i] identical for every shard
   assignment. *)
let strategy ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(change_points = 2) ?k ?(lo = 0) ~seed program () : Strategy.t =
  (module struct
    let technique = "PCT"
    let tracks_distinct = false
    let respects_limit = true
    let supports_prefix_batch = false
    let supports_por = false

    type state = { k : int; mutable i : int; mutable run : run_state }

    let init () =
      let k = match k with Some k -> k | None -> probe ~promote ~max_steps program in
      { k; i = lo; run = make_run ~change_points ~seed ~k lo }

    let next_phase st =
      if st.i > lo then
        Strategy.Finished
          {
            f_complete = false;
            f_bound = None;
            f_bound_complete = false;
            f_new_at_bound = false;
          }
      else Strategy.Phase { ph_bound = None; ph_new_at_bound = false }

    let begin_run st =
      st.run <- make_run ~change_points ~seed ~k:st.k st.i;
      st.i <- st.i + 1

    let listener _ = None
    let choose st ctx = pct_choose ~change_points st.run ctx
    let on_terminal _ _ =
      { Strategy.v_counts = true; v_phase_over = false; v_cut = false }
  end)

let explore_shard ?promote ?max_steps ?change_points ?deadline ~seed ~k ~lo
    ~hi program =
  let s =
    Driver.explore ?promote ?max_steps ?deadline ~count_offset:lo
      ~limit:(hi - lo)
      (strategy ?promote ?max_steps ?change_points ~k ~lo ~seed program ())
      program
  in
  { s with Stats.hit_limit = true }

let explore ?promote ?max_steps ?change_points ?deadline ~seed ~runs program =
  let k = probe ?promote ?max_steps program in
  explore_shard ?promote ?max_steps ?change_points ?deadline ~seed ~k ~lo:0
    ~hi:runs program

let sharding ?promote ?max_steps ?change_points ?deadline ~seed program =
  (* one probe for the whole campaign, on the collector *)
  let k = probe ?promote ?max_steps program in
  Strategy.Shard_seed
    (fun ~lo ~hi ->
      explore_shard ?promote ?max_steps ?change_points ?deadline ~seed ~k ~lo
        ~hi program)
