open Sct_core

(* Estimate the execution length with one deterministic round-robin run
   (the same initial schedule the systematic techniques start from). PCT's
   [k] is an a-priori estimate fixed for the whole campaign — keeping it
   independent of the sampled runs is what makes run [i] a pure function of
   [(seed, i, k)] and therefore shardable across domains. *)
let probe ?(promote = fun _ -> false) ?(max_steps = 100_000) program =
  let rr (ctx : Runtime.ctx) =
    match
      Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  let res =
    Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler:rr
      program
  in
  max 1 res.Runtime.r_steps

let run_one ~promote ~max_steps ~change_points ~seed ~k i program =
  let rng = Random.State.make [| seed; i; 0x9c7 |] in
  (* Distinct-with-high-probability initial priorities above the change
     values; change value j is j itself (all below initial priorities). *)
  let priorities : (Tid.t, int) Hashtbl.t = Hashtbl.create 16 in
  let priority t =
    match Hashtbl.find_opt priorities t with
    | Some p -> p
    | None ->
        let p = change_points + 1 + Random.State.int rng 1_000_000 in
        Hashtbl.replace priorities t p;
        p
  in
  let depths =
    List.init change_points (fun j -> (1 + Random.State.int rng k, j))
  in
  let scheduler (ctx : Runtime.ctx) =
    let best () =
      List.fold_left
        (fun acc t ->
          match acc with
          | None -> Some t
          | Some u -> if priority t > priority u then Some t else acc)
        None ctx.c_enabled
    in
    (match best () with
    | Some t ->
        List.iter
          (fun (d, j) ->
            if d = ctx.c_step + 1 then Hashtbl.replace priorities t j)
          depths
    | None -> ());
    match best () with Some t -> t | None -> assert false
  in
  Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler program

let explore_shard ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(change_points = 2) ~seed ~k ~lo ~hi program =
  let stats = ref (Stats.base ~technique:"PCT") in
  for i = lo to hi - 1 do
    let res = run_one ~promote ~max_steps ~change_points ~seed ~k i program in
    let s = Stats.observe_run !stats res in
    let s =
      { s with Stats.total = s.Stats.total + 1; executions = s.executions + 1 }
    in
    let s =
      match res.Runtime.r_outcome with
      | Outcome.Bug { bug; by } ->
          let s = { s with Stats.buggy = s.Stats.buggy + 1 } in
          if s.Stats.to_first_bug = None then
            {
              s with
              Stats.to_first_bug = Some (i + 1);
              first_bug =
                Some
                  {
                    Stats.w_bug = bug;
                    w_by = by;
                    w_schedule = res.Runtime.r_schedule;
                    w_pc = res.Runtime.r_pc;
                    w_dc = res.Runtime.r_dc;
                  };
            }
          else s
      | Outcome.Ok | Outcome.Step_limit -> s
    in
    stats := s
  done;
  { !stats with Stats.hit_limit = true }

let explore ?promote ?max_steps ?change_points ~seed ~runs program =
  let k = probe ?promote ?max_steps program in
  explore_shard ?promote ?max_steps ?change_points ~seed ~k ~lo:0 ~hi:runs
    program
