(** Happens-before signatures of executions.

    The paper's related work (§7) describes happens-before graph caching
    [24, 26]: using the partial order of synchronisation operations as an
    approximation of the state, so that schedules inducing the same partial
    order are explored only once (an effect similar to sleep sets).

    A signature is a canonical encoding of an execution's happens-before
    graph: for every object, the sequence of (thread, operation-kind)
    touching it, plus each thread's operation count. Two executions with
    equal signatures are permutations of each other that commute only
    independent operations — they reach the same final state and exhibit
    the same bugs.

    The encoding is deliberately {e finer} than Mazurkiewicz trace
    equivalence: an object's touch sequence records reads too, so two
    schedules that differ only in the order of concurrent reads of the
    same object get distinct signatures even though POR treats them as
    equivalent. Signatures are invariant exactly under reorderings of
    operations with disjoint footprints (a qcheck law in the test suite);
    the over-splitting is sound everywhere signatures are used — distinct
    counts over-approximate, caches only lose hits, and the corpus digest
    only dedupes less. *)

type t

val equal : t -> t -> bool
val hash : t -> int

val of_decisions : Sct_core.Runtime.decision list -> t
(** Build the signature from a run's recorded decisions (requires
    [record_decisions:true] in {!Sct_core.Runtime.exec}). *)

val to_string : t -> string
(** A canonical text rendering: [equal a b] iff
    [to_string a = to_string b]. Stable across processes and compiler
    versions (unlike {!hash}), so it is a sound basis for persisted
    digests — the corpus manifest's signature field hashes these. *)

val distinct_under_dfs :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  limit:int ->
  (unit -> unit) ->
  int * int
(** [(schedules, distinct_hb)] — explore with plain unbounded DFS and count
    how many of the terminal schedules are distinct up to happens-before
    equivalence: the redundancy that HB caching (or POR) would remove. *)
