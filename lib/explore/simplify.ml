open Sct_core

type outcome = {
  schedule : Schedule.t;
  result : Runtime.result;
  rounds : int;
}

let switches sched =
  let _, n =
    List.fold_left
      (fun (last, n) t ->
        match last with
        | Some l when not (Tid.equal l t) -> (Some t, n + 1)
        | _ -> (Some t, n))
      (None, 0) (Schedule.to_list sched)
  in
  n

let preemptions = switches

(* Lexicographic improvement measure: fewer preemptions, then fewer context
   switches, then shorter — guarantees termination of the greedy loop. *)
let measure (r : Runtime.result) =
  (r.Runtime.r_pc, switches r.Runtime.r_schedule, r.Runtime.r_steps)

let is_buggy (r : Runtime.result) = Outcome.is_buggy r.Runtime.r_outcome

(* At the context switch leaving thread [p] at position [i], pull [p]'s next
   step (at the first later position j with α(j) = p) forward to [i]:
   thread [p] runs one step longer before being interrupted. *)
let pull_forward sched i p =
  let arr = Array.of_list sched in
  let n = Array.length arr in
  let rec find j = if j >= n then None else if Tid.equal arr.(j) p then Some j else find (j + 1) in
  match find i with
  | None -> None
  | Some j ->
      let out = Array.make n arr.(0) in
      Array.blit arr 0 out 0 i;
      out.(i) <- p;
      Array.blit arr i out (i + 1) (j - i);
      Array.blit arr (j + 1) out (j + 1) (n - j - 1);
      Some (Array.to_list out)

let minimize ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(max_rounds = 1_000) ~program schedule =
  let replay sched =
    Replay.replay ~promote ~max_steps ~strict:false
      ~schedule:(Schedule.of_list sched) program
  in
  match replay (Schedule.to_list schedule) with
  | None -> None
  | Some first when not (is_buggy first) -> None
  | Some first ->
      let current = ref first in
      let rounds = ref 0 in
      let improved = ref true in
      while !improved && !rounds < max_rounds do
        improved := false;
        let sched = Schedule.to_list !current.Runtime.r_schedule in
        let arr = Array.of_list sched in
        let n = Array.length arr in
        let i = ref 1 in
        while (not !improved) && !i < n do
          (* a context switch away from arr.(i-1) *)
          if not (Tid.equal arr.(!i - 1) arr.(!i)) then begin
            match pull_forward sched !i arr.(!i - 1) with
            | None -> ()
            | Some candidate -> (
                match replay candidate with
                | Some res when is_buggy res && measure res < measure !current
                  ->
                    current := res;
                    incr rounds;
                    improved := true
                | _ -> ())
          end;
          incr i
        done
      done;
      Some
        {
          schedule = !current.Runtime.r_schedule;
          result = !current;
          rounds = !rounds;
        }
