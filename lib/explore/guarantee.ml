type t =
  | Verified
  | Bounded of { kind : [ `Preemptions | `Delays ]; bound : int }
  | Falsified of { bound : int option }
  | None_

let of_stats (s : Stats.t) =
  if Stats.found s then Falsified { bound = s.Stats.bound }
  else if s.Stats.complete then Verified
  else
    let kind =
      match s.Stats.technique with
      | "IPB" -> Some `Preemptions
      | "IDB" -> Some `Delays
      | _ -> None
    in
    match (kind, s.Stats.bound) with
    | Some kind, Some reached ->
        (* the reached level is fully explored only if [bound_complete];
           otherwise the guarantee stops at the previous level *)
        let covered = if s.Stats.bound_complete then reached else reached - 1 in
        if covered >= 0 then Bounded { kind; bound = covered } else None_
    | _ -> None_

let pp ppf = function
  | Verified ->
      Format.pp_print_string ppf
        "verified: the entire schedule space was explored without a bug"
  | Bounded { kind; bound } ->
      let k = match kind with `Preemptions -> "preemption" | `Delays -> "delay" in
      Format.fprintf ppf
        "all schedules with at most %d %ss explored: any remaining bug needs \
         at least %d %ss"
        bound k (bound + 1) k
  | Falsified { bound = Some b } ->
      Format.fprintf ppf "falsified: bug found at bound %d" b
  | Falsified { bound = None } -> Format.pp_print_string ppf "falsified: bug found"
  | None_ -> Format.pp_print_string ppf "no coverage guarantee"

let to_string t = Format.asprintf "%a" pp t
