type bug_witness = {
  w_bug : Sct_core.Outcome.bug;
  w_by : Sct_core.Tid.t;
  w_schedule : Sct_core.Schedule.t;
  w_pc : int;
  w_dc : int;
}

type t = {
  technique : string;
  bound : int option;
  bound_complete : bool;
  to_first_bug : int option;
  total : int;
  new_at_bound : int;
  buggy : int;
  complete : bool;
  hit_limit : bool;
  first_bug : bug_witness option;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
  executions : int;
  distinct : int option;
}

let found t = t.to_first_bug <> None

let base ~technique =
  {
    technique;
    bound = None;
    bound_complete = false;
    to_first_bug = None;
    total = 0;
    new_at_bound = 0;
    buggy = 0;
    complete = false;
    hit_limit = false;
    first_bug = None;
    n_threads = 0;
    max_enabled = 0;
    max_sched_points = 0;
    executions = 0;
    distinct = None;
  }

let observe_run t (r : Sct_core.Runtime.result) =
  {
    t with
    n_threads = max t.n_threads r.r_n_threads;
    max_enabled = max t.max_enabled r.r_max_enabled;
    max_sched_points = max t.max_sched_points r.r_multi_points;
  }

let pp ppf t =
  let opt = function None -> "-" | Some i -> string_of_int i in
  Format.fprintf ppf
    "%s: bound=%s first=%s total=%d new=%d buggy=%d complete=%b limit=%b"
    t.technique (opt t.bound) (opt t.to_first_bug) t.total t.new_at_bound
    t.buggy t.complete t.hit_limit
