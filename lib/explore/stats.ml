module Sched_set = Set.Make (struct
  type t = Sct_core.Tid.t list

  let compare = Stdlib.compare
end)

type bug_witness = {
  w_bug : Sct_core.Outcome.bug;
  w_by : Sct_core.Tid.t;
  w_schedule : Sct_core.Schedule.t;
  w_pc : int;
  w_dc : int;
}

type t = {
  technique : string;
  bound : int option;
  bound_complete : bool;
  to_first_bug : int option;
  total : int;
  new_at_bound : int;
  buggy : int;
  complete : bool;
  hit_limit : bool;
  hit_deadline : bool;
  first_bug : bug_witness option;
  n_threads : int;
  max_enabled : int;
  max_sched_points : int;
  executions : int;
  steps_executed : int;
  steps_saved : int;
  por_pruned : int;
  cut_runs : int;
  distinct_schedules : Sched_set.t option;
}

let found t = t.to_first_bug <> None
let distinct t = Option.map Sched_set.cardinal t.distinct_schedules

(* Distinct schedules when the technique tracks them, else the counted
   total (systematic techniques never re-explore, so every counted
   schedule is distinct). This is the campaign scheduler's coverage
   signal. *)
let coverage t =
  match t.distinct_schedules with
  | Some set -> Sched_set.cardinal set
  | None -> t.total

let base ~technique =
  {
    technique;
    bound = None;
    bound_complete = false;
    to_first_bug = None;
    total = 0;
    new_at_bound = 0;
    buggy = 0;
    complete = false;
    hit_limit = false;
    hit_deadline = false;
    first_bug = None;
    n_threads = 0;
    max_enabled = 0;
    max_sched_points = 0;
    executions = 0;
    steps_executed = 0;
    steps_saved = 0;
    por_pruned = 0;
    cut_runs = 0;
    distinct_schedules = None;
  }

let observe_run t (r : Sct_core.Runtime.result) =
  {
    t with
    n_threads = max t.n_threads r.r_n_threads;
    max_enabled = max t.max_enabled r.r_max_enabled;
    max_sched_points = max t.max_sched_points r.r_multi_points;
    steps_executed = t.steps_executed + r.r_steps;
  }

(* A total order on witnesses, used only to break ties between equal
   [to_first_bug] indices so that [merge] is commutative. *)
let compare_witness (a : bug_witness) (b : bug_witness) =
  Stdlib.compare
    (a.w_pc, a.w_dc, Sct_core.Schedule.to_list a.w_schedule, a.w_by, a.w_bug)
    (b.w_pc, b.w_dc, Sct_core.Schedule.to_list b.w_schedule, b.w_by, b.w_bug)

let compare_witness_opt a b =
  match (a, b) with
  | None, None -> 0
  | Some _, None -> -1
  | None, Some _ -> 1
  | Some w, Some w' -> compare_witness w w'

(* First-bug key order: no bug sorts last; equal indices are resolved by the
   witness order (a witness sorts before no witness). Comparing equal 0 means
   the (to_first_bug, first_bug) pairs are equal, which is what makes the
   argmin in [merge] commutative. *)
let compare_first a b =
  match (a.to_first_bug, b.to_first_bug) with
  | None, None -> compare_witness_opt a.first_bug b.first_bug
  | Some _, None -> -1
  | None, Some _ -> 1
  | Some i, Some j -> (
      match Int.compare i j with
      | 0 -> compare_witness_opt a.first_bug b.first_bug
      | c -> c)

let merge_opt f a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (f a b)

let merge a b =
  let first = if compare_first a b <= 0 then a else b in
  {
    (* string max: associative, commutative, idempotent; in practice both
       sides carry the same technique name *)
    technique = (if a.technique >= b.technique then a.technique else b.technique);
    bound = merge_opt max a.bound b.bound;
    bound_complete = a.bound_complete || b.bound_complete;
    to_first_bug = first.to_first_bug;
    total = a.total + b.total;
    new_at_bound = a.new_at_bound + b.new_at_bound;
    buggy = a.buggy + b.buggy;
    complete = a.complete || b.complete;
    hit_limit = a.hit_limit || b.hit_limit;
    hit_deadline = a.hit_deadline || b.hit_deadline;
    first_bug = first.first_bug;
    n_threads = max a.n_threads b.n_threads;
    max_enabled = max a.max_enabled b.max_enabled;
    max_sched_points = max a.max_sched_points b.max_sched_points;
    executions = a.executions + b.executions;
    steps_executed = a.steps_executed + b.steps_executed;
    steps_saved = a.steps_saved + b.steps_saved;
    por_pruned = a.por_pruned + b.por_pruned;
    cut_runs = a.cut_runs + b.cut_runs;
    distinct_schedules =
      merge_opt Sched_set.union a.distinct_schedules b.distinct_schedules;
  }

let equal_witness (a : bug_witness) (b : bug_witness) = compare_witness a b = 0

let equal a b =
  a.technique = b.technique && a.bound = b.bound
  && a.bound_complete = b.bound_complete
  && a.to_first_bug = b.to_first_bug
  && a.total = b.total
  && a.new_at_bound = b.new_at_bound
  && a.buggy = b.buggy && a.complete = b.complete
  && a.hit_limit = b.hit_limit
  && a.hit_deadline = b.hit_deadline
  && Option.equal equal_witness a.first_bug b.first_bug
  && a.n_threads = b.n_threads
  && a.max_enabled = b.max_enabled
  && a.max_sched_points = b.max_sched_points
  && a.executions = b.executions
  && a.steps_executed = b.steps_executed
  && a.steps_saved = b.steps_saved
  && a.por_pruned = b.por_pruned
  && a.cut_runs = b.cut_runs
  && Option.equal Sched_set.equal a.distinct_schedules b.distinct_schedules

let pp ppf t =
  let opt = function None -> "-" | Some i -> string_of_int i in
  Format.fprintf ppf
    "%s: bound=%s first=%s total=%d new=%d buggy=%d complete=%b limit=%b%s"
    t.technique (opt t.bound) (opt t.to_first_bug) t.total t.new_at_bound
    t.buggy t.complete t.hit_limit
    ((if t.hit_deadline then " deadline=true" else "")
    ^ (if t.steps_saved > 0 then
         Printf.sprintf " steps=%d saved=%d" t.steps_executed t.steps_saved
       else "")
    ^ (if t.por_pruned > 0 then Printf.sprintf " por_pruned=%d" t.por_pruned
       else "")
    ^
    if t.cut_runs > 0 then Printf.sprintf " cuts=%d" t.cut_runs else "")
