open Sct_core

exception Infeasible

let replay ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(strict = true) ~schedule program =
  let remaining = ref (Schedule.to_list schedule) in
  let scheduler (ctx : Runtime.ctx) =
    let fallback () =
      match
        Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
          ~enabled:ctx.c_enabled
      with
      | Some t -> t
      | None -> assert false
    in
    match !remaining with
    | [] -> fallback ()
    | t :: rest ->
        if List.exists (Tid.equal t) ctx.c_enabled then begin
          remaining := rest;
          t
        end
        else if strict then raise Infeasible
        else begin
          remaining := rest;
          fallback ()
        end
  in
  match
    Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler
      program
  with
  | res -> Some res
  | exception Infeasible -> None

let parse s =
  let n = String.length s in
  (* split on commas, remembering where each token starts so errors can
     point into the input *)
  let rec split i acc =
    match String.index_from_opt s i ',' with
    | Some j -> split (j + 1) ((i, String.sub s i (j - i)) :: acc)
    | None -> List.rev ((i, String.sub s i (n - i)) :: acc)
  in
  let tokens = split 0 [] in
  if List.for_all (fun (_, raw) -> String.trim raw = "") tokens then
    (* a blank input (or the empty string) is the empty schedule *)
    Schedule.empty
  else
    tokens
    |> List.map (fun (start, raw) ->
           (* report the position of the token itself, not of the
              surrounding whitespace *)
           let lead = ref 0 in
           while
             !lead < String.length raw
             && (raw.[!lead] = ' ' || raw.[!lead] = '\t')
           do
             incr lead
           done;
           let tok = String.trim raw in
           let pos = start + !lead in
           if tok = "" then
             failwith
               (Printf.sprintf "Replay.parse: empty thread id at offset %d"
                  pos)
           else
             match int_of_string_opt tok with
             | Some t when t >= 0 -> t
             | _ ->
                 failwith
                   (Printf.sprintf
                      "Replay.parse: bad thread id %S at offset %d" tok pos))
    |> Schedule.of_list
