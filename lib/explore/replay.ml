open Sct_core

exception Infeasible

let replay ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(strict = true) ~schedule program =
  let remaining = ref (Schedule.to_list schedule) in
  let scheduler (ctx : Runtime.ctx) =
    let fallback () =
      match
        Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
          ~enabled:ctx.c_enabled
      with
      | Some t -> t
      | None -> assert false
    in
    match !remaining with
    | [] -> fallback ()
    | t :: rest ->
        if List.exists (Tid.equal t) ctx.c_enabled then begin
          remaining := rest;
          t
        end
        else if strict then raise Infeasible
        else begin
          remaining := rest;
          fallback ()
        end
  in
  match
    Runtime.exec ~promote ~max_steps ~record_decisions:false ~scheduler
      program
  with
  | res -> Some res
  | exception Infeasible -> None

let parse s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some t when t >= 0 -> t
         | _ -> failwith ("Replay.parse: bad thread id " ^ x))
  |> Schedule.of_list
