(** Schedule replay: drive an execution along a given schedule.

    SCT's reproducibility promise (paper §1): a bug-inducing schedule can be
    forced again at will. The guided scheduler follows the given thread
    list; when the schedule is exhausted (or names a disabled thread with
    [strict] off) it falls back to the deterministic round-robin choice. *)

val replay :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?strict:bool ->
  schedule:Sct_core.Schedule.t ->
  (unit -> unit) ->
  Sct_core.Runtime.result option
(** [replay ~schedule program] re-executes [program] along [schedule].
    With [strict] (default [true]), returns [None] if the schedule names a
    thread that is not enabled at some step — the schedule is infeasible
    for this program. *)

val parse : string -> Sct_core.Schedule.t
(** Parse a schedule from a comma-separated list of thread ids, e.g.
    ["0,0,1,2,1"]. Whitespace around the ids and around the whole input is
    ignored; a blank input is the empty schedule.
    @raise Failure on malformed input, naming the offending token and its
    byte offset (e.g. [{|Replay.parse: bad thread id "x" at offset 2|}]). *)
