(* The non-paper bounding axes as first-class STRATEGY instances: fair
   bounding, length bounding, and the iterated footprint bounds (variable
   and thread bounding). See axes.mli for the semantics and provenance. *)

let default_fair_bound = 5
let default_length_bound = 250

let fair ?max_levels ?(bound = default_fair_bound) () =
  Bounded.strategy ?max_levels ~fair:bound ~technique:"Fair"
    ~kind:Bounded.Preemption_bounding ()

let length ?(bound = default_length_bound) () =
  Dfs.strategy_of_walk ~technique:"Length"
    (Dfs.Walk.make ~length:bound ~bound:Dfs.Unbounded ())

let variable ?max_levels () =
  Bounded.strategy ?max_levels ~kind:Bounded.Variable_bounding ()

let threads ?max_levels () =
  Bounded.strategy ?max_levels ~kind:Bounded.Thread_bounding ()
