(** The generic budgeted campaign driver.

    One loop executes every technique (see {!Strategy}): it repeatedly asks
    the strategy for the next phase and the next scheduled execution, and
    owns all cross-cutting bookkeeping — the schedule budget, the optional
    wall-clock deadline, statistics accumulation, distinct-schedule
    tracking, bug witnesses, and the [on_schedule] hook the reports and the
    store build on. *)

val explore :
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?record_decisions:bool ->
  ?stop_on_bug:bool ->
  ?count_offset:int ->
  ?max_executions:int ->
  ?deadline:float ->
  ?on_schedule:(Sct_core.Runtime.result -> unit) ->
  limit:int ->
  Strategy.t ->
  (unit -> unit) ->
  Stats.t
(** [explore ~limit strategy program] runs the campaign until the strategy
    finishes, [limit] terminal schedules were counted ([Stats.hit_limit] —
    ignored when the strategy declares [respects_limit = false]), the
    [deadline] (absolute {!Unix.gettimeofday} timestamp) passes between two
    executions ([Stats.hit_deadline]), or — with [stop_on_bug] — the first
    buggy schedule was counted. When both fire on the same execution the
    schedule limit wins, so deadline-free runs are byte-for-byte
    deterministic. Cut executions ([v_cut] verdicts, fair/length bounding)
    are charged against the schedule budget alongside counted terminals
    (the limit check is [counted + cut_runs >= limit]) and reported as
    [Stats.cut_runs]: a cut prefix is not a terminal schedule, but a
    cut-heavy space must not spin without budget progress.

    [max_executions] (default: unlimited) additionally charges the budget
    per raw execution, counted or not, reported as [Stats.hit_limit]. The
    POR-composed campaigns pass the schedule limit here: a reduced walk
    deliberately counts few schedules, so a counted-only budget would let
    it climb bound levels through an astronomically larger raw tree.
    Execution counts are deterministic, so the cap preserves the
    byte-identity laws ([--jobs], resume, merge).

    [count_offset] shifts [Stats.to_first_bug] into an absolute index space
    (shard [lo]), so shard statistics merge into the sequential campaign's.
    [on_schedule] is called on every counted terminal schedule; pass
    [record_decisions:true] if the callback needs the decision trace. *)

val deadline_of_time_limit : float option -> float option
(** Turn a relative [--time-limit] (seconds, [None] = unlimited) into an
    absolute deadline for {!explore}, evaluated now. *)
