(** A fixed-size pool of worker domains with a FIFO work queue.

    The execution engine ({!Sct_core.Runtime.exec}) is single-domain by
    design: one execution runs entirely on one domain, and the ambient
    runtime slot is domain-local. The pool therefore never migrates a task
    between domains, and tasks must not share mutable state — the drivers
    built on top (see {!Frontier}, {!Drivers}, {!Suite}) only submit
    closures over immutable inputs (program thunks are re-invoked per
    execution, which makes them domain-safe).

    Exceptions raised by a task do not kill the worker: they are captured
    with their backtrace and re-raised by {!await} on the submitting domain.

    Deadlock discipline: tasks never call {!await} — only the submitting
    (main) domain awaits, so workers cannot block on each other. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs] worker domains — except that a
    one-job pool spawns no domain at all: its tasks run on the submitting
    domain at {!submit} time, in the same FIFO order a single worker would
    use. Keeping the process single-domain preserves
    {!Sct_explore.Prefix_exec.fork_available}, so sequential runs keep the
    fork-server fast path. Creating a pool of two or more workers disables
    forking for the rest of the process (the OCaml runtime refuses
    [Unix.fork] once a second domain ever existed). *)

val size : t -> int
(** Number of workers ([1] for the inline one-job pool). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value, or re-raises the
    task's exception (with its original backtrace).
    @raise Cancelled if the task was cancelled before it started. *)

exception Cancelled

val cancel : 'a future -> unit
(** Best-effort cancellation: a task that has not started will never run
    (its [await] raises {!Cancelled}); a running task completes normally.
    Used to stop outstanding shards once a technique hit its stop
    condition. *)

val shutdown : t -> unit
(** Drain the queue, then join all worker domains. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)
