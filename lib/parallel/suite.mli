(** Whole-suite parallel execution.

    {!run_benchmark} parallelises {e within} one benchmark (fine-grained:
    the techniques' own parallel drivers); {!run_all} parallelises {e
    across} the suite (coarse: one pool job per benchmark for race
    detection, then one per benchmark x technique, each job running the
    ordinary sequential code). Both produce rows identical to the
    sequential {!Sct_report.Run_data} functions for every pool size, and
    both fall back to the sequential code when the pool has one worker.

    With a [store], both honour the journal exactly like the sequential
    functions: journalled cells are reused (never resubmitted as jobs), and
    each freshly computed cell is persisted — from the collector domain
    only — the moment its future is awaited. Since the journal key ignores
    [jobs]/[split_depth] and the engine is deterministic for every pool
    size, a store written sequentially resumes under any [--jobs] value and
    vice versa. *)

val run_benchmark :
  pool:Pool.t ->
  ?store:Sct_store.Db.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t ->
  Sct_report.Run_data.row
(** Parallel equivalent of [Sct_report.Run_data.run_benchmark]. *)

val run_all :
  pool:Pool.t ->
  ?store:Sct_store.Db.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  ?progress:(Sctbench.Bench.t -> unit) ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t list ->
  Sct_report.Run_data.row list
(** Parallel equivalent of [Sct_report.Run_data.run_all]. [progress] is
    called once per benchmark, in suite order, when the row's jobs are about
    to be collected. *)
