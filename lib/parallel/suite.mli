(** Whole-suite parallel execution.

    {!run_benchmark} parallelises {e within} one benchmark (fine-grained:
    the techniques' own parallel drivers); {!run_all} parallelises {e
    across} the suite (coarse: one pool job per benchmark for race
    detection, then one per benchmark x technique, each job running the
    ordinary sequential code). Both produce rows identical to the
    sequential {!Sct_report.Run_data} functions for every pool size, and
    both fall back to the sequential code when the pool has one worker. *)

val run_benchmark :
  pool:Pool.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t ->
  Sct_report.Run_data.row
(** Parallel equivalent of [Sct_report.Run_data.run_benchmark]. *)

val run_all :
  pool:Pool.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  ?progress:(Sctbench.Bench.t -> unit) ->
  Sct_explore.Techniques.options ->
  Sctbench.Bench.t list ->
  Sct_report.Run_data.row list
(** Parallel equivalent of [Sct_report.Run_data.run_all]. [progress] is
    called once per benchmark, in suite order, when the row's jobs are about
    to be collected. *)
