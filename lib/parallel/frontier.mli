(** Frontier-partitioned parallel execution of systematic schedule-tree
    walks.

    The schedule tree is split at a fixed decision depth: a sequential
    enumeration pass walks the tree with backtracking restricted to depths
    below [split_depth] (the tree walk's [max_branch_depth]), discovering
    one depth-[split_depth] subtree per execution, in DFS order. Subtrees
    with internal branching are explored on pool workers (each worker
    replays the pinned prefix and runs an ordinary walk below it);
    single-schedule subtrees reuse the enumeration's own execution.

    Partition results are merged {e in DFS order}, so the merged
    {!Sct_explore.Strategy.walk_result} is identical to a sequential walk:
    schedule counts and executions add up, first-bug indices are offset by
    the schedules counted before the partition, and when the cumulative
    count crosses the schedule limit the crossing subtree is re-walked with
    the exact remaining budget so the truncated statistics (executions,
    observation maxima, first bug) match the sequential stop point.

    The only field that can differ from a sequential walk is [pruned], and
    only when [hit_limit] is set: the enumeration looks one execution into
    subtrees beyond the stop point and may observe pruning there. The
    iterative-bounding loop only consumes [pruned] when a level completes,
    where the flag is exact — so {!explore_bounded} is exactly
    sequential-equivalent.

    {b Partial-order-reduced walks are never partitioned.} The split-depth
    scheme relies on depth-[split_depth] subtrees being independent: a
    pinned prefix plus an ordinary walk below it covers exactly that
    subtree. A reduction walk ([Sct_explore.Por.Walk]) breaks this — its
    sleep sets and DPOR backtrack sets are global to the walk (a race
    observed inside one subtree adds backtrack points to frames {e above}
    the split depth, and a subtree's sleep set depends on which siblings
    were explored before it), so the partitions are not independent and
    their merge would not reproduce the sequential reduction.
    [Drivers.run] therefore routes POR cells to the sequential path for
    every [--jobs] value, exactly as it does for prefix-batched cells;
    a POR cell's statistics are byte-identical for every pool size. *)

val run :
  pool:Pool.t ->
  ?split_depth:int ->
  Sct_explore.Strategy.tree_walk ->
  limit:int ->
  Sct_explore.Strategy.walk_result
(** The generic runner: parallelise one abstract tree walk. This is the
    interpreter of the {!Sct_explore.Strategy.Shard_tree} capability — it
    has no knowledge of which technique it runs. [split_depth] defaults
    to 3. The program closure behind the walk is invoked concurrently on
    several domains, one execution per domain at a time; it must create all
    of its state inside the call (every SCTBench benchmark does). *)

val explore :
  pool:Pool.t ->
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?count_exact:int ->
  ?split_depth:int ->
  ?deadline:float ->
  bound:Sct_explore.Dfs.bound ->
  limit:int ->
  (unit -> unit) ->
  Sct_explore.Dfs.level_result
(** Parallel equivalent of [Sct_explore.Dfs.explore] (without the callback
    arguments): {!run} over [Sct_explore.Dfs.tree_walk]. *)

val explore_bounded :
  pool:Pool.t ->
  ?promote:(string -> bool) ->
  ?max_steps:int ->
  ?max_levels:int ->
  ?split_depth:int ->
  ?deadline:float ->
  kind:Sct_explore.Bounded.kind ->
  limit:int ->
  (unit -> unit) ->
  Sct_explore.Stats.t
(** Parallel equivalent of [Sct_explore.Bounded.explore]:
    [Sct_explore.Bounded.tree_campaign] instantiated with {!run}. Produces
    statistics equal ([Sct_explore.Stats.equal]) to the sequential function
    for every pool size. *)
