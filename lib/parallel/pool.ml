exception Cancelled

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or the pool closes *)
  finished : Condition.t;  (* broadcast whenever any future completes *)
  queue : (unit -> unit) Queue.t;  (* each task closes over its own future *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  inline : bool;
      (* a one-job pool spawns no worker domain at all: tasks run on the
         submitting domain at [submit] time. Task order is the FIFO order a
         single worker would use, and — crucially — the process stays
         single-domain, so {!Sct_explore.Prefix_exec.fork_available}
         remains true and sequential runs keep the fork fast path. *)
}

type 'a outcome =
  | Value of 'a
  | Error of exn * Printexc.raw_backtrace
  | Cancelled_before_start

type 'a future = {
  pool : t;
  mutable outcome : 'a outcome option;  (* [None] while pending or running *)
  mutable cancel_requested : bool;
}

let size pool = if pool.inline then 1 else Array.length pool.domains
let default_jobs () = Domain.recommended_domain_count ()

let worker pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.work pool.lock
    done;
    (* drain remaining tasks even when closed *)
    match Queue.take_opt pool.queue with
    | None ->
        Mutex.unlock pool.lock (* closed and empty: exit *)
    | Some task ->
        Mutex.unlock pool.lock;
        task ();
        loop ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [||];
      inline = jobs = 1;
    }
  in
  if not pool.inline then begin
    (* the OCaml runtime refuses [Unix.fork] in any process that ever
       spawned a second domain: switch the prefix-batch executor to its
       portable fallback for the rest of the process *)
    Sct_explore.Prefix_exec.note_domains_spawned ();
    pool.domains <-
      Array.init jobs (fun _ -> Domain.spawn (fun () -> worker pool))
  end;
  pool

let submit pool fn =
  let fut = { pool; outcome = None; cancel_requested = false } in
  let finish outcome =
    Mutex.lock pool.lock;
    fut.outcome <- Some outcome;
    Condition.broadcast pool.finished;
    Mutex.unlock pool.lock
  in
  let task () =
    Mutex.lock pool.lock;
    let cancelled = fut.cancel_requested in
    Mutex.unlock pool.lock;
    if cancelled then finish Cancelled_before_start
    else
      finish
        (try Value (fn ())
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Sct_parallel.Pool.submit: pool is shut down"
  end;
  if pool.inline then begin
    Mutex.unlock pool.lock;
    (* run on the submitting domain right away; a later [cancel] is simply
       too late, which best-effort cancellation already allows *)
    task ()
  end
  else begin
    Queue.push task pool.queue;
    Condition.signal pool.work;
    Mutex.unlock pool.lock
  end;
  fut

let await fut =
  let pool = fut.pool in
  Mutex.lock pool.lock;
  let rec wait () =
    match fut.outcome with
    | Some o -> o
    | None ->
        Condition.wait pool.finished pool.lock;
        wait ()
  in
  let o = wait () in
  Mutex.unlock pool.lock;
  match o with
  | Value v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Cancelled_before_start -> raise Cancelled

let cancel fut =
  let pool = fut.pool in
  Mutex.lock pool.lock;
  fut.cancel_requested <- true;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  let was_closed = pool.closed in
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  if (not was_closed) && not pool.inline then
    Array.iter Domain.join pool.domains

let with_pool ~jobs f =
  let pool = create ~jobs in
  match f pool with
  | v ->
      shutdown pool;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown pool;
      Printexc.raise_with_backtrace e bt
