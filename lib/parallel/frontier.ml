open Sct_core
open Sct_explore

(* A partition of the schedule tree, in sequential DFS order. The frontier
   enumeration already executed the first terminal schedule of every
   partition; when that subtree holds a single terminal schedule we keep the
   result instead of re-exploring it on a worker. *)
type partition =
  | Leaf of Runtime.result
  | Subtree of Strategy.prefix * Strategy.walk_result Pool.future

(* The generic frontier-partitioned runner: everything it needs from the
   technique is in the abstract {!Sct_explore.Strategy.tree_walk} — how to
   enumerate the frontier, how to walk one subtree, and whether a terminal
   schedule counts. No per-technique knowledge lives here. *)
let run ~pool ?(split_depth = 3) (tw : Strategy.tree_walk) ~limit :
    Strategy.walk_result =
  (* Phase 1: sequential frontier enumeration on this domain. Every
     execution pins the first in-bound child below [split_depth], so it
     reaches the first terminal schedule of its depth-[split_depth] subtree;
     subtrees with further branching are submitted to the pool as soon as
     they are discovered, in DFS order. *)
  let parts = ref [] in
  let on_exec (res : Runtime.result) (fi : Strategy.frontier_info) =
    let p =
      if fi.Strategy.fi_branched_below then
        let prefix = fi.Strategy.fi_prefix in
        Subtree
          (prefix, Pool.submit pool (fun () -> tw.Strategy.tw_sub ~prefix ~limit))
      else Leaf res
    in
    parts := p :: !parts
  in
  let enum = tw.Strategy.tw_enum ~max_branch_depth:split_depth ~on_exec ~limit in
  let parts = List.rev !parts in
  (* Phase 2: merge in partition (= sequential DFS) order. The enumeration
     counts at most one terminal schedule per partition, so whenever it
     stopped at the limit the merged walk is guaranteed to cross the limit
     within the collected partitions. *)
  let leaf_result (res : Runtime.result) =
    let counted = if tw.Strategy.tw_counts res then 1 else 0 in
    let buggy, to_first_bug, first_bug =
      if counted = 1 then
        match res.r_outcome with
        | Outcome.Bug { bug; by } ->
            ( 1,
              Some 1,
              Some
                {
                  Stats.w_bug = bug;
                  w_by = by;
                  w_schedule = res.r_schedule;
                  w_pc = res.r_pc;
                  w_dc = res.r_dc;
                } )
        | Outcome.Ok | Outcome.Step_limit -> (0, None, None)
      else (0, None, None)
    in
    {
      Strategy.counted;
      buggy;
      to_first_bug;
      first_bug;
      pruned = false;
      (* pruning at this leaf's decisions was observed by the enumeration *)
      hit_limit = false;
      hit_deadline = false;
      complete = true;
      executions = 1;
      steps_executed = res.r_steps;
      steps_saved = 0;
      n_threads = res.r_n_threads;
      max_enabled = res.r_max_enabled;
      max_sched_points = res.r_multi_points;
    }
  in
  let counted = ref 0 in
  let buggy = ref 0 in
  let to_first_bug = ref None in
  let first_bug = ref None in
  let executions = ref 0 in
  let steps_executed = ref 0 in
  let steps_saved = ref 0 in
  let n_threads = ref 0 in
  let max_enabled = ref 0 in
  let max_points = ref 0 in
  let pruned = ref enum.Strategy.pruned in
  let hit = ref false in
  let hit_deadline = ref enum.Strategy.hit_deadline in
  let rec merge = function
    | [] -> ()
    | p :: rest ->
        let r =
          match p with
          | Leaf res -> leaf_result res
          | Subtree (_, fut) -> Pool.await fut
        in
        let remaining = limit - !counted in
        let r =
          if r.Strategy.counted < remaining then r
          else begin
            (* This partition reaches the schedule limit. Reproduce the
               sequential stop point exactly — including the executions and
               observation maxima accumulated up to it — by re-walking the
               subtree with the remaining budget. *)
            hit := true;
            match p with
            | Leaf _ -> { r with Strategy.hit_limit = true }
            | Subtree (prefix, _) -> tw.Strategy.tw_sub ~prefix ~limit:remaining
          end
        in
        (match r.Strategy.to_first_bug with
        | Some i when !to_first_bug = None ->
            to_first_bug := Some (!counted + i);
            first_bug := r.Strategy.first_bug
        | _ -> ());
        counted := !counted + r.Strategy.counted;
        buggy := !buggy + r.Strategy.buggy;
        executions := !executions + r.Strategy.executions;
        steps_executed := !steps_executed + r.Strategy.steps_executed;
        steps_saved := !steps_saved + r.Strategy.steps_saved;
        n_threads := max !n_threads r.Strategy.n_threads;
        max_enabled := max !max_enabled r.Strategy.max_enabled;
        max_points := max !max_points r.Strategy.max_sched_points;
        pruned := !pruned || r.Strategy.pruned;
        hit_deadline := !hit_deadline || r.Strategy.hit_deadline;
        if !hit then
          List.iter
            (function Subtree (_, fut) -> Pool.cancel fut | Leaf _ -> ())
            rest
        else merge rest
  in
  merge parts;
  {
    Strategy.counted = !counted;
    buggy = !buggy;
    to_first_bug = !to_first_bug;
    first_bug = !first_bug;
    pruned = !pruned;
    hit_limit = !hit;
    hit_deadline = !hit_deadline;
    complete = (if !hit || !hit_deadline then false else enum.Strategy.complete);
    executions = !executions;
    steps_executed = !steps_executed;
    steps_saved = !steps_saved;
    n_threads = !n_threads;
    max_enabled = !max_enabled;
    max_sched_points = !max_points;
  }

let explore ~pool ?promote ?max_steps ?count_exact ?split_depth ?deadline
    ~bound ~limit program =
  run ~pool ?split_depth
    (Dfs.tree_walk ?promote ?max_steps ?count_exact ?deadline ~bound program)
    ~limit

let explore_bounded ~pool ?promote ?max_steps ?max_levels ?split_depth
    ?deadline ~kind ~limit program =
  Bounded.tree_campaign ?promote ?max_steps ?max_levels ?deadline ~kind ~limit
    program
    (fun tw ~limit -> run ~pool ?split_depth tw ~limit)
