open Sct_core
open Sct_explore

(* A partition of the schedule tree, in sequential DFS order. The frontier
   enumeration already executed the first terminal schedule of every
   partition; when that subtree holds a single terminal schedule we keep the
   result instead of re-exploring it on a worker. *)
type partition =
  | Leaf of Runtime.result
  | Subtree of (Tid.t * Tid.t list) array * Dfs.level_result Pool.future

let explore ~pool ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?count_exact ?(split_depth = 3) ~bound ~limit program =
  let counts exact =
    match count_exact with None -> true | Some c -> exact = c
  in
  let exact_of (res : Runtime.result) =
    match bound with
    | Dfs.Unbounded | Dfs.Preemption _ -> res.r_pc
    | Dfs.Delay _ -> res.r_dc
  in
  (* Phase 1: sequential frontier enumeration on this domain. Every
     execution pins the first in-bound child below [split_depth], so it
     reaches the first terminal schedule of its depth-[split_depth] subtree;
     subtrees with further branching are submitted to the pool as soon as
     they are discovered, in DFS order. *)
  let parts = ref [] in
  let on_exec (res : Runtime.result) (fi : Dfs.frontier_info) =
    let p =
      if fi.Dfs.fi_branched_below then
        let prefix = fi.Dfs.fi_prefix in
        Subtree
          ( prefix,
            Pool.submit pool (fun () ->
                Dfs.explore ~promote ~max_steps ?count_exact ~prefix ~bound
                  ~limit program) )
      else Leaf res
    in
    parts := p :: !parts
  in
  let enum =
    Dfs.explore ~promote ~max_steps ?count_exact
      ~max_branch_depth:split_depth ~on_exec ~bound ~limit program
  in
  let parts = List.rev !parts in
  (* Phase 2: merge in partition (= sequential DFS) order. The enumeration
     counts at most one terminal schedule per partition, so whenever it
     stopped at the limit the merged walk is guaranteed to cross the limit
     within the collected partitions. *)
  let leaf_result (res : Runtime.result) =
    let counted = if counts (exact_of res) then 1 else 0 in
    let buggy, to_first_bug, first_bug =
      if counted = 1 then
        match res.r_outcome with
        | Outcome.Bug { bug; by } ->
            ( 1,
              Some 1,
              Some
                {
                  Stats.w_bug = bug;
                  w_by = by;
                  w_schedule = res.r_schedule;
                  w_pc = res.r_pc;
                  w_dc = res.r_dc;
                } )
        | Outcome.Ok | Outcome.Step_limit -> (0, None, None)
      else (0, None, None)
    in
    {
      Dfs.counted;
      buggy;
      to_first_bug;
      first_bug;
      pruned = false;
      (* pruning at this leaf's decisions was observed by the enumeration *)
      hit_limit = false;
      complete = true;
      executions = 1;
      n_threads = res.r_n_threads;
      max_enabled = res.r_max_enabled;
      max_sched_points = res.r_multi_points;
    }
  in
  let counted = ref 0 in
  let buggy = ref 0 in
  let to_first_bug = ref None in
  let first_bug = ref None in
  let executions = ref 0 in
  let n_threads = ref 0 in
  let max_enabled = ref 0 in
  let max_points = ref 0 in
  let pruned = ref enum.Dfs.pruned in
  let hit = ref false in
  let rec merge = function
    | [] -> ()
    | p :: rest ->
        let r =
          match p with Leaf res -> leaf_result res | Subtree (_, fut) -> Pool.await fut
        in
        let remaining = limit - !counted in
        let r =
          if r.Dfs.counted < remaining then r
          else begin
            (* This partition reaches the schedule limit. Reproduce the
               sequential stop point exactly — including the executions and
               observation maxima accumulated up to it — by re-walking the
               subtree with the remaining budget. *)
            hit := true;
            match p with
            | Leaf _ -> { r with Dfs.hit_limit = true }
            | Subtree (prefix, _) ->
                Dfs.explore ~promote ~max_steps ?count_exact ~prefix ~bound
                  ~limit:remaining program
          end
        in
        (match r.Dfs.to_first_bug with
        | Some i when !to_first_bug = None ->
            to_first_bug := Some (!counted + i);
            first_bug := r.Dfs.first_bug
        | _ -> ());
        counted := !counted + r.Dfs.counted;
        buggy := !buggy + r.Dfs.buggy;
        executions := !executions + r.Dfs.executions;
        n_threads := max !n_threads r.Dfs.n_threads;
        max_enabled := max !max_enabled r.Dfs.max_enabled;
        max_points := max !max_points r.Dfs.max_sched_points;
        pruned := !pruned || r.Dfs.pruned;
        if !hit then
          List.iter
            (function Subtree (_, fut) -> Pool.cancel fut | Leaf _ -> ())
            rest
        else merge rest
  in
  merge parts;
  {
    Dfs.counted = !counted;
    buggy = !buggy;
    to_first_bug = !to_first_bug;
    first_bug = !first_bug;
    pruned = !pruned;
    hit_limit = !hit;
    complete = (if !hit then false else enum.Dfs.complete);
    executions = !executions;
    n_threads = !n_threads;
    max_enabled = !max_enabled;
    max_sched_points = !max_points;
  }

let explore_bounded ~pool ?(promote = fun _ -> false) ?(max_steps = 100_000)
    ?(max_levels = 64) ?split_depth ~kind ~limit program =
  let wrap c =
    match kind with
    | Bounded.Preemption_bounding -> Dfs.Preemption c
    | Bounded.Delay_bounding -> Dfs.Delay c
  in
  (* Mirrors [Bounded.explore]'s level loop, with each level's walk
     parallelised by [explore]. *)
  let rec level c (acc : Stats.t) =
    if acc.Stats.total >= limit then
      { acc with Stats.bound = Some c; hit_limit = true }
    else if c > max_levels then { acc with Stats.bound = Some c }
    else begin
      let r =
        explore ~pool ~promote ~max_steps ?split_depth ~count_exact:c
          ~bound:(wrap c) ~limit:(limit - acc.Stats.total) program
      in
      let acc =
        {
          acc with
          Stats.total = acc.Stats.total + r.Dfs.counted;
          buggy = acc.Stats.buggy + r.Dfs.buggy;
          executions = acc.Stats.executions + r.Dfs.executions;
          n_threads = max acc.Stats.n_threads r.Dfs.n_threads;
          max_enabled = max acc.Stats.max_enabled r.Dfs.max_enabled;
          max_sched_points =
            max acc.Stats.max_sched_points r.Dfs.max_sched_points;
        }
      in
      match r.Dfs.to_first_bug with
      | Some i ->
          {
            acc with
            Stats.bound = Some c;
            bound_complete = r.Dfs.complete;
            to_first_bug = Some (acc.Stats.total - r.Dfs.counted + i);
            new_at_bound = r.Dfs.counted;
            first_bug = r.Dfs.first_bug;
            hit_limit = r.Dfs.hit_limit;
          }
      | None ->
          if r.Dfs.hit_limit then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = false;
              new_at_bound = r.Dfs.counted;
              hit_limit = true;
            }
          else if not r.Dfs.pruned then
            {
              acc with
              Stats.bound = Some c;
              bound_complete = true;
              new_at_bound = r.Dfs.counted;
              complete = true;
            }
          else level (c + 1) acc
    end
  in
  level 0 (Stats.base ~technique:(Bounded.technique_name kind))
