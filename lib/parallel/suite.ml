open Sct_explore

let row_of ~bench ~detection results =
  {
    Sct_report.Run_data.bench;
    racy_locations = List.length detection.Sct_race.Promotion.racy;
    results;
  }

let keyed_cells o (bench : Sctbench.Bench.t) techniques =
  List.map
    (fun t ->
      ( t,
        Sct_store.Db.fingerprint ~bench:bench.Sctbench.Bench.name
          ~technique:(Techniques.name t) o ))
    techniques

let cached_stats db key = (Option.get (Sct_store.Db.find db key)).Sct_store.Db.e_stats

(* Await the futures of one benchmark's missing cells and journal each
   result as it lands; cached cells are filled in from the store. The store
   is only ever touched from the calling (collector) domain. *)
let collect_stored db ~bench ~racy ~options keyed futs =
  let computed =
    List.map
      (fun (t, key, fut) ->
        let s = Pool.await fut in
        Sct_store.Db.record db ~key ~bench ~technique:(Techniques.name t)
          ~racy ~options s;
        (t, s))
      futs
  in
  List.map
    (fun (t, key) ->
      match List.assq_opt t computed with
      | Some s -> (t, s)
      | None -> (t, cached_stats db key))
    keyed

let run_benchmark ~pool ?store ?(techniques = Techniques.all_paper) o
    (bench : Sctbench.Bench.t) =
  if Pool.size pool <= 1 then
    Sct_report.Run_data.run_benchmark ?store ~techniques o bench
  else
    match store with
    | None ->
        let detection, results =
          Drivers.run_all ~pool ~techniques o bench.Sctbench.Bench.program
        in
        row_of ~bench ~detection results
    | Some db ->
        let keyed = keyed_cells o bench techniques in
        if List.for_all (fun (_, key) -> Sct_store.Db.mem db key) keyed then
          {
            Sct_report.Run_data.bench;
            racy_locations =
              (match keyed with
              | (_, key) :: _ ->
                  (Option.get (Sct_store.Db.find db key)).Sct_store.Db.e_racy
              | [] -> 0);
            results = List.map (fun (t, key) -> (t, cached_stats db key)) keyed;
          }
        else begin
          let detection =
            Techniques.detect_races o bench.Sctbench.Bench.program
          in
          let promote = Sct_race.Promotion.promote detection in
          let racy = List.length detection.Sct_race.Promotion.racy in
          (* [Drivers.run] parallelises within each technique; missing cells
             run one after another, each journalled as soon as it finishes. *)
          let results =
            List.map
              (fun (t, key) ->
                match Sct_store.Db.find db key with
                | Some e -> (t, e.Sct_store.Db.e_stats)
                | None ->
                    let s =
                      Drivers.run ~pool ~promote o t
                        bench.Sctbench.Bench.program
                    in
                    Sct_store.Db.record db ~key
                      ~bench:bench.Sctbench.Bench.name
                      ~technique:(Techniques.name t) ~racy ~options:o s;
                    (t, s))
              keyed
          in
          { Sct_report.Run_data.bench; racy_locations = racy; results }
        end

let run_all ~pool ?store ?(techniques = Techniques.all_paper)
    ?(progress = fun _ -> ()) o benches =
  if Pool.size pool <= 1 then
    Sct_report.Run_data.run_all ?store ~techniques ~progress o benches
  else begin
    (* Whole-suite runs use coarse sharding: one job per benchmark for race
       detection, then one job per benchmark x technique, each running the
       ordinary sequential code — so every row is computed by exactly the
       same function as [Run_data.run_all], merely on another domain. With a
       store, fully journalled cells never become jobs, and benchmarks whose
       cells are all journalled skip race detection too. *)
    let cells b = keyed_cells o b techniques in
    let needs_detection (b : Sctbench.Bench.t) =
      match store with
      | None -> true
      | Some db ->
          List.exists (fun (_, key) -> not (Sct_store.Db.mem db key)) (cells b)
    in
    let detections =
      benches
      |> List.map (fun (b : Sctbench.Bench.t) ->
             ( b,
               if needs_detection b then
                 Some
                   (Pool.submit pool (fun () ->
                        Techniques.detect_races o b.Sctbench.Bench.program))
               else None ))
      |> List.map (fun (b, fut) -> (b, Option.map Pool.await fut))
    in
    let pending =
      List.map
        (fun ((b : Sctbench.Bench.t), detection) ->
          let keyed = cells b in
          let futs =
            match detection with
            | None -> []
            | Some detection ->
                let promote = Sct_race.Promotion.promote detection in
                List.filter_map
                  (fun (t, key) ->
                    let cached =
                      match store with
                      | Some db -> Sct_store.Db.mem db key
                      | None -> false
                    in
                    if cached then None
                    else
                      Some
                        ( t,
                          key,
                          Pool.submit pool (fun () ->
                              Techniques.run ~promote o t
                                b.Sctbench.Bench.program) ))
                  keyed
          in
          (b, keyed, detection, futs))
        detections
    in
    List.map
      (fun ((b : Sctbench.Bench.t), keyed, detection, futs) ->
        progress b;
        match store with
        | None ->
            let detection = Option.get detection in
            let results =
              List.map (fun (t, _, fut) -> (t, Pool.await fut)) futs
            in
            row_of ~bench:b ~detection results
        | Some db ->
            let racy =
              match detection with
              | Some d -> List.length d.Sct_race.Promotion.racy
              | None -> (
                  match keyed with
                  | (_, key) :: _ ->
                      (Option.get (Sct_store.Db.find db key)).Sct_store.Db.e_racy
                  | [] -> 0)
            in
            let results =
              collect_stored db ~bench:b.Sctbench.Bench.name ~racy ~options:o
                keyed futs
            in
            { Sct_report.Run_data.bench = b; racy_locations = racy; results })
      pending
  end
