open Sct_explore

let row_of ~bench ~detection results =
  {
    Sct_report.Run_data.bench;
    racy_locations = List.length detection.Sct_race.Promotion.racy;
    results;
  }

let run_benchmark ~pool ?techniques o (bench : Sctbench.Bench.t) =
  if Pool.size pool <= 1 then
    Sct_report.Run_data.run_benchmark ?techniques o bench
  else
    let detection, results =
      Drivers.run_all ~pool ?techniques o bench.Sctbench.Bench.program
    in
    row_of ~bench ~detection results

let run_all ~pool ?(techniques = Techniques.all_paper)
    ?(progress = fun _ -> ()) o benches =
  if Pool.size pool <= 1 then
    Sct_report.Run_data.run_all ~techniques ~progress o benches
  else begin
    (* Whole-suite runs use coarse sharding: one job per benchmark for race
       detection, then one job per benchmark x technique, each running the
       ordinary sequential code — so every row is computed by exactly the
       same function as [Run_data.run_all], merely on another domain. *)
    let detections =
      benches
      |> List.map (fun (b : Sctbench.Bench.t) ->
             ( b,
               Pool.submit pool (fun () ->
                   Techniques.detect_races o b.Sctbench.Bench.program) ))
      |> List.map (fun (b, fut) -> (b, Pool.await fut))
    in
    let pending =
      List.map
        (fun ((b : Sctbench.Bench.t), detection) ->
          let promote = Sct_race.Promotion.promote detection in
          let futs =
            List.map
              (fun t ->
                ( t,
                  Pool.submit pool (fun () ->
                      Techniques.run ~promote o t b.Sctbench.Bench.program) ))
              techniques
          in
          (b, detection, futs))
        detections
    in
    List.map
      (fun (bench, detection, futs) ->
        progress bench;
        let results = List.map (fun (t, fut) -> (t, Pool.await fut)) futs in
        row_of ~bench ~detection results)
      pending
  end
