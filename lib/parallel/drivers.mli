(** Parallel drivers for the study's techniques, dispatched from each
    technique's {e declared} sharding capability
    ({!Sct_explore.Strategy.sharding}) — the shape of the capability value,
    never the identity of the technique, decides the parallel plan. All
    plans produce statistics equal ([Sct_explore.Stats.equal]) to the
    sequential {!Sct_explore.Techniques.run} for every pool size:

    - [Shard_seed] (Rand, PCT, SURW): run [i] is a pure function of the
      campaign seed and [i]; the run range is sharded into contiguous
      per-worker slices and shard statistics are folded with
      [Sct_explore.Stats.merge] — first-bug indices are absolute, so the
      merge recovers the sequential first bug.
    - [Shard_tree] (DFS, IPB, IDB): the campaign runs its abstract tree
      walks through the frontier-partitioned runner ({!Frontier.run}).
    - [Shard_runs] (MapleAlg): finite batches of independent runs execute
      in parallel and are committed and absorbed in batch order, truncated
      at the first bug.

    With a pool of size 1 every plan simply calls the sequential code. *)

val shard_ranges : shards:int -> n:int -> (int * int) list
(** Balanced contiguous shards covering [\[0, n)], at least one (possibly
    empty). Also used by the campaign runner ([lib/campaign]) to sub-shard
    a budget slice across the pool. *)

val merge_all : Sct_explore.Stats.t list -> Sct_explore.Stats.t
(** Fold shard statistics with [Sct_explore.Stats.merge].
    @raise Invalid_argument on the empty list. *)

val run :
  pool:Pool.t ->
  ?promote:(string -> bool) ->
  Sct_explore.Techniques.options ->
  Sct_explore.Techniques.t ->
  (unit -> unit) ->
  Sct_explore.Stats.t
(** Parallel equivalent of [Sct_explore.Techniques.run]. *)

val run_all :
  pool:Pool.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  (unit -> unit) ->
  Sct_race.Promotion.result * (Sct_explore.Techniques.t * Sct_explore.Stats.t) list
(** Parallel equivalent of [Sct_explore.Techniques.run_all]: sequential race
    detection, then each technique through {!run}. *)
