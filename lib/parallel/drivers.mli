(** Parallel drivers for the study's techniques, one strategy per technique
    family, all producing statistics equal ([Sct_explore.Stats.equal]) to
    the sequential {!Sct_explore.Techniques.run} for every pool size:

    - Rand and PCT sample independent runs: the run range is sharded into
      contiguous per-worker slices (run [i] depends only on [(seed, i)]),
      and shard statistics are folded with [Sct_explore.Stats.merge] —
      first-bug indices are absolute, so the merge recovers the sequential
      first bug.
    - MapleAlg's profiling runs are independent and run in parallel, merged
      in run order and truncated at the first buggy run (the point where the
      sequential algorithm stops profiling); active runs are deterministic
      per candidate and merged in candidate order up to the first bug.
    - DFS, IPB and IDB use frontier partitioning ({!Frontier}).

    With a pool of size 1 every driver simply calls the sequential code. *)

val run :
  pool:Pool.t ->
  ?promote:(string -> bool) ->
  Sct_explore.Techniques.options ->
  Sct_explore.Techniques.t ->
  (unit -> unit) ->
  Sct_explore.Stats.t
(** Parallel equivalent of [Sct_explore.Techniques.run]. *)

val run_all :
  pool:Pool.t ->
  ?techniques:Sct_explore.Techniques.t list ->
  Sct_explore.Techniques.options ->
  (unit -> unit) ->
  Sct_race.Promotion.result * (Sct_explore.Techniques.t * Sct_explore.Stats.t) list
(** Parallel equivalent of [Sct_explore.Techniques.run_all]: sequential race
    detection, then each technique through {!run}. *)
