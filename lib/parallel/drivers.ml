open Sct_explore

(* Balanced contiguous shards covering [0, n). Always at least one shard
   (possibly empty), so the merged result of an empty campaign matches the
   sequential one (hit_limit set, empty distinct-schedule set). *)
let shard_ranges ~shards ~n =
  let shards = max 1 (min shards (max 1 n)) in
  let base = n / shards and extra = n mod shards in
  List.init shards (fun s ->
      let lo = (s * base) + min s extra in
      let hi = lo + base + if s < extra then 1 else 0 in
      (lo, hi))

let merge_all = function
  | [] -> invalid_arg "Sct_parallel.Drivers.merge_all: no shards"
  | s :: rest -> List.fold_left Stats.merge s rest

(* Interpreter for the Shard_seed capability: contiguous per-worker slices
   of the run range, folded with Stats.merge (first-bug indices are
   absolute, so the merge recovers the sequential first bug). *)
let run_seed_sharded ~pool ~limit shard =
  let futs =
    List.map
      (fun (lo, hi) -> Pool.submit pool (fun () -> shard ~lo ~hi))
      (shard_ranges ~shards:(Pool.size pool) ~n:limit)
  in
  merge_all (List.map Pool.await futs)

(* Interpreter for the Shard_runs capability: each batch's independent runs
   execute in parallel; their results are committed and absorbed in batch
   order, truncated at the first bug — runs past it are cancelled
   unabsorbed, exactly the runs the sequential algorithm would not have
   executed. *)
let run_batched ~pool (rb : Strategy.run_batches) =
  let rec batches () =
    match rb.Strategy.rb_next () with
    | None -> ()
    | Some batch ->
        let futs = List.map (Pool.submit pool) batch in
        List.iter
          (fun fut ->
            if rb.Strategy.rb_found () then Pool.cancel fut
            else begin
              let res, commit = Pool.await fut in
              commit ();
              rb.Strategy.rb_absorb res
            end)
          futs;
        batches ()
  in
  batches ();
  rb.Strategy.rb_finish ()

(* Dispatch purely on the declared capability: the shape of the
   {!Sct_explore.Strategy.sharding} value decides the parallel plan; no
   per-technique case analysis remains here. *)
let run ~pool ?(promote = fun _ -> false) (o : Techniques.options) technique
    program =
  if
    Pool.size pool <= 1
    || (o.Techniques.prefix_batch && Techniques.supports_prefix_batch technique)
    (* prefix-batched tree campaigns stay on the sequential batching
       executor even under a pool: the frontier partitioning cannot
       reproduce the batched step counters, and a cell's statistics must
       stay byte-identical for every [jobs] value *)
    || (o.Techniques.por <> None && Techniques.supports_por technique)
    (* POR campaigns likewise: backtrack and sleep sets are global to the
       reduction walk, so depth-[split_depth] subtrees are not independent
       and the frontier cannot partition them (see por.mli) *)
    || Techniques.sequential_only technique
    (* the Axes bounding techniques declare no parallel plan at all *)
  then Techniques.run ~promote o technique program
  else
    match Techniques.sharding ~promote o technique program with
    | Strategy.Shard_seed shard -> run_seed_sharded ~pool ~limit:o.limit shard
    | Strategy.Shard_tree campaign ->
        campaign (fun tw ~limit ->
            Frontier.run ~pool ~split_depth:o.split_depth tw ~limit)
    | Strategy.Shard_runs rb -> run_batched ~pool rb

let run_all ~pool ?(techniques = Techniques.all_paper) o program =
  let detection = Techniques.detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  let results =
    List.map (fun t -> (t, run ~pool ~promote o t program)) techniques
  in
  (detection, results)
