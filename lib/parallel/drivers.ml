open Sct_explore

(* Balanced contiguous shards covering [0, n). Always at least one shard
   (possibly empty), so the merged result of an empty campaign matches the
   sequential one (hit_limit set, empty distinct-schedule set). *)
let shard_ranges ~shards ~n =
  let shards = max 1 (min shards (max 1 n)) in
  let base = n / shards and extra = n mod shards in
  List.init shards (fun s ->
      let lo = (s * base) + min s extra in
      let hi = lo + base + if s < extra then 1 else 0 in
      (lo, hi))

let merge_all = function
  | [] -> invalid_arg "Sct_parallel.Drivers.merge_all: no shards"
  | s :: rest -> List.fold_left Stats.merge s rest

let run_rand ~pool ~promote (o : Techniques.options) program =
  let futs =
    List.map
      (fun (lo, hi) ->
        Pool.submit pool (fun () ->
            Random_walk.explore_shard ~promote ~max_steps:o.max_steps
              ~seed:o.seed ~lo ~hi program))
      (shard_ranges ~shards:(Pool.size pool) ~n:o.limit)
  in
  merge_all (List.map Pool.await futs)

let run_pct ~pool ~promote (o : Techniques.options) program =
  (* The probe run fixes PCT's a-priori length estimate [k] for the whole
     campaign, making run [i] a pure function of [(seed, i, k)]. *)
  let k = Pct.probe ~promote ~max_steps:o.max_steps program in
  let futs =
    List.map
      (fun (lo, hi) ->
        Pool.submit pool (fun () ->
            Pct.explore_shard ~promote ~max_steps:o.max_steps
              ~change_points:o.pct_change_points ~seed:o.seed ~k ~lo ~hi
              program))
      (shard_ranges ~shards:(Pool.size pool) ~n:o.limit)
  in
  merge_all (List.map Pool.await futs)

let run_maple ~pool ~promote (o : Techniques.options) program =
  let stats = ref (Stats.base ~technique:"MapleAlg") in
  (* Phase 1: profiling runs are independent; run them all in parallel but
     merge in run order, discarding runs past the first buggy one — exactly
     the runs the sequential algorithm would not have executed. *)
  let profile_futs =
    List.init o.maple_profile_runs (fun i ->
        Pool.submit pool (fun () ->
            Maple_lite.profile_one ~promote ~max_steps:o.max_steps ~seed:o.seed
              i program))
  in
  let observed = ref Maple_lite.Iroot_set.empty in
  let adjacent = ref Maple_lite.Iroot_set.empty in
  List.iter
    (fun fut ->
      if Stats.found !stats then Pool.cancel fut
      else begin
        let res, obs, adj = Pool.await fut in
        observed := Maple_lite.Iroot_set.union !observed obs;
        adjacent := Maple_lite.Iroot_set.union !adjacent adj;
        stats := Maple_lite.count_run !stats res
      end)
    profile_futs;
  (* Phase 2: one (deterministic) active run per candidate reversal, merged
     in candidate order up to the first bug. *)
  if not (Stats.found !stats) then begin
    let active_futs =
      List.map
        (fun c ->
          Pool.submit pool (fun () ->
              Maple_lite.active_run ~promote ~max_steps:o.max_steps c program))
        (Maple_lite.candidates ~promote ~observed:!observed
           ~adjacent:!adjacent)
    in
    List.iter
      (fun fut ->
        if Stats.found !stats then Pool.cancel fut
        else stats := Maple_lite.count_run !stats (Pool.await fut))
      active_futs
  end;
  { !stats with Stats.complete = true }

let run ~pool ?(promote = fun _ -> false) (o : Techniques.options) technique
    program =
  if Pool.size pool <= 1 then Techniques.run ~promote o technique program
  else
    match technique with
    | Techniques.Rand -> run_rand ~pool ~promote o program
    | Techniques.PCT -> run_pct ~pool ~promote o program
    | Techniques.Maple -> run_maple ~pool ~promote o program
    | Techniques.DFS ->
        Techniques.dfs_stats ~technique:"DFS"
          (Frontier.explore ~pool ~promote ~max_steps:o.max_steps
             ~split_depth:o.split_depth ~bound:Dfs.Unbounded ~limit:o.limit
             program)
    | Techniques.IPB ->
        Frontier.explore_bounded ~pool ~promote ~max_steps:o.max_steps
          ~split_depth:o.split_depth ~kind:Bounded.Preemption_bounding
          ~limit:o.limit program
    | Techniques.IDB ->
        Frontier.explore_bounded ~pool ~promote ~max_steps:o.max_steps
          ~split_depth:o.split_depth ~kind:Bounded.Delay_bounding
          ~limit:o.limit program

let run_all ~pool ?(techniques = Techniques.all_paper) o program =
  let detection = Techniques.detect_races o program in
  let promote = Sct_race.Promotion.promote detection in
  let results =
    List.map (fun t -> (t, run ~pool ~promote o t program)) techniques
  in
  (detection, results)
