(** Vector clocks over thread identifiers. *)

type t

val zero : t
val get : t -> Sct_core.Tid.t -> int
val set : t -> Sct_core.Tid.t -> int -> t
val tick : t -> Sct_core.Tid.t -> t
(** Increment the component of the given thread. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** Pointwise less-or-equal (happens-before ordering of clocks). *)

val equal : t -> t -> bool

val find_exceeding :
  past:t -> clock:t -> except:Sct_core.Tid.t -> Sct_core.Tid.t option
(** [find_exceeding ~past ~clock ~except] is a thread [u ≠ except] whose
    component in [past] exceeds its component in [clock], if any — i.e. a
    witness that some event recorded in [past] does not happen-before the
    state [clock]. *)

val pp : Format.formatter -> t -> unit
