(** Dynamic data-race detection over runtime events.

    A vector-clock (FastTrack-style) detector: it consumes the {!Sct_core.Event.t}
    stream of an execution and reports, per shared location, whether two
    accesses (at least one a write, at least one a plain access) were
    unordered by happens-before. Atomic accesses synchronise on their
    location and therefore never race.

    This implements the paper's data-race-detection phase (§5): locations
    found racy are promoted to visible operations for the SCT phases. *)

type race = {
  location : string;  (** location name of the racy variable / array *)
  first : Sct_core.Tid.t;
  second : Sct_core.Tid.t;
  write_write : bool;
}

type t

val create : unit -> t

val listener : t -> Sct_core.Event.t -> unit
(** Feed one event; pass as [?listener] to {!Sct_core.Runtime.exec}. The
    detector may be reused across executions: call {!reset_execution} in
    between (location race verdicts accumulate; clocks reset). *)

val reset_execution : t -> unit
val races : t -> race list
val racy_locations : t -> string list
(** Sorted, deduplicated location names involved in at least one race. *)
