(* Clocks are immutable int arrays indexed by thread id; all operations are
   tolerant of arrays of different lengths (missing components are zero). *)
type t = int array

let zero = [||]
let get c t = if t < Array.length c then c.(t) else 0

let set c t v =
  let n = max (Array.length c) (t + 1) in
  let out = Array.make n 0 in
  Array.blit c 0 out 0 (Array.length c);
  out.(t) <- v;
  out

let tick c t = set c t (get c t + 1)

let join a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (get a i) (get b i))

let leq a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > get b i then ok := false) a;
  !ok

let equal a b = leq a b && leq b a

let find_exceeding ~past ~clock ~except =
  let found = ref None in
  Array.iteri
    (fun i v -> if i <> except && v > get clock i && !found = None then found := Some i)
    past;
  !found

let pp ppf c =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int c)))
