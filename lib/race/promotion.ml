open Sct_core

type result = { racy : string list; races : Detector.race list; runs : int }

(* One batch of seeded random executions with the given promotion set. *)
let detect_batch ~runs ~seed ~max_steps ~promote d program =
  for i = 0 to runs - 1 do
    Detector.reset_execution d;
    let rng = Random.State.make [| seed; i |] in
    let scheduler (ctx : Runtime.ctx) =
      match ctx.c_enabled with
      | [ t ] ->
          (* still draw, keeping the RNG stream identical *)
          ignore (Random.State.int rng 1 : int);
          t
      | enabled ->
          (* one O(n) conversion, then O(1) indexing (same RNG draw
             sequence) *)
          let enabled = Array.of_list enabled in
          enabled.(Random.State.int rng (Array.length enabled))
    in
    let result =
      Runtime.exec ~promote ~listener:(Detector.listener d) ~max_steps
        ~record_decisions:false ~scheduler program
    in
    ignore result.Runtime.r_outcome
  done

(* Iterative detection: racy locations found in one round become visible
   operations in the next, refining the interleavings the detector can
   observe (threads are otherwise atomic between visible operations, unlike
   the paper's binary-level instrumentation where every racy instruction is
   individually interruptible by the OS scheduler). A fixpoint is reached in
   a handful of rounds on all of SCTBench. *)
let detect ?(runs = 10) ?(seed = 0) ?(max_steps = 100_000) ?(max_rounds = 4)
    program =
  let d = Detector.create () in
  let racy = ref [] in
  let total_runs = ref 0 in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !round < max_rounds do
    let known = !racy in
    let promote name = List.mem name known in
    detect_batch ~runs ~seed:(seed + (1000 * !round)) ~max_steps ~promote d
      program;
    total_runs := !total_runs + runs;
    let now = Detector.racy_locations d in
    if List.length now = List.length known then continue_ := false
    else racy := now;
    incr round
  done;
  { racy = Detector.racy_locations d; races = Detector.races d; runs = !total_runs }

let promote r name = List.mem name r.racy
