(** The data-race-detection phase (paper §5).

    Executes the program a fixed number of times under a seeded random
    scheduler with no promoted locations (so only synchronisation operations
    are scheduling points), collecting every location that participates in a
    data race. The resulting racy-location set is then used to promote plain
    accesses to visible operations in the SCT phases — the same
    under-approximation the paper uses, with per-location granularity
    replacing binary instruction offsets. *)

type result = {
  racy : string list;  (** sorted racy location names *)
  races : Detector.race list;  (** individual race reports *)
  runs : int;  (** total detection executions, across all rounds *)
}

val detect :
  ?runs:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?max_rounds:int ->
  (unit -> unit) ->
  result
(** [detect program] runs the detection phase; [runs] executions per round
    (default 10, as in the paper), [seed] defaults to 0. Detection is
    iterated to a fixpoint (at most [max_rounds], default 4): locations found
    racy in one round are promoted to visible operations for the next, so
    interleavings hidden by the coarse atomicity of unpromoted code are
    progressively uncovered — the model-level analogue of the paper's
    instruction-level instrumentation under an uncontrolled OS scheduler.
    Executions that hit a bug still contribute the races observed up to the
    bug. *)

val promote : result -> string -> bool
(** The promotion predicate to pass to the explorers. *)
