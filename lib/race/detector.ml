open Sct_core

type race = {
  location : string;
  first : Tid.t;
  second : Tid.t;
  write_write : bool;
}

(* Per-location access history: the clock of the last write and last read of
   each thread, as vector clocks (component t = thread t's clock at its most
   recent access). *)
type loc = {
  name : string;
  mutable writes : Vclock.t;
  mutable reads : Vclock.t;
}

type t = {
  mutable clocks : (Tid.t, Vclock.t) Hashtbl.t;
  obj_clocks : (int, Vclock.t) Hashtbl.t;
  locs : (int, loc) Hashtbl.t;
  mutable found : race list;
  racy : (string, unit) Hashtbl.t;
}

let create () =
  {
    clocks = Hashtbl.create 16;
    obj_clocks = Hashtbl.create 64;
    locs = Hashtbl.create 64;
    found = [];
    racy = Hashtbl.create 16;
  }

let reset_execution d =
  Hashtbl.reset d.clocks;
  Hashtbl.reset d.obj_clocks;
  Hashtbl.reset d.locs

let clock d tid =
  match Hashtbl.find_opt d.clocks tid with
  | Some c -> c
  | None ->
      (* First sight of a thread: its clock starts at one for itself. *)
      let c = Vclock.tick Vclock.zero tid in
      Hashtbl.replace d.clocks tid c;
      c

let set_clock d tid c = Hashtbl.replace d.clocks tid c

let obj_clock d id =
  match Hashtbl.find_opt d.obj_clocks id with
  | Some c -> c
  | None -> Vclock.zero

let loc_state d id name =
  match Hashtbl.find_opt d.locs id with
  | Some l -> l
  | None ->
      let l = { name; writes = Vclock.zero; reads = Vclock.zero } in
      Hashtbl.replace d.locs id l;
      l

let record_race d ~location ~first ~second ~write_write =
  d.found <- { location; first; second; write_write } :: d.found;
  Hashtbl.replace d.racy location ()

(* An access vector clock [past] (per-thread clocks of previous accesses) is
   ordered before thread [tid]'s current access iff every component is <= the
   thread's clock. A component from another thread exceeding it witnesses an
   unordered previous access: a race. *)
let check_ordered d ~tid ~c ~past ~location ~write_write =
  match Vclock.find_exceeding ~past ~clock:c ~except:tid with
  | Some other -> record_race d ~location ~first:other ~second:tid ~write_write
  | None -> ()

let handle_access d tid id name kind =
  let c = clock d tid in
  let l = loc_state d id name in
  match (kind : Op.access_kind) with
  | Op.Atomic_op _ ->
      (* Synchronisation handled via the Acquire/Release events the DSL
         emits alongside; nothing to check. *)
      ()
  | Op.Plain_read ->
      check_ordered d ~tid ~c ~past:l.writes ~location:name ~write_write:false;
      l.reads <- Vclock.set l.reads tid (Vclock.get c tid)
  | Op.Plain_write ->
      check_ordered d ~tid ~c ~past:l.writes ~location:name ~write_write:true;
      check_ordered d ~tid ~c ~past:l.reads ~location:name ~write_write:false;
      l.writes <- Vclock.set l.writes tid (Vclock.get c tid)

let listener d (ev : Event.t) =
  match ev with
  | Event.Access { tid; id; name; kind } -> handle_access d tid id name kind
  | Event.Acquire { tid; obj } ->
      set_clock d tid (Vclock.join (clock d tid) (obj_clock d obj))
  | Event.Release { tid; obj } ->
      let c = clock d tid in
      Hashtbl.replace d.obj_clocks obj (Vclock.join (obj_clock d obj) c);
      set_clock d tid (Vclock.tick c tid)
  | Event.Fork { parent; child } ->
      let pc = clock d parent in
      set_clock d child (Vclock.tick (Vclock.join (clock d child) pc) child);
      set_clock d parent (Vclock.tick pc parent)
  | Event.Joined { parent; child } ->
      set_clock d parent (Vclock.join (clock d parent) (clock d child))

let races d = List.rev d.found

let racy_locations d =
  Hashtbl.fold (fun k () acc -> k :: acc) d.racy [] |> List.sort_uniq compare
