(** A minimal, dependency-free JSON tree.

    The store's on-disk formats (journal records, artifact headers, encoded
    statistics) only need objects, arrays, strings, integers, booleans and
    null — floats are deliberately rejected so every value round-trips
    exactly, which the byte-identical resume guarantee depends on. Strings
    are treated as byte sequences: bytes outside ASCII pass through
    untouched on both sides, and control characters are escaped as
    [\uNNNN]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }
(** Raised by {!of_string}; [pos] is a byte offset into the input. *)

val to_string : t -> string
(** Compact (whitespace-free) rendering; object fields keep their order, so
    encoding is deterministic. *)

val of_string : string -> t
(** Parse one JSON value; trailing garbage is an error.
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k], if any; [None] on
    non-objects. *)
