type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

let parse_error pos msg = raise (Parse_error { pos; msg })

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        l;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos ("expected " ^ lit)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then parse_error !pos "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'; incr pos
            | '\\' -> Buffer.add_char buf '\\'; incr pos
            | '/' -> Buffer.add_char buf '/'; incr pos
            | 'n' -> Buffer.add_char buf '\n'; incr pos
            | 't' -> Buffer.add_char buf '\t'; incr pos
            | 'r' -> Buffer.add_char buf '\r'; incr pos
            | 'b' -> Buffer.add_char buf '\b'; incr pos
            | 'f' -> Buffer.add_char buf '\012'; incr pos
            | 'u' ->
                if !pos + 4 >= n then parse_error !pos "truncated \\u escape";
                (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some code -> add_utf8 buf code
                | None -> parse_error !pos "bad \\u escape");
                pos := !pos + 5
            | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> parse_error !pos "expected ',' or ']'"
          in
          Arr (items [])
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> parse_error !pos "expected ',' or '}'"
          in
          Obj (fields [])
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then incr pos;
        while match peek () with Some '0' .. '9' -> true | _ -> false do
          incr pos
        done;
        (match peek () with
        | Some ('.' | 'e' | 'E') -> parse_error !pos "floats are not supported"
        | _ -> ());
        (match int_of_string_opt (String.sub s start (!pos - start)) with
        | Some i -> Int i
        | None -> parse_error start "bad number")
    | Some c -> parse_error !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing garbage";
  v

let member k = function Obj l -> List.assoc_opt k l | _ -> None
