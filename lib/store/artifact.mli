(** Content-addressed bug-witness artifacts.

    A witness found during a stored study is written out as
    [<digest>.sched]: a small text file whose header records where the bug
    was found (benchmark, technique, bound, the exploration options) and
    what it was (bug, culprit thread, preemption/delay counts), followed by
    the witness schedule as one plain comma-separated line — the same
    syntax [Sct_explore.Replay.parse] accepts, so the file can also be fed
    straight back through [sctbench_run replay --file].

    The file name is the MD5 digest of the file's semantic content
    (metadata line + schedule line), so identical witnesses dedupe to one
    file and any corruption is detected on load. Files are written
    atomically (temp file in the same directory, then rename): a reader or
    a crash never observes a half-written artifact. *)

exception Error of string

type meta = {
  a_bench : string;  (** qualified benchmark name, e.g. ["CS.account_bad"] *)
  a_technique : string;  (** technique display name, e.g. ["IPB"] *)
  a_options : Sct_explore.Techniques.options;
      (** the options of the run that found the witness; replaying with the
          same options re-derives the same promoted-location set, which the
          schedule's feasibility depends on *)
  a_bound : int option;  (** bound at which the bug surfaced, if bounded *)
  a_bug : Sct_core.Outcome.bug;
  a_by : Sct_core.Tid.t;
  a_pc : int;
  a_dc : int;
}

type t = {
  meta : meta;
  schedule : Sct_core.Schedule.t;
  digest : string;  (** MD5 hex of the semantic content *)
}

val make :
  bench:string ->
  technique:string ->
  options:Sct_explore.Techniques.options ->
  bound:int option ->
  Sct_explore.Stats.bug_witness ->
  t

val filename : t -> string
(** ["<digest>.sched"]. *)

val save : dir:string -> t -> string
(** Atomically write the artifact under [dir] (created if missing) and
    return its path. Content addressing makes this idempotent: an existing
    file with the same digest is left untouched. *)

val write_atomic : dir:string -> file:string -> string -> string
(** [write_atomic ~dir ~file content] writes [content] to [dir/file]
    (directory created if missing) with the store's crash-safety
    discipline — temp file in the same directory, then rename — and
    returns the final path. An existing file is left untouched. Also used
    by the fuzz subsystem for counterexample artifacts. *)

val load : string -> t
(** Read an artifact back and verify its digest against the content.
    @raise Error on malformed files or digest mismatch. *)

val list : dir:string -> t list
(** All artifacts under [dir], sorted by content digest — never by the
    filesystem's directory order, so listings are deterministic across
    filesystems. An absent directory is empty. Unreadable files raise
    {!Error}. *)

val schedule_of_file : string -> Sct_core.Schedule.t
(** Read a schedule from [path]: lines starting with [#] and blank lines
    are ignored, and the single remaining line is parsed with
    [Sct_explore.Replay.parse]. Accepts both bare one-line schedule files
    and [.sched] artifacts. @raise Error if the file does not contain
    exactly one schedule line. *)
