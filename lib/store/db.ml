module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques

type entry = {
  e_bench : string;
  e_technique : string;
  e_racy : int;
  e_stats : Stats.t;
  e_witness : string option;
  e_progress : Codec.progress option;
}

type t = {
  t_dir : string;
  journal : string;
  mutable chan : out_channel option;
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (** reverse insertion order of distinct keys *)
  mutable needs_newline : bool;
      (** recovery left a torn final record with no trailing newline *)
}

let dir t = t.t_dir
let artifacts_dir t = Filename.concat t.t_dir "artifacts"
let journal_file dir = Filename.concat dir "journal.jsonl"

let fingerprint ~bench ~technique (o : Techniques.options) =
  (* jobs / split_depth excluded: results are identical for every value *)
  Json.to_string
    (Json.Obj
       ([
          ("v", Json.Int Codec.version);
          ("bench", Json.Str bench);
          ("technique", Json.Str technique);
          ("limit", Json.Int o.Techniques.limit);
          ("seed", Json.Int o.Techniques.seed);
          ("max_steps", Json.Int o.Techniques.max_steps);
          ("race_runs", Json.Int o.Techniques.race_runs);
          ("pct_change_points", Json.Int o.Techniques.pct_change_points);
          ("maple_profile_runs", Json.Int o.Techniques.maple_profile_runs);
        ]
      (* emitted only when set, so deadline-free fingerprints are stable
         across versions; a wall-clock limit makes the cell's statistics
         timing-dependent, so such cells never alias deadline-free ones *)
      @ (match o.Techniques.time_limit with
        | None -> []
        | Some s -> [ ("time_limit", Codec.time_limit_to_json s) ])
      @ (* also only-when-on: a batched cell's step counters differ from the
           unbatched cell's, so the two must never alias *)
      (if o.Techniques.prefix_batch then [ ("prefix_batch", Json.Bool true) ]
       else [])
      @ (* only-when-set: a reduced cell explores a different schedule set,
           so it must never alias the plain cell (and POR-free fingerprints
           stay byte-identical to pre-POR stores). Recorded even alongside
           [prefix_batch] — the run falls back to unbatched, but the request
           is part of the cell's identity *)
      (match o.Techniques.por with
      | None -> []
      | Some m -> [ ("por", Json.Str (Sct_explore.Por.mode_name m)) ])
      @ (* only-when-non-default, so pre-Axes fingerprints are unchanged;
           a Fair/Length cell at a different bound explores a different
           schedule set and must never alias *)
      (if o.Techniques.fair_bound <> Sct_explore.Axes.default_fair_bound then
         [ ("fair_bound", Json.Int o.Techniques.fair_bound) ]
       else [])
      @
      if o.Techniques.length_bound <> Sct_explore.Axes.default_length_bound
      then [ ("length_bound", Json.Int o.Techniques.length_bound) ]
      else []))
  |> Digest.string |> Digest.to_hex

(* The "progress" field is emitted only on campaign records, so cells
   written by the one-shot study runner keep the version-1 wire format
   byte-for-byte. *)
let entry_to_line key e =
  Json.to_string
    (Json.Obj
       ([
          ("v", Json.Int Codec.version);
          ("key", Json.Str key);
          ("bench", Json.Str e.e_bench);
          ("technique", Json.Str e.e_technique);
          ("racy", Json.Int e.e_racy);
          ("stats", Codec.stats_to_json e.e_stats);
          ( "witness",
            match e.e_witness with None -> Json.Null | Some d -> Json.Str d );
        ]
       @
       match e.e_progress with
       | None -> []
       | Some p -> [ ("progress", Codec.progress_to_json p) ]))

(* [None] on any malformed line: the only way a record can be malformed is a
   write torn by a crash (or a foreign line), and resuming past it merely
   re-executes that cell. *)
let entry_of_line line =
  match Json.of_string line with
  | exception Json.Parse_error _ -> None
  | j -> (
      try
        Codec.check_version j;
        Some
          ( Codec.get_string (Codec.field j "key"),
            {
              e_bench = Codec.get_string (Codec.field j "bench");
              e_technique = Codec.get_string (Codec.field j "technique");
              e_racy = Codec.get_int (Codec.field j "racy");
              e_stats = Codec.stats_of_json (Codec.field j "stats");
              e_witness = Codec.opt_field j "witness" Codec.get_string;
              e_progress = Codec.opt_field j "progress" Codec.progress_of_json;
            } )
      with Codec.Error _ -> None)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  let journal = journal_file dir in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let needs_newline = ref false in
  if Sys.file_exists journal then begin
    let ic = open_in_bin journal in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length content in
    needs_newline := len > 0 && content.[len - 1] <> '\n';
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           if String.trim line <> "" then
             match entry_of_line line with
             | Some (key, e) ->
                 if not (Hashtbl.mem tbl key) then order := key :: !order;
                 Hashtbl.replace tbl key e
             | None -> ())
  end;
  {
    t_dir = dir;
    journal;
    chan = None;
    tbl;
    order = !order;
    needs_newline = !needs_newline;
  }

let channel t =
  match t.chan with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 t.journal
      in
      if t.needs_newline then begin
        output_char oc '\n';
        t.needs_newline <- false
      end;
      t.chan <- Some oc;
      oc

let add t ~key entry =
  let oc = channel t in
  output_string oc (entry_to_line key entry);
  output_char oc '\n';
  flush oc;
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key entry

let record ?progress t ~key ~bench ~technique ~racy ~options (stats : Stats.t)
    =
  let e_witness =
    match stats.Stats.first_bug with
    | None -> None
    | Some w ->
        let a =
          Artifact.make ~bench ~technique ~options ~bound:stats.Stats.bound w
        in
        let (_ : string) = Artifact.save ~dir:(artifacts_dir t) a in
        Some a.Artifact.digest
  in
  add t ~key
    { e_bench = bench; e_technique = technique; e_racy = racy;
      e_stats = stats; e_witness; e_progress = progress }

let finished e =
  match e.e_progress with None -> true | Some p -> p.Codec.p_done
let find_any t key = Hashtbl.find_opt t.tbl key

(* The legacy lookups see only finished cells: a resumed [run]/[table3]
   treats an in-flight campaign cell as missing and re-executes it in
   full, which is always sound. *)
let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e when finished e -> Some e
  | _ -> None

let mem t key = find t key <> None
let is_empty t = Hashtbl.length t.tbl = 0

let entries_any t = List.rev_map (fun k -> (k, Hashtbl.find t.tbl k)) t.order

let entries t = List.filter (fun (_, e) -> finished e) (entries_any t)
let size t = List.length (entries t)

let close t =
  match t.chan with
  | Some oc ->
      close_out oc;
      t.chan <- None
  | None -> ()

(* --- merging worker stores --- *)

(* Every record of one fingerprint is a snapshot along the same
   deterministic trajectory (the cell's options pin the seed and the
   exploration order), so two records for one key are always comparable:
   one has explored at least as far as the other. The join keeps the most
   advanced snapshot — a finished record over any in-flight one, then the
   larger banked budget — with the encoded journal line as a final
   tie-break so the order is total. A total-order max is associative,
   commutative and idempotent, which makes [merge_from] a lattice join on
   stores: merging in any grouping or order, or merging a store into
   itself, yields the same store. *)
let join_entries ~key a b =
  let rank e =
    ( (if finished e then 1 else 0),
      e.e_stats.Stats.total,
      (match e.e_progress with
      | None -> max_int
      | Some p -> p.Codec.p_consumed),
      entry_to_line key e )
  in
  if rank a >= rank b then a else b

let copy_artifacts ~src ~dst =
  if Sys.file_exists src then
    Sys.readdir src |> Array.to_list |> List.sort String.compare
    |> List.iter (fun f ->
           if Filename.check_suffix f ".sched" && f.[0] <> '.' then begin
             let ic = open_in_bin (Filename.concat src f) in
             let content =
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () -> really_input_string ic (in_channel_length ic))
             in
             let (_ : string) = Artifact.write_atomic ~dir:dst ~file:f content in
             ()
           end)

let merge_from t ~src =
  copy_artifacts ~src:(artifacts_dir src) ~dst:(artifacts_dir t);
  List.iter
    (fun (key, e) ->
      match find_any t key with
      | None -> add t ~key e
      | Some existing ->
          let joined = join_entries ~key existing e in
          if joined != existing then add t ~key joined)
    (entries_any src)

(* --- journal compaction --- *)

let compact t =
  close t;
  let tmp = Filename.concat t.t_dir ".journal.jsonl.tmp" in
  let oc = open_out_bin tmp in
  (try
     List.iter
       (fun (key, e) ->
         output_string oc (entry_to_line key e);
         output_char oc '\n')
       (entries_any t);
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  Sys.rename tmp t.journal;
  t.needs_newline <- false
