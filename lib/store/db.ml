module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques

type entry = {
  e_bench : string;
  e_technique : string;
  e_racy : int;
  e_stats : Stats.t;
  e_witness : string option;
}

type t = {
  t_dir : string;
  journal : string;
  mutable chan : out_channel option;
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (** reverse insertion order of distinct keys *)
  mutable needs_newline : bool;
      (** recovery left a torn final record with no trailing newline *)
}

let dir t = t.t_dir
let artifacts_dir t = Filename.concat t.t_dir "artifacts"
let journal_file dir = Filename.concat dir "journal.jsonl"

let fingerprint ~bench ~technique (o : Techniques.options) =
  (* jobs / split_depth excluded: results are identical for every value *)
  Json.to_string
    (Json.Obj
       ([
          ("v", Json.Int Codec.version);
          ("bench", Json.Str bench);
          ("technique", Json.Str technique);
          ("limit", Json.Int o.Techniques.limit);
          ("seed", Json.Int o.Techniques.seed);
          ("max_steps", Json.Int o.Techniques.max_steps);
          ("race_runs", Json.Int o.Techniques.race_runs);
          ("pct_change_points", Json.Int o.Techniques.pct_change_points);
          ("maple_profile_runs", Json.Int o.Techniques.maple_profile_runs);
        ]
      (* emitted only when set, so deadline-free fingerprints are stable
         across versions; a wall-clock limit makes the cell's statistics
         timing-dependent, so such cells never alias deadline-free ones *)
      @
      match o.Techniques.time_limit with
      | None -> []
      | Some s -> [ ("time_limit", Codec.time_limit_to_json s) ]))
  |> Digest.string |> Digest.to_hex

let entry_to_line key e =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int Codec.version);
         ("key", Json.Str key);
         ("bench", Json.Str e.e_bench);
         ("technique", Json.Str e.e_technique);
         ("racy", Json.Int e.e_racy);
         ("stats", Codec.stats_to_json e.e_stats);
         ( "witness",
           match e.e_witness with None -> Json.Null | Some d -> Json.Str d );
       ])

(* [None] on any malformed line: the only way a record can be malformed is a
   write torn by a crash (or a foreign line), and resuming past it merely
   re-executes that cell. *)
let entry_of_line line =
  match Json.of_string line with
  | exception Json.Parse_error _ -> None
  | j -> (
      try
        Codec.check_version j;
        Some
          ( Codec.get_string (Codec.field j "key"),
            {
              e_bench = Codec.get_string (Codec.field j "bench");
              e_technique = Codec.get_string (Codec.field j "technique");
              e_racy = Codec.get_int (Codec.field j "racy");
              e_stats = Codec.stats_of_json (Codec.field j "stats");
              e_witness = Codec.opt_field j "witness" Codec.get_string;
            } )
      with Codec.Error _ -> None)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  let journal = journal_file dir in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let needs_newline = ref false in
  if Sys.file_exists journal then begin
    let ic = open_in_bin journal in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length content in
    needs_newline := len > 0 && content.[len - 1] <> '\n';
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           if String.trim line <> "" then
             match entry_of_line line with
             | Some (key, e) ->
                 if not (Hashtbl.mem tbl key) then order := key :: !order;
                 Hashtbl.replace tbl key e
             | None -> ())
  end;
  {
    t_dir = dir;
    journal;
    chan = None;
    tbl;
    order = !order;
    needs_newline = !needs_newline;
  }

let channel t =
  match t.chan with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 t.journal
      in
      if t.needs_newline then begin
        output_char oc '\n';
        t.needs_newline <- false
      end;
      t.chan <- Some oc;
      oc

let add t ~key entry =
  let oc = channel t in
  output_string oc (entry_to_line key entry);
  output_char oc '\n';
  flush oc;
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key entry

let record t ~key ~bench ~technique ~racy ~options (stats : Stats.t) =
  let e_witness =
    match stats.Stats.first_bug with
    | None -> None
    | Some w ->
        let a =
          Artifact.make ~bench ~technique ~options ~bound:stats.Stats.bound w
        in
        let (_ : string) = Artifact.save ~dir:(artifacts_dir t) a in
        Some a.Artifact.digest
  in
  add t ~key
    { e_bench = bench; e_technique = technique; e_racy = racy;
      e_stats = stats; e_witness }

let find t key = Hashtbl.find_opt t.tbl key
let mem t key = Hashtbl.mem t.tbl key
let is_empty t = Hashtbl.length t.tbl = 0
let size t = Hashtbl.length t.tbl
let entries t = List.rev_map (fun k -> (k, Hashtbl.find t.tbl k)) t.order

let close t =
  match t.chan with
  | Some oc ->
      close_out oc;
      t.chan <- None
  | None -> ()
