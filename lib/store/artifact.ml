open Sct_core
module Stats = Sct_explore.Stats

exception Error of string

let error fmt =
  Printf.ksprintf (fun s -> raise (Error ("Sct_store.Artifact: " ^ s))) fmt

type meta = {
  a_bench : string;
  a_technique : string;
  a_options : Sct_explore.Techniques.options;
  a_bound : int option;
  a_bug : Outcome.bug;
  a_by : Tid.t;
  a_pc : int;
  a_dc : int;
}

type t = { meta : meta; schedule : Schedule.t; digest : string }

let magic = "# sct-witness v1"

let meta_to_json m =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("bench", Json.Str m.a_bench);
      ("technique", Json.Str m.a_technique);
      ("options", Codec.options_to_json m.a_options);
      ("bound", (match m.a_bound with None -> Json.Null | Some b -> Json.Int b));
      ("bug", Codec.bug_to_json m.a_bug);
      ("by", Json.Int m.a_by);
      ("pc", Json.Int m.a_pc);
      ("dc", Json.Int m.a_dc);
    ]

let meta_of_json j =
  Codec.check_version j;
  {
    a_bench = Codec.get_string (Codec.field j "bench");
    a_technique = Codec.get_string (Codec.field j "technique");
    a_options = Codec.options_of_json (Codec.field j "options");
    a_bound = Codec.opt_field j "bound" Codec.get_int;
    a_bug = Codec.bug_of_json (Codec.field j "bug");
    a_by = Codec.get_int (Codec.field j "by");
    a_pc = Codec.get_int (Codec.field j "pc");
    a_dc = Codec.get_int (Codec.field j "dc");
  }

(* The digest covers exactly the two semantic lines; the magic line and the
   "# meta: " prefix are framing. *)
let digest_of ~meta_line ~sched_line =
  Digest.to_hex (Digest.string (meta_line ^ "\n" ^ sched_line))

let lines_of t =
  let meta_line = Json.to_string (meta_to_json t.meta) in
  let sched_line = Codec.schedule_line t.schedule in
  (meta_line, sched_line)

let make ~bench ~technique ~options ~bound (w : Stats.bug_witness) =
  let meta =
    {
      a_bench = bench;
      a_technique = technique;
      a_options = options;
      a_bound = bound;
      a_bug = w.Stats.w_bug;
      a_by = w.Stats.w_by;
      a_pc = w.Stats.w_pc;
      a_dc = w.Stats.w_dc;
    }
  in
  let t = { meta; schedule = w.Stats.w_schedule; digest = "" } in
  let meta_line, sched_line = lines_of t in
  { t with digest = digest_of ~meta_line ~sched_line }

let filename t = t.digest ^ ".sched"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_atomic ~dir ~file content =
  mkdir_p dir;
  let final = Filename.concat dir file in
  if not (Sys.file_exists final) then begin
    let tmp = Filename.concat dir ("." ^ file ^ ".tmp") in
    let oc = open_out_bin tmp in
    output_string oc content;
    close_out oc;
    Sys.rename tmp final
  end;
  final

let save ~dir t =
  let meta_line, sched_line = lines_of t in
  write_atomic ~dir ~file:(filename t)
    (magic ^ "\n# meta: " ^ meta_line ^ "\n" ^ sched_line ^ "\n")

let read_file path =
  let ic =
    try open_in_bin path with Sys_error m -> error "cannot read %s: %s" path m
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let content = read_file path in
  let lines = String.split_on_char '\n' content in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | first :: _ when String.length first >= 13 && String.sub first 0 13 = "# sct-witness" ->
      error "%s: unsupported witness format %S" path (String.trim first)
  | _ -> error "%s: not a witness artifact (missing %S header)" path magic);
  let meta_prefix = "# meta: " in
  let meta_line =
    match
      List.find_opt
        (fun l ->
          String.length l >= String.length meta_prefix
          && String.sub l 0 (String.length meta_prefix) = meta_prefix)
        lines
    with
    | Some l ->
        String.sub l (String.length meta_prefix)
          (String.length l - String.length meta_prefix)
    | None -> error "%s: missing \"# meta:\" header" path
  in
  let sched_line =
    match
      List.filter
        (fun l ->
          let l = String.trim l in
          l <> "" && l.[0] <> '#')
        lines
    with
    | [ l ] -> String.trim l
    | [] -> error "%s: missing schedule line" path
    | _ -> error "%s: more than one schedule line" path
  in
  let meta =
    try meta_of_json (Json.of_string meta_line) with
    | Json.Parse_error { pos; msg } ->
        error "%s: malformed metadata at offset %d: %s" path pos msg
    | Codec.Error m -> error "%s: %s" path m
  in
  let schedule =
    try Sct_explore.Replay.parse sched_line
    with Failure m -> error "%s: %s" path m
  in
  let digest = digest_of ~meta_line ~sched_line in
  (let base = Filename.basename path in
   if Filename.check_suffix base ".sched" then begin
     let stem = Filename.chop_suffix base ".sched" in
     if String.length stem = String.length digest && stem <> digest then
       error "%s: content digest %s does not match the file name" path digest
   end);
  { meta; schedule; digest }

(* Sorted by content digest, not by directory or file-name order:
   [Sys.readdir] order is filesystem-dependent, and a hand-renamed witness
   file would otherwise list under its name rather than its identity. *)
let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".sched" && f.[0] <> '.')
    |> List.map (fun f -> load (Filename.concat dir f))
    |> List.sort (fun a b -> String.compare a.digest b.digest)

let schedule_of_file path =
  let content = read_file path in
  match
    String.split_on_char '\n' content
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  with
  | [ line ] -> (
      try Sct_explore.Replay.parse line
      with Failure m -> error "%s: %s" path m)
  | [] -> error "%s: no schedule line found" path
  | _ -> error "%s: expected exactly one schedule line" path
