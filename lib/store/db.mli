(** The persistent study store: an append-only journal of completed
    benchmark×technique cells plus a directory of bug-witness artifacts.

    On-disk layout under the store directory:
    {v
    DIR/journal.jsonl          one JSON record per completed cell
    DIR/artifacts/<md5>.sched  content-addressed bug witnesses
    v}

    Each journal record is a single line,
    [{"v":1,"key":K,"bench":B,"technique":T,"racy":N,"stats":S,"witness":W}],
    appended and flushed the moment the cell finishes, so a crash loses at
    most the record being written. Recovery is line-oriented: any line that
    does not decode — in particular a final record truncated by a crash —
    is skipped, and the next append re-establishes framing by inserting a
    newline first if the file does not end with one. Nothing already
    journalled is ever rewritten.

    Cells are keyed by {!fingerprint}, a digest of the benchmark name, the
    technique and the semantically relevant exploration options. [jobs] and
    [split_depth] are deliberately excluded: the parallel engine produces
    identical statistics for every value, so a store written with
    [--jobs 1] resumes cleanly under [--jobs 8] and vice versa.

    A store handle must only be used from one domain (the driver's
    collector domain); worker domains compute cells, the collector
    journals them. *)

type entry = {
  e_bench : string;
  e_technique : string;
  e_racy : int;  (** racy locations reported by the detection phase *)
  e_stats : Sct_explore.Stats.t;
  e_witness : string option;  (** digest of the witness artifact, if any *)
}

type t

val fingerprint :
  bench:string ->
  technique:string ->
  Sct_explore.Techniques.options ->
  string
(** The journal key of one cell. *)

val open_ : dir:string -> t
(** Open (creating if needed) the store at [dir] and recover the journal. *)

val dir : t -> string
val artifacts_dir : t -> string
val is_empty : t -> bool
val size : t -> int
val mem : t -> string -> bool
val find : t -> string -> entry option

val entries : t -> (string * entry) list
(** Journal order; a re-recorded key keeps its first position with the
    latest entry. *)

val record :
  t ->
  key:string ->
  bench:string ->
  technique:string ->
  racy:int ->
  options:Sct_explore.Techniques.options ->
  Sct_explore.Stats.t ->
  unit
(** Persist one finished cell: write its bug-witness artifact (if the
    statistics carry one), then append and flush the journal record. *)

val close : t -> unit
