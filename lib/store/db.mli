(** The persistent study store: an append-only journal of completed
    benchmark×technique cells plus a directory of bug-witness artifacts.

    On-disk layout under the store directory:
    {v
    DIR/journal.jsonl          one JSON record per completed cell
    DIR/artifacts/<md5>.sched  content-addressed bug witnesses
    v}

    Each journal record is a single line,
    [{"v":1,"key":K,"bench":B,"technique":T,"racy":N,"stats":S,"witness":W}],
    appended and flushed the moment the cell finishes, so a crash loses at
    most the record being written. Recovery is line-oriented: any line that
    does not decode — in particular a final record truncated by a crash —
    is skipped, and the next append re-establishes framing by inserting a
    newline first if the file does not end with one. Nothing already
    journalled is ever rewritten in place; {!compact} rewrites the whole
    journal atomically.

    Cells are keyed by {!fingerprint}, a digest of the benchmark name, the
    technique and the semantically relevant exploration options. [jobs] and
    [split_depth] are deliberately excluded: the parallel engine produces
    identical statistics for every value, so a store written with
    [--jobs 1] resumes cleanly under [--jobs 8] and vice versa.

    The campaign orchestrator ([lib/campaign]) journals a record per
    budget {e slice}: the same record shape plus a
    [{"progress":{"consumed":C,"slices":S,"done":D}}] field holding the
    slice-resumable campaign state. Records without the field (everything
    the one-shot study runner writes — its wire format is unchanged) and
    records whose progress says [done] are finished cells. The legacy
    lookups ({!find}, {!mem}, {!entries}, {!size}) see finished cells
    only — a resumed [run] treats an in-flight cell as missing and
    soundly re-executes it — while the [_any] variants expose every
    record, and a fully-run campaign store renders the same tables as one
    written by the one-shot study runner.

    A store handle must only be used from one domain (the driver's
    collector domain); worker domains compute cells, the collector
    journals them. *)

type entry = {
  e_bench : string;
  e_technique : string;
  e_racy : int;  (** racy locations reported by the detection phase *)
  e_stats : Sct_explore.Stats.t;
  e_witness : string option;  (** digest of the witness artifact, if any *)
  e_progress : Codec.progress option;
      (** slice-resumable campaign state; [None] on records written by the
          one-shot study runner *)
}

val finished : entry -> bool
(** A cell that needs no further exploration: no progress field, or a
    progress field marked done. *)

type t

val fingerprint :
  bench:string ->
  technique:string ->
  Sct_explore.Techniques.options ->
  string
(** The journal key of one cell. *)

val open_ : dir:string -> t
(** Open (creating if needed) the store at [dir] and recover the journal. *)

val dir : t -> string
val artifacts_dir : t -> string

val is_empty : t -> bool
(** No records at all, finished or in-flight. *)

val size : t -> int
(** Number of {e finished} cells. *)

val mem : t -> string -> bool
val find : t -> string -> entry option
(** Finished cells only; an in-flight campaign record is reported absent. *)

val find_any : t -> string -> entry option
(** The latest record under a key, finished or in-flight. *)

val entries : t -> (string * entry) list
(** Finished cells, in journal order; a re-recorded key keeps its first
    position with the latest entry. *)

val entries_any : t -> (string * entry) list
(** Every cell, finished and in-flight, in journal order. *)

val record :
  ?progress:Codec.progress ->
  t ->
  key:string ->
  bench:string ->
  technique:string ->
  racy:int ->
  options:Sct_explore.Techniques.options ->
  Sct_explore.Stats.t ->
  unit
(** Persist one cell: write its bug-witness artifact (if the statistics
    carry one), then append and flush the journal record. With [progress]
    the record is a campaign slice snapshot (finished iff the progress says
    done); without it the cell is finished and the record is byte-identical
    to a one-shot run's. *)

val merge_from : t -> src:t -> unit
(** Fold every record of [src] into this store: witness artifacts are
    copied (content addressing makes the copy idempotent) and each of
    [src]'s records is appended unless the store already holds a record at
    least as advanced under the same key. Since every record of one
    fingerprint is a snapshot along the same deterministic trajectory, the
    per-key resolution is a total-order join — finished beats in-flight,
    then the larger banked budget wins — so merging stores is associative,
    commutative and idempotent: N worker stores fold into one in any order,
    and re-merging a store (or duplicated cells) changes nothing. *)

val compact : t -> unit
(** Atomically rewrite the journal keeping only the latest record per
    fingerprint (temp file in the store directory, then rename), dropping
    superseded campaign slices and any torn tail. The in-memory state is
    unchanged — a compacted store resumes exactly like the uncompacted
    one. *)

val close : t -> unit
