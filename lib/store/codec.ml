open Sct_core
module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques

exception Error of string

let error fmt =
  Printf.ksprintf (fun s -> raise (Error ("Sct_store.Codec: " ^ s))) fmt

let version = 1

(* --- generic helpers --- *)

let get_int = function
  | Json.Int i -> i
  | j -> error "expected an integer, got %s" (Json.to_string j)

let get_bool = function
  | Json.Bool b -> b
  | j -> error "expected a boolean, got %s" (Json.to_string j)

let get_string = function
  | Json.Str s -> s
  | j -> error "expected a string, got %s" (Json.to_string j)

let get_list f = function
  | Json.Arr l -> List.map f l
  | j -> error "expected an array, got %s" (Json.to_string j)

let field obj name =
  match Json.member name obj with
  | Some v -> v
  | None -> error "missing field %S in %s" name (Json.to_string obj)

let opt_field obj name f =
  match Json.member name obj with
  | None | Some Json.Null -> None
  | Some v -> Some (f v)

let opt_to_json f = function None -> Json.Null | Some x -> f x

(* --- schedules --- *)

let schedule_to_json s =
  Json.Arr (List.map (fun t -> Json.Int t) (Schedule.to_list s))

let schedule_of_json j =
  Schedule.of_list
    (get_list
       (fun v ->
         let t = get_int v in
         if t < 0 then error "negative thread id %d in schedule" t;
         t)
       j)

let schedule_line s =
  String.concat "," (List.map string_of_int (Schedule.to_list s))

(* --- bugs --- *)

let bug_to_json (b : Outcome.bug) =
  let tagged kind msg = Json.Obj [ ("kind", Json.Str kind); ("msg", Json.Str msg) ] in
  match b with
  | Outcome.Assertion_failure m -> tagged "assert" m
  | Outcome.Lock_error m -> tagged "lock" m
  | Outcome.Memory_error m -> tagged "memory" m
  | Outcome.Uncaught_exn m -> tagged "exn" m
  | Outcome.Deadlock tids ->
      Json.Obj
        [
          ("kind", Json.Str "deadlock");
          ("tids", Json.Arr (List.map (fun t -> Json.Int t) tids));
        ]

let bug_of_json j =
  match get_string (field j "kind") with
  | "assert" -> Outcome.Assertion_failure (get_string (field j "msg"))
  | "lock" -> Outcome.Lock_error (get_string (field j "msg"))
  | "memory" -> Outcome.Memory_error (get_string (field j "msg"))
  | "exn" -> Outcome.Uncaught_exn (get_string (field j "msg"))
  | "deadlock" -> Outcome.Deadlock (get_list get_int (field j "tids"))
  | k -> error "unknown bug kind %S" k

(* --- bug witnesses --- *)

let witness_to_json (w : Stats.bug_witness) =
  Json.Obj
    [
      ("bug", bug_to_json w.Stats.w_bug);
      ("by", Json.Int w.Stats.w_by);
      ("schedule", schedule_to_json w.Stats.w_schedule);
      ("pc", Json.Int w.Stats.w_pc);
      ("dc", Json.Int w.Stats.w_dc);
    ]

let witness_of_json j =
  {
    Stats.w_bug = bug_of_json (field j "bug");
    w_by = get_int (field j "by");
    w_schedule = schedule_of_json (field j "schedule");
    w_pc = get_int (field j "pc");
    w_dc = get_int (field j "dc");
  }

(* --- technique options --- *)

(* The JSON tree has no float constructor (see json.mli); the optional
   wall-clock limit is carried as an OCaml hex-float string ("%h"), which
   [float_of_string] reads back exactly. The field is emitted only when
   set, so version-1 journals and fingerprints written before the field
   existed remain byte-identical. *)
let time_limit_to_json s = Json.Str (Printf.sprintf "%h" s)

let time_limit_of_json = function
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> error "malformed time_limit %S" s)
  | _ -> error "malformed time_limit"

let options_to_json (o : Techniques.options) =
  Json.Obj
    ([
       ("limit", Json.Int o.Techniques.limit);
       ("seed", Json.Int o.Techniques.seed);
       ("max_steps", Json.Int o.Techniques.max_steps);
       ("race_runs", Json.Int o.Techniques.race_runs);
       ("pct_change_points", Json.Int o.Techniques.pct_change_points);
       ("maple_profile_runs", Json.Int o.Techniques.maple_profile_runs);
       ("jobs", Json.Int o.Techniques.jobs);
       ("split_depth", Json.Int o.Techniques.split_depth);
     ]
    @ (match o.Techniques.time_limit with
      | None -> []
      | Some s -> [ ("time_limit", time_limit_to_json s) ])
    @ (* emitted only when on, for the same byte-compatibility reason *)
    (if o.Techniques.prefix_batch then [ ("prefix_batch", Json.Bool true) ]
     else [])
    @ (* emitted only when set: POR-free cells keep the pre-POR encoding *)
    (match o.Techniques.por with
    | None -> []
    | Some m -> [ ("por", Json.Str (Sct_explore.Por.mode_name m)) ])
    @ (* emitted only when non-default: cells that never touch the Axes
         bounds keep the pre-axes encoding *)
    (if o.Techniques.fair_bound <> Sct_explore.Axes.default_fair_bound then
       [ ("fair_bound", Json.Int o.Techniques.fair_bound) ]
     else [])
    @
    if o.Techniques.length_bound <> Sct_explore.Axes.default_length_bound then
      [ ("length_bound", Json.Int o.Techniques.length_bound) ]
    else [])

let options_of_json j =
  {
    Techniques.limit = get_int (field j "limit");
    seed = get_int (field j "seed");
    max_steps = get_int (field j "max_steps");
    race_runs = get_int (field j "race_runs");
    pct_change_points = get_int (field j "pct_change_points");
    maple_profile_runs = get_int (field j "maple_profile_runs");
    jobs = get_int (field j "jobs");
    split_depth = get_int (field j "split_depth");
    time_limit = opt_field j "time_limit" time_limit_of_json;
    prefix_batch =
      (match opt_field j "prefix_batch" get_bool with
      | Some b -> b
      | None -> false);
    por =
      opt_field j "por" (fun v ->
          let s = get_string v in
          match Sct_explore.Por.of_mode_name s with
          | Some m -> m
          | None -> error "unknown POR mode %S" s);
    fair_bound =
      (match opt_field j "fair_bound" get_int with
      | Some b -> b
      | None -> Sct_explore.Axes.default_fair_bound);
    length_bound =
      (match opt_field j "length_bound" get_int with
      | Some b -> b
      | None -> Sct_explore.Axes.default_length_bound);
  }

(* --- campaign slice progress --- *)

type progress = { p_consumed : int; p_slices : int; p_done : bool }

let progress_to_json p =
  Json.Obj
    [
      ("consumed", Json.Int p.p_consumed);
      ("slices", Json.Int p.p_slices);
      ("done", Json.Bool p.p_done);
    ]

let progress_of_json j =
  let p_consumed = get_int (field j "consumed") in
  let p_slices = get_int (field j "slices") in
  let p_done = get_bool (field j "done") in
  if p_consumed < 0 then error "negative consumed budget %d" p_consumed;
  if p_slices < 0 then error "negative slice count %d" p_slices;
  { p_consumed; p_slices; p_done }

(* --- statistics --- *)

let stats_to_json (s : Stats.t) =
  Json.Obj
    ([
      ("technique", Json.Str s.Stats.technique);
      ("bound", opt_to_json (fun i -> Json.Int i) s.Stats.bound);
      ("bound_complete", Json.Bool s.Stats.bound_complete);
      ("to_first_bug", opt_to_json (fun i -> Json.Int i) s.Stats.to_first_bug);
      ("total", Json.Int s.Stats.total);
      ("new_at_bound", Json.Int s.Stats.new_at_bound);
      ("buggy", Json.Int s.Stats.buggy);
      ("complete", Json.Bool s.Stats.complete);
      ("hit_limit", Json.Bool s.Stats.hit_limit);
    ]
    @ (* emitted only when set: deadline-free stats keep the version-1
         byte-identical encoding the resume fingerprints rely on *)
    (if s.Stats.hit_deadline then [ ("hit_deadline", Json.Bool true) ]
     else [])
    @ [
      ("first_bug", opt_to_json witness_to_json s.Stats.first_bug);
      ("n_threads", Json.Int s.Stats.n_threads);
      ("max_enabled", Json.Int s.Stats.max_enabled);
      ("max_sched_points", Json.Int s.Stats.max_sched_points);
      ("executions", Json.Int s.Stats.executions);
    ]
    @ (* emitted only when counted: step-free stats (all-zero records,
         pre-counter journals) keep the version-1 byte encoding *)
    (if s.Stats.steps_executed <> 0 || s.Stats.steps_saved <> 0 then
       [
         ("steps_executed", Json.Int s.Stats.steps_executed);
         ("steps_saved", Json.Int s.Stats.steps_saved);
       ]
     else [])
    @ (* emitted only when nonzero: POR-free stats keep the pre-POR byte
         encoding *)
    (if s.Stats.por_pruned <> 0 then
       [ ("por_pruned", Json.Int s.Stats.por_pruned) ]
     else [])
    @ (* emitted only when nonzero: cut-free stats (every technique except
         fair/length bounding) keep the pre-cut byte encoding *)
    (if s.Stats.cut_runs <> 0 then [ ("cut_runs", Json.Int s.Stats.cut_runs) ]
     else [])
    @ [
      ( "distinct",
        opt_to_json
          (fun set ->
            (* [elements] is sorted, so the encoding is canonical *)
            Json.Arr
              (List.map
                 (fun sched -> schedule_to_json (Schedule.of_list sched))
                 (Stats.Sched_set.elements set)))
          s.Stats.distinct_schedules );
    ])

let stats_of_json j =
  {
    Stats.technique = get_string (field j "technique");
    bound = opt_field j "bound" get_int;
    bound_complete = get_bool (field j "bound_complete");
    to_first_bug = opt_field j "to_first_bug" get_int;
    total = get_int (field j "total");
    new_at_bound = get_int (field j "new_at_bound");
    buggy = get_int (field j "buggy");
    complete = get_bool (field j "complete");
    hit_limit = get_bool (field j "hit_limit");
    hit_deadline =
      (match opt_field j "hit_deadline" get_bool with
      | Some b -> b
      | None -> false);
    first_bug = opt_field j "first_bug" witness_of_json;
    n_threads = get_int (field j "n_threads");
    max_enabled = get_int (field j "max_enabled");
    max_sched_points = get_int (field j "max_sched_points");
    executions = get_int (field j "executions");
    steps_executed =
      (match opt_field j "steps_executed" get_int with
      | Some n -> n
      | None -> 0);
    steps_saved =
      (match opt_field j "steps_saved" get_int with
      | Some n -> n
      | None -> 0);
    por_pruned =
      (match opt_field j "por_pruned" get_int with
      | Some n -> n
      | None -> 0);
    cut_runs =
      (match opt_field j "cut_runs" get_int with Some n -> n | None -> 0);
    distinct_schedules =
      opt_field j "distinct" (fun v ->
          Stats.Sched_set.of_list
            (get_list (fun s -> Schedule.to_list (schedule_of_json s)) v));
  }

(* --- version-tagged string forms --- *)

let check_version j =
  match Json.member "v" j with
  | Some (Json.Int v) when v >= 1 && v <= version -> ()
  | Some (Json.Int v) ->
      error "format version %d is not supported (this build reads up to %d)"
        v version
  | Some _ | None -> error "missing or malformed format-version tag"

let tag kind payload =
  Json.to_string (Json.Obj [ ("v", Json.Int version); (kind, payload) ])

let untag kind s =
  let j =
    try Json.of_string s
    with Json.Parse_error { pos; msg } ->
      error "parse error at offset %d: %s" pos msg
  in
  check_version j;
  field j kind

let encode_schedule s = tag "schedule" (schedule_to_json s)
let decode_schedule s = schedule_of_json (untag "schedule" s)
let encode_bug b = tag "bug" (bug_to_json b)
let decode_bug s = bug_of_json (untag "bug" s)
let encode_witness w = tag "witness" (witness_to_json w)
let decode_witness s = witness_of_json (untag "witness" s)
let encode_options o = tag "options" (options_to_json o)
let decode_options s = options_of_json (untag "options" s)
let encode_stats s = tag "stats" (stats_to_json s)
let decode_stats s = stats_of_json (untag "stats" s)
let encode_progress p = tag "progress" (progress_to_json p)
let decode_progress s = progress_of_json (untag "progress" s)
