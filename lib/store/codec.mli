(** Versioned JSON codecs for the study's persisted values.

    Every string form produced by the [encode_*] functions is a single JSON
    object carrying a format-version tag, [{"v":1,...}]; the [decode_*]
    functions refuse tags newer than {!version}, so an old build fails
    loudly on a store written by a newer one instead of misreading it.
    Decoding an encoding is the identity (up to [Stats.equal] /
    [Schedule.equal] / [Outcome.bug_equal]); the qcheck suite in
    [test/test_store.ml] checks these laws, and fixture tests pin the
    version-1 wire format. *)

exception Error of string
(** Raised by every decoder on malformed or version-incompatible input. *)

val version : int
(** The current format version: 1. *)

(** {1 Tree-level codecs} *)

val schedule_to_json : Sct_core.Schedule.t -> Json.t
val schedule_of_json : Json.t -> Sct_core.Schedule.t
val bug_to_json : Sct_core.Outcome.bug -> Json.t
val bug_of_json : Json.t -> Sct_core.Outcome.bug
val witness_to_json : Sct_explore.Stats.bug_witness -> Json.t
val witness_of_json : Json.t -> Sct_explore.Stats.bug_witness
val time_limit_to_json : float -> Json.t
(** Exact (hex-float string) encoding of a wall-clock limit; shared with
    the store fingerprints. *)

val options_to_json : Sct_explore.Techniques.options -> Json.t
val options_of_json : Json.t -> Sct_explore.Techniques.options
val stats_to_json : Sct_explore.Stats.t -> Json.t
val stats_of_json : Json.t -> Sct_explore.Stats.t

type progress = {
  p_consumed : int;
      (** terminal schedules banked by previous slices of the cell; the
          next slice resumes at exactly this budget offset *)
  p_slices : int;  (** number of slices taken so far *)
  p_done : bool;  (** the cell exhausted its budget or its space *)
}
(** The slice-resumable campaign record: how far a campaign-run cell has
    progressed. Journal records written by the one-shot study runner carry
    no progress (their wire format is unchanged and implies a finished
    cell); campaign records carry one on every slice, with [p_done]
    marking the final slice. *)

val progress_to_json : progress -> Json.t
val progress_of_json : Json.t -> progress

(** {1 Version-tagged string forms} *)

val encode_schedule : Sct_core.Schedule.t -> string
val decode_schedule : string -> Sct_core.Schedule.t
val encode_bug : Sct_core.Outcome.bug -> string
val decode_bug : string -> Sct_core.Outcome.bug
val encode_witness : Sct_explore.Stats.bug_witness -> string
val decode_witness : string -> Sct_explore.Stats.bug_witness
val encode_options : Sct_explore.Techniques.options -> string
val decode_options : string -> Sct_explore.Techniques.options
val encode_stats : Sct_explore.Stats.t -> string
val decode_stats : string -> Sct_explore.Stats.t
val encode_progress : progress -> string
val decode_progress : string -> progress

(** {1 Helpers shared with the journal} *)

val check_version : Json.t -> unit
(** Validate the ["v"] tag of a decoded record. @raise Error otherwise. *)

val field : Json.t -> string -> Json.t
val opt_field : Json.t -> string -> (Json.t -> 'a) -> 'a option
val get_int : Json.t -> int
val get_bool : Json.t -> bool
val get_string : Json.t -> string
val schedule_line : Sct_core.Schedule.t -> string
(** The plain comma-separated rendering accepted by
    [Sct_explore.Replay.parse] (unlike [Schedule.to_string], which uses
    display brackets). *)
