(** Preemption counting (paper §2, Musuvathi & Qadeer 2007).

    Step [i] of a schedule is a context switch iff [α(i) ≠ α(i-1)]; the
    switch is preemptive iff the thread of step [i-1] remained enabled after
    that step. The preemption count [PC] accumulates preemptive switches. *)

val delta : last:Tid.t option -> enabled:Tid.t list -> Tid.t -> int
(** [delta ~last ~enabled t] is the preemption-count increment of extending a
    schedule whose last step ran [last] by one step of [t], where [enabled]
    is the enabled set at the extension point: [1] iff [last = Some l],
    [l ≠ t], and [l ∈ enabled]; [0] otherwise (including for the first step
    of a schedule). *)

val count : steps:(Tid.t list * Tid.t) list -> int
(** [count ~steps] folds {!delta} over a list of [(enabled, chosen)] decision
    records (in execution order) and returns the schedule's [PC]. *)
