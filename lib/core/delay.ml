let mem t l = List.exists (Tid.equal t) l

let delays ~n ~last ~enabled t =
  match (last, enabled) with
  | None, _ -> 0
  | Some _, [ only ] when Tid.equal only t ->
      (* t = last is forced here whenever last is still enabled, so the
         circular gap from last to t contains no enabled thread *)
      0
  | Some l, _ ->
      let d = Tid.distance ~n l t in
      let count = ref 0 in
      for x = 0 to d - 1 do
        if mem ((l + x) mod n) enabled then incr count
      done;
      !count

let count ~n_at ~steps =
  let _, dc, _ =
    List.fold_left
      (fun (i, dc, last) (enabled, chosen) ->
        let n = n_at i in
        (i + 1, dc + delays ~n ~last ~enabled chosen, Some chosen))
      (0, 0, None) steps
  in
  dc

let rr_order ~n ~last ~enabled =
  match enabled with
  | [] | [ _ ] -> enabled
  | _ ->
      let start = match last with None -> 0 | Some l -> l in
      let key t = Tid.distance ~n start t in
      List.sort (fun a b -> Int.compare (key a) (key b)) enabled

let deterministic_choice ~n ~last ~enabled =
  match rr_order ~n ~last ~enabled with [] -> None | t :: _ -> Some t
