(** Events emitted by the runtime during an execution.

    Consumed by the dynamic data-race detector ([Sct_race]) to build the
    happens-before relation, mirroring the paper's data-race detection phase
    (§5). Every shared-memory access is reported — including plain accesses
    that are not (yet) promoted to visible operations. *)

type t =
  | Access of {
      tid : Tid.t;
      id : int;  (** runtime object id of the variable / array *)
      name : string;  (** the access site used for promotion *)
      kind : Op.access_kind;
    }
  | Acquire of { tid : Tid.t; obj : int }
      (** lock acquired / semaphore decremented / barrier left / condition
          wake received / atomic operation (reader side) *)
  | Release of { tid : Tid.t; obj : int }
      (** lock released / semaphore incremented / barrier arrived / condition
          signalled / atomic operation (writer side) *)
  | Fork of { parent : Tid.t; child : Tid.t }
  | Joined of { parent : Tid.t; child : Tid.t }

val pp : Format.formatter -> t -> unit
