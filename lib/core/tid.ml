type t = int

let main = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let pp ppf t = Format.fprintf ppf "T%d" t
let to_string t = "T" ^ string_of_int t

let distance ~n x y =
  assert (n > 0);
  assert (0 <= x && x < n);
  assert (0 <= y && y < n);
  ((y - x) mod n + n) mod n
