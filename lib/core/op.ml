type access_kind = Plain_read | Plain_write | Atomic_op of string

type t =
  | Spawn
  | Join of Tid.t
  | Lock of int
  | Try_lock of int
  | Unlock of int
  | Mutex_destroy of int
  | Cond_wait of int * int
  | Reacquire of int
  | Signal of int
  | Broadcast of int
  | Sem_wait of int
  | Sem_post of int
  | Barrier_wait of int
  | Barrier_resume of int
  | Rd_lock of int
  | Wr_lock of int
  | Rw_unlock of int
  | Access of { id : int; name : string; kind : access_kind }
  | Yield

let pp ppf = function
  | Spawn -> Format.pp_print_string ppf "spawn"
  | Join t -> Format.fprintf ppf "join(%a)" Tid.pp t
  | Lock m -> Format.fprintf ppf "lock(#%d)" m
  | Try_lock m -> Format.fprintf ppf "try_lock(#%d)" m
  | Unlock m -> Format.fprintf ppf "unlock(#%d)" m
  | Mutex_destroy m -> Format.fprintf ppf "mutex_destroy(#%d)" m
  | Cond_wait (c, m) -> Format.fprintf ppf "cond_wait(#%d,#%d)" c m
  | Reacquire m -> Format.fprintf ppf "reacquire(#%d)" m
  | Signal c -> Format.fprintf ppf "signal(#%d)" c
  | Broadcast c -> Format.fprintf ppf "broadcast(#%d)" c
  | Sem_wait s -> Format.fprintf ppf "sem_wait(#%d)" s
  | Sem_post s -> Format.fprintf ppf "sem_post(#%d)" s
  | Barrier_wait b -> Format.fprintf ppf "barrier_wait(#%d)" b
  | Barrier_resume b -> Format.fprintf ppf "barrier_resume(#%d)" b
  | Rd_lock l -> Format.fprintf ppf "rd_lock(#%d)" l
  | Wr_lock l -> Format.fprintf ppf "wr_lock(#%d)" l
  | Rw_unlock l -> Format.fprintf ppf "rw_unlock(#%d)" l
  | Access { name; kind; _ } ->
      let k =
        match kind with
        | Plain_read -> "read"
        | Plain_write -> "write"
        | Atomic_op s -> "atomic-" ^ s
      in
      Format.fprintf ppf "%s(%s)" k name
  | Yield -> Format.pp_print_string ppf "yield"

let to_string op = Format.asprintf "%a" pp op
let is_blocking = function Cond_wait _ | Barrier_wait _ -> true | _ -> false

let obj_id = function
  | Lock o | Try_lock o | Unlock o | Mutex_destroy o | Reacquire o
  | Signal o | Broadcast o | Sem_wait o | Sem_post o | Barrier_wait o
  | Barrier_resume o | Rd_lock o | Wr_lock o | Rw_unlock o ->
      Some o
  | Cond_wait (c, _) -> Some c
  | Access { id; _ } -> Some id
  | Spawn | Join _ | Yield -> None
