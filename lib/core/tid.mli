(** Thread identifiers.

    Threads are numbered in order of creation, exactly as assumed by the
    delay-bounding definition in the paper (§2): the initial thread has id
    [0], and the [n]-th created thread has id [n]. *)

type t = int

val main : t
(** The initial thread. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val distance : n:int -> t -> t -> int
(** [distance ~n x y] is the round-robin distance from [x] to [y] among [n]
    threads: the unique [d] in [0, n-1] such that [(x + d) mod n = y]
    (paper §2). Requires [0 <= x < n] and [0 <= y < n]. *)
