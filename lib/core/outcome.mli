(** Terminal outcomes of a single execution.

    Bugs are deadlocks, crashes or assertion failures, including assertions
    that identify incorrect output (paper §5). Lock misuse and out-of-bounds
    accesses to model arrays are crashes. *)

type bug =
  | Assertion_failure of string
  | Deadlock of Tid.t list  (** the unfinished threads *)
  | Lock_error of string
      (** unlock by non-owner, double destroy, use after destroy, ... *)
  | Memory_error of string  (** out-of-bounds access on a model array *)
  | Uncaught_exn of string

type t =
  | Ok  (** all threads terminated with no error *)
  | Bug of { bug : bug; by : Tid.t }
  | Step_limit
      (** the per-execution step budget was exhausted (live-lock guard);
          treated as a terminal, non-buggy schedule *)

val is_buggy : t -> bool
val bug_equal : bug -> bug -> bool
val pp_bug : Format.formatter -> bug -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Bug_exn of bug
(** Raised inside a thread to abort the execution with a bug. *)
