(** Delay counting (paper §2, Emmi/Qadeer/Rakamarić 2011).

    Delay bounding is defined w.r.t. the deterministic scheduler that is
    non-preemptive and, when the current thread blocks, picks the next
    enabled thread in creation order round-robin. [delays α t] is the number
    of enabled threads skipped when moving round-robin from [last α] to [t]. *)

val delays : n:int -> last:Tid.t option -> enabled:Tid.t list -> Tid.t -> int
(** [delays ~n ~last ~enabled t] is
    [|{x : 0 ≤ x < distance(last, t) ∧ (last + x) mod n ∈ enabled}|], the
    delay-count increment of scheduling [t] after a schedule ending in
    [last], among [n] threads (created so far). The first step of a schedule
    costs no delays ([last = None]). *)

val count : n_at:(int -> int) -> steps:(Tid.t list * Tid.t) list -> int
(** [count ~n_at ~steps] folds {!delays} over decision records; [n_at i] is
    the number of threads that exist at decision [i] (0-based), since threads
    are created dynamically. *)

val deterministic_choice :
  n:int -> last:Tid.t option -> enabled:Tid.t list -> Tid.t option
(** The zero-delay choice: the first enabled thread reached from [last] in
    round-robin order ([last] itself first). [None] iff [enabled] is empty. *)

val rr_order : n:int -> last:Tid.t option -> enabled:Tid.t list -> Tid.t list
(** [rr_order ~n ~last ~enabled] is [enabled] sorted by round-robin distance
    from [last]: the order in which the deterministic scheduler would
    consider threads, i.e. sorted by increasing per-choice delay cost. *)
