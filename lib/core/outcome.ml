type bug =
  | Assertion_failure of string
  | Deadlock of Tid.t list
  | Lock_error of string
  | Memory_error of string
  | Uncaught_exn of string

type t = Ok | Bug of { bug : bug; by : Tid.t } | Step_limit

exception Bug_exn of bug

let is_buggy = function Bug _ -> true | Ok | Step_limit -> false

let bug_equal a b =
  match (a, b) with
  | Assertion_failure x, Assertion_failure y -> String.equal x y
  | Deadlock x, Deadlock y -> x = y
  | Lock_error x, Lock_error y -> String.equal x y
  | Memory_error x, Memory_error y -> String.equal x y
  | Uncaught_exn x, Uncaught_exn y -> String.equal x y
  | ( ( Assertion_failure _ | Deadlock _ | Lock_error _ | Memory_error _
      | Uncaught_exn _ ),
      _ ) ->
      false

let pp_bug ppf = function
  | Assertion_failure m -> Format.fprintf ppf "assertion failure: %s" m
  | Deadlock ts ->
      Format.fprintf ppf "deadlock (stuck:%a)"
        (fun ppf -> List.iter (Format.fprintf ppf " %a" Tid.pp))
        ts
  | Lock_error m -> Format.fprintf ppf "lock error: %s" m
  | Memory_error m -> Format.fprintf ppf "memory error: %s" m
  | Uncaught_exn m -> Format.fprintf ppf "uncaught exception: %s" m

let pp ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Bug { bug; by } -> Format.fprintf ppf "BUG by %a: %a" Tid.pp by pp_bug bug
  | Step_limit -> Format.pp_print_string ppf "step-limit"

let to_string t = Format.asprintf "%a" pp t
