(** The deterministic, serialised execution engine.

    This is the OCaml analogue of Maple's systematic mode (paper §3): the
    program under test runs as a set of effect-handled fibres; every visible
    operation suspends the executing fibre at a scheduling point, and a
    user-supplied scheduler picks the next enabled thread. Execution is fully
    serialised, so repeated execution of the same schedule always reaches the
    same program state, provided the program's only nondeterminism is
    scheduling (paper §2).

    Programs are written against the {!Sct} DSL, which performs the effects
    declared here; explorers drive {!exec} with different schedulers.

    The per-step loop is the hot path of every technique in the study, so it
    maintains the enabled set incrementally (see DESIGN.md, "hot-path
    architecture"): only threads whose pending operation could have been
    affected by the previous step are re-evaluated, and single-enabled-thread
    stretches schedule without allocating. *)

(** {1 Object state} *)

(** Internal state of a synchronisation object or shared location. Object
    ids are assigned in creation order, so they are stable across executions
    of a deterministic program. *)

type mutex_state = { mutable holder : Tid.t option; mutable destroyed : bool }

type cond_state = { waiters : (Tid.t * int) Queue.t }
(** FIFO of waiter threads paired with the mutex each must re-acquire. *)

type sem_state = { mutable count : int }

type barrier_state = {
  size : int;
  mutable waiting : Tid.t list;
  mutable n_waiting : int;  (** [List.length waiting], cached *)
}

type rw_state = {
  mutable readers : Tid.t list;
  mutable writer : Tid.t option;
}

type obj =
  | O_mutex of mutex_state
  | O_cond of cond_state
  | O_sem of sem_state
  | O_barrier of barrier_state
  | O_rw of rw_state
  | O_location of { name : string }
      (** a shared variable or array; state lives in typed client code *)

type t
(** A runtime instance: one per execution. *)

(** {1 Effects performed by the DSL} *)

type _ Effect.t +=
  | Visible : Op.t -> unit Effect.t
        (** suspend at a scheduling point just before the described visible
            operation; resumption means the operation was executed (or, for
            access operations, may now be executed by the thread itself) *)
  | Spawn_eff : (unit -> unit) -> Tid.t Effect.t
        (** suspend; on execution a new thread is created and its creation
            order id is returned *)

(** {1 Scheduling} *)

type decision = {
  d_enabled : Tid.t list;  (** enabled set, sorted by thread id *)
  d_chosen : Tid.t;
  d_op : Op.t;  (** the pending operation the chosen thread executed *)
  d_n_threads : int;  (** threads created when the decision was taken *)
}

type ctx = {
  mutable c_step : int;  (** 0-based decision index *)
  mutable c_last : Tid.t option;  (** previously scheduled thread *)
  mutable c_enabled : Tid.t list;  (** sorted by thread id; never empty *)
  mutable c_enabled_fp : int;
      (** {!fingerprint} of [c_enabled], maintained incrementally *)
  mutable c_n_threads : int;
  c_rt : t;
}
(** One [ctx] record is reused (mutated in place) across all steps of an
    execution; schedulers must not retain it beyond the call. Retaining the
    [c_enabled] list itself is fine — lists are immutable and never patched
    in place. *)

type scheduler = ctx -> Tid.t
(** Must return a member of [c_enabled]. *)

exception Cut
(** Raised by a scheduler to abandon the current execution when every
    enabled continuation is filtered out by an execution-level bound (fair
    or length bounding). {!exec} catches it, tears the execution down
    normally, and returns the truncated prefix as a [Step_limit] result —
    a terminal, non-buggy run, exactly like one stopped at [max_steps]. *)

type result = {
  r_outcome : Outcome.t;
  r_schedule : Schedule.t;
  r_decisions : decision list;  (** in execution order *)
  r_pc : int;  (** preemption count of the terminal schedule *)
  r_dc : int;  (** delay count of the terminal schedule *)
  r_n_threads : int;  (** total threads created *)
  r_max_enabled : int;  (** max simultaneously enabled threads *)
  r_multi_points : int;  (** #decisions where more than one thread enabled *)
  r_steps : int;
}

val exec :
  ?promote:(string -> bool) ->
  ?listener:(Event.t -> unit) ->
  ?max_steps:int ->
  ?record_decisions:bool ->
  scheduler:scheduler ->
  (unit -> unit) ->
  result
(** [exec ~scheduler program] runs [program] as thread 0 to a terminal state:
    all threads finished ([Ok]), no enabled thread remains ([Deadlock]), a
    bug was raised, or [max_steps] (default [100_000]) visible steps were
    executed ([Step_limit], the live-lock guard).

    [promote] decides which shared-location names are treated as visible
    operations (the outcome of the data-race-detection phase, paper §5);
    default: none. [listener] receives every {!Event.t} (shared accesses —
    visible or not — and synchronisation events). [record_decisions]
    (default [true]) keeps the per-step decision trace in the result. *)

(** {1 Enabled-set fingerprints} *)

val fingerprint : Tid.t list -> int
(** Order-independent fingerprint of an enabled set (xor of mixed per-tid
    hashes). Equal sets always have equal fingerprints; explorers use it to
    cheaply check that a replayed prefix sees the enabled sets it recorded.
    The engine maintains the fingerprint of the current enabled set
    incrementally and exposes it as [ctx.c_enabled_fp]. *)

(** {1 Introspection used by the DSL and by schedulers} *)

val ambient : unit -> t
(** The runtime of the execution in progress on this stack.
    @raise Invalid_argument outside of {!exec}. *)

val self : t -> Tid.t
(** The currently executing thread. *)

val new_object : t -> obj -> int
val find_object : t -> int -> obj
val promoted : t -> string -> bool

val emit : t -> Event.t -> unit

val listening : t -> bool
(** Whether a listener is attached. Callers on hot paths check this before
    building an {!Event.t}, so the record is never allocated when nobody is
    listening. *)

val pending_op : t -> Tid.t -> Op.t option
(** The visible operation [tid] is suspended before, if it is runnable. *)

val pending_is_yield : t -> Tid.t -> bool
(** Whether [tid] is suspended before a [Yield] — allocation-free, consulted
    per decision by fair-bounded walks. *)

val pending_obj_id : t -> Tid.t -> int
(** The object id of [tid]'s pending operation, [-1] when the operation
    touches no shared object (spawn/join/yield) or the thread is not
    runnable. Variable bounding keys preemption footprints on this id. *)

val thread_live : t -> Tid.t -> bool
(** Whether [tid] has been created and not yet finished (it may be blocked).
    Fair bounding compares yield counts across live threads. *)

val thread_finished : t -> Tid.t -> bool
val n_threads : t -> int

val try_lock_result : t -> bool
(** Result of the most recently executed [Try_lock] operation; read by the
    DSL immediately after resumption (execution is serialised, so this
    cannot be clobbered in between). *)

val bug : t -> Outcome.bug -> 'a
(** Abort the current execution with a bug attributed to {!self}. Records
    the bug on [t] (so it is attributed even when raised from a scheduler or
    listener callback) and raises {!Outcome.Bug_exn}. *)

val recomputed_enabled : t -> Tid.t list
(** Testing hook: the enabled set recomputed from scratch (sorted by thread
    id), bypassing the incremental caches. The scheduling loop must agree
    with this at every decision; the qcheck law in [test_engine_hot]
    enforces it. *)
