let delta ~last ~enabled t =
  match (last, enabled) with
  | None, _ -> 0
  | Some _, [ only ] when Tid.equal only t ->
      (* if last were still enabled it would be the singleton, i.e. t *)
      0
  | Some l, _ ->
      if (not (Tid.equal l t)) && List.exists (Tid.equal l) enabled then 1
      else 0

let count ~steps =
  let pc, _ =
    List.fold_left
      (fun (pc, last) (enabled, chosen) ->
        (pc + delta ~last ~enabled chosen, Some chosen))
      (0, None) steps
  in
  pc
