type t = Tid.t list

let empty = []
let length = List.length
let snoc a t = a @ [ t ]
let last a = match List.rev a with [] -> None | t :: _ -> Some t
let of_list l = l
let to_list l = l
let equal = List.equal Tid.equal

let pp ppf a =
  Format.fprintf ppf "@[<h>⟨%a⟩@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Tid.pp)
    a

let to_string a = Format.asprintf "%a" pp a
