type mutex_state = { mutable holder : Tid.t option; mutable destroyed : bool }
type cond_state = { mutable waiters : (Tid.t * int) list }
type sem_state = { mutable count : int }
type barrier_state = { size : int; mutable waiting : Tid.t list }

type rw_state = {
  mutable readers : Tid.t list;
  mutable writer : Tid.t option;
}

type obj =
  | O_mutex of mutex_state
  | O_cond of cond_state
  | O_sem of sem_state
  | O_barrier of barrier_state
  | O_rw of rw_state
  | O_location of { name : string }

type _ Effect.t +=
  | Visible : Op.t -> unit Effect.t
  | Spawn_eff : (unit -> unit) -> Tid.t Effect.t

(* Raised into live continuations when tearing an execution down, so fibres
   unwind (running their exception handlers) without being recorded. *)
exception Aborted

type pending =
  | P_op of Op.t * (unit, unit) Effect.Deep.continuation
  | P_spawn of (unit -> unit) * (Tid.t, unit) Effect.Deep.continuation

type status =
  | Runnable of pending
  | Blocked_cond of { k : (unit, unit) Effect.Deep.continuation; mutex : int }
  | Blocked_barrier of (unit, unit) Effect.Deep.continuation
  | Finished

type thread = { tid : Tid.t; mutable status : status }

type decision = {
  d_enabled : Tid.t list;
  d_chosen : Tid.t;
  d_op : Op.t;
  d_n_threads : int;
}

type t = {
  mutable threads : thread option array;
  mutable count : int;  (* threads created *)
  objects : (int, obj) Hashtbl.t;
  mutable next_obj : int;
  promote : string -> bool;
  listener : (Event.t -> unit) option;
  max_steps : int;
  record_decisions : bool;
  mutable schedule_rev : Tid.t list;
  mutable decisions_rev : decision list;
  mutable steps : int;
  mutable outcome : Outcome.t option;
  mutable last : Tid.t option;
  mutable pc : int;
  mutable dc : int;
  mutable max_enabled : int;
  mutable multi_points : int;
  mutable running : Tid.t;
  mutable teardown : bool;
  mutable try_lock_result : bool;
}

type ctx = {
  c_step : int;
  c_last : Tid.t option;
  c_enabled : Tid.t list;
  c_n_threads : int;
  c_rt : t;
}

type scheduler = ctx -> Tid.t

type result = {
  r_outcome : Outcome.t;
  r_schedule : Schedule.t;
  r_decisions : decision list;
  r_pc : int;
  r_dc : int;
  r_n_threads : int;
  r_max_enabled : int;
  r_multi_points : int;
  r_steps : int;
}

(* Ambient runtime: execution is fully serialised within a domain, so one
   slot per domain works; [exec] saves and restores it, allowing
   (non-concurrent) nesting. Domain-local storage keeps concurrent [exec]
   calls on distinct domains (lib/parallel) from clobbering each other. *)
let ambient_rt : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () =
  match Domain.DLS.get ambient_rt with
  | Some rt -> rt
  | None -> invalid_arg "Sct_core.Runtime: no execution in progress"

let self rt = rt.running
let n_threads rt = rt.count

let thread rt tid =
  match rt.threads.(tid) with
  | Some th -> th
  | None -> invalid_arg "Sct_core.Runtime: unknown thread"

let thread_finished rt tid =
  match (thread rt tid).status with Finished -> true | _ -> false

let new_object rt obj =
  let id = rt.next_obj in
  rt.next_obj <- id + 1;
  Hashtbl.replace rt.objects id obj;
  id

let find_object rt id =
  match Hashtbl.find_opt rt.objects id with
  | Some o -> o
  | None -> invalid_arg "Sct_core.Runtime: unknown object"

let promoted rt name = rt.promote name
let try_lock_result rt = rt.try_lock_result

let emit rt ev =
  match rt.listener with None -> () | Some f -> f ev

let bug rt b =
  ignore rt;
  raise (Outcome.Bug_exn b)

let set_bug rt ~by b =
  if (not rt.teardown) && rt.outcome = None then
    rt.outcome <- Some (Outcome.Bug { bug = b; by })

let pending_of = function P_op (op, _) -> op | P_spawn _ -> Op.Spawn

let pending_op rt tid =
  match (thread rt tid).status with
  | Runnable p -> Some (pending_of p)
  | Blocked_cond _ | Blocked_barrier _ | Finished -> None

let mutex_st rt id ~ctx =
  match find_object rt id with
  | O_mutex m -> m
  | _ -> invalid_arg ("Sct_core.Runtime: not a mutex: " ^ ctx)

let cond_st rt id =
  match find_object rt id with
  | O_cond c -> c
  | _ -> invalid_arg "Sct_core.Runtime: not a condition variable"

let sem_st rt id =
  match find_object rt id with
  | O_sem s -> s
  | _ -> invalid_arg "Sct_core.Runtime: not a semaphore"

let barrier_st rt id =
  match find_object rt id with
  | O_barrier b -> b
  | _ -> invalid_arg "Sct_core.Runtime: not a barrier"

let rw_st rt id =
  match find_object rt id with
  | O_rw r -> r
  | _ -> invalid_arg "Sct_core.Runtime: not a rwlock"

(* Enabledness of a pending visible operation, per the object state it will
   act on. Operations on destroyed mutexes stay enabled so that executing
   them reports the lock error. A lock whose holder is the thread itself is
   never enabled: self-deadlock, caught by the global deadlock check. *)
let op_enabled rt op =
  match op with
  | Op.Lock m | Op.Reacquire m ->
      let m = mutex_st rt m ~ctx:"lock" in
      m.destroyed || m.holder = None
  | Op.Join target -> thread_finished rt target
  | Op.Sem_wait s -> (sem_st rt s).count > 0
  | Op.Rd_lock l -> (rw_st rt l).writer = None
  | Op.Wr_lock l ->
      let r = rw_st rt l in
      r.writer = None && r.readers = []
  | Op.Spawn | Op.Try_lock _ | Op.Unlock _ | Op.Mutex_destroy _
  | Op.Cond_wait _ | Op.Signal _ | Op.Broadcast _ | Op.Sem_post _
  | Op.Barrier_wait _ | Op.Barrier_resume _ | Op.Rw_unlock _ | Op.Access _
  | Op.Yield ->
      true

let thread_enabled rt th =
  match th.status with
  | Runnable p -> op_enabled rt (pending_of p)
  | Blocked_cond _ | Blocked_barrier _ | Finished -> false

let is_finished th = match th.status with Finished -> true | _ -> false

let unfinished rt =
  let acc = ref [] in
  for i = rt.count - 1 downto 0 do
    match rt.threads.(i) with
    | Some th when not (is_finished th) -> acc := th :: !acc
    | _ -> ()
  done;
  !acc

let handler rt tid : (unit, unit) Effect.Deep.handler =
  let open Effect.Deep in
  {
    retc = (fun () -> (thread rt tid).status <- Finished);
    exnc =
      (fun e ->
        (thread rt tid).status <- Finished;
        match e with
        | Aborted -> ()
        | Outcome.Bug_exn b -> set_bug rt ~by:tid b
        | e ->
            set_bug rt ~by:tid (Outcome.Uncaught_exn (Printexc.to_string e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Visible op ->
            Some
              (fun (k : (a, unit) continuation) ->
                if rt.teardown then discontinue k Aborted
                else (thread rt tid).status <- Runnable (P_op (op, k)))
        | Spawn_eff f ->
            Some
              (fun (k : (a, unit) continuation) ->
                if rt.teardown then discontinue k Aborted
                else (thread rt tid).status <- Runnable (P_spawn (f, k)))
        | _ -> None);
  }

(* Run or resume a fibre. Control returns here when the fibre suspends at
   its next visible operation, finishes, or raises. *)
let start_fibre rt tid f = Effect.Deep.match_with f () (handler rt tid)
let continue_unit _rt _tid k = Effect.Deep.continue k ()
let continue_tid _rt _tid k v = Effect.Deep.continue k v

(* Create a thread and eagerly run its invisible prefix: a step is "a
   visible operation followed by invisible operations" (paper §2), so a
   fresh thread is parked just before its first visible operation (or may
   finish outright without ever occupying a schedule step). *)
let add_thread rt f =
  let tid = rt.count in
  if tid >= Array.length rt.threads then begin
    let bigger = Array.make (2 * Array.length rt.threads) None in
    Array.blit rt.threads 0 bigger 0 (Array.length rt.threads);
    rt.threads <- bigger
  end;
  rt.threads.(tid) <- Some { tid; status = Finished };
  rt.count <- tid + 1;
  let caller = rt.running in
  rt.running <- tid;
  start_fibre rt tid f;
  rt.running <- caller;
  tid

let wake_cond_waiter rt cid w mid =
  let wth = thread rt w in
  match wth.status with
  | Blocked_cond { k; mutex } ->
      assert (mutex = mid);
      emit rt (Event.Acquire { tid = w; obj = cid });
      wth.status <- Runnable (P_op (Op.Reacquire mid, k))
  | _ -> invalid_arg "Sct_core.Runtime: condition waiter in wrong state"

(* Execute the pending visible operation of thread [tid]; the caller
   guarantees the operation is enabled. *)
let execute rt th =
  let tid = th.tid in
  rt.running <- tid;
  match th.status with
  | Finished | Blocked_cond _ | Blocked_barrier _ ->
      invalid_arg "Sct_core.Runtime: scheduled a non-runnable thread"
  | Runnable pending -> (
      (* The handler (or retc/exnc) will overwrite the status as soon as the
         fibre suspends or terminates. *)
      th.status <- Finished;
      match pending with
      | P_spawn (f, k) ->
          let child = rt.count in
          emit rt (Event.Fork { parent = tid; child });
          let child' = add_thread rt f in
          assert (child = child');
          continue_tid rt tid k child
      | P_op (op, k) -> (
          match op with
          | Op.Spawn -> invalid_arg "Sct_core.Runtime: impossible pending op"
          | Op.Yield | Op.Access _ ->
              (* Access semantics (the load/store itself and its race event)
                 run in the fibre, immediately after resumption. *)
              continue_unit rt tid k
          | Op.Lock id ->
              let m = mutex_st rt id ~ctx:"lock" in
              if m.destroyed then (
                set_bug rt ~by:tid (Outcome.Lock_error "lock of destroyed mutex");
                Effect.Deep.discontinue k Aborted)
              else begin
                m.holder <- Some tid;
                emit rt (Event.Acquire { tid; obj = id });
                continue_unit rt tid k
              end
          | Op.Try_lock id ->
              let m = mutex_st rt id ~ctx:"try_lock" in
              if m.destroyed then (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "try_lock of destroyed mutex");
                Effect.Deep.discontinue k Aborted)
              else begin
                if m.holder = None then begin
                  m.holder <- Some tid;
                  emit rt (Event.Acquire { tid; obj = id });
                  rt.try_lock_result <- true
                end
                else rt.try_lock_result <- false;
                continue_unit rt tid k
              end
          | Op.Unlock id ->
              let m = mutex_st rt id ~ctx:"unlock" in
              if m.destroyed then (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "unlock of destroyed mutex");
                Effect.Deep.discontinue k Aborted)
              else if m.holder <> Some tid then (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "unlock of mutex not held by the thread");
                Effect.Deep.discontinue k Aborted)
              else begin
                m.holder <- None;
                emit rt (Event.Release { tid; obj = id });
                continue_unit rt tid k
              end
          | Op.Mutex_destroy id ->
              let m = mutex_st rt id ~ctx:"destroy" in
              if m.destroyed then (
                set_bug rt ~by:tid (Outcome.Lock_error "double mutex destroy");
                Effect.Deep.discontinue k Aborted)
              else if m.holder <> None then (
                set_bug rt ~by:tid (Outcome.Lock_error "destroy of locked mutex");
                Effect.Deep.discontinue k Aborted)
              else begin
                m.destroyed <- true;
                continue_unit rt tid k
              end
          | Op.Cond_wait (cid, mid) ->
              let m = mutex_st rt mid ~ctx:"cond_wait" in
              if m.holder <> Some tid then (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "cond_wait without holding the mutex");
                Effect.Deep.discontinue k Aborted)
              else begin
                let c = cond_st rt cid in
                m.holder <- None;
                emit rt (Event.Release { tid; obj = mid });
                c.waiters <- c.waiters @ [ (tid, mid) ];
                th.status <- Blocked_cond { k; mutex = mid }
              end
          | Op.Reacquire id ->
              let m = mutex_st rt id ~ctx:"reacquire" in
              if m.destroyed then (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "wait wake-up on destroyed mutex");
                Effect.Deep.discontinue k Aborted)
              else begin
                m.holder <- Some tid;
                emit rt (Event.Acquire { tid; obj = id });
                continue_unit rt tid k
              end
          | Op.Signal cid ->
              let c = cond_st rt cid in
              emit rt (Event.Release { tid; obj = cid });
              (match c.waiters with
              | [] -> ()
              | (w, mid) :: rest ->
                  c.waiters <- rest;
                  wake_cond_waiter rt cid w mid);
              continue_unit rt tid k
          | Op.Broadcast cid ->
              let c = cond_st rt cid in
              emit rt (Event.Release { tid; obj = cid });
              let ws = c.waiters in
              c.waiters <- [];
              List.iter (fun (w, mid) -> wake_cond_waiter rt cid w mid) ws;
              continue_unit rt tid k
          | Op.Sem_wait id ->
              let s = sem_st rt id in
              assert (s.count > 0);
              s.count <- s.count - 1;
              emit rt (Event.Acquire { tid; obj = id });
              continue_unit rt tid k
          | Op.Sem_post id ->
              let s = sem_st rt id in
              s.count <- s.count + 1;
              emit rt (Event.Release { tid; obj = id });
              continue_unit rt tid k
          | Op.Barrier_wait id ->
              let b = barrier_st rt id in
              emit rt (Event.Release { tid; obj = id });
              if List.length b.waiting + 1 < b.size then begin
                b.waiting <- tid :: b.waiting;
                th.status <- Blocked_barrier k
              end
              else begin
                let woken = b.waiting in
                b.waiting <- [];
                List.iter
                  (fun w ->
                    let wth = thread rt w in
                    match wth.status with
                    | Blocked_barrier wk ->
                        wth.status <- Runnable (P_op (Op.Barrier_resume id, wk))
                    | _ ->
                        invalid_arg
                          "Sct_core.Runtime: barrier waiter in wrong state")
                  woken;
                emit rt (Event.Acquire { tid; obj = id });
                continue_unit rt tid k
              end
          | Op.Barrier_resume id ->
              emit rt (Event.Acquire { tid; obj = id });
              continue_unit rt tid k
          | Op.Rd_lock id ->
              let r = rw_st rt id in
              r.readers <- tid :: r.readers;
              emit rt (Event.Acquire { tid; obj = id });
              continue_unit rt tid k
          | Op.Wr_lock id ->
              let r = rw_st rt id in
              r.writer <- Some tid;
              emit rt (Event.Acquire { tid; obj = id });
              continue_unit rt tid k
          | Op.Rw_unlock id ->
              let r = rw_st rt id in
              if r.writer = Some tid then begin
                r.writer <- None;
                emit rt (Event.Release { tid; obj = id });
                continue_unit rt tid k
              end
              else if List.exists (Tid.equal tid) r.readers then begin
                r.readers <-
                  List.filter (fun x -> not (Tid.equal tid x)) r.readers;
                emit rt (Event.Release { tid; obj = id });
                continue_unit rt tid k
              end
              else (
                set_bug rt ~by:tid
                  (Outcome.Lock_error "rwlock unlock without holding it");
                Effect.Deep.discontinue k Aborted)
          | Op.Join target ->
              emit rt (Event.Joined { parent = tid; child = target });
              continue_unit rt tid k))

let teardown rt =
  rt.teardown <- true;
  for i = 0 to rt.count - 1 do
    match rt.threads.(i) with
    | None -> ()
    | Some th -> (
        let disc k =
          try Effect.Deep.discontinue k Aborted
          with Aborted | Outcome.Bug_exn _ -> ()
        in
        match th.status with
        | Finished -> ()
        | Runnable (P_op (_, k)) ->
            th.status <- Finished;
            disc k
        | Runnable (P_spawn (_, k)) ->
            th.status <- Finished;
            (try Effect.Deep.discontinue k Aborted
             with Aborted | Outcome.Bug_exn _ -> ())
        | Blocked_cond { k; _ } ->
            th.status <- Finished;
            disc k
        | Blocked_barrier k ->
            th.status <- Finished;
            disc k)
  done

let exec ?(promote = fun _ -> false) ?listener ?(max_steps = 100_000)
    ?(record_decisions = true) ~scheduler program =
  let rt =
    {
      threads = Array.make 8 None;
      count = 0;
      objects = Hashtbl.create 64;
      next_obj = 0;
      promote;
      listener;
      max_steps;
      record_decisions;
      schedule_rev = [];
      decisions_rev = [];
      steps = 0;
      outcome = None;
      last = None;
      pc = 0;
      dc = 0;
      max_enabled = 0;
      multi_points = 0;
      running = Tid.main;
      teardown = false;
      try_lock_result = false;
    }
  in
  let saved = Domain.DLS.get ambient_rt in
  Domain.DLS.set ambient_rt (Some rt);
  let restore () = Domain.DLS.set ambient_rt saved in
  let finish outcome =
    teardown rt;
    restore ();
    {
      r_outcome = outcome;
      r_schedule = List.rev rt.schedule_rev;
      r_decisions = List.rev rt.decisions_rev;
      r_pc = rt.pc;
      r_dc = rt.dc;
      r_n_threads = rt.count;
      r_max_enabled = rt.max_enabled;
      r_multi_points = rt.multi_points;
      r_steps = rt.steps;
    }
  in
  try
    ignore (add_thread rt program);
    let rec loop () =
      match rt.outcome with
      | Some o -> o
      | None -> (
          match unfinished rt with
          | [] -> Outcome.Ok
          | stuck -> (
              let enabled =
                List.filter_map
                  (fun th ->
                    if thread_enabled rt th then Some th.tid else None)
                  stuck
              in
              match enabled with
              | [] ->
                  Outcome.Bug
                    {
                      bug = Outcome.Deadlock (List.map (fun th -> th.tid) stuck);
                      by = Tid.main;
                    }
              | enabled ->
                  if rt.steps >= rt.max_steps then Outcome.Step_limit
                  else begin
                    let n_enabled = List.length enabled in
                    if n_enabled > rt.max_enabled then
                      rt.max_enabled <- n_enabled;
                    if n_enabled > 1 then
                      rt.multi_points <- rt.multi_points + 1;
                    let ctx =
                      {
                        c_step = rt.steps;
                        c_last = rt.last;
                        c_enabled = enabled;
                        c_n_threads = rt.count;
                        c_rt = rt;
                      }
                    in
                    let chosen = scheduler ctx in
                    if not (List.exists (Tid.equal chosen) enabled) then
                      invalid_arg
                        "Sct_core.Runtime: scheduler chose a disabled thread";
                    let th = thread rt chosen in
                    let op =
                      match th.status with
                      | Runnable p -> pending_of p
                      | _ -> assert false
                    in
                    if record_decisions then
                      rt.decisions_rev <-
                        {
                          d_enabled = enabled;
                          d_chosen = chosen;
                          d_op = op;
                          d_n_threads = rt.count;
                        }
                        :: rt.decisions_rev;
                    rt.schedule_rev <- chosen :: rt.schedule_rev;
                    rt.pc <-
                      rt.pc + Preemption.delta ~last:rt.last ~enabled chosen;
                    rt.dc <-
                      rt.dc
                      + Delay.delays ~n:rt.count ~last:rt.last ~enabled chosen;
                    rt.last <- Some chosen;
                    rt.steps <- rt.steps + 1;
                    execute rt th;
                    loop ()
                  end))
    in
    let outcome = loop () in
    finish outcome
  with e ->
    (* A scheduler or listener callback raised: tear down and re-raise. *)
    teardown rt;
    restore ();
    raise e
