type mutex_state = { mutable holder : Tid.t option; mutable destroyed : bool }
type cond_state = { waiters : (Tid.t * int) Queue.t }
type sem_state = { mutable count : int }

type barrier_state = {
  size : int;
  mutable waiting : Tid.t list;
  mutable n_waiting : int;
}

type rw_state = {
  mutable readers : Tid.t list;
  mutable writer : Tid.t option;
}

type obj =
  | O_mutex of mutex_state
  | O_cond of cond_state
  | O_sem of sem_state
  | O_barrier of barrier_state
  | O_rw of rw_state
  | O_location of { name : string }

type _ Effect.t +=
  | Visible : Op.t -> unit Effect.t
  | Spawn_eff : (unit -> unit) -> Tid.t Effect.t

(* Raised into live continuations when tearing an execution down, so fibres
   unwind (running their exception handlers) without being recorded. *)
exception Aborted

(* Raised by a scheduler to abandon the current execution: every enabled
   continuation was filtered out by an execution-level bound (fair or
   length bounding). [exec] tears the execution down normally and returns
   a [Step_limit] result for the truncated prefix. *)
exception Cut

type status =
  | Run_op of Op.t * (unit, unit) Effect.Deep.continuation
  | Run_spawn of (unit -> unit) * (Tid.t, unit) Effect.Deep.continuation
  | Blocked_cond of { k : (unit, unit) Effect.Deep.continuation; mutex : int }
  | Blocked_barrier of (unit, unit) Effect.Deep.continuation
  | Finished

(* Per-thread cached scheduling state. [t_enabled]/[t_live] mirror what a
   from-scratch evaluation of the thread would say; they are re-derived only
   when the thread is marked dirty (its own status changed, or an object its
   pending operation blocks on changed state). [t_singleton] is the
   preallocated one-element enabled list used on the |enabled| = 1 fast
   path, so common run-to-block stretches allocate nothing per step. *)
type thread = {
  tid : Tid.t;
  mutable status : status;
  t_singleton : Tid.t list;
  mutable t_enabled : bool;
  mutable t_dirty : bool;
  mutable t_live : bool;
  mutable t_joiners : Tid.t list;
}

type decision = {
  d_enabled : Tid.t list;
  d_chosen : Tid.t;
  d_op : Op.t;
  d_n_threads : int;
}

type t = {
  mutable threads : thread option array;
  mutable count : int;  (* threads created *)
  mutable objects : obj array;  (* first [n_objects] slots are live *)
  mutable obj_deps : Tid.t list array;
      (* threads whose pending op's enabledness depends on the object;
         cleared (and the threads marked dirty) whenever it changes state *)
  mutable n_objects : int;
  promote : string -> bool;
  listener : (Event.t -> unit) option;
  max_steps : int;
  record_decisions : bool;
  mutable sched_buf : int array;  (* schedule so far; [steps] entries *)
  mutable decisions_rev : decision list;
  mutable steps : int;
  mutable outcome : Outcome.t option;
  mutable last : Tid.t option;
  mutable pc : int;
  mutable dc : int;
  mutable max_enabled : int;
  mutable multi_points : int;
  mutable running : Tid.t;
  mutable teardown : bool;
  mutable try_lock_result : bool;
  mutable n_live : int;  (* unfinished threads *)
  mutable n_enabled : int;  (* threads with [t_enabled] *)
  mutable enabled_fp : int;  (* xor fingerprint of the enabled set *)
  mutable dirty : int array;  (* stack of tids awaiting re-evaluation *)
  mutable n_dirty : int;
  (* One effect handler is shared by every fibre of the execution (the
     suspending thread is always [running], execution being serialised);
     the two [eff_*] cells carry the effect payload into the preallocated
     handler closures so that suspending allocates no closure. *)
  mutable handler : (unit, unit) Effect.Deep.handler option;
  mutable eff_op : Op.t;
  mutable eff_spawn : unit -> unit;
}

type ctx = {
  mutable c_step : int;
  mutable c_last : Tid.t option;
  mutable c_enabled : Tid.t list;
  mutable c_enabled_fp : int;
  mutable c_n_threads : int;
  c_rt : t;
}

type scheduler = ctx -> Tid.t

type result = {
  r_outcome : Outcome.t;
  r_schedule : Schedule.t;
  r_decisions : decision list;
  r_pc : int;
  r_dc : int;
  r_n_threads : int;
  r_max_enabled : int;
  r_multi_points : int;
  r_steps : int;
}

(* Ambient runtime: execution is fully serialised within a domain, so one
   slot per domain works; [exec] saves and restores it, allowing
   (non-concurrent) nesting. Domain-local storage keeps concurrent [exec]
   calls on distinct domains (lib/parallel) from clobbering each other. *)
let ambient_rt : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () =
  match Domain.DLS.get ambient_rt with
  | Some rt -> rt
  | None -> invalid_arg "Sct_core.Runtime: no execution in progress"

let self rt = rt.running
let n_threads rt = rt.count

let thread rt tid =
  match rt.threads.(tid) with
  | Some th -> th
  | None -> invalid_arg "Sct_core.Runtime: unknown thread"

let thread_finished rt tid =
  match (thread rt tid).status with Finished -> true | _ -> false

let dummy_obj = O_location { name = "" }

let new_object rt obj =
  let id = rt.n_objects in
  let cap = Array.length rt.objects in
  if id = cap then begin
    let objects = Array.make (2 * cap) dummy_obj in
    Array.blit rt.objects 0 objects 0 cap;
    rt.objects <- objects;
    let deps = Array.make (2 * cap) [] in
    Array.blit rt.obj_deps 0 deps 0 cap;
    rt.obj_deps <- deps
  end;
  rt.objects.(id) <- obj;
  rt.obj_deps.(id) <- [];
  rt.n_objects <- id + 1;
  id

let find_object rt id =
  if id < 0 || id >= rt.n_objects then
    invalid_arg "Sct_core.Runtime: unknown object"
  else rt.objects.(id)

let promoted rt name = rt.promote name
let try_lock_result rt = rt.try_lock_result

let emit rt ev =
  match rt.listener with None -> () | Some f -> f ev

let listening rt = rt.listener <> None

let set_bug rt ~by b =
  if (not rt.teardown) && rt.outcome = None then
    rt.outcome <- Some (Outcome.Bug { bug = b; by })

let bug rt b =
  set_bug rt ~by:rt.running b;
  raise (Outcome.Bug_exn b)

let op_of_status = function
  | Run_op (op, _) -> op
  | Run_spawn _ -> Op.Spawn
  | Blocked_cond _ | Blocked_barrier _ | Finished ->
      invalid_arg "Sct_core.Runtime: thread has no pending operation"

let pending_op rt tid =
  match (thread rt tid).status with
  | (Run_op _ | Run_spawn _) as st -> Some (op_of_status st)
  | Blocked_cond _ | Blocked_barrier _ | Finished -> None

(* Allocation-free probes for the bounding walks (consulted per decision on
   fair / variable / thread bounded explorations). *)
let pending_is_yield rt tid =
  match (thread rt tid).status with
  | Run_op (Op.Yield, _) -> true
  | _ -> false

let pending_obj_id rt tid =
  match (thread rt tid).status with
  | Run_op (op, _) -> ( match Op.obj_id op with Some o -> o | None -> -1)
  | Run_spawn _ | Blocked_cond _ | Blocked_barrier _ | Finished -> -1

let thread_live rt tid = (thread rt tid).t_live

let mutex_st rt id ~ctx =
  match find_object rt id with
  | O_mutex m -> m
  | _ -> invalid_arg ("Sct_core.Runtime: not a mutex: " ^ ctx)

let cond_st rt id =
  match find_object rt id with
  | O_cond c -> c
  | _ -> invalid_arg "Sct_core.Runtime: not a condition variable"

let sem_st rt id =
  match find_object rt id with
  | O_sem s -> s
  | _ -> invalid_arg "Sct_core.Runtime: not a semaphore"

let barrier_st rt id =
  match find_object rt id with
  | O_barrier b -> b
  | _ -> invalid_arg "Sct_core.Runtime: not a barrier"

let rw_st rt id =
  match find_object rt id with
  | O_rw r -> r
  | _ -> invalid_arg "Sct_core.Runtime: not a rwlock"

(* Enabledness of a pending visible operation, per the object state it will
   act on. Operations on destroyed mutexes stay enabled so that executing
   them reports the lock error. A lock whose holder is the thread itself is
   never enabled: self-deadlock, caught by the global deadlock check. *)
let op_enabled rt op =
  match op with
  | Op.Lock m | Op.Reacquire m ->
      let m = mutex_st rt m ~ctx:"lock" in
      m.destroyed || m.holder = None
  | Op.Join target -> thread_finished rt target
  | Op.Sem_wait s -> (sem_st rt s).count > 0
  | Op.Rd_lock l -> (rw_st rt l).writer = None
  | Op.Wr_lock l ->
      let r = rw_st rt l in
      r.writer = None && r.readers = []
  | Op.Spawn | Op.Try_lock _ | Op.Unlock _ | Op.Mutex_destroy _
  | Op.Cond_wait _ | Op.Signal _ | Op.Broadcast _ | Op.Sem_post _
  | Op.Barrier_wait _ | Op.Barrier_resume _ | Op.Rw_unlock _ | Op.Access _
  | Op.Yield ->
      true

let thread_enabled rt th =
  match th.status with
  | Run_op (op, _) -> op_enabled rt op
  | Run_spawn _ -> true
  | Blocked_cond _ | Blocked_barrier _ | Finished -> false

let is_finished th = match th.status with Finished -> true | _ -> false

(* Testing hook: the enabled set recomputed from scratch, bypassing the
   incremental caches. The scheduling loop must always agree with this. *)
let recomputed_enabled rt =
  let acc = ref [] in
  for i = rt.count - 1 downto 0 do
    match rt.threads.(i) with
    | Some th when thread_enabled rt th -> acc := th.tid :: !acc
    | _ -> ()
  done;
  !acc

(* Order-independent fingerprint of an enabled set: xor of mixed per-tid
   hashes, maintained incrementally as threads flip enabledness. Explorers
   compare it against recorded values instead of re-walking the lists. *)
let fp_tid (t : Tid.t) =
  let h = (t + 1) * 0x9E3779B1 in
  h lxor (h lsr 16)

let fingerprint tids = List.fold_left (fun acc t -> acc lxor fp_tid t) 0 tids

(* --- dirty tracking ----------------------------------------------------
   A thread's cached enabledness is refreshed only when something that can
   affect it happened: it executed (new pending op), it was woken, an object
   its op blocks on changed state, or its join target finished. *)

let mark_dirty rt tid =
  let th = thread rt tid in
  if not th.t_dirty then begin
    th.t_dirty <- true;
    if rt.n_dirty = Array.length rt.dirty then begin
      let bigger = Array.make (2 * rt.n_dirty) 0 in
      Array.blit rt.dirty 0 bigger 0 rt.n_dirty;
      rt.dirty <- bigger
    end;
    rt.dirty.(rt.n_dirty) <- tid;
    rt.n_dirty <- rt.n_dirty + 1
  end

(* The object changed state: every thread whose pending op was evaluated
   against its old state must be re-evaluated. *)
let touch_obj rt id =
  match rt.obj_deps.(id) with
  | [] -> ()
  | deps ->
      rt.obj_deps.(id) <- [];
      List.iter (mark_dirty rt) deps

let touch_joiners rt th =
  match th.t_joiners with
  | [] -> ()
  | joiners ->
      th.t_joiners <- [];
      List.iter (mark_dirty rt) joiners

(* Evaluate [th]'s enabledness and register it as a dependent of whatever
   its pending op blocks on, so the next relevant state change re-evaluates
   it. Registration is cleared exactly when the object is touched, so a
   thread is registered at most once per object. *)
let eval_enabled rt th =
  match th.status with
  | Finished | Blocked_cond _ | Blocked_barrier _ -> false
  | Run_spawn _ -> true
  | Run_op (op, _) -> (
      match op with
      | Op.Lock id | Op.Reacquire id ->
          rt.obj_deps.(id) <- th.tid :: rt.obj_deps.(id);
          let m = mutex_st rt id ~ctx:"lock" in
          m.destroyed || m.holder = None
      | Op.Join target ->
          let tth = thread rt target in
          if is_finished tth then true
          else begin
            tth.t_joiners <- th.tid :: tth.t_joiners;
            false
          end
      | Op.Sem_wait id ->
          rt.obj_deps.(id) <- th.tid :: rt.obj_deps.(id);
          (sem_st rt id).count > 0
      | Op.Rd_lock id ->
          rt.obj_deps.(id) <- th.tid :: rt.obj_deps.(id);
          (rw_st rt id).writer = None
      | Op.Wr_lock id ->
          rt.obj_deps.(id) <- th.tid :: rt.obj_deps.(id);
          let r = rw_st rt id in
          r.writer = None && r.readers = []
      | Op.Spawn | Op.Try_lock _ | Op.Unlock _ | Op.Mutex_destroy _
      | Op.Cond_wait _ | Op.Signal _ | Op.Broadcast _ | Op.Sem_post _
      | Op.Barrier_wait _ | Op.Barrier_resume _ | Op.Rw_unlock _
      | Op.Access _ | Op.Yield ->
          true)

(* Drain the dirty stack, updating the cached liveness/enabledness counters
   and the enabled-set fingerprint. Finishing threads wake their joiners,
   which may push further work — the loop runs until the stack is empty. *)
let flush_dirty rt =
  while rt.n_dirty > 0 do
    rt.n_dirty <- rt.n_dirty - 1;
    let tid = rt.dirty.(rt.n_dirty) in
    let th = thread rt tid in
    th.t_dirty <- false;
    if th.t_live && is_finished th then begin
      th.t_live <- false;
      rt.n_live <- rt.n_live - 1;
      touch_joiners rt th
    end;
    let now = eval_enabled rt th in
    if now <> th.t_enabled then begin
      th.t_enabled <- now;
      rt.n_enabled <- rt.n_enabled + (if now then 1 else -1);
      rt.enabled_fp <- rt.enabled_fp lxor fp_tid tid
    end
  done

let live_tids rt =
  let acc = ref [] in
  for i = rt.count - 1 downto 0 do
    match rt.threads.(i) with
    | Some th when not (is_finished th) -> acc := th.tid :: !acc
    | _ -> ()
  done;
  !acc

(* Collect the enabled set, in ascending tid order, from the cached bits. *)
let enabled_list rt =
  let acc = ref [] in
  for i = rt.count - 1 downto 0 do
    match rt.threads.(i) with
    | Some th when th.t_enabled -> acc := th.tid :: !acc
    | _ -> ()
  done;
  !acc

(* The unique enabled thread when [n_enabled = 1]. Run-to-block stretches
   keep scheduling the same thread, so check [last] before scanning. *)
let single_enabled rt =
  let last_is_it =
    match rt.last with
    | Some l -> (
        match rt.threads.(l) with Some th -> th.t_enabled | None -> false)
    | None -> false
  in
  if last_is_it then thread rt (Option.get rt.last)
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None do
      (match rt.threads.(!i) with
      | Some th when th.t_enabled -> found := Some th
      | _ -> ());
      incr i
    done;
    Option.get !found
  end

(* The shared effect handler. The fibre that returns, raises or suspends is
   always the one [execute]/[add_thread] just resumed, i.e. [rt.running] —
   so one handler serves every fibre, and its closures (plus the two
   [Some _] cells below) are allocated once per execution rather than once
   per scheduling step. *)
let make_handler rt : (unit, unit) Effect.Deep.handler =
  let open Effect.Deep in
  let on_visible (k : (unit, unit) continuation) =
    if rt.teardown then discontinue k Aborted
    else (thread rt rt.running).status <- Run_op (rt.eff_op, k)
  in
  let some_on_visible = Some on_visible in
  let on_spawn (k : (Tid.t, unit) continuation) =
    if rt.teardown then discontinue k Aborted
    else (thread rt rt.running).status <- Run_spawn (rt.eff_spawn, k)
  in
  let some_on_spawn = Some on_spawn in
  {
    retc = (fun () -> (thread rt rt.running).status <- Finished);
    exnc =
      (fun e ->
        let tid = rt.running in
        (thread rt tid).status <- Finished;
        match e with
        | Aborted -> ()
        | Outcome.Bug_exn b -> set_bug rt ~by:tid b
        | e ->
            set_bug rt ~by:tid (Outcome.Uncaught_exn (Printexc.to_string e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Visible op ->
            rt.eff_op <- op;
            (some_on_visible
              : ((a, unit) continuation -> unit) option)
        | Spawn_eff f ->
            rt.eff_spawn <- f;
            (some_on_spawn
              : ((a, unit) continuation -> unit) option)
        | _ -> None);
  }

(* Run or resume a fibre. Control returns here when the fibre suspends at
   its next visible operation, finishes, or raises. *)
let start_fibre rt f =
  Effect.Deep.match_with f ()
    (match rt.handler with Some h -> h | None -> assert false)

(* Create a thread and eagerly run its invisible prefix: a step is "a
   visible operation followed by invisible operations" (paper §2), so a
   fresh thread is parked just before its first visible operation (or may
   finish outright without ever occupying a schedule step). *)
let add_thread rt f =
  let tid = rt.count in
  if tid >= Array.length rt.threads then begin
    let bigger = Array.make (2 * Array.length rt.threads) None in
    Array.blit rt.threads 0 bigger 0 (Array.length rt.threads);
    rt.threads <- bigger
  end;
  let th =
    {
      tid;
      status = Finished;
      t_singleton = [ tid ];
      t_enabled = false;
      t_dirty = false;
      t_live = false;
      t_joiners = [];
    }
  in
  rt.threads.(tid) <- Some th;
  rt.count <- tid + 1;
  let caller = rt.running in
  rt.running <- tid;
  start_fibre rt f;
  rt.running <- caller;
  (* initial accounting: no thread can depend on [tid] yet *)
  if not (is_finished th) then begin
    th.t_live <- true;
    rt.n_live <- rt.n_live + 1
  end;
  let en = eval_enabled rt th in
  if en then begin
    th.t_enabled <- true;
    rt.n_enabled <- rt.n_enabled + 1;
    rt.enabled_fp <- rt.enabled_fp lxor fp_tid tid
  end;
  tid

let wake_cond_waiter rt cid w mid =
  let wth = thread rt w in
  match wth.status with
  | Blocked_cond { k; mutex } ->
      assert (mutex = mid);
      if rt.listener <> None then emit rt (Event.Acquire { tid = w; obj = cid });
      wth.status <- Run_op (Op.Reacquire mid, k);
      mark_dirty rt w
  | _ -> invalid_arg "Sct_core.Runtime: condition waiter in wrong state"

let continue_unit k = Effect.Deep.continue k ()

(* Execute the pending visible operation of thread [tid]; the caller
   guarantees the operation is enabled. Every mutation of object state that
   can flip another thread's enabledness is followed by a [touch]; the
   executed thread itself is marked dirty by the scheduling loop. *)
let execute rt th =
  let tid = th.tid in
  rt.running <- tid;
  match th.status with
  | Finished | Blocked_cond _ | Blocked_barrier _ ->
      invalid_arg "Sct_core.Runtime: scheduled a non-runnable thread"
  | Run_spawn (f, k) ->
      (* The handler (or retc/exnc) will overwrite the status as soon as the
         fibre suspends or terminates. *)
      th.status <- Finished;
      let child = rt.count in
      if rt.listener <> None then emit rt (Event.Fork { parent = tid; child });
      let child' = add_thread rt f in
      assert (child = child');
      Effect.Deep.continue k child
  | Run_op (op, k) -> (
      th.status <- Finished;
      match op with
      | Op.Spawn -> invalid_arg "Sct_core.Runtime: impossible pending op"
      | Op.Yield | Op.Access _ ->
          (* Access semantics (the load/store itself and its race event)
             run in the fibre, immediately after resumption. *)
          continue_unit k
      | Op.Lock id ->
          let m = mutex_st rt id ~ctx:"lock" in
          if m.destroyed then (
            set_bug rt ~by:tid (Outcome.Lock_error "lock of destroyed mutex");
            Effect.Deep.discontinue k Aborted)
          else begin
            m.holder <- Some tid;
            touch_obj rt id;
            if rt.listener <> None then
              emit rt (Event.Acquire { tid; obj = id });
            continue_unit k
          end
      | Op.Try_lock id ->
          let m = mutex_st rt id ~ctx:"try_lock" in
          if m.destroyed then (
            set_bug rt ~by:tid
              (Outcome.Lock_error "try_lock of destroyed mutex");
            Effect.Deep.discontinue k Aborted)
          else begin
            if m.holder = None then begin
              m.holder <- Some tid;
              touch_obj rt id;
              if rt.listener <> None then
                emit rt (Event.Acquire { tid; obj = id });
              rt.try_lock_result <- true
            end
            else rt.try_lock_result <- false;
            continue_unit k
          end
      | Op.Unlock id ->
          let m = mutex_st rt id ~ctx:"unlock" in
          if m.destroyed then (
            set_bug rt ~by:tid (Outcome.Lock_error "unlock of destroyed mutex");
            Effect.Deep.discontinue k Aborted)
          else if m.holder <> Some tid then (
            set_bug rt ~by:tid
              (Outcome.Lock_error "unlock of mutex not held by the thread");
            Effect.Deep.discontinue k Aborted)
          else begin
            m.holder <- None;
            touch_obj rt id;
            if rt.listener <> None then
              emit rt (Event.Release { tid; obj = id });
            continue_unit k
          end
      | Op.Mutex_destroy id ->
          let m = mutex_st rt id ~ctx:"destroy" in
          if m.destroyed then (
            set_bug rt ~by:tid (Outcome.Lock_error "double mutex destroy");
            Effect.Deep.discontinue k Aborted)
          else if m.holder <> None then (
            set_bug rt ~by:tid (Outcome.Lock_error "destroy of locked mutex");
            Effect.Deep.discontinue k Aborted)
          else begin
            m.destroyed <- true;
            touch_obj rt id;
            continue_unit k
          end
      | Op.Cond_wait (cid, mid) ->
          let m = mutex_st rt mid ~ctx:"cond_wait" in
          if m.holder <> Some tid then (
            set_bug rt ~by:tid
              (Outcome.Lock_error "cond_wait without holding the mutex");
            Effect.Deep.discontinue k Aborted)
          else begin
            let c = cond_st rt cid in
            m.holder <- None;
            touch_obj rt mid;
            if rt.listener <> None then
              emit rt (Event.Release { tid; obj = mid });
            Queue.add (tid, mid) c.waiters;
            th.status <- Blocked_cond { k; mutex = mid }
          end
      | Op.Reacquire id ->
          let m = mutex_st rt id ~ctx:"reacquire" in
          if m.destroyed then (
            set_bug rt ~by:tid
              (Outcome.Lock_error "wait wake-up on destroyed mutex");
            Effect.Deep.discontinue k Aborted)
          else begin
            m.holder <- Some tid;
            touch_obj rt id;
            if rt.listener <> None then
              emit rt (Event.Acquire { tid; obj = id });
            continue_unit k
          end
      | Op.Signal cid ->
          let c = cond_st rt cid in
          if rt.listener <> None then
            emit rt (Event.Release { tid; obj = cid });
          (match Queue.take_opt c.waiters with
          | None -> ()
          | Some (w, mid) -> wake_cond_waiter rt cid w mid);
          continue_unit k
      | Op.Broadcast cid ->
          let c = cond_st rt cid in
          if rt.listener <> None then
            emit rt (Event.Release { tid; obj = cid });
          while not (Queue.is_empty c.waiters) do
            let w, mid = Queue.take c.waiters in
            wake_cond_waiter rt cid w mid
          done;
          continue_unit k
      | Op.Sem_wait id ->
          let s = sem_st rt id in
          assert (s.count > 0);
          s.count <- s.count - 1;
          touch_obj rt id;
          if rt.listener <> None then emit rt (Event.Acquire { tid; obj = id });
          continue_unit k
      | Op.Sem_post id ->
          let s = sem_st rt id in
          s.count <- s.count + 1;
          touch_obj rt id;
          if rt.listener <> None then emit rt (Event.Release { tid; obj = id });
          continue_unit k
      | Op.Barrier_wait id ->
          let b = barrier_st rt id in
          if rt.listener <> None then emit rt (Event.Release { tid; obj = id });
          if b.n_waiting + 1 < b.size then begin
            b.waiting <- tid :: b.waiting;
            b.n_waiting <- b.n_waiting + 1;
            th.status <- Blocked_barrier k
          end
          else begin
            let woken = b.waiting in
            b.waiting <- [];
            b.n_waiting <- 0;
            List.iter
              (fun w ->
                let wth = thread rt w in
                match wth.status with
                | Blocked_barrier wk ->
                    wth.status <- Run_op (Op.Barrier_resume id, wk);
                    mark_dirty rt w
                | _ ->
                    invalid_arg
                      "Sct_core.Runtime: barrier waiter in wrong state")
              woken;
            if rt.listener <> None then
              emit rt (Event.Acquire { tid; obj = id });
            continue_unit k
          end
      | Op.Barrier_resume id ->
          if rt.listener <> None then emit rt (Event.Acquire { tid; obj = id });
          continue_unit k
      | Op.Rd_lock id ->
          let r = rw_st rt id in
          r.readers <- tid :: r.readers;
          touch_obj rt id;
          if rt.listener <> None then emit rt (Event.Acquire { tid; obj = id });
          continue_unit k
      | Op.Wr_lock id ->
          let r = rw_st rt id in
          r.writer <- Some tid;
          touch_obj rt id;
          if rt.listener <> None then emit rt (Event.Acquire { tid; obj = id });
          continue_unit k
      | Op.Rw_unlock id ->
          let r = rw_st rt id in
          if r.writer = Some tid then begin
            r.writer <- None;
            touch_obj rt id;
            if rt.listener <> None then
              emit rt (Event.Release { tid; obj = id });
            continue_unit k
          end
          else if List.exists (Tid.equal tid) r.readers then begin
            r.readers <- List.filter (fun x -> not (Tid.equal tid x)) r.readers;
            touch_obj rt id;
            if rt.listener <> None then
              emit rt (Event.Release { tid; obj = id });
            continue_unit k
          end
          else (
            set_bug rt ~by:tid
              (Outcome.Lock_error "rwlock unlock without holding it");
            Effect.Deep.discontinue k Aborted)
      | Op.Join target ->
          if rt.listener <> None then
            emit rt (Event.Joined { parent = tid; child = target });
          continue_unit k)

let discontinue_aborted (type a) (k : (a, unit) Effect.Deep.continuation) =
  try Effect.Deep.discontinue k Aborted
  with Aborted | Outcome.Bug_exn _ -> ()

let teardown rt =
  rt.teardown <- true;
  for i = 0 to rt.count - 1 do
    match rt.threads.(i) with
    | None -> ()
    | Some th -> (
        let fin (type a) (k : (a, unit) Effect.Deep.continuation) =
          th.status <- Finished;
          discontinue_aborted k
        in
        match th.status with
        | Finished -> ()
        | Run_op (_, k) -> fin k
        | Run_spawn (_, k) -> fin k
        | Blocked_cond { k; _ } -> fin k
        | Blocked_barrier k -> fin k)
  done

let push_sched rt tid =
  if rt.steps = Array.length rt.sched_buf then begin
    let bigger = Array.make (2 * rt.steps) 0 in
    Array.blit rt.sched_buf 0 bigger 0 rt.steps;
    rt.sched_buf <- bigger
  end;
  rt.sched_buf.(rt.steps) <- tid

let schedule_of rt =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (rt.sched_buf.(i) :: acc)
  in
  build (rt.steps - 1) []

let exec ?(promote = fun _ -> false) ?listener ?(max_steps = 100_000)
    ?(record_decisions = true) ~scheduler program =
  let rt =
    {
      threads = Array.make 8 None;
      count = 0;
      objects = Array.make 16 dummy_obj;
      obj_deps = Array.make 16 [];
      n_objects = 0;
      promote;
      listener;
      max_steps;
      record_decisions;
      sched_buf = Array.make 64 0;
      decisions_rev = [];
      steps = 0;
      outcome = None;
      last = None;
      pc = 0;
      dc = 0;
      max_enabled = 0;
      multi_points = 0;
      running = Tid.main;
      teardown = false;
      try_lock_result = false;
      n_live = 0;
      n_enabled = 0;
      enabled_fp = 0;
      dirty = Array.make 8 0;
      n_dirty = 0;
      handler = None;
      eff_op = Op.Yield;
      eff_spawn = ignore;
    }
  in
  rt.handler <- Some (make_handler rt);
  let saved = Domain.DLS.get ambient_rt in
  Domain.DLS.set ambient_rt (Some rt);
  let restore () = Domain.DLS.set ambient_rt saved in
  let finish outcome =
    teardown rt;
    restore ();
    {
      r_outcome = outcome;
      r_schedule = schedule_of rt;
      r_decisions = List.rev rt.decisions_rev;
      r_pc = rt.pc;
      r_dc = rt.dc;
      r_n_threads = rt.count;
      r_max_enabled = rt.max_enabled;
      r_multi_points = rt.multi_points;
      r_steps = rt.steps;
    }
  in
  try
    ignore (add_thread rt program);
    let ctx =
      {
        c_step = 0;
        c_last = None;
        c_enabled = [];
        c_enabled_fp = 0;
        c_n_threads = 0;
        c_rt = rt;
      }
    in
    let rec loop () =
      match rt.outcome with
      | Some o -> o
      | None ->
          if rt.n_live = 0 then Outcome.Ok
          else if rt.n_enabled = 0 then
            Outcome.Bug { bug = Outcome.Deadlock (live_tids rt); by = Tid.main }
          else if rt.steps >= rt.max_steps then Outcome.Step_limit
          else begin
            let n_enabled = rt.n_enabled in
            if n_enabled > rt.max_enabled then rt.max_enabled <- n_enabled;
            if n_enabled > 1 then rt.multi_points <- rt.multi_points + 1;
            let th, enabled =
              if n_enabled = 1 then
                let th = single_enabled rt in
                (th, th.t_singleton)
              else (thread rt 0, enabled_list rt)
            in
            ctx.c_step <- rt.steps;
            ctx.c_last <- rt.last;
            ctx.c_enabled <- enabled;
            ctx.c_enabled_fp <- rt.enabled_fp;
            ctx.c_n_threads <- rt.count;
            let chosen = scheduler ctx in
            let th =
              if n_enabled = 1 then begin
                if not (Tid.equal chosen th.tid) then
                  invalid_arg
                    "Sct_core.Runtime: scheduler chose a disabled thread";
                th
              end
              else begin
                if not (List.exists (Tid.equal chosen) enabled) then
                  invalid_arg
                    "Sct_core.Runtime: scheduler chose a disabled thread";
                thread rt chosen
              end
            in
            if record_decisions then
              rt.decisions_rev <-
                {
                  d_enabled = enabled;
                  d_chosen = chosen;
                  d_op = op_of_status th.status;
                  d_n_threads = rt.count;
                }
                :: rt.decisions_rev;
            push_sched rt chosen;
            if n_enabled > 1 then begin
              (* with a single enabled thread both deltas are 0 *)
              rt.pc <- rt.pc + Preemption.delta ~last:rt.last ~enabled chosen;
              rt.dc <-
                rt.dc + Delay.delays ~n:rt.count ~last:rt.last ~enabled chosen
            end;
            (match rt.last with
            | Some l when Tid.equal l chosen -> ()
            | _ -> rt.last <- Some chosen);
            rt.steps <- rt.steps + 1;
            execute rt th;
            mark_dirty rt chosen;
            flush_dirty rt;
            loop ()
          end
    in
    let outcome = loop () in
    finish outcome
  with
  | Cut ->
      (* The scheduler abandoned the execution (all enabled continuations
         filtered by an execution-level bound): a terminal, non-buggy
         truncated prefix, like an execution stopped at [max_steps]. *)
      finish Outcome.Step_limit
  | e ->
      (* A scheduler or listener callback raised: tear down and re-raise. *)
      teardown rt;
      restore ();
      raise e
