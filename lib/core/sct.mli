(** The programming interface for programs under test.

    Programs written against this module are pthread-style multi-threaded
    test cases: a main function that spawns threads, shares {!Var}s, model
    arrays ({!Arr}) and synchronisation objects with them, and asserts
    correctness conditions with {!check}. Such a program is the unit the
    explorers in [Sct_explore] repeatedly execute under different schedules.

    Every function here must be called from inside an execution driven by
    {!Runtime.exec} (the explorers take care of that). Plain {!Var} and
    {!Arr} accesses are invisible to the scheduler unless their location name
    was promoted by the data-race-detection phase; {!Atomic} operations and
    all synchronisation operations are always visible. *)

val spawn : (unit -> unit) -> Tid.t
(** Create a thread running the given body. Thread ids are assigned in
    creation order (the delay-bounding round-robin order). *)

val join : Tid.t -> unit
(** Block until the target thread has finished. *)

val yield : unit -> unit
(** A no-op visible operation: a pure scheduling point, used to model
    bounded busy-waiting. *)

val self : unit -> Tid.t

val check : bool -> string -> unit
(** [check cond msg] aborts the execution with
    [Assertion_failure msg] when [cond] is false. *)

val fail : string -> 'a
(** Unconditional assertion failure. *)

val memory_error : string -> 'a
(** Abort with a {!Outcome.Memory_error} (models an out-of-bounds crash). *)

(** POSIX-style (non-recursive) mutexes. Self-relock deadlocks; unlock by a
    non-owner, and any use after {!Mutex.destroy}, are lock-error bugs —
    this mirrors the checks that exposed the [pbzip2] bug (paper §4.2). *)
module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit

  val try_lock : t -> bool
  (** [true] iff the lock was acquired. *)

  val destroy : t -> unit
  val id : t -> int
end

(** Condition variables. Waking order is FIFO (deterministic, as required
    for systematic testing). Signals with no waiter are lost, enabling the
    classic lost-wake-up bugs. *)
module Cond : sig
  type t

  val create : unit -> t
  val wait : t -> Mutex.t -> unit
  val signal : t -> unit
  val broadcast : t -> unit
  val id : t -> int
end

(** Counting semaphores. *)
module Sem : sig
  type t

  val create : int -> t
  val wait : t -> unit
  val post : t -> unit
  val id : t -> int
end

(** Cyclic barriers for a fixed party count. *)
module Barrier : sig
  type t

  val create : int -> t
  val wait : t -> unit
  val id : t -> int
end

(** Writer-preference-free reader/writer locks. *)
module Rwlock : sig
  type t

  val create : unit -> t
  val rd_lock : t -> unit
  val wr_lock : t -> unit
  val unlock : t -> unit
  val id : t -> int
end

(** Plain shared variables. Reads and writes are invisible operations unless
    the variable's name is promoted; they always report {!Event.t} access
    events to the race detector. *)
module Var : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  (** Unnamed variables get a stable name derived from their creation
      order. *)

  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
  val name : 'a t -> string
  val id : 'a t -> int
end

(** Sequentially consistent atomic variables (the C++11 atomics of the
    CHESS and safestack benchmarks). Always visible; never racy. *)
module Atomic : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val load : 'a t -> 'a
  val store : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Structural equality on the expected value. *)

  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
  val name : 'a t -> string
  val id : 'a t -> int
end

(** Bounds-checked shared arrays: the model analogue of the out-of-bounds
    detector of §4.2 — an access outside [0, length) aborts the execution
    with a {!Outcome.Memory_error} bug. Element accesses are reported (and
    promotable) under the array's single location name. *)
module Arr : sig
  type 'a t

  val make : ?name:string -> int -> 'a -> 'a t
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val length : 'a t -> int
  val name : 'a t -> string
end
