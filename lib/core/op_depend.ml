let footprint : Op.t -> (int * bool) list = function
  | Op.Yield -> []
  | Op.Access { id; kind; _ } -> (
      match kind with
      | Op.Plain_read -> [ (id, false) ]
      | Op.Plain_write -> [ (id, true) ]
      | Op.Atomic_op "load" -> [ (id, false) ]
      | Op.Atomic_op _ -> [ (id, true) ])
  | Op.Lock m | Op.Try_lock m | Op.Unlock m | Op.Mutex_destroy m
  | Op.Reacquire m ->
      [ (m, true) ]
  | Op.Cond_wait (c, m) -> [ (c, true); (m, true) ]
  | Op.Signal c | Op.Broadcast c -> [ (c, true) ]
  | Op.Sem_wait s | Op.Sem_post s -> [ (s, true) ]
  | Op.Barrier_wait b | Op.Barrier_resume b -> [ (b, true) ]
  | Op.Rd_lock l -> [ (l, false) ]
  | Op.Wr_lock l | Op.Rw_unlock l -> [ (l, true) ]
  | Op.Spawn | Op.Join _ -> []

let global = function Op.Spawn | Op.Join _ -> true | _ -> false

let dependent a b =
  global a || global b
  ||
  let fa = footprint a and fb = footprint b in
  List.exists
    (fun (ia, wa) -> List.exists (fun (ib, wb) -> ia = ib && (wa || wb)) fb)
    fa
