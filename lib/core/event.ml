type t =
  | Access of {
      tid : Tid.t;
      id : int;
      name : string;
      kind : Op.access_kind;
    }
  | Acquire of { tid : Tid.t; obj : int }
  | Release of { tid : Tid.t; obj : int }
  | Fork of { parent : Tid.t; child : Tid.t }
  | Joined of { parent : Tid.t; child : Tid.t }

let pp ppf = function
  | Access { tid; name; kind; _ } ->
      let k =
        match kind with
        | Op.Plain_read -> "r"
        | Op.Plain_write -> "w"
        | Op.Atomic_op s -> "a:" ^ s
      in
      Format.fprintf ppf "%a %s %s" Tid.pp tid k name
  | Acquire { tid; obj } -> Format.fprintf ppf "%a acq #%d" Tid.pp tid obj
  | Release { tid; obj } -> Format.fprintf ppf "%a rel #%d" Tid.pp tid obj
  | Fork { parent; child } ->
      Format.fprintf ppf "%a fork %a" Tid.pp parent Tid.pp child
  | Joined { parent; child } ->
      Format.fprintf ppf "%a join %a" Tid.pp parent Tid.pp child
