(** Schedules.

    A schedule [α = ⟨α(1), …, α(n)⟩] is a list of thread identifiers; [α(i)]
    is the thread executing step [i] (paper §2). *)

type t = Tid.t list

val empty : t
val length : t -> int

val snoc : t -> Tid.t -> t
(** [snoc α t] is [α · t]. *)

val last : t -> Tid.t option
(** [last α] is [α(n)], or [None] for the empty schedule. *)

val of_list : Tid.t list -> t
val to_list : t -> Tid.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
