(** Visible operations.

    A step of an execution is one visible operation followed by the invisible
    operations up to (not including) the next visible operation (paper §2).
    A thread suspends immediately before each visible operation; the value of
    this type describes the pending operation so that the scheduler can
    (a) decide enabledness and (b) report traces. *)

(** How a shared-memory location is touched. *)
type access_kind =
  | Plain_read
  | Plain_write
  | Atomic_op of string
      (** e.g. ["load"], ["store"], ["cas"], ["faa"], ["xchg"]. *)

type t =
  | Spawn  (** create a new thread (child tid assigned at execution) *)
  | Join of Tid.t  (** enabled iff the target thread has finished *)
  | Lock of int  (** enabled iff the mutex is free and not destroyed-pending *)
  | Try_lock of int
  | Unlock of int
  | Mutex_destroy of int
  | Cond_wait of int * int  (** [(cond, mutex)]: release + block *)
  | Reacquire of int
      (** re-acquire of a mutex after a condition wait; enabled iff free *)
  | Signal of int
  | Broadcast of int
  | Sem_wait of int  (** enabled iff the semaphore count is positive *)
  | Sem_post of int
  | Barrier_wait of int
  | Barrier_resume of int  (** resumption point after a barrier opens *)
  | Rd_lock of int
  | Wr_lock of int
  | Rw_unlock of int
  | Access of { id : int; name : string; kind : access_kind }
      (** a shared-memory access promoted to a visible operation *)
  | Yield

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_blocking : t -> bool
(** [is_blocking op] is [true] when executing [op] can leave the executing
    thread disabled (condition waits and barrier waits). Used only for
    reporting; enabledness is decided by the runtime against object state. *)

val obj_id : t -> int option
(** The shared object the operation acts on: the runtime object id for
    lock/semaphore/barrier/rwlock operations (the condition variable for
    [Cond_wait]) and the location id for promoted accesses; [None] for
    [Spawn], [Join] and [Yield], which touch no shared object. Variable
    bounding keys preemption footprints on this id. *)
