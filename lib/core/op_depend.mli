(** Dependence between visible operations, for partial-order reduction
    (paper §7 related work: Godefroid 1996; Flanagan & Godefroid 2005).

    Two operations are independent when executing them in either order from
    any state where both are enabled yields the same state. This module
    gives a sound (conservative) approximation from operation footprints:
    operations conflict when they touch a common object and at least one
    side mutates it or affects enabledness. *)

val footprint : Op.t -> (int * bool) list
(** [footprint op] is the list of [(object_id, writes)] pairs the operation
    touches. [Yield] has an empty footprint (independent of everything);
    synchronisation operations mutate their object's state. *)

val global : Op.t -> bool
(** [global op] holds for operations whose effect is not captured by an
    object footprint ([Spawn], [Join]): they are conservatively treated as
    dependent with every operation. *)

val dependent : Op.t -> Op.t -> bool
(** Symmetric; [true] when the operations may not commute. *)
