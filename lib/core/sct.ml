let perform_visible op = Effect.perform (Runtime.Visible op)
let rt () = Runtime.ambient ()
let spawn f = Effect.perform (Runtime.Spawn_eff f)
let join tid = perform_visible (Op.Join tid)
let yield () = perform_visible Op.Yield
let self () = Runtime.self (rt ())

let check cond msg =
  if not cond then raise (Outcome.Bug_exn (Outcome.Assertion_failure msg))

let fail msg = raise (Outcome.Bug_exn (Outcome.Assertion_failure msg))
let memory_error msg = raise (Outcome.Bug_exn (Outcome.Memory_error msg))

module Mutex = struct
  type t = { id : int }

  let create () =
    { id = Runtime.new_object (rt ()) (O_mutex { holder = None; destroyed = false }) }

  let lock m = perform_visible (Op.Lock m.id)
  let unlock m = perform_visible (Op.Unlock m.id)

  let try_lock m =
    perform_visible (Op.Try_lock m.id);
    Runtime.try_lock_result (rt ())

  let destroy m = perform_visible (Op.Mutex_destroy m.id)
  let id m = m.id
end

module Cond = struct
  type t = { id : int }

  let create () =
    { id = Runtime.new_object (rt ()) (O_cond { waiters = Queue.create () }) }
  let wait c m = perform_visible (Op.Cond_wait (c.id, Mutex.id m))
  let signal c = perform_visible (Op.Signal c.id)
  let broadcast c = perform_visible (Op.Broadcast c.id)
  let id c = c.id
end

module Sem = struct
  type t = { id : int }

  let create count =
    if count < 0 then invalid_arg "Sct.Sem.create: negative count";
    { id = Runtime.new_object (rt ()) (O_sem { count }) }

  let wait s = perform_visible (Op.Sem_wait s.id)
  let post s = perform_visible (Op.Sem_post s.id)
  let id s = s.id
end

module Barrier = struct
  type t = { id : int }

  let create size =
    if size <= 0 then invalid_arg "Sct.Barrier.create: non-positive size";
    {
      id =
        Runtime.new_object (rt ())
          (O_barrier { size; waiting = []; n_waiting = 0 });
    }

  let wait b = perform_visible (Op.Barrier_wait b.id)
  let id b = b.id
end

module Rwlock = struct
  type t = { id : int }

  let create () =
    { id = Runtime.new_object (rt ()) (O_rw { readers = []; writer = None }) }

  let rd_lock l = perform_visible (Op.Rd_lock l.id)
  let wr_lock l = perform_visible (Op.Wr_lock l.id)
  let unlock l = perform_visible (Op.Rw_unlock l.id)
  let id l = l.id
end

(* Shared locations register an [O_location] with the runtime so they get an
   id in the single object-id namespace; their typed contents stay here.
   Unnamed locations get a stable creation-order-derived name.

   The creating runtime is cached in the record: [make] can only run inside
   {!Runtime.exec} (the ambient lookup raises otherwise), so the cached
   runtime is always the ambient one and per-access DLS lookups go away. *)
module Var = struct
  type 'a t = {
    id : int;
    name : string;
    mutable v : 'a;
    promoted : bool;
    lrt : Runtime.t;
    (* preallocated visible ops: an access performs one of these two
       records instead of building a fresh one per read/write *)
    op_read : Op.t;
    op_write : Op.t;
  }

  let make ?name v =
    let r = rt () in
    let id, name =
      match name with
      | Some n -> (Runtime.new_object r (O_location { name = n }), n)
      | None ->
          let id = Runtime.new_object r (O_location { name = "" }) in
          (id, "loc" ^ string_of_int id)
    in
    {
      id;
      name;
      v;
      promoted = Runtime.promoted r name;
      lrt = r;
      op_read = Op.Access { id; name; kind = Op.Plain_read };
      op_write = Op.Access { id; name; kind = Op.Plain_write };
    }

  let access x kind =
    if x.promoted then
      perform_visible
        (match kind with
        | Op.Plain_read -> x.op_read
        | Op.Plain_write -> x.op_write
        | Op.Atomic_op _ -> Op.Access { id = x.id; name = x.name; kind });
    let r = x.lrt in
    if Runtime.listening r then
      Runtime.emit r
        (Event.Access { tid = Runtime.self r; id = x.id; name = x.name; kind })

  let read x =
    access x Op.Plain_read;
    x.v

  let write x v =
    access x Op.Plain_write;
    x.v <- v

  let name x = x.name
  let id x = x.id
end

module Atomic = struct
  type 'a t = { id : int; name : string; mutable v : 'a; lrt : Runtime.t }

  let make ?name v =
    let r = rt () in
    let id, name =
      match name with
      | Some n -> (Runtime.new_object r (O_location { name = n }), n)
      | None ->
          let id = Runtime.new_object r (O_location { name = "" }) in
          (id, "atomic" ^ string_of_int id)
    in
    { id; name; v; lrt = r }

  (* Every atomic op is a visible operation and a full synchronisation
     (acquire + release) on the location, so the race detector orders all
     atomic accesses to the same location. *)
  let sync x opname =
    perform_visible (Op.Access { id = x.id; name = x.name; kind = Op.Atomic_op opname });
    let r = x.lrt in
    if Runtime.listening r then begin
      let tid = Runtime.self r in
      Runtime.emit r
        (Event.Access { tid; id = x.id; name = x.name; kind = Op.Atomic_op opname });
      Runtime.emit r (Event.Acquire { tid; obj = x.id });
      Runtime.emit r (Event.Release { tid; obj = x.id })
    end

  let load x =
    sync x "load";
    x.v

  let store x v =
    sync x "store";
    x.v <- v

  let exchange x v =
    sync x "xchg";
    let old = x.v in
    x.v <- v;
    old

  let compare_and_set x expected desired =
    sync x "cas";
    if x.v = expected then begin
      x.v <- desired;
      true
    end
    else false

  let fetch_and_add x d =
    sync x "faa";
    let old = x.v in
    x.v <- old + d;
    old

  let incr x = ignore (fetch_and_add x 1)
  let decr x = ignore (fetch_and_add x (-1))
  let name x = x.name
  let id x = x.id
end

module Arr = struct
  type 'a t = {
    id : int;
    name : string;
    data : 'a array;
    promoted : bool;
    lrt : Runtime.t;
    op_read : Op.t;
    op_write : Op.t;
  }

  let make ?name n v =
    let r = rt () in
    let id, name =
      match name with
      | Some nm -> (Runtime.new_object r (O_location { name = nm }), nm)
      | None ->
          let id = Runtime.new_object r (O_location { name = "" }) in
          (id, "arr" ^ string_of_int id)
    in
    if n < 0 then memory_error (Printf.sprintf "%s: negative length %d" name n);
    {
      id;
      name;
      data = Array.make n v;
      promoted = Runtime.promoted r name;
      lrt = r;
      op_read = Op.Access { id; name; kind = Op.Plain_read };
      op_write = Op.Access { id; name; kind = Op.Plain_write };
    }

  let access x kind =
    if x.promoted then
      perform_visible
        (match kind with
        | Op.Plain_read -> x.op_read
        | Op.Plain_write -> x.op_write
        | Op.Atomic_op _ -> Op.Access { id = x.id; name = x.name; kind });
    let r = x.lrt in
    if Runtime.listening r then
      Runtime.emit r
        (Event.Access { tid = Runtime.self r; id = x.id; name = x.name; kind })

  let bounds_check x i =
    if i < 0 || i >= Array.length x.data then
      memory_error
        (Printf.sprintf "%s: index %d out of bounds [0,%d)" x.name i
           (Array.length x.data))

  let get x i =
    access x Op.Plain_read;
    bounds_check x i;
    x.data.(i)

  let set x i v =
    access x Op.Plain_write;
    bounds_check x i;
    x.data.(i) <- v

  let length x = Array.length x.data
  let name x = x.name
end
