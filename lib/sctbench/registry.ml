let static : Bench.t list =
  List.sort
    (fun (a : Bench.t) b -> compare a.Bench.id b.Bench.id)
    (List.concat
       [
         Cb.entries;
         Cs.entries;
         Chess.entries;
         Inspect_suite.entries;
         Misc.entries;
         Parsec.entries;
         Radbench.entries;
         Splash2.entries;
         Yield_loops.entries;
       ])

let all = static

(* Extension entries (mined corpus programs), in registration order. Kept
   apart from [static] so the built-in set (the paper's 52 plus the
   yield-loop family) stays fixed. *)
let extension : Bench.t list ref = ref []

let extensions () = List.rev !extension

let full () = static @ extensions ()

let register (b : Bench.t) =
  let clashes (e : Bench.t) =
    e.Bench.id = b.Bench.id || String.equal e.Bench.name b.Bench.name
  in
  if List.exists clashes (full ()) then
    Error
      (Printf.sprintf "registry: id %d or name %s already registered"
         b.Bench.id b.Bench.name)
  else begin
    extension := b :: !extension;
    Ok ()
  end

let reset_extensions () = extension := []

let by_id id = List.find_opt (fun (b : Bench.t) -> b.Bench.id = id) (full ())

let by_name name =
  List.find_opt
    (fun (b : Bench.t) -> String.equal b.Bench.name name)
    (full ())

let of_suite suite =
  List.filter (fun (b : Bench.t) -> b.Bench.suite = suite) (full ())

let names () = List.map (fun (b : Bench.t) -> b.Bench.name) (full ())
