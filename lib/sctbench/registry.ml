let all : Bench.t list =
  List.sort
    (fun (a : Bench.t) b -> compare a.Bench.id b.Bench.id)
    (List.concat
       [
         Cb.entries;
         Cs.entries;
         Chess.entries;
         Inspect_suite.entries;
         Misc.entries;
         Parsec.entries;
         Radbench.entries;
         Splash2.entries;
       ])

let by_id id = List.find_opt (fun (b : Bench.t) -> b.Bench.id = id) all

let by_name name =
  List.find_opt
    (fun (b : Bench.t) -> String.equal b.Bench.name name)
    all

let of_suite suite =
  List.filter (fun (b : Bench.t) -> b.Bench.suite = suite) all

let names () = List.map (fun (b : Bench.t) -> b.Bench.name) all
