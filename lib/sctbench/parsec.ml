(* The PARSEC 2.0 benchmarks, ids 39..42 (paper §4.1): the ferret pipeline
   and three distinct streamcluster bugs, configured (as in the paper) with
   the smallest inputs and non-spinning synchronisation. *)

open Sct_core

let v = Sct.Var.make

(* A properly locked bounded queue stage used by the correct pipeline
   stages of ferret. *)
module Stage_queue = struct
  type t = {
    items : int Sct.Arr.t;
    count : int Sct.Var.t;
    head : int Sct.Var.t;
    tail : int Sct.Var.t;
    m : Sct.Mutex.t;
  }

  let create name cap =
    {
      items = Sct.Arr.make ~name:(name ^ "_items") cap 0;
      count = v ~name:(name ^ "_count") 0;
      head = v ~name:(name ^ "_head") 0;
      tail = v ~name:(name ^ "_tail") 0;
      m = Sct.Mutex.create ();
    }

  let put q x =
    Sct.Mutex.lock q.m;
    let t = Sct.Var.read q.tail in
    Sct.Arr.set q.items (t mod Sct.Arr.length q.items) x;
    Sct.Var.write q.tail (t + 1);
    Sct.Var.write q.count (Sct.Var.read q.count + 1);
    Sct.Mutex.unlock q.m

  (* Locked take: returns 0 when empty. *)
  let take q =
    Sct.Mutex.lock q.m;
    let c = Sct.Var.read q.count in
    let x =
      if c = 0 then 0
      else begin
        let h = Sct.Var.read q.head in
        let x = Sct.Arr.get q.items (h mod Sct.Arr.length q.items) in
        Sct.Var.write q.head (h + 1);
        Sct.Var.write q.count (c - 1);
        x
      end
    in
    Sct.Mutex.unlock q.m;
    x
end

(* 39. parsec.ferret — four pipeline stages with two workers each, plus the
   load stage and the main thread (11 threads). The rank stage checks the
   queue's occupancy outside the lock before dequeueing: if the worker is
   held in that window while its peer takes the last item, the resumed
   dequeue underflows. This reproduces the paper's shape: the bug needs a
   thread preempted at one specific visible operation (one delay; a single
   buggy schedule for IDB) and is effectively invisible to a uniform random
   scheduler. *)
let ferret () =
  let items = 4 in
  let q_seg = Stage_queue.create "ferret_seg" 8 in
  let q_extract = Stage_queue.create "ferret_extract" 8 in
  let q_vec = Stage_queue.create "ferret_vec" 8 in
  let q_rank = Stage_queue.create "ferret_rank" 8 in
  let out = v ~name:"ferret_out" 0 in
  let out_m = Sct.Mutex.create () in
  let load_done = v ~name:"ferret_load_done" false in
  let seg_active = v ~name:"ferret_seg_active" 2 in
  let extract_active = v ~name:"ferret_extract_active" 2 in
  let gate = Sct.Mutex.create () in
  let load =
    Sct.spawn (fun () ->
        for i = 1 to items do
          Stage_queue.put q_seg i
        done;
        Sct.Var.write load_done true)
  in
  let stage_worker ~in_q ~out_q ~upstream_done ~active () =
    let quit = ref false in
    let idle = ref 0 in
    while (not !quit) && !idle < 16 do
      let x = Stage_queue.take in_q in
      if x <> 0 then begin
        idle := 0;
        Stage_queue.put out_q (x * 2)
      end
      else if Sct.Var.read upstream_done then quit := true
      else incr idle
    done;
    Sct.Mutex.lock gate;
    Sct.Var.write active (Sct.Var.read active - 1);
    Sct.Mutex.unlock gate
  in
  let seg_done = v ~name:"ferret_seg_done" false in
  let extract_done = v ~name:"ferret_extract_done" false in
  let vec_done = v ~name:"ferret_vec_done" false in
  let vec_active = v ~name:"ferret_vec_active" 2 in
  let seg_workers =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            stage_worker ~in_q:q_seg ~out_q:q_extract ~upstream_done:load_done
              ~active:seg_active ();
            if Sct.Var.read seg_active = 0 then Sct.Var.write seg_done true))
  in
  let extract_workers =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            stage_worker ~in_q:q_extract ~out_q:q_vec ~upstream_done:seg_done
              ~active:extract_active ();
            if Sct.Var.read extract_active = 0 then
              Sct.Var.write extract_done true))
  in
  let vec_workers =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            stage_worker ~in_q:q_vec ~out_q:q_rank ~upstream_done:extract_done
              ~active:vec_active ();
            if Sct.Var.read vec_active = 0 then Sct.Var.write vec_done true))
  in
  (* The rank stage writes results into the output aggregate, which the
     last idle rank worker seals (writes the summary header) once the
     upstream is done and the queue has stayed empty over a double scan.
     BUG: a ranked result is written to the output *after* the locked take
     releases the queue lock — a worker parked in that window while its
     peer drains the rest and seals the output resumes into a sealed
     aggregate. Only a long starvation exposes it: a single delay (the
     round-robin cascade runs every other thread to completion), but a
     uniform random scheduler has a vanishing chance of keeping the worker
     parked that long (paper §6: why Rand misses ferret). *)
  let sealed = v ~name:"ferret_out_sealed" false in
  let rank_workers =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            let quit = ref false in
            let idle = ref 0 in
            while (not !quit) && !idle < 16 do
              Sct.Mutex.lock q_rank.Stage_queue.m;
              let c = Sct.Var.read q_rank.Stage_queue.count in
              if c > 0 then begin
                let h = Sct.Var.read q_rank.Stage_queue.head in
                let x =
                  Sct.Arr.get q_rank.Stage_queue.items
                    (h mod Sct.Arr.length q_rank.Stage_queue.items)
                in
                Sct.Var.write q_rank.Stage_queue.head (h + 1);
                Sct.Var.write q_rank.Stage_queue.count (c - 1);
                Sct.Mutex.unlock q_rank.Stage_queue.m;
                idle := 0;
                (* the window: the take is published, the result is not *)
                Sct.check
                  (not (Sct.Var.read sealed))
                  "ferret rank: result written into sealed output";
                Sct.Mutex.lock out_m;
                Sct.Var.write out (Sct.Var.read out + x);
                Sct.Mutex.unlock out_m
              end
              else begin
                Sct.Mutex.unlock q_rank.Stage_queue.m;
                if Sct.Var.read vec_done then begin
                  (* double empty-scan before sealing the output *)
                  let still_empty = ref true in
                  for _ = 1 to 16 do
                    Sct.yield ();
                    if Sct.Var.read q_rank.Stage_queue.count > 0 then
                      still_empty := false
                  done;
                  if !still_empty then begin
                    (* the seal itself is written without a lock: racy
                       against the peer's unlocked check above *)
                    Sct.Var.write sealed true;
                    quit := true
                  end
                end
                else incr idle
              end
            done))
  in
  Sct.join load;
  List.iter Sct.join seg_workers;
  List.iter Sct.join extract_workers;
  List.iter Sct.join vec_workers;
  List.iter Sct.join rank_workers

(* The buggy hand-rolled condition synchronisation of streamcluster's
   pspeedy: the flag is written and the wake-up sent without regard for the
   waiter being between its check and its wait — the signal is lost and the
   waiter sleeps forever (with non-spinning synchronisation, a deadlock). *)
let lost_signal_handshake ~signals ~waiters ~noise () =
  let m = Sct.Mutex.create () in
  let c = Sct.Cond.create () in
  let flag = v ~name:"sc_continue" false in
  let work = v ~name:"sc_work" 0 in
  let busy n =
    for _ = 1 to n do
      Sct.yield ()
    done
  in
  let waiter_threads =
    List.init waiters (fun _ ->
        Sct.spawn (fun () ->
            (* the kmedian phase work before the synchronisation point *)
            busy 150;
            Sct.Mutex.lock m;
            (* BUG: 'if', not 'while', and the producer signals without
               holding the mutex. *)
            if not (Sct.Var.read flag) then Sct.Cond.wait c m;
            Sct.Mutex.unlock m;
            Sct.Var.write work (Sct.Var.read work + 1);
            (* the phase work after the synchronisation point *)
            busy 400))
  in
  let noise_threads =
    List.init noise (fun i ->
        Sct.spawn (fun () ->
            for _ = 1 to 3 do
              Sct.Var.write work (Sct.Var.read work + i)
            done;
            busy 500))
  in
  let setter =
    Sct.spawn (fun () ->
        busy 150;
        Sct.Var.write flag true;
        for _ = 1 to signals do
          Sct.Cond.signal c
        done;
        busy 400)
  in
  List.iter Sct.join waiter_threads;
  List.iter Sct.join noise_threads;
  Sct.join setter

(* 40. parsec.streamcluster — two waiter workers + the setter + one noise
   worker (5 threads): a waiter caught between its flag check and its wait
   misses the broadcastless wake-up and the program deadlocks. *)
let streamcluster () = lost_signal_handshake ~signals:2 ~waiters:2 ~noise:1 ()

(* 41. parsec.streamcluster2 — the same lost-signal defect with more
   workers (7 threads), the variant whose bug needs three threads
   cooperating. *)
let streamcluster2 () = lost_signal_handshake ~signals:3 ~waiters:3 ~noise:2 ()

(* 42. parsec.streamcluster3 — the previously unknown out-of-bounds bug the
   paper found with its memory-safety checker: the center table is resized
   by the first worker; if the second worker's write is ordered first it
   indexes the stale, larger count. Two sequential setup phases keep at most
   two threads enabled, as in the paper's row. *)
let streamcluster3 () =
  let centers = Sct.Arr.make ~name:"sc3_centers" 4 0 in
  let ncenters = v ~name:"sc3_ncenters" 8 in
  let points_read = v ~name:"sc3_points_read" 0 in
  let setup1 = Sct.spawn (fun () -> Sct.Var.write points_read 1) in
  Sct.join setup1;
  let setup2 = Sct.spawn (fun () -> Sct.Arr.set centers 0 1) in
  Sct.join setup2;
  let shrinker =
    Sct.spawn (fun () ->
        (* pkmedian trims the candidate centers to fit the table *)
        Sct.Var.write ncenters (Sct.Arr.length centers))
  in
  let writer =
    Sct.spawn (fun () ->
        let n = Sct.Var.read ncenters in
        Sct.Arr.set centers (n - 1) 42)
  in
  Sct.join shrinker;
  Sct.join writer

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.Parsec

let entries =
  [
    e ~id:39 ~name:"ferret"
      ~description:
        "ferret pipeline (4 stages x 2 workers): rank stage checks queue \
         occupancy outside the lock; a worker held in that window \
         underflows the queue when it resumes."
      ~paper:(row ~threads:11 ~max_enabled:11 ~idb:1 ~dfs:false ~rand:false ~maple:true ())
      ~expect_idb:1 ferret;
    e ~id:40 ~name:"streamcluster"
      ~description:
        "pspeedy's hand-rolled continue-flag: signal sent while a waiter \
         sits between check and wait; lost wake-up deadlock."
      ~paper:(row ~threads:5 ~max_enabled:2 ~idb:1 ~dfs:false ~rand:true ~maple:true ())
      ~expect_idb:1 streamcluster;
    e ~id:41 ~name:"streamcluster2"
      ~description:
        "The lost-wake-up defect in the three-thread configuration (an \
         older version of the benchmark)."
      ~paper:(row ~threads:7 ~max_enabled:3 ~idb:1 ~dfs:false ~rand:true ~maple:false ())
      ~expect_idb:1 streamcluster2;
    e ~id:42 ~name:"streamcluster3"
      ~description:
        "Previously unknown out-of-bounds write: a worker indexes the \
         center table with a stale (pre-shrink) count when ordered first."
      ~paper:(row ~threads:5 ~max_enabled:2 ~ipb:0 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:1 streamcluster3;
  ]
