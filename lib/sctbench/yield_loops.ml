(* The yield-loop family, ids 52..54 (study extension): spin/yield loops
   that make plain systematic exploration drown in yield-spam schedules.
   These are the programs fair bounding and length bounding exist for
   (dejafu's sctFairBound / sctLengthBound): a fair-bounded walk cuts every
   schedule in which one thread yields far more often than its peers, so
   the busy-wait subtrees collapse and the interesting preemptions come
   within budget. Every loop carries a generous iteration cap so the
   round-robin execution terminates, but the caps are large enough that
   DFS and plain IPB exhaust realistic schedule limits inside the spin
   regions. *)

open Sct_core

let v = Sct.Var.make

(* 52. yield.spinwait_bad — a publisher/spin-waiter pair with the classic
   reversed publication: the ready flag is raised *before* the payload is
   written, so a waiter that wakes between the two writes reads stale data.
   The exposing schedule needs exactly one preemption, but it sits at the
   very start of the program, and three decoy threads spin on a flag that
   is never raised: plain IPB enumerates the thousands of late yield-spam
   preemption placements first and exhausts even the paper's 10,000
   schedule limit before reaching the early one, while DFS never escapes
   the exponential spin subtrees at all. Fair bounding truncates every
   spin at the yield-difference bound, shrinking the walk to a few hundred
   (mostly cut) executions. *)
let spinwait_bad () =
  let flag = v ~name:"sw_flag" false in
  let data = v ~name:"sw_data" 0 in
  let never = v ~name:"sw_never" false in
  let spin_wait ~cap f =
    let seen = ref false and tries = ref 0 in
    while (not !seen) && !tries < cap do
      seen := Sct.Var.read f;
      if not !seen then begin
        incr tries;
        Sct.yield ()
      end
    done;
    !seen
  in
  let waiter =
    Sct.spawn (fun () ->
        if spin_wait ~cap:16 flag then
          Sct.check (Sct.Var.read data = 1) "spinwait: flag up before data")
  in
  let decoys =
    List.init 3 (fun _ ->
        Sct.spawn (fun () -> ignore (spin_wait ~cap:80 never)))
  in
  (* BUG: the flag is published before the payload. *)
  Sct.Var.write flag true;
  Sct.Var.write data 1;
  Sct.join waiter;
  List.iter Sct.join decoys

(* 53. yield.cas_yield_bad — a test-and-set lock acquired with a bounded
   yield back-off, protecting a counter updated by a non-atomic load/store
   pair. An impatient worker that exhausts its back-off barges into the
   critical section without the lock, losing an update: one preemption
   parks the holder mid-update while the barger yields through its whole
   back-off. The witness spends 3 yields, so it survives a fair bound only
   because the cap is below the default yield-difference bound of 5 — the
   no-bug-lost direction of fair bounding (a fair bound under 3 loses
   it). *)
let cas_yield_bad () =
  let lock = Sct.Atomic.make ~name:"cy_lock" 0 in
  (* the counter is atomic so its load/store are scheduling points without
     depending on the race-detection phase observing the (rare) barge *)
  let counter = Sct.Atomic.make ~name:"cy_counter" 0 in
  let worker () =
    let cap = 3 in
    let got = ref (Sct.Atomic.compare_and_set lock 0 1) in
    let tries = ref 0 in
    while (not !got) && !tries < cap do
      incr tries;
      Sct.yield ();
      got := Sct.Atomic.compare_and_set lock 0 1
    done;
    (* BUG: after a failed back-off the worker updates anyway, and the
       load/store pair is not atomic. *)
    Sct.Atomic.store counter (Sct.Atomic.load counter + 1);
    if !got then Sct.Atomic.store lock 0
  in
  let t1 = Sct.spawn worker in
  let t2 = Sct.spawn worker in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Atomic.load counter = 2) "cas_yield: lost update"

(* 54. yield.livelock_bad — a polite Dekker-style pair: each thread raises
   its intent flag, backs off (clear, yield, retry) whenever it sees the
   other's, and gives up after four attempts. Parking one thread with its
   intent raised starves the other through all of its attempts, so the
   mutual-starvation check falls to preemption bound 2. The point of the
   benchmark is that the starving schedules keep the yield counts balanced
   (each back-off yields once per attempt, capped at 4, under the default
   fair bound of 5): fair bounding must explore exactly the plain IPB tree
   here, byte for byte — the fair-noop direction, complementing
   spinwait_bad's fair-prunes-everything direction. *)
let livelock_bad () =
  let intent = [| v ~name:"ll_intent0" false; v ~name:"ll_intent1" false |] in
  let entered = v ~name:"ll_entered" 0 in
  let polite me =
    let cap = 4 in
    let won = ref false and tries = ref 0 in
    while (not !won) && !tries < cap do
      incr tries;
      Sct.Var.write intent.(me) true;
      if Sct.Var.read intent.(1 - me) then begin
        (* back off politely and retry *)
        Sct.Var.write intent.(me) false;
        Sct.yield ()
      end
      else begin
        Sct.Var.write entered (Sct.Var.read entered + 1);
        Sct.Var.write intent.(me) false;
        won := true
      end
    done
  in
  let t1 = Sct.spawn (fun () -> polite 0) in
  let t2 = Sct.spawn (fun () -> polite 1) in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read entered >= 1) "livelock: both threads starved"

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.Yield

let entries =
  [
    e ~id:52 ~name:"spinwait_bad"
      ~description:
        "Reversed flag/data publication behind three decoy spin loops: the \
         one-preemption witness hides beyond thousands of yield-spam \
         schedules, so IPB and DFS exhaust the full limit — fair bounding \
         collapses the spins and finds it inside 250 executions."
      ~paper:
        (row ~threads:5 ~max_enabled:5 ~idb:1 ~dfs:false ~rand:true
           ~maple:true ())
      ~expect_idb:1 spinwait_bad;
    e ~id:53 ~name:"cas_yield_bad"
      ~description:
        "Test-and-set lock with a bounded yield back-off: an impatient \
         worker barges in unlocked after its back-off and loses an update; \
         the witness spends 3 yields, inside the default fair bound."
      ~paper:
        (row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true
           ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 cas_yield_bad;
    e ~id:54 ~name:"livelock_bad"
      ~description:
        "Polite Dekker-style pair with bounded back-off: parking one \
         thread with its intent raised starves the other, at preemption \
         bound 2; the starving schedules are yield-balanced, so fair \
         bounding explores exactly the plain IPB tree."
      ~paper:
        (row ~threads:3 ~max_enabled:2 ~ipb:2 ~idb:2 ~dfs:true ~rand:true
           ~maple:false ())
      ~expect_ipb:2 ~expect_idb:2 livelock_bad;
  ]
