(* The miscellaneous benchmarks, ids 37..38 (paper §4.1): the ctrace
   debugging-library test, and Vyukov's safestack — the benchmark reported
   to need at least three threads and five preemptions, which no technique
   exposes within the 10,000-schedule limit (a negative target this
   reproduction must preserve). *)

open Sct_core

let v = Sct.Var.make

(* 37. misc.ctrace-test — the ctrace multithreaded debugging library keeps
   a global event list whose length field is updated without holding the
   list lock: two concurrent trace calls lose an event. *)
let ctrace_test () =
  let cap = 8 in
  let events = Sct.Arr.make ~name:"ctrace_events" cap 0 in
  let n = v ~name:"ctrace_n" 0 in
  let m = Sct.Mutex.create () in
  let trace_event tag =
    (* BUG: the length is read outside the critical section. *)
    let i = Sct.Var.read n in
    Sct.Mutex.lock m;
    Sct.Arr.set events i tag;
    Sct.Var.write n (i + 1);
    Sct.Mutex.unlock m
  in
  let t1 = Sct.spawn (fun () -> trace_event 1) in
  let t2 = Sct.spawn (fun () -> trace_event 2) in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read n = 2) "ctrace lost a trace event"

(* 38. misc.safestack — Dmitry Vyukov's lock-free stack over an array-based
   free list (posted to the CHESS forums). Cells are chained through atomic
   Next fields; pop exchanges the head cell's Next with -1 to claim it and
   CASes the head forward; push links the cell back. The (real, very deep)
   defect is that a pop that fails its head CAS restores the cell's Next
   non-atomically, letting two threads own the same cell after a specific
   >=5-preemption interleaving of three threads. Each thread validates
   exclusive ownership of the cell it popped. Retry loops are bounded so the
   schedule tree stays finite. *)
let safestack () =
  let cells = 3 and threads = 3 and iterations = 2 in
  let next =
    Array.init cells (fun i ->
        Sct.Atomic.make ~name:(Printf.sprintf "ss_next%d" i)
          (if i + 1 < cells then i + 1 else -1))
  in
  let head = Sct.Atomic.make ~name:"ss_head" 0 in
  let count = Sct.Atomic.make ~name:"ss_count" cells in
  let value = Sct.Arr.make ~name:"ss_value" cells (-1) in
  (* Pop: claim the head cell by exchanging its Next with -1, then CAS the
     head forward. On CAS failure the cell's Next is restored — the restore
     is what resurrects a cell that another thread has since claimed. *)
  let pop () =
    let result = ref (-1) in
    let attempts = ref 0 in
    while !result < 0 && !attempts < 8 do
      incr attempts;
      if Sct.Atomic.load count > 1 then begin
        let head1 = Sct.Atomic.load head in
        if head1 >= 0 then begin
          let next1 = Sct.Atomic.exchange next.(head1) (-1) in
          if next1 >= 0 then
            if Sct.Atomic.compare_and_set head head1 next1 then begin
              ignore (Sct.Atomic.fetch_and_add count (-1));
              result := head1
            end
            else ignore (Sct.Atomic.exchange next.(head1) next1)
        end
      end
      else result := -2 (* nearly empty: give this round up *)
    done;
    if !result = -2 then -1 else !result
  in
  let push idx =
    let head1 = ref (Sct.Atomic.load head) in
    let linked = ref false in
    let attempts = ref 0 in
    while (not !linked) && !attempts < 8 do
      incr attempts;
      Sct.Atomic.store next.(idx) !head1;
      if Sct.Atomic.compare_and_set head !head1 idx then linked := true
      else head1 := Sct.Atomic.load head
    done;
    if !linked then ignore (Sct.Atomic.fetch_and_add count 1)
  in
  let ts =
    List.init threads (fun t ->
        Sct.spawn (fun () ->
            for _ = 1 to iterations do
              let idx = pop () in
              if idx >= 0 then begin
                (* exclusive ownership check, as in the original harness *)
                Sct.Arr.set value idx t;
                Sct.check
                  (Sct.Arr.get value idx = t)
                  "safestack: cell owned by two threads";
                Sct.Arr.set value idx (-1);
                push idx
              end
            done))
  in
  List.iter Sct.join ts

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.Misc

let entries =
  [
    e ~id:37 ~name:"ctrace-test"
      ~description:
        "ctrace debugging library: the event-list length is read outside \
         the lock, so concurrent trace calls lose an event."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 ctrace_test;
    e ~id:38 ~name:"safestack"
      ~description:
        "Vyukov's lock-free safestack: failed-pop Next restoration \
         resurrects a claimed cell; needs >=3 threads and >=5 preemptions — \
         found by no technique within the limit."
      ~paper:(row ~threads:4 ~max_enabled:3 ~dfs:false ~rand:false ~maple:false ())
      safestack;
  ]
