(** The assembled SCTBench registry: the paper's 52 benchmarks plus the
    3-entry yield-loop family ([Yield_loops], ids 52..54), sorted by
    benchmark id, plus any registered extension entries (mined corpus
    programs promoted by [Sct_corpus]).

    The static set is immutable — [all] is always exactly the 55 — while
    extensions accumulate through {!register}. The lookup functions
    ([by_id], [by_name], [of_suite], [names]) see both, so a loaded corpus
    flows through every downstream consumer (tables, campaign
    orchestrator, parallel suite, differential oracle) with no special
    cases. *)

val all : Bench.t list
(** The 55 static benchmarks only; never includes extensions. *)

val register : Bench.t -> (unit, string) result
(** Add an extension entry. Fails (without registering) if its id or
    qualified name collides with any static or already-registered entry.
    Extension ids conventionally start at 1000 to stay clear of the
    static 0..54. *)

val extensions : unit -> Bench.t list
(** Registered extension entries, in registration order. *)

val full : unit -> Bench.t list
(** [all @ extensions ()]. *)

val reset_extensions : unit -> unit
(** Drop every registered extension (test isolation). *)

val by_id : int -> Bench.t option
val by_name : string -> Bench.t option
val of_suite : Bench.suite -> Bench.t list
val names : unit -> string list
