(** The assembled SCTBench registry: all 52 benchmarks, sorted by the
    paper's benchmark id. *)

val all : Bench.t list
val by_id : int -> Bench.t option
val by_name : string -> Bench.t option
val of_suite : Bench.suite -> Bench.t list
val names : unit -> string list
