(* The Inspect benchmark, id 36 (paper §4.1): qsort_mt, the only buggy
   program found among the 29 Inspect benchmarks. *)

open Sct_core

(* 36. inspect.qsort_mt — multithreaded quicksort: the main thread hands a
   half of the array to each worker and watches a racy completion counter;
   a worker publishes completion before its final element is in place, so
   the main thread can observe "done" and read a half-sorted array. *)
let qsort_mt () =
  let data = [| 5; 3; 7; 1; 8; 2; 6; 4 |] in
  let n = Array.length data in
  let arr = Sct.Arr.make ~name:"qsort_arr" n 0 in
  Array.iteri (fun i x -> Sct.Arr.set arr i x) data;
  let completed = Sct.Var.make ~name:"qsort_done" 0 in
  let half = n / 2 in
  (* insertion-sort a segment, but publish completion before the last
     element settles: the seeded racy work-counter protocol of qsort_mt *)
  let sort_segment lo hi =
    for i = lo + 1 to hi do
      let x = Sct.Arr.get arr i in
      (* BUG: completion is published before the final element is even
         shifted into place, widening the half-sorted window *)
      if i = hi then Sct.Var.write completed (Sct.Var.read completed + 1);
      let j = ref (i - 1) in
      while !j >= lo && Sct.Arr.get arr !j > x do
        Sct.Arr.set arr (!j + 1) (Sct.Arr.get arr !j);
        decr j
      done;
      Sct.Arr.set arr (!j + 1) x
    done
  in
  let w1 = Sct.spawn (fun () -> sort_segment 0 (half - 1)) in
  let w2 = Sct.spawn (fun () -> sort_segment half (n - 1)) in
  (* main polls the racy counter instead of joining *)
  let polls = ref 0 in
  let ready = ref false in
  while (not !ready) && !polls < 6 do
    incr polls;
    if Sct.Var.read completed = 2 then ready := true else Sct.yield ()
  done;
  if !ready then begin
    for i = 1 to half - 1 do
      Sct.check
        (Sct.Arr.get arr (i - 1) <= Sct.Arr.get arr i)
        "left half unsorted at completion"
    done;
    for i = half + 1 to n - 1 do
      Sct.check
        (Sct.Arr.get arr (i - 1) <= Sct.Arr.get arr i)
        "right half unsorted at completion"
    done;
    (* content check: an element still in flight when completion was
       published leaves a duplicated (sorted-looking) array *)
    let expected = Array.fold_left ( + ) 0 data in
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + Sct.Arr.get arr i
    done;
    Sct.check (!total = expected) "array contents corrupted at completion"
  end;
  Sct.join w1;
  Sct.join w2

let entries =
  [
    Bench.entry ~id:36 ~suite:Bench.Inspect ~name:"qsort_mt"
      ~description:
        "Multithreaded quicksort: completion counter published before the \
         final element is placed; main observes a half-sorted array."
      ~paper:
        (Bench.paper_row ~threads:3 ~max_enabled:3 ~ipb:1 ~idb:1 ~dfs:false
           ~rand:true ~maple:false ())
      ~expect_ipb:2 ~expect_idb:2 qsort_mt;
  ]
