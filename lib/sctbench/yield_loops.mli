(** The yield-loop family (study extension, ids 52..54): spin/yield loops
    that plain systematic exploration drowns in and fair/length bounding
    tame. See the implementation for per-benchmark mechanism notes. *)

val entries : Bench.t list
(** The registry entries this suite contributes. *)
