(* The CB (Concurrency Bugs, Yu & Narayanasamy) benchmarks, ids 0..2
   (paper §4.1). The paper modelled aget's network functions to read from a
   file and called its interrupt handler asynchronously; we model the same
   structure: downloader threads, an asynchronous interrupt, and an output
   check run at the end (paper §4.2, "output checking"). *)

open Sct_core

let v = Sct.Var.make

(* 0. CB.aget-bug2 — aget is a segmented file downloader; on interrupt it
   saves per-segment resume offsets. Bug 2: the signal handler saves the
   shared byte counter while segment threads are still adding to it, so the
   saved resume state under-counts and the "downloaded" file is corrupt
   (incorrect output, checked by an added assertion). The initial
   round-robin schedule already interleaves the interrupt before the
   downloads complete. *)
let aget_bug2 () =
  let segments = 2 and chunks = 3 in
  let total = segments * chunks in
  let file = Sct.Arr.make ~name:"aget_file" total 0 in
  let bytes_done = v ~name:"aget_bwritten" 0 in
  let saved = v ~name:"aget_saved" (-1) in
  let interrupted = v ~name:"aget_intr" false in
  (* The asynchronous SIGINT handler (delivered first, as a signal can be):
     snapshot progress and stop the segment threads. *)
  let handler =
    Sct.spawn (fun () ->
        Sct.Var.write saved (Sct.Var.read bytes_done);
        Sct.Var.write interrupted true)
  in
  let downloaders =
    List.init segments (fun s ->
        Sct.spawn (fun () ->
            let quit = ref false in
            let c = ref 0 in
            while (not !quit) && !c < chunks do
              (* the in-flight write completes before the signal check... *)
              Sct.Arr.set file ((s * chunks) + !c) 1;
              if Sct.Var.read interrupted then
                (* ...so an interrupt here loses the chunk from the saved
                   resume offset: the bug *)
                quit := true
              else begin
                Sct.Var.write bytes_done (Sct.Var.read bytes_done + 1);
                incr c
              end
            done))
  in
  List.iter Sct.join downloaders;
  Sct.join handler;
  (* Output check (supplied as a separate program in the original): the
     resume offset must cover every byte actually present in the file. *)
  let written = ref 0 in
  for i = 0 to total - 1 do
    if Sct.Arr.get file i = 1 then incr written
  done;
  Sct.check (Sct.Var.read saved >= !written) "aget: resume offset loses data"

(* 1. CB.pbzip2-0.9.4 — parallel bzip2: the main thread destroys the queue
   mutex after the producer signals completion, while a consumer may still
   be about to use it. Detected as a use of a destroyed synchronisation
   object (paper §4.2: "out-of-bound accesses to synchronisation objects
   ... proved useful in pbzip2"). *)
let pbzip2 () =
  let blocks = 2 in
  let fifo_mut = Sct.Mutex.create () in
  let queue = v ~name:"pbzip_queue" 0 in
  let all_done = v ~name:"pbzip_done" false in
  let consumers =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            let quit = ref false in
            let attempts = ref 0 in
            while (not !quit) && !attempts < 4 do
              incr attempts;
              if Sct.Var.read all_done then quit := true
              else begin
                Sct.Mutex.lock fifo_mut;
                let q = Sct.Var.read queue in
                if q > 0 then Sct.Var.write queue (q - 1);
                Sct.Mutex.unlock fifo_mut
              end
            done))
  in
  let producer =
    Sct.spawn (fun () ->
        for _ = 1 to blocks do
          Sct.Mutex.lock fifo_mut;
          Sct.Var.write queue (Sct.Var.read queue + 1);
          Sct.Mutex.unlock fifo_mut
        done;
        Sct.Var.write all_done true)
  in
  Sct.join producer;
  (* BUG: consumers are not joined before the queue state is torn down. *)
  Sct.Mutex.destroy fifo_mut;
  List.iter Sct.join consumers

(* 2. CB.stringbuffer-jdk1.4 — the classic JDK 1.4 StringBuffer.append
   atomicity violation: append(sb) reads sb's length, then copies that many
   characters; a concurrent delete shrinks sb in between and the copy runs
   out of bounds. The deleting thread appends afterwards, so the bug needs
   the deleter to be preempted too: two preemptions in total, as in the
   paper. *)
let stringbuffer_jdk14 () =
  let cap = 8 in
  let sb_chars = Sct.Arr.make ~name:"sb_chars" cap 0 in
  let sb_count = v ~name:"sb_count" 4 in
  for i = 0 to 3 do
    Sct.Arr.set sb_chars i (i + 1)
  done;
  let out_chars = Sct.Arr.make ~name:"out_chars" cap 0 in
  let out_count = v ~name:"out_count" 0 in
  let appender =
    Sct.spawn (fun () ->
        (* StringBuffer.append(sb): length is read without holding sb's
           lock for the whole copy *)
        let len = Sct.Var.read sb_count in
        let base = Sct.Var.read out_count in
        for i = 0 to len - 1 do
          let c = Sct.Arr.get sb_chars i in
          Sct.check (c <> 0) "append copied a deleted character";
          Sct.Arr.set out_chars (base + i) c
        done;
        Sct.Var.write out_count (base + len))
  in
  (* delete(0, count) then append one character: the count is cleared
     before the characters (so a torn length read alone is harmless), and
     the deleter has trailing work, so the buggy interleaving needs the
     appender AND the deleter each preempted once. *)
  let n = Sct.Var.read sb_count in
  Sct.Var.write sb_count 0;
  for i = 0 to n - 1 do
    Sct.Arr.set sb_chars i 0
  done;
  Sct.Arr.set sb_chars 0 7;
  Sct.Var.write sb_count 1;
  Sct.join appender

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.CB

let entries =
  [
    e ~id:0 ~name:"aget-bug2"
      ~description:
        "aget downloader: the interrupt handler snapshots the shared \
         progress counter racily; the saved resume offset loses data \
         (incorrect-output assertion)."
      ~paper:(row ~threads:4 ~max_enabled:3 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 aget_bug2;
    e ~id:1 ~name:"pbzip2-0.9.4"
      ~description:
        "pbzip2: main destroys the FIFO mutex while a consumer can still \
         lock it (use of a destroyed synchronisation object)."
      ~paper:(row ~threads:4 ~max_enabled:4 ~ipb:0 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:1 pbzip2;
    e ~id:2 ~name:"stringbuffer-jdk1.4"
      ~description:
        "JDK 1.4 StringBuffer append/delete atomicity violation: length \
         read and copy are separable; needs two preemptions."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:2 ~idb:2 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:2 ~expect_idb:2 stringbuffer_jdk14;
  ]
