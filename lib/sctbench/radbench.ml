(* The RADBench benchmarks, ids 43..48 (paper §4.1): bugs in Mozilla
   SpiderMonkey and the Netscape Portable Runtime (NSPR) thread package.
   Each model preserves the documented bug mechanism and, crucially, the
   *reachability profile* of the paper's Table 3 row: which techniques
   expose it within the schedule limit. *)

open Sct_core

let v = Sct.Var.make

(* Busy visible work used to give the SpiderMonkey models their large
   scheduling-point counts: racy shared-cell updates when the cell is
   shared, pure scheduling points (yields) otherwise. *)
let churn cell rounds =
  for i = 1 to rounds do
    Sct.Var.write cell (Sct.Var.read cell + i)
  done

let busy rounds =
  for _ = 1 to rounds do
    Sct.yield ()
  done

(* 43. radbench.bug1 — SpiderMonkey: a thread destroys the runtime's hash
   table while another thread is between its liveness check and its access.
   The destroyer is created before the user thread, so the bug needs two
   delays (park the destroyer, then park the user inside its window), and
   the enormous number of scheduling points from the JS workload pushes the
   buggy combination beyond any technique's 10,000-schedule horizon. *)
let bug1 () =
  let table_alive = v ~name:"bug1_alive" true in
  let entries = Sct.Arr.make ~name:"bug1_entries" 4 1 in
  let destroyer =
    Sct.spawn (fun () ->
        (* runtime shutdown work, then clear and free the table; the prefix
           means the destruction happens early in the default schedule, so
           the user's liveness check only ever sees a live table if the
           destroyer was parked — and the crash additionally needs the user
           parked inside its check-to-access window: two delays. *)
        busy 10;
        Sct.Var.write table_alive false;
        for i = 0 to 3 do
          Sct.Arr.set entries i 0
        done)
  in
  let user =
    Sct.spawn (fun () ->
        (* request-processing prefix: under uncontrolled scheduling the
           destroyer has long finished by the time the table is touched *)
        busy 80;
        if Sct.Var.read table_alive then begin
          let x = Sct.Arr.get entries 0 in
          Sct.check (x <> 0) "bug1: access to a destroyed hash table"
        end;
        (* the rest of the JS workload: a long tail of visible operations *)
        busy 320)
  in
  let gc = Sct.spawn (fun () -> busy 400) in
  Sct.join destroyer;
  Sct.join user;
  Sct.join gc

(* 44. radbench.bug2 — NSPR monitor bug needing exactly three preemptions
   with two threads (the paper's deepest systematically-found bug; with two
   threads IPB and IDB coincide). The main thread must observe the worker's
   state variable at 1 and then at 2, which requires entering and leaving
   the worker's update sequence twice while both threads stay enabled. *)
let bug2 () =
  let state = v ~name:"bug2_state" 0 in
  let noise = v ~name:"bug2_noise" 0 in
  let worker =
    Sct.spawn (fun () ->
        (* monitor-internal work precedes the state transitions, so the
           observer must (1) let the worker run, (2) stop it between the
           writes, and (3) pause itself between its reads: three
           preemptions, none of them free. *)
        churn noise 4;
        Sct.Var.write state 1;
        Sct.Var.write state 2)
  in
  let a = Sct.Var.read state in
  let b = Sct.Var.read state in
  Sct.check
    (not (a = 1 && b = 2))
    "bug2: monitor observed both intermediate states";
  churn noise 4;
  Sct.join worker

(* 45. radbench.bug3 — an NSPR test whose assertion is wrong on every
   schedule (found on the first schedule by everything). *)
let bug3 () =
  let m = Sct.Mutex.create () in
  let counter = v ~name:"bug3_counter" 0 in
  let ts =
    List.init 2 (fun _ ->
        Sct.spawn (fun () ->
            for _ = 1 to 20 do
              Sct.Mutex.lock m;
              Sct.Var.write counter (Sct.Var.read counter + 1);
              Sct.Mutex.unlock m
            done))
  in
  List.iter Sct.join ts;
  Sct.check (Sct.Var.read counter = 41) "bug3: wrong expected count"

(* 46. radbench.bug4 — a shared NSPR lock is lazily initialised by two
   threads at once without synchronisation; both enter the critical section
   and the second release finds the lock already unlocked (the paper's
   "double-unlock or similar error"). Needs two delays — one to hold the
   first thread in its init window, one to hold the second before its
   release — and has enough scheduling points that bound 2 exceeds the
   schedule limit, leaving the bug to the random scheduler. *)
let bug4 () =
  let initialized = v ~name:"bug4_inited" false in
  let locked = v ~name:"bug4_locked" 0 in
  let work = v ~name:"bug4_work" 0 in
  let use_lazy_lock () =
    busy 20;
    (* PR_CallOnce without synchronisation: *)
    if not (Sct.Var.read initialized) then Sct.Var.write initialized true
    else ();
    (* acquire the (supposedly) initialised lock: a racy hand-over-hand
       spin that both initialisers can pass simultaneously *)
    let got = ref false in
    let tries = ref 0 in
    while (not !got) && !tries < 2 do
      incr tries;
      if Sct.Var.read locked = 0 then begin
        Sct.Var.write locked 1;
        got := true
      end
      else Sct.yield ()
    done;
    if !got then begin
      Sct.Var.write work (Sct.Var.read work + 1);
      (* release *)
      Sct.check (Sct.Var.read locked = 1) "bug4: double unlock";
      Sct.Var.write locked 0
    end;
    busy 110
  in
  let t1 = Sct.spawn (fun () -> use_lazy_lock ()) in
  let t2 = Sct.spawn (fun () -> use_lazy_lock ()) in
  Sct.join t1;
  Sct.join t2

(* 47. radbench.bug5 — SpiderMonkey: a worker uses a context field before
   the early-created initialiser publishes it. Reaching the read-before-
   write reversal means starving the initialiser's very first operation
   past five other threads' long runs — a high delay/preemption count and a
   tiny random probability, but exactly the single inter-thread-order
   reversal that Maple's idiom forcing constructs directly (the paper:
   MapleAlg alone finds it, after 14 schedules). *)
let bug5 () =
  (* The shared JS context is published in two parts very early in the
     initialiser's run; a gated request thread later asserts it is not
     torn. A pure completion ordering cannot tear it (it sees (0,0) or
     (1,1)), so the bug needs the initialiser parked between the two writes
     — buried under six threads' worth of scheduling points for IPB/IDB,
     invisible to Rand, but exactly the inter-thread reversal that Maple's
     idiom forcing constructs. *)
  let ctx_a = v ~name:"bug5_ctx_a" 0 in
  let ctx_b = v ~name:"bug5_ctx_b" 0 in
  let gate = Sct.Sem.create 0 in
  (* creation order: noise, writer, gated reader, more noise, poster *)
  let n0 = Sct.spawn (fun () -> busy 100) in
  let writer =
    Sct.spawn (fun () ->
        busy 6;
        Sct.Var.write ctx_a 1;
        busy 2;
        Sct.Var.write ctx_b 1;
        busy 100)
  in
  let reader =
    Sct.spawn (fun () ->
        (* woken by the request dispatcher, then uses the context *)
        Sct.Sem.wait gate;
        let a = Sct.Var.read ctx_a in
        let b = Sct.Var.read ctx_b in
        Sct.check (a = b) "bug5: torn context observed")
  in
  let n1 = Sct.spawn (fun () -> busy 100) in
  let n2 = Sct.spawn (fun () -> busy 100) in
  let poster =
    Sct.spawn (fun () ->
        busy 100;
        Sct.Sem.post gate)
  in
  Sct.join n0;
  Sct.join writer;
  Sct.join reader;
  Sct.join n1;
  Sct.join n2;
  Sct.join poster

(* 48. radbench.bug6 — NSPR: a monitor's notification counter is read twice
   without the lock; a burst of updates between the two reads breaks the
   monotonicity the caller relies on. One preemption suffices, but the long
   tails of visible operations keep depth-first search away from the early
   window. *)
let bug6 () =
  let counter = v ~name:"bug6_counter" 0 in
  (* a second NSPR worker whose long run gives depth-first search a deep
     lattice of late context switches to drown in *)
  let other = Sct.spawn (fun () -> busy 25) in
  let updater =
    Sct.spawn (fun () ->
        for _ = 1 to 3 do
          Sct.Var.write counter (Sct.Var.read counter + 1)
        done)
  in
  let c1 = Sct.Var.read counter in
  let c2 = Sct.Var.read counter in
  Sct.check (c2 - c1 <= 1) "bug6: notification counter jumped";
  busy 25;
  Sct.join updater;
  Sct.join other

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.Radbench

let entries =
  [
    e ~id:43 ~name:"bug1"
      ~description:
        "SpiderMonkey hash table destroyed under a concurrent user; two \
         delays hidden behind thousands of scheduling points: no technique \
         finds it."
      ~paper:(row ~threads:4 ~max_enabled:3 ~dfs:false ~rand:false ~maple:false ())
      bug1;
    e ~id:44 ~name:"bug2"
      ~description:
        "NSPR monitor bug needing three preemptions with two threads; \
         IPB and IDB explore identical schedules."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:3 ~idb:3 ~dfs:false ~rand:true ~maple:false ())
      ~expect_ipb:3 ~expect_idb:3 bug2;
    e ~id:45 ~name:"bug3"
      ~description:"NSPR test with an always-wrong assertion."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 bug3;
    e ~id:46 ~name:"bug4"
      ~description:
        "Lazily double-initialised NSPR lock: both threads enter the \
         critical section; double unlock. Two delays, drowned by \
         scheduling points: only the random scheduler finds it."
      ~paper:(row ~threads:3 ~max_enabled:3 ~dfs:false ~rand:true ~maple:true ())
      bug4;
    e ~id:47 ~name:"bug5"
      ~description:
        "Context used before initialisation; the reversal requires \
         starving the early initialiser: found only by idiom forcing \
         (MapleAlg)."
      ~paper:(row ~threads:7 ~max_enabled:3 ~dfs:false ~rand:false ~maple:true ())
      bug5;
    e ~id:48 ~name:"bug6"
      ~description:
        "Monitor notification counter read twice without the lock; a \
         burst between the reads breaks monotonicity (one preemption)."
      ~paper:(row ~threads:3 ~max_enabled:3 ~ipb:1 ~idb:1 ~dfs:false ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1 bug6;
  ]
