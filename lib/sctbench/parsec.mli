(** See the implementation for per-benchmark origin and bug-mechanism
    notes. *)

val entries : Bench.t list
(** The registry entries this suite contributes. *)
