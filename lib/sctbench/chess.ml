(* The CHESS benchmarks, ids 32..35 (paper §4.1): four versions of the
   Cilk-style WorkStealQueue used to evaluate CHESS and preemption bounding
   in prior work. One parametric THE-protocol deque carries the per-variant
   seeded defects:

   - WSQ    (35): locked steal; the owner's fast-path pop compares against a
                  stale head read before the tail decrement — a thief
                  slipping its whole (locked) steal into that window makes
                  owner and thief take the same element (two preemptions).
   - SWSQ   (34): "simple" variant — the owner's pop has no conflict path at
                  all, so a single delay at the boundary double-takes; the
                  large workload drowns preemption bounding at bound 1.
   - IWSQ   (32): interlocked (CAS) steal; the owner's boundary path forgot
                  the interlock on head — needs the thief parked mid-steal
                  as well (two delays).
   - IWSQWS (33): IWSQ under a steal-heavy workload whose final steal is the
                  thief's last action, lowering the delay bound to one.

   Each taken element is marked in a 'seen' table; taking an element twice
   (or losing one) fails the assertion, as in the original test harness. *)

open Sct_core

type variant = WSQ | SWSQ | IWSQ | IWSQWS

type queue = {
  elems : int Sct.Arr.t;
  head : int Sct.Atomic.t;
  tail : int Sct.Atomic.t;
  lock : Sct.Mutex.t;
  cap : int;
}

let make_queue name cap =
  {
    elems = Sct.Arr.make ~name:(name ^ "_elems") cap 0;
    head = Sct.Atomic.make ~name:(name ^ "_head") 0;
    tail = Sct.Atomic.make ~name:(name ^ "_tail") 0;
    lock = Sct.Mutex.create ();
    cap;
  }

let push q x =
  let t = Sct.Atomic.load q.tail in
  Sct.Arr.set q.elems (t mod q.cap) x;
  Sct.Atomic.store q.tail (t + 1)

(* Owner-side pop, per variant.

   WSQ:  the fast path admits the one-element boundary but compares against
         a head value read BEFORE the tail decrement — a thief completing
         its whole locked steal inside that window makes owner and thief
         take the same element (the original CHESS seeded bug, two
         preemptions). The conflict path itself is sound (takes the lock).
   SWSQ: the fast path admits the boundary with a fresh head read and there
         is no conflict path at all — a thief interposed between the head
         read and the element read double-takes (one delay).
   IWSQ / IWSQWS: the fast path is sound (strict inequality), but the
         boundary path reads head without the interlock the CAS-based thief
         relies on. *)
let pop ~variant q =
  let h0 = Sct.Atomic.load q.head in
  let t = Sct.Atomic.load q.tail - 1 in
  Sct.Atomic.store q.tail t;
  let take () = Some (Sct.Arr.get q.elems (t mod q.cap)) in
  let restore () =
    Sct.Atomic.store q.tail (t + 1);
    None
  in
  match variant with
  | WSQ ->
      if h0 <= t then take () (* BUG: h0 is stale at the boundary *)
      else begin
        Sct.Mutex.lock q.lock;
        let h2 = Sct.Atomic.load q.head in
        let r = if h2 <= t then take () else restore () in
        Sct.Mutex.unlock q.lock;
        r
      end
  | SWSQ ->
      let h = Sct.Atomic.load q.head in
      if h <= t then take () (* BUG: boundary without any serialisation *)
      else restore ()
  | IWSQ | IWSQWS ->
      let h = Sct.Atomic.load q.head in
      if h < t then take ()
      else begin
        (* BUG: boundary read of head without the interlock *)
        let h2 = Sct.Atomic.load q.head in
        if h2 <= t then take () else restore ()
      end

let steal ~variant q =
  match variant with
  | WSQ | SWSQ ->
      Sct.Mutex.lock q.lock;
      let h = Sct.Atomic.load q.head in
      let t = Sct.Atomic.load q.tail in
      let r =
        if h < t then begin
          let x = Sct.Arr.get q.elems (h mod q.cap) in
          Sct.Atomic.store q.head (h + 1);
          Some x
        end
        else None
      in
      Sct.Mutex.unlock q.lock;
      r
  | IWSQ | IWSQWS ->
      let h = Sct.Atomic.load q.head in
      let t = Sct.Atomic.load q.tail in
      if h < t then begin
        let x = Sct.Arr.get q.elems (h mod q.cap) in
        if Sct.Atomic.compare_and_set q.head h (h + 1) then Some x else None
      end
      else None

let wsq_bench ~variant ~name ~items ~steals () =
  let q = make_queue name (items + 4) in
  let seen = Sct.Arr.make ~name:(name ^ "_seen") (items + 1) 0 in
  (* Separate single-writer tallies: the harness bookkeeping must not
     itself be a concurrency bug. *)
  let owner_got = Sct.Var.make ~name:(name ^ "_owner_got") 0 in
  let thief_got = Sct.Var.make ~name:(name ^ "_thief_got") 0 in
  let consume counter x =
    Sct.check (Sct.Arr.get seen x = 0) "work item taken twice";
    Sct.Arr.set seen x 1;
    Sct.Var.write counter (Sct.Var.read counter + 1)
  in
  let owner =
    Sct.spawn (fun () ->
        for x = 1 to items do
          push q x
        done;
        for _ = 1 to items do
          match pop ~variant q with
          | Some x -> consume owner_got x
          | None -> ()
        done)
  in
  let thief =
    Sct.spawn (fun () ->
        for _ = 1 to steals do
          match steal ~variant q with
          | Some x -> consume thief_got x
          | None -> ()
        done)
  in
  Sct.join owner;
  Sct.join thief;
  Sct.check
    (Sct.Var.read owner_got + Sct.Var.read thief_got = items)
    "work items lost or duplicated"

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.CHESS

let entries =
  [
    e ~id:32 ~name:"IWSQ"
      ~description:
        "Interlocked work-stealing queue: owner's boundary pop forgot the \
         interlock against the CAS-based thief (two delays)."
      ~paper:(row ~threads:3 ~max_enabled:3 ~idb:2 ~dfs:false ~rand:true ~maple:false ())
      ~expect_idb:2
      (wsq_bench ~variant:IWSQ ~name:"iwsq" ~items:8 ~steals:5);
    e ~id:33 ~name:"IWSQWS"
      ~description:
        "IWSQ under a steal-heavy workload: the thief keeps contending \
         across the whole run."
      ~paper:(row ~threads:3 ~max_enabled:3 ~idb:1 ~dfs:false ~rand:true ~maple:false ())
      ~expect_idb:2
      (wsq_bench ~variant:IWSQWS ~name:"iwsqws" ~items:16 ~steals:10);
    e ~id:34 ~name:"SWSQ"
      ~description:
        "Simple work-stealing queue with no boundary handling in pop; the \
         large workload pushes both bounding techniques deep into bound 2."
      ~paper:(row ~threads:3 ~max_enabled:3 ~idb:1 ~dfs:false ~rand:true ~maple:false ())
      ~expect_idb:2
      (wsq_bench ~variant:SWSQ ~name:"swsq" ~items:48 ~steals:28);
    e ~id:35 ~name:"WSQ"
      ~description:
        "THE-protocol queue whose fast-path pop uses a stale head: a \
         locked steal interleaved with the pop window double-takes."
      ~paper:(row ~threads:3 ~max_enabled:3 ~ipb:2 ~idb:2 ~dfs:false ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1
      (wsq_bench ~variant:WSQ ~name:"wsq" ~items:24 ~steals:12);
  ]
