type suite =
  | CB
  | CHESS
  | CS
  | Inspect
  | Misc
  | Parsec
  | Radbench
  | Splash2
  | Yield
  | Corpus

let suite_name = function
  | CB -> "CB"
  | CHESS -> "chess"
  | CS -> "CS"
  | Inspect -> "inspect"
  | Misc -> "misc"
  | Parsec -> "parsec"
  | Radbench -> "radbench"
  | Splash2 -> "splash2"
  | Yield -> "yield"
  | Corpus -> "corpus"

let suite_of_name s =
  match String.lowercase_ascii s with
  | "cb" -> Some CB
  | "chess" -> Some CHESS
  | "cs" -> Some CS
  | "inspect" -> Some Inspect
  | "misc" -> Some Misc
  | "parsec" -> Some Parsec
  | "radbench" -> Some Radbench
  | "splash2" | "splash" -> Some Splash2
  | "yield" -> Some Yield
  | "corpus" -> Some Corpus
  | _ -> None

type paper_row = {
  p_threads : int;
  p_max_enabled : int;
  p_ipb_bound : int option;
  p_idb_bound : int option;
  p_dfs_found : bool;
  p_rand_found : bool;
  p_maple_found : bool;
}

type t = {
  id : int;
  suite : suite;
  name : string;
  program : unit -> unit;
  description : string;
  paper : paper_row;
  expect_ipb : int option;
  expect_idb : int option;
}

let qualified_name suite name = suite_name suite ^ "." ^ name

let paper_row ~threads ~max_enabled ?ipb ?idb ~dfs ~rand ~maple () =
  {
    p_threads = threads;
    p_max_enabled = max_enabled;
    p_ipb_bound = ipb;
    p_idb_bound = idb;
    p_dfs_found = dfs;
    p_rand_found = rand;
    p_maple_found = maple;
  }

let entry ~id ~suite ~name ~description ~paper ?expect_ipb ?expect_idb program
    =
  {
    id;
    suite;
    name = qualified_name suite name;
    program;
    description;
    paper;
    expect_ipb;
    expect_idb;
  }

type skip = { s_suite : suite; s_count : int; s_reason : string }

(* Table 1's "# skipped" column, encoded as data. *)
let table1_skips =
  [
    { s_suite = CB; s_count = 17; s_reason = "networked applications" };
    { s_suite = CHESS; s_count = 0; s_reason = "" };
    { s_suite = CS; s_count = 24; s_reason = "were non-buggy" };
    { s_suite = Inspect; s_count = 28; s_reason = "were non-buggy" };
    { s_suite = Misc; s_count = 0; s_reason = "" };
    { s_suite = Parsec; s_count = 29; s_reason = "were non-buggy" };
    {
      s_suite = Radbench;
      s_count = 9;
      s_reason = "5 Chromium browser; 4 networking";
    };
    { s_suite = Splash2; s_count = 9; s_reason = "same missing-join bug" };
  ]

let table1_types = function
  | CB -> "Test cases for real applications"
  | CHESS -> "Test cases for several versions of a work stealing queue"
  | CS -> "Small test cases and some small programs"
  | Inspect -> "Small test cases and some small programs"
  | Misc -> "Test case for lock-free stack and a debugging library test case"
  | Parsec -> "Parallel workloads"
  | Radbench -> "Tests cases for real applications"
  | Splash2 -> "Parallel workloads"
  | Yield -> "Spin/yield-loop test cases for fair and length bounding"
  | Corpus -> "Mined extension suite (generated programs promoted by corpus)"
