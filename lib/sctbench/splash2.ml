(* The SPLASH-2 benchmarks, ids 49..51 (paper §4.1).

   The bugs all stem from a macro set that omits the WAIT-for-termination
   macro: the initial thread finishes the last phase and reads the results
   without waiting for the worker. The paper added assertions that all
   threads have terminated as expected, and reduced input parameters so the
   kernels complete quickly — we model exactly that: a two-thread kernel
   alternating barrier-separated phases over a shared grid, with the
   worker's termination flag checked (without a join) by the main thread.

   With an odd number of barriers the deterministic round-robin schedule is
   safe, and one delay at the final barrier release exposes the bug — all
   systematic techniques find these bugs on the second schedule, as in
   Table 3. *)

open Sct_core

let kernel ~name ~phases ~cells () =
  let grid = Sct.Arr.make ~name:(name ^ "_grid") (2 * cells) 0 in
  let done_flag = Sct.Var.make ~name:(name ^ "_done") false in
  let b = Sct.Barrier.create 2 in
  let work me phase =
    for i = 0 to cells - 1 do
      let mine = (me * cells) + i in
      let theirs = (((me + 1) mod 2) * cells) + i in
      (* read the neighbour's previous-phase cell, update our own: the
         cross-thread reads are the (benign) data races of the original *)
      let x = if phase = 0 then 0 else Sct.Arr.get grid theirs in
      Sct.Arr.set grid mine (x + phase + i)
    done
  in
  let worker =
    Sct.spawn (fun () ->
        for p = 0 to phases - 1 do
          work 1 p;
          Sct.Barrier.wait b
        done;
        Sct.Var.write done_flag true)
  in
  ignore worker;
  for p = 0 to phases - 1 do
    work 0 p;
    Sct.Barrier.wait b
  done;
  (* BUG: the WAIT macro is missing — no join before using the results. *)
  Sct.check (Sct.Var.read done_flag) "worker had not terminated at output time"

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.Splash2

let entries =
  [
    e ~id:49 ~name:"barnes"
      ~description:
        "Barnes-Hut with reduced particle count; missing WAIT macro: main \
         reads results before the worker terminates."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1
      (kernel ~name:"barnes" ~phases:3 ~cells:6);
    e ~id:50 ~name:"fft"
      ~description:
        "FFT kernel with reduced matrix; missing WAIT macro (see barnes)."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 (kernel ~name:"fft" ~phases:1 ~cells:4);
    e ~id:51 ~name:"lu"
      ~description:
        "LU decomposition with reduced matrix; missing WAIT macro (see \
         barnes)."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 (kernel ~name:"lu" ~phases:1 ~cells:3);
  ]
