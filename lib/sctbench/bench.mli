(** The SCTBench benchmark registry (paper §4).

    Each entry is an OCaml reimplementation of one of the 52 publicly
    available buggy concurrent benchmarks, preserving the thread structure,
    synchronisation pattern, and bug mechanism of the original. The paper's
    Table 3 row for the benchmark is carried alongside, so the benches can
    report paper-vs-measured shape agreement. *)

(** [Yield] is the yield-loop extension family ({!Yield_loops}): spin/yield
    programs exercising fair and length bounding. [Corpus] is the mined
    extension suite: entries promoted by the [Sct_corpus] factory rather
    than reimplemented from SCTBench. Neither appears in Table 1 (which
    renders the paper's eight suites), and neither takes part in the
    paper-agreement report — their [paper_row]s record this model's own
    expectations. *)
type suite =
  | CB
  | CHESS
  | CS
  | Inspect
  | Misc
  | Parsec
  | Radbench
  | Splash2
  | Yield
  | Corpus

val suite_name : suite -> string
val suite_of_name : string -> suite option

(** The paper's Table 3 facts we compare against. [None] bounds mean the
    technique did not find the bug within the 10,000-schedule limit. *)
type paper_row = {
  p_threads : int;  (** "# threads" column *)
  p_max_enabled : int;  (** "# max enabled threads" column *)
  p_ipb_bound : int option;  (** bound at which IPB exposed the bug *)
  p_idb_bound : int option;
  p_dfs_found : bool;
  p_rand_found : bool;
  p_maple_found : bool;
}

type t = {
  id : int;  (** the paper's benchmark id (0..51) *)
  suite : suite;
  name : string;  (** qualified name, e.g. ["CS.account_bad"] *)
  program : unit -> unit;
      (** the program under test; creates all of its state inside the call,
          so repeated executions are independent *)
  description : string;  (** origin and bug mechanism *)
  paper : paper_row;
  expect_ipb : int option;
      (** smallest preemption bound exposing the bug in OUR model ([None] =
          not expected within the limit); asserted by the test suite *)
  expect_idb : int option;
}

val qualified_name : suite -> string -> string

val paper_row :
  threads:int ->
  max_enabled:int ->
  ?ipb:int ->
  ?idb:int ->
  dfs:bool ->
  rand:bool ->
  maple:bool ->
  unit ->
  paper_row
(** Shorthand for Table 3 rows; omitted [ipb]/[idb] mean "bug not found". *)

val entry :
  id:int ->
  suite:suite ->
  name:string ->
  description:string ->
  paper:paper_row ->
  ?expect_ipb:int ->
  ?expect_idb:int ->
  (unit -> unit) ->
  t
(** Build a registry entry; [name] is the unqualified benchmark name. *)

(** A skipped-benchmarks line of the paper's Table 1. *)
type skip = { s_suite : suite; s_count : int; s_reason : string }

val table1_skips : skip list
val table1_types : suite -> string
(** The "Benchmark types" column of Table 1. *)
