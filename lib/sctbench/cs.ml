(* The CS (Concurrency Software / ESBMC) benchmarks, ids 3..31 (paper §4.1).

   Each program preserves the original benchmark's thread structure and bug
   mechanism: check-then-act races, lock-order deadlocks, wrong-lock
   protection, lost signals, producer/consumer index races, and the
   adversarial reorder family that is the paper's Example 2. Inputs are
   small concrete values, as the paper chose for the unconstrained-input
   originals. *)

open Sct_core

let v = Sct.Var.make

(* 3. CS.account_bad — bank account with deposit/withdraw threads. The
   withdrawal thread asserts sufficient funds, which only holds if the
   deposit ran first: any non-preemptive schedule that orders the withdrawal
   before the deposit exposes the bug (paper: IPB finds it at bound 0, IDB
   needs one delay to skip past the deposit thread). *)
let account_bad () =
  let balance = v ~name:"balance" 0 in
  let m = Sct.Mutex.create () in
  let deposit =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        Sct.Var.write balance (Sct.Var.read balance + 300);
        Sct.Mutex.unlock m)
  in
  let withdraw =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        let b = Sct.Var.read balance in
        Sct.check (b >= 100) "withdrawal with insufficient funds";
        Sct.Var.write balance (b - 100);
        Sct.Mutex.unlock m)
  in
  let audit =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        ignore (Sct.Var.read balance);
        Sct.Mutex.unlock m)
  in
  Sct.join deposit;
  Sct.join withdraw;
  Sct.join audit

(* 4. CS.arithmetic_prog_bad — two threads sum an arithmetic progression
   under a lock; the final assertion uses an off-by-one closed form, so every
   schedule is buggy (paper: 100% of schedules buggy, found immediately). *)
let arithmetic_prog_bad () =
  let sum = v ~name:"sum" 0 in
  let m = Sct.Mutex.create () in
  let adder lo hi =
    Sct.spawn (fun () ->
        for i = lo to hi do
          Sct.Mutex.lock m;
          Sct.Var.write sum (Sct.Var.read sum + i);
          Sct.Mutex.unlock m
        done)
  in
  let t1 = adder 1 5 in
  let t2 = adder 6 10 in
  Sct.join t1;
  Sct.join t2;
  (* The correct total is 55; the original asserts the buggy closed form. *)
  Sct.check (Sct.Var.read sum = 54) "arithmetic progression total"

(* 5. CS.bluetooth_driver_bad — the classic Bluetooth driver model (Qadeer &
   Wu): the main thread is the request adder, a second thread stops the
   driver. One preemption between the stop-flag check and the pending-I/O
   increment lets the stopper complete, and the adder then touches a stopped
   driver. *)
let bluetooth_driver_bad () =
  let stopping_flag = v ~name:"stoppingFlag" false in
  let pending_io = v ~name:"pendingIo" 0 in
  let stopped = v ~name:"stoppingEvent" false in
  let stopper =
    Sct.spawn (fun () ->
        Sct.Var.write stopping_flag true;
        if Sct.Var.read pending_io = 0 then Sct.Var.write stopped true)
  in
  (if not (Sct.Var.read stopping_flag) then begin
     Sct.Var.write pending_io (Sct.Var.read pending_io + 1);
     (* perform I/O on the driver: it must not have been stopped *)
     Sct.check (not (Sct.Var.read stopped)) "I/O on stopped driver";
     Sct.Var.write pending_io (Sct.Var.read pending_io - 1)
   end);
  Sct.join stopper

(* 6. CS.carter01_bad — four worker threads over two locks, two of them
   taking the locks in opposite order: one preemption inside the first
   thread's lock window deadlocks the system. *)
let carter01_bad () =
  let a = Sct.Mutex.create () in
  let b = Sct.Mutex.create () in
  let work = v ~name:"carter_work" 0 in
  let ab () =
    Sct.Mutex.lock a;
    Sct.Mutex.lock b;
    Sct.Var.write work (Sct.Var.read work + 1);
    Sct.Mutex.unlock b;
    Sct.Mutex.unlock a
  in
  let ba () =
    Sct.Mutex.lock b;
    Sct.Mutex.lock a;
    Sct.Var.write work (Sct.Var.read work + 1);
    Sct.Mutex.unlock a;
    Sct.Mutex.unlock b
  in
  let noise () =
    Sct.Mutex.lock a;
    Sct.Var.write work (Sct.Var.read work + 1);
    Sct.Mutex.unlock a
  in
  let t1 = Sct.spawn ab in
  let t2 = Sct.spawn ba in
  let t3 = Sct.spawn noise in
  let t4 = Sct.spawn noise in
  Sct.join t1;
  Sct.join t2;
  Sct.join t3;
  Sct.join t4

(* 7. CS.circular_buffer_bad — producer/consumer over a circular buffer with
   unsynchronised indices. The seeded defect publishes the producer index
   before the element is written; a preemption in that window makes the
   consumer read an empty slot. *)
let circular_buffer_bad () =
  let size = 8 and items = 4 in
  let buffer = Sct.Arr.make ~name:"buffer" size 0 in
  let in_i = v ~name:"in" 0 in
  let out_i = v ~name:"out" 0 in
  let producer =
    Sct.spawn (fun () ->
        for i = 1 to items do
          let slot = Sct.Var.read in_i in
          (* BUG: index published before the data is stored. *)
          Sct.Var.write in_i (slot + 1);
          Sct.Arr.set buffer (slot mod size) i
        done)
  in
  let consumer =
    Sct.spawn (fun () ->
        let quit = ref false in
        let expected = ref 1 in
        while not !quit do
          let o = Sct.Var.read out_i in
          if o >= items then quit := true
          else if Sct.Var.read in_i > o then begin
            let got = Sct.Arr.get buffer (o mod size) in
            Sct.check (got = !expected) "receive out of order";
            incr expected;
            Sct.Var.write out_i (o + 1)
          end
          else quit := true (* buffer drained for now: give up *)
        done)
  in
  Sct.join producer;
  Sct.join consumer

(* 8. CS.deadlock01_bad — textbook lock-order deadlock between two
   threads. *)
let deadlock01_bad () =
  let a = Sct.Mutex.create () in
  let b = Sct.Mutex.create () in
  let counter = v ~name:"dl_counter" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock a;
        Sct.Mutex.lock b;
        Sct.Var.write counter (Sct.Var.read counter + 1);
        Sct.Mutex.unlock b;
        Sct.Mutex.unlock a)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock b;
        Sct.Mutex.lock a;
        Sct.Var.write counter (Sct.Var.read counter + 1);
        Sct.Mutex.unlock a;
        Sct.Mutex.unlock b)
  in
  Sct.join t1;
  Sct.join t2

(* 9-14. CS.din_philN_sat — N dining philosophers; the harness asserts that
   all meals happened without waiting for the philosophers (the "sat"
   defect), so the initial round-robin schedule is already buggy; interleaved
   fork acquisition additionally deadlocks. *)
let din_phil_sat n () =
  let forks = Array.init n (fun _ -> Sct.Mutex.create ()) in
  let meals = v ~name:"meals" 0 in
  for i = 0 to n - 1 do
    ignore
      (Sct.spawn (fun () ->
           Sct.Mutex.lock forks.(i);
           Sct.Mutex.lock forks.((i + 1) mod n);
           Sct.Var.write meals (Sct.Var.read meals + 1);
           Sct.Mutex.unlock forks.((i + 1) mod n);
           Sct.Mutex.unlock forks.(i)))
  done;
  (* BUG: no join before checking that everyone ate. *)
  Sct.check (Sct.Var.read meals = n) "all philosophers have eaten"

(* 15. CS.fsbench_bad — file-system stress: 27 workers write fixed-size
   journal records into a shared block array sized one record too small, so
   the last record overflows on every schedule (the out-of-bounds assertion
   the paper added by hand). *)
let fsbench_bad () =
  let workers = 27 and record = 2 in
  let blocks = Sct.Arr.make ~name:"blocks" ((workers * record) - 1) 0 in
  let m = Sct.Mutex.create () in
  let next = v ~name:"next_block" 0 in
  let ts =
    List.init workers (fun w ->
        Sct.spawn (fun () ->
            Sct.Mutex.lock m;
            let base = Sct.Var.read next in
            Sct.Var.write next (base + record);
            for j = 0 to record - 1 do
              Sct.Arr.set blocks (base + j) w
            done;
            Sct.Mutex.unlock m))
  in
  List.iter Sct.join ts

(* 16. CS.lazy01_bad — three lock-protected updates whose final combination
   trips the assertion on the initial schedule already. *)
let lazy01_bad () =
  let data = v ~name:"lazy_data" 0 in
  let m = Sct.Mutex.create () in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        Sct.Var.write data (Sct.Var.read data + 1);
        Sct.Mutex.unlock m)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        Sct.Var.write data (Sct.Var.read data + 2);
        Sct.Mutex.unlock m)
  in
  let t3 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        let d = Sct.Var.read data in
        Sct.Mutex.unlock m;
        Sct.check (d < 3) "lazy01 data overflow")
  in
  Sct.join t1;
  Sct.join t2;
  Sct.join t3

(* 17. CS.phase01_bad — a two-phase handshake whose final assertion encodes
   the wrong phase count: buggy on every schedule. *)
let phase01_bad () =
  let s = Sct.Sem.create 0 in
  let phase = v ~name:"phase" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write phase (Sct.Var.read phase + 1);
        Sct.Sem.post s)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Sem.wait s;
        Sct.Var.write phase (Sct.Var.read phase + 1))
  in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read phase = 3) "phase count"

(* 18. CS.queue_bad — lock-protected queue with a racy occupancy flag that
   is published before the element is enqueued: the consumer can observe
   occupancy without data. *)
let queue_bad () =
  let cap = 8 and items = 3 in
  let q = Sct.Arr.make ~name:"queue" cap 0 in
  let tail = v ~name:"q_tail" 0 in
  let head = v ~name:"q_head" 0 in
  let occupied = v ~name:"q_occupied" 0 in
  let m = Sct.Mutex.create () in
  let producer =
    Sct.spawn (fun () ->
        for i = 1 to items do
          (* BUG: occupancy published before the element exists. *)
          Sct.Var.write occupied (Sct.Var.read occupied + 1);
          Sct.Mutex.lock m;
          let t = Sct.Var.read tail in
          Sct.Arr.set q t i;
          Sct.Var.write tail (t + 1);
          Sct.Mutex.unlock m
        done)
  in
  let consumer =
    Sct.spawn (fun () ->
        let got = ref 0 in
        let attempts = ref 0 in
        while !got < items && !attempts < 2 * items do
          incr attempts;
          if Sct.Var.read occupied > 0 then begin
            Sct.Mutex.lock m;
            let h = Sct.Var.read head in
            Sct.check
              (Sct.Var.read tail > h)
              "dequeue from an empty queue";
            let x = Sct.Arr.get q h in
            Sct.check (x = !got + 1) "dequeued wrong element";
            Sct.Var.write head (h + 1);
            Sct.Mutex.unlock m;
            Sct.Var.write occupied (Sct.Var.read occupied - 1);
            incr got
          end
        done)
  in
  Sct.join producer;
  Sct.join consumer

(* 19-23. CS.reorder_X_bad — the adversarial delay-bounding family of the
   paper's Example 2: X-1 "setter" twins write a then b; one checker asserts
   it never observes a and b out of sync. The smallest delay bound grows
   with the twin count while one preemption always suffices. The harness
   does not join (as in the original), so thread-completion orderings blow
   up the zero-preemption schedule count for large X. *)
let reorder_bad x () =
  let a = v ~name:"reorder_a" 0 in
  let b = v ~name:"reorder_b" 0 in
  for _ = 1 to x - 1 do
    ignore
      (Sct.spawn (fun () ->
           Sct.Var.write a 1;
           Sct.Var.write b 1))
  done;
  ignore
    (Sct.spawn (fun () ->
         let va = Sct.Var.read a in
         let vb = Sct.Var.read b in
         Sct.check (va = vb) "observed a and b out of sync"))

(* 24. CS.stack_bad — push publishes the stack top before storing the
   element; a pop in that window reads an empty slot. *)
let stack_bad () =
  let cap = 8 and items = 3 in
  let stack = Sct.Arr.make ~name:"stack" cap 0 in
  let top = v ~name:"stack_top" 0 in
  let m = Sct.Mutex.create () in
  let pusher =
    Sct.spawn (fun () ->
        for i = 1 to items do
          Sct.Mutex.lock m;
          let t = Sct.Var.read top in
          (* BUG: top published before the element is stored. *)
          Sct.Var.write top (t + 1);
          Sct.Mutex.unlock m;
          Sct.Arr.set stack t i
        done)
  in
  let popper =
    Sct.spawn (fun () ->
        let attempts = ref 0 in
        while !attempts < items do
          incr attempts;
          if Sct.Var.read top > 0 then begin
            Sct.Mutex.lock m;
            let t = Sct.Var.read top - 1 in
            Sct.Var.write top t;
            Sct.Mutex.unlock m;
            let x = Sct.Arr.get stack t in
            Sct.check (x <> 0) "popped an unwritten element"
          end
        done)
  in
  Sct.join pusher;
  Sct.join popper

(* 25. CS.sync01_bad — condition-variable handshake; the final assertion is
   wrong on every schedule. *)
let sync01_bad () =
  let m = Sct.Mutex.create () in
  let c = Sct.Cond.create () in
  let num = v ~name:"sync_num" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        Sct.Var.write num (Sct.Var.read num + 1);
        Sct.Cond.signal c;
        Sct.Mutex.unlock m)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        while Sct.Var.read num = 0 do
          Sct.Cond.wait c m
        done;
        Sct.Mutex.unlock m)
  in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read num = 2) "sync01 final count"

(* 26. CS.sync02_bad — as sync01 with the producer/consumer roles swapped;
   again buggy on every schedule. *)
let sync02_bad () =
  let m = Sct.Mutex.create () in
  let c = Sct.Cond.create () in
  let ready = v ~name:"sync_ready" false in
  let data = v ~name:"sync_data" 0 in
  let waiter =
    Sct.spawn (fun () ->
        Sct.Mutex.lock m;
        while not (Sct.Var.read ready) do
          Sct.Cond.wait c m
        done;
        Sct.Mutex.unlock m;
        Sct.check (Sct.Var.read data = 2) "sync02 consumed value")
  in
  let setter =
    Sct.spawn (fun () ->
        Sct.Var.write data 1;
        Sct.Mutex.lock m;
        Sct.Var.write ready true;
        Sct.Cond.broadcast c;
        Sct.Mutex.unlock m)
  in
  Sct.join waiter;
  Sct.join setter

(* 27. CS.token_ring_bad — four threads forward a token x1->x2->x3->x4 by
   reading their predecessor's cell; only the creation-order ring produces
   the expected final token, and non-preemptive reorderings already break
   it. *)
let token_ring_bad () =
  let x = Array.init 5 (fun i -> v ~name:(Printf.sprintf "token_x%d" i) 0) in
  Sct.Var.write x.(0) 1;
  let forwarder i =
    Sct.spawn (fun () ->
        let t = Sct.Var.read x.(i - 1) in
        Sct.Var.write x.(i) (t + 1))
  in
  let ts = List.init 4 (fun i -> forwarder (i + 1)) in
  List.iter Sct.join ts;
  Sct.check (Sct.Var.read x.(4) = 5) "token failed to traverse the ring"

(* 29. CS.twostage_bad — the two-stage locking pattern: stage two of the
   first thread is observable separately from stage one; a reader between
   the stages sees half-updated state. *)
let twostage_bad () =
  let ma = Sct.Mutex.create () in
  let mb = Sct.Mutex.create () in
  let data1 = v ~name:"data1" 0 in
  let data2 = v ~name:"data2" 0 in
  let writer =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        Sct.Var.write data1 1;
        Sct.Mutex.unlock ma;
        Sct.Mutex.lock mb;
        Sct.Var.write data2 (Sct.Var.read data1 + 1);
        Sct.Mutex.unlock mb)
  in
  let reader =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        let t = Sct.Var.read data1 in
        Sct.Mutex.unlock ma;
        if t <> 0 then begin
          Sct.Mutex.lock mb;
          let u = Sct.Var.read data2 in
          Sct.Mutex.unlock mb;
          Sct.check (u = t + 1) "second stage lagging behind first"
        end)
  in
  Sct.join writer;
  Sct.join reader

(* 28. CS.twostage_100_bad — the same defect surrounded by 98 extra worker
   threads. The reader is created first (so the default schedule reads
   data1 before any stage ran and exits safely), the writer last with a
   long set-up prefix: reaching the inconsistency needs the reader parked
   from its first operation AND the writer parked inside its gap — two
   delays buried under a six-figure bound-2 level. Under the random
   scheduler the reader's single early read almost surely precedes the
   writer's late first stage, so the window is effectively invisible. *)
let twostage_n_bad extra () =
  let ma = Sct.Mutex.create () in
  let mb = Sct.Mutex.create () in
  let data1 = v ~name:"data1" 0 in
  let data2 = v ~name:"data2" 0 in
  let noise = v ~name:"noise" 0 in
  let reader =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        let t = Sct.Var.read data1 in
        Sct.Mutex.unlock ma;
        if t <> 0 then begin
          Sct.Mutex.lock mb;
          let u = Sct.Var.read data2 in
          Sct.Mutex.unlock mb;
          Sct.check (u = t + 1) "second stage lagging behind first"
        end)
  in
  let ts = ref [] in
  for _ = 1 to extra do
    ts :=
      Sct.spawn (fun () ->
          Sct.yield ();
          Sct.Mutex.lock ma;
          Sct.Var.write noise (Sct.Var.read noise + 1);
          Sct.Mutex.unlock ma;
          Sct.yield ())
      :: !ts
  done;
  let writer =
    Sct.spawn (fun () ->
        for _ = 1 to 40 do
          Sct.yield ()
        done;
        Sct.Mutex.lock ma;
        Sct.Var.write data1 1;
        Sct.Mutex.unlock ma;
        Sct.Mutex.lock mb;
        Sct.Var.write data2 (Sct.Var.read data1 + 1);
        Sct.Mutex.unlock mb)
  in
  Sct.join reader;
  List.iter Sct.join !ts;
  Sct.join writer

(* 30/31. CS.wronglock(_3)_bad — one thread protects the shared counter
   with lock A, the other workers with lock B: the read-modify-write windows
   overlap under one preemption and an update is lost. *)
let wronglock_bad nworkers () =
  let counter = v ~name:"wl_counter" 0 in
  let right = Sct.Mutex.create () in
  let wrong = Sct.Mutex.create () in
  let owner =
    Sct.spawn (fun () ->
        Sct.Mutex.lock right;
        let c = Sct.Var.read counter in
        Sct.Var.write counter (c + 1);
        Sct.Mutex.unlock right)
  in
  let ws =
    List.init nworkers (fun _ ->
        Sct.spawn (fun () ->
            Sct.Mutex.lock wrong;
            let c = Sct.Var.read counter in
            Sct.Var.write counter (c + 1);
            Sct.Mutex.unlock wrong))
  in
  Sct.join owner;
  List.iter Sct.join ws;
  Sct.check
    (Sct.Var.read counter = nworkers + 1)
    "update lost under wrong lock"

let row = Bench.paper_row
let e = Bench.entry ~suite:Bench.CS

let entries =
  [
    e ~id:3 ~name:"account_bad"
      ~description:
        "Bank account transfer: a withdrawal ordered before the deposit \
         finds insufficient funds (order bug, no preemption needed)."
      ~paper:(row ~threads:4 ~max_enabled:3 ~ipb:0 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:1 account_bad;
    e ~id:4 ~name:"arithmetic_prog_bad"
      ~description:
        "Arithmetic progression summed by two threads; wrong closed-form \
         assertion: buggy on every schedule."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 arithmetic_prog_bad;
    e ~id:5 ~name:"bluetooth_driver_bad"
      ~description:
        "Qadeer/Wu Bluetooth driver: stop-flag check-then-act race lets the \
         stopper halt the driver under a pending request."
      ~paper:(row ~threads:2 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1 bluetooth_driver_bad;
    e ~id:6 ~name:"carter01_bad"
      ~description:
        "Two of four workers take locks A/B in opposite order: lock-order \
         deadlock under one preemption."
      ~paper:(row ~threads:5 ~max_enabled:3 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 carter01_bad;
    e ~id:7 ~name:"circular_buffer_bad"
      ~description:
        "Circular buffer whose producer publishes the index before the \
         element: consumer reads an empty slot."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:2 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1 circular_buffer_bad;
    e ~id:8 ~name:"deadlock01_bad"
      ~description:"Textbook ABBA lock-order deadlock between two threads."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1 deadlock01_bad;
    e ~id:9 ~name:"din_phil2_sat"
      ~description:
        "2 dining philosophers; harness asserts completion without joining \
         (buggy on the initial schedule) and interleaved forks deadlock."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 2);
    e ~id:10 ~name:"din_phil3_sat"
      ~description:"3 dining philosophers (see din_phil2_sat)."
      ~paper:(row ~threads:4 ~max_enabled:3 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 3);
    e ~id:11 ~name:"din_phil4_sat"
      ~description:"4 dining philosophers (see din_phil2_sat)."
      ~paper:(row ~threads:5 ~max_enabled:4 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 4);
    e ~id:12 ~name:"din_phil5_sat"
      ~description:"5 dining philosophers (see din_phil2_sat)."
      ~paper:(row ~threads:6 ~max_enabled:5 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 5);
    e ~id:13 ~name:"din_phil6_sat"
      ~description:"6 dining philosophers (see din_phil2_sat)."
      ~paper:(row ~threads:7 ~max_enabled:6 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 6);
    e ~id:14 ~name:"din_phil7_sat"
      ~description:"7 dining philosophers (see din_phil2_sat)."
      ~paper:(row ~threads:8 ~max_enabled:7 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 (din_phil_sat 7);
    e ~id:15 ~name:"fsbench_bad"
      ~description:
        "File-system journal stress with 27 writers; the block array is one \
         record short, so the last record overflows on every schedule (the \
         manually-added out-of-bounds assertion of §4.2)."
      ~paper:(row ~threads:28 ~max_enabled:27 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 fsbench_bad;
    e ~id:16 ~name:"lazy01_bad"
      ~description:
        "Three lock-protected updates; the combined effect trips the \
         assertion already on the creation-order schedule."
      ~paper:(row ~threads:4 ~max_enabled:3 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 lazy01_bad;
    e ~id:17 ~name:"phase01_bad"
      ~description:
        "Semaphore-phased increments with a wrong final-count assertion: \
         buggy on every schedule."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 phase01_bad;
    e ~id:18 ~name:"queue_bad"
      ~description:
        "Queue whose occupancy counter is published before the element is \
         stored: consumer dequeues from an empty queue."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:2 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 queue_bad;
    e ~id:19 ~name:"reorder_10_bad"
      ~description:
        "Adversarial reorder family with 9 setter twins: needs many delays; \
         zero-preemption completion orders alone exceed the limit."
      ~paper:(row ~threads:11 ~max_enabled:10 ~dfs:false ~rand:false ~maple:false ())
      (reorder_bad 10);
    e ~id:20 ~name:"reorder_20_bad"
      ~description:"Reorder family with 19 setter twins (see reorder_10)."
      ~paper:(row ~threads:21 ~max_enabled:20 ~dfs:false ~rand:false ~maple:false ())
      (reorder_bad 20);
    e ~id:21 ~name:"reorder_3_bad"
      ~description:
        "Paper Example 2: two setter twins and one checker; one preemption \
         but two delays needed."
      ~paper:(row ~threads:4 ~max_enabled:3 ~ipb:1 ~idb:2 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:2 (reorder_bad 3);
    e ~id:22 ~name:"reorder_4_bad"
      ~description:"Reorder with three setter twins: delay bound 3."
      ~paper:(row ~threads:5 ~max_enabled:4 ~ipb:1 ~idb:3 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:3 (reorder_bad 4);
    e ~id:23 ~name:"reorder_5_bad"
      ~description:"Reorder with four setter twins: delay bound 4."
      ~paper:(row ~threads:6 ~max_enabled:5 ~ipb:1 ~idb:4 ~dfs:false ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:4 (reorder_bad 5);
    e ~id:24 ~name:"stack_bad"
      ~description:
        "Stack push publishes the new top before storing the element; a pop \
         in the window reads an unwritten slot."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:false ())
      ~expect_ipb:1 ~expect_idb:1 stack_bad;
    e ~id:25 ~name:"sync01_bad"
      ~description:
        "Condition-variable handshake with a wrong final assertion: buggy \
         on every schedule."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 sync01_bad;
    e ~id:26 ~name:"sync02_bad"
      ~description:
        "Broadcast handshake; consumed value asserted wrongly: buggy on \
         every schedule."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:0 ~idb:0 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:0 sync02_bad;
    e ~id:27 ~name:"token_ring_bad"
      ~description:
        "Token forwarded through a ring of racy cells; non-creation-order \
         completion breaks the token count without any preemption."
      ~paper:(row ~threads:5 ~max_enabled:4 ~ipb:0 ~idb:2 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:0 ~expect_idb:1 token_ring_bad;
    e ~id:28 ~name:"twostage_100_bad"
      ~description:
        "twostage_bad surrounded by 98 noise workers: nothing finds the bug \
         within the schedule limit."
      ~paper:(row ~threads:101 ~max_enabled:100 ~dfs:false ~rand:false ~maple:false ())
      (twostage_n_bad 98);
    e ~id:29 ~name:"twostage_bad"
      ~description:
        "Two-stage locking: a reader between the stages observes data2 \
         lagging behind data1."
      ~paper:(row ~threads:3 ~max_enabled:2 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 twostage_bad;
    e ~id:30 ~name:"wronglock_3_bad"
      ~description:
        "Three workers guard the counter with the wrong lock: lost update \
         under one preemption."
      ~paper:(row ~threads:5 ~max_enabled:4 ~ipb:1 ~idb:1 ~dfs:true ~rand:true ~maple:true ())
      ~expect_ipb:1 ~expect_idb:1 (wronglock_bad 3);
    e ~id:31 ~name:"wronglock_bad"
      ~description:
        "Seven workers guard the counter with the wrong lock; the \
         zero-preemption completion orders drown IPB."
      ~paper:(row ~threads:9 ~max_enabled:8 ~idb:1 ~dfs:false ~rand:true ~maple:true ())
      ~expect_idb:1 (wronglock_bad 7);
  ]
