(* The TSO store-buffer extension: litmus tests explored exhaustively.

   For each litmus shape we enumerate every terminal schedule with plain
   unbounded DFS (everything promoted) and collect the set of observable
   outcomes, comparing the sequentially-consistent program against its
   store-buffered counterpart. *)

open Sct_core

let promote_all _ = true

module Outcomes = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* Exhaustively enumerate [mk ()]'s behaviours, collecting (r1, r2)
   outcomes via the result cell the program writes into. The TSO litmus
   programs carry flusher threads and semaphore traffic, so their plain
   schedule spaces are huge — DPOR+sleep covers every happens-before class
   with a few hundred executions (pruned partial executions never reach the
   recording line, so only completed behaviours are collected). *)
let collect mk =
  let outcomes = ref Outcomes.empty in
  let program () =
    let r = mk () in
    outcomes := Outcomes.add r !outcomes
  in
  let lr =
    Sct_explore.Por.explore ~promote:promote_all
      ~mode:Sct_explore.Por.Dpor_sleep ~limit:500_000 program
  in
  Alcotest.(check bool) "space exhausted" true lr.Sct_explore.Por.complete;
  Alcotest.(check int) "no bugs" 0 lr.Sct_explore.Por.buggy;
  !outcomes

(* --- SB (store buffering): the TSO-vs-SC separating litmus --- *)

let sb_sc () =
  let x = Sct.Var.make ~name:"sb_x" 0 and y = Sct.Var.make ~name:"sb_y" 0 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        r1 := Sct.Var.read y)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Var.write y 1;
        r2 := Sct.Var.read x)
  in
  Sct.join t1;
  Sct.join t2;
  (!r1, !r2)

let sb_tso ~fenced () =
  let ctx = Sct_tso.Tso.create () in
  let x = Sct_tso.Tso.Var.make ctx ~name:"sb_x" 0 in
  let y = Sct_tso.Tso.Var.make ctx ~name:"sb_y" 0 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let _t1 =
    Sct_tso.Tso.thread ctx (fun () ->
        Sct_tso.Tso.Var.store x 1;
        if fenced then Sct_tso.Tso.fence ctx;
        r1 := Sct_tso.Tso.Var.load y)
  in
  let _t2 =
    Sct_tso.Tso.thread ctx (fun () ->
        Sct_tso.Tso.Var.store y 1;
        if fenced then Sct_tso.Tso.fence ctx;
        r2 := Sct_tso.Tso.Var.load x)
  in
  Sct_tso.Tso.finish ctx;
  (!r1, !r2)

let test_sb_sc_forbids_00 () =
  let outcomes = collect sb_sc in
  Alcotest.(check bool) "(0,0) forbidden under SC" false
    (Outcomes.mem (0, 0) outcomes);
  Alcotest.(check bool) "(1,1) observable" true (Outcomes.mem (1, 1) outcomes);
  Alcotest.(check bool) "(0,1) observable" true (Outcomes.mem (0, 1) outcomes);
  Alcotest.(check bool) "(1,0) observable" true (Outcomes.mem (1, 0) outcomes)

let test_sb_tso_allows_00 () =
  let outcomes = collect (sb_tso ~fenced:false) in
  Alcotest.(check bool) "(0,0) observable under TSO" true
    (Outcomes.mem (0, 0) outcomes);
  Alcotest.(check bool) "(1,1) still observable" true
    (Outcomes.mem (1, 1) outcomes)

let test_sb_tso_fence_restores_sc () =
  let outcomes = collect (sb_tso ~fenced:true) in
  Alcotest.(check bool) "(0,0) forbidden with mfence" false
    (Outcomes.mem (0, 0) outcomes)

(* --- store forwarding: a thread always sees its own latest store --- *)

let test_store_forwarding () =
  let forward () =
    let ctx = Sct_tso.Tso.create () in
    let x = Sct_tso.Tso.Var.make ctx ~name:"fw_x" 0 in
    let seen = ref (-1) in
    let _t =
      Sct_tso.Tso.thread ctx (fun () ->
          Sct_tso.Tso.Var.store x 1;
          Sct_tso.Tso.Var.store x 2;
          seen := Sct_tso.Tso.Var.load x)
    in
    Sct_tso.Tso.finish ctx;
    (!seen, 0)
  in
  let outcomes = collect forward in
  Alcotest.(check bool) "only the newest own store is seen" true
    (Outcomes.equal outcomes (Outcomes.singleton (2, 0)))

(* --- message passing (MP): TSO preserves it (no store-store or
   load-load reordering), unlike weaker models --- *)

let test_mp_preserved_under_tso () =
  let mp () =
    let ctx = Sct_tso.Tso.create () in
    let data = Sct_tso.Tso.Var.make ctx ~name:"mp_data" 0 in
    let flag = Sct_tso.Tso.Var.make ctx ~name:"mp_flag" 0 in
    let r = ref 1 in
    let _producer =
      Sct_tso.Tso.thread ctx (fun () ->
          Sct_tso.Tso.Var.store data 42;
          Sct_tso.Tso.Var.store flag 1)
    in
    let _consumer =
      Sct_tso.Tso.thread ctx (fun () ->
          if Sct_tso.Tso.Var.load flag = 1 then
            r := if Sct_tso.Tso.Var.load data = 42 then 1 else 0)
    in
    Sct_tso.Tso.finish ctx;
    (!r, 0)
  in
  let outcomes = collect mp in
  Alcotest.(check bool) "flag=1 implies data=42 (FIFO buffers)" false
    (Outcomes.mem (0, 0) outcomes)

(* --- memory is eventually consistent: after finish, all stores landed --- *)

let test_finish_drains () =
  let program () =
    let ctx = Sct_tso.Tso.create () in
    let x = Sct_tso.Tso.Var.make ctx ~name:"dr_x" 0 in
    let _t =
      Sct_tso.Tso.thread ctx (fun () -> Sct_tso.Tso.Var.store x 7)
    in
    Sct_tso.Tso.finish ctx;
    Sct.check (Sct_tso.Tso.Var.load x = 7) "store landed after finish"
  in
  let lr =
    Sct_explore.Dfs.explore ~promote:promote_all ~bound:Sct_explore.Dfs.Unbounded
      ~limit:100_000 program
  in
  Alcotest.(check bool) "complete" true lr.Sct_explore.Dfs.complete;
  Alcotest.(check int) "never stale" 0 lr.Sct_explore.Dfs.buggy

let suites =
  [
    ( "tso",
      [
        Alcotest.test_case "SB under SC forbids (0,0)" `Quick
          test_sb_sc_forbids_00;
        Alcotest.test_case "SB under TSO allows (0,0)" `Quick
          test_sb_tso_allows_00;
        Alcotest.test_case "mfence restores SC on SB" `Quick
          test_sb_tso_fence_restores_sc;
        Alcotest.test_case "store-to-load forwarding" `Quick
          test_store_forwarding;
        Alcotest.test_case "message passing preserved (FIFO)" `Quick
          test_mp_preserved_under_tso;
        Alcotest.test_case "finish drains all buffers" `Quick
          test_finish_drains;
      ] );
  ]
