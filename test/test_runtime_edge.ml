(* Engine edge cases: primitive semantics under exhaustive exploration. *)

open Sct_core

let promote_all _ = true

(* exhaustive verification via DPOR+sleep: covers every happens-before
   class, so schedule spaces too large for plain DFS stay checkable *)
let verify ?(limit = 400_000) program =
  let r =
    Sct_explore.Por.explore ~promote:promote_all
      ~mode:Sct_explore.Por.Dpor_sleep ~limit program
  in
  Alcotest.(check bool) "space exhausted" true r.Sct_explore.Por.complete;
  Alcotest.(check int) "no bugs" 0 r.Sct_explore.Por.buggy

let falsify ?(limit = 100_000) program =
  let r =
    Sct_explore.Dfs.explore ~promote:promote_all ~bound:Sct_explore.Dfs.Unbounded
      ~limit program
  in
  Alcotest.(check bool) "bug found" true (r.Sct_explore.Dfs.to_first_bug <> None)

let test_barrier_reuse () =
  (* a cyclic barrier used for several phases keeps both threads in
     lock-step in every interleaving *)
  verify (fun () ->
      let b = Sct.Barrier.create 2 in
      let phase = Sct.Var.make ~name:"phase_w" 0 in
      let t =
        Sct.spawn (fun () ->
            for p = 1 to 3 do
              Sct.Var.write phase p;
              Sct.Barrier.wait b
            done)
      in
      for p = 1 to 3 do
        Sct.Barrier.wait b;
        (* the worker's write for phase p landed; it may already have run
           ahead to phase p+1 (but no further: the next barrier stops it) *)
        let v = Sct.Var.read phase in
        Sct.check (v = p || v = p + 1) "phases in lock-step"
      done;
      Sct.join t)

let test_barrier_three_parties () =
  verify (fun () ->
      let b = Sct.Barrier.create 3 in
      let count = Sct.Atomic.make ~name:"b3_count" 0 in
      let ts =
        List.init 2 (fun _ ->
            Sct.spawn (fun () ->
                Sct.Atomic.incr count;
                Sct.Barrier.wait b;
                Sct.check (Sct.Atomic.load count = 3) "all arrived"))
      in
      Sct.Atomic.incr count;
      Sct.Barrier.wait b;
      Sct.check (Sct.Atomic.load count = 3) "all arrived";
      List.iter Sct.join ts)

let test_rwlock_readers_share () =
  (* two readers can hold the lock at once: a counter of concurrent readers
     observably reaches 2 in some interleaving *)
  let reached_two = ref false in
  let program () =
    let l = Sct.Rwlock.create () in
    let inside = Sct.Atomic.make ~name:"rw_inside" 0 in
    let reader () =
      Sct.Rwlock.rd_lock l;
      if Sct.Atomic.fetch_and_add inside 1 = 1 then reached_two := true;
      Sct.Atomic.decr inside;
      Sct.Rwlock.unlock l
    in
    let t1 = Sct.spawn reader in
    let t2 = Sct.spawn reader in
    Sct.join t1;
    Sct.join t2
  in
  verify program;
  Alcotest.(check bool) "two readers overlapped in some schedule" true
    !reached_two

let test_rwlock_writer_excludes () =
  (* a writer never overlaps a reader, in any interleaving *)
  verify (fun () ->
      let l = Sct.Rwlock.create () in
      let inside_w = Sct.Var.make ~name:"rw_w" false in
      let t =
        Sct.spawn (fun () ->
            Sct.Rwlock.wr_lock l;
            Sct.Var.write inside_w true;
            Sct.yield ();
            Sct.Var.write inside_w false;
            Sct.Rwlock.unlock l)
      in
      Sct.Rwlock.rd_lock l;
      Sct.check (not (Sct.Var.read inside_w)) "no writer while reading";
      Sct.Rwlock.unlock l;
      Sct.join t)

let test_atomic_cas_semantics () =
  verify (fun () ->
      let a = Sct.Atomic.make ~name:"cas_a" 0 in
      Sct.check (Sct.Atomic.compare_and_set a 0 5) "cas succeeds on match";
      Sct.check (not (Sct.Atomic.compare_and_set a 0 9)) "cas fails on stale";
      Sct.check (Sct.Atomic.load a = 5) "value from the successful cas";
      Sct.check (Sct.Atomic.exchange a 7 = 5) "exchange returns the old";
      Sct.check (Sct.Atomic.fetch_and_add a 3 = 7) "faa returns the old";
      Sct.check (Sct.Atomic.load a = 10) "faa added")

let test_atomic_increments_never_lost () =
  (* fetch_and_add is atomic even though threads interleave at every op *)
  verify (fun () ->
      let a = Sct.Atomic.make ~name:"atomic_sum" 0 in
      let ts =
        List.init 3 (fun _ -> Sct.spawn (fun () -> Sct.Atomic.incr a))
      in
      List.iter Sct.join ts;
      Sct.check (Sct.Atomic.load a = 3) "all increments kept")

let test_plain_increments_can_be_lost () =
  (* the same pattern on plain variables IS a lost-update bug *)
  falsify (fun () ->
      let v = Sct.Var.make ~name:"plain_sum" 0 in
      let ts =
        List.init 2
          (fun _ -> Sct.spawn (fun () -> Sct.Var.write v (Sct.Var.read v + 1)))
      in
      List.iter Sct.join ts;
      Sct.check (Sct.Var.read v = 2) "an update was lost")

let test_semaphore_counting () =
  verify (fun () ->
      let s = Sct.Sem.create 2 in
      let inside = Sct.Atomic.make ~name:"sem_inside" 0 in
      let worker () =
        Sct.Sem.wait s;
        Sct.check (Sct.Atomic.fetch_and_add inside 1 < 2) "at most 2 inside";
        Sct.Atomic.decr inside;
        Sct.Sem.post s
      in
      let ts = List.init 3 (fun _ -> Sct.spawn worker) in
      List.iter Sct.join ts)

let test_cond_signal_wakes_one () =
  (* one signal wakes exactly one of two waiters; a second signal is needed
     for the other — checked by requiring both to finish with two signals *)
  verify (fun () ->
      let m = Sct.Mutex.create () in
      let c = Sct.Cond.create () in
      let tickets = Sct.Var.make ~name:"tickets" 0 in
      let waiter () =
        Sct.Mutex.lock m;
        while Sct.Var.read tickets = 0 do
          Sct.Cond.wait c m
        done;
        Sct.Var.write tickets (Sct.Var.read tickets - 1);
        Sct.Mutex.unlock m
      in
      let t1 = Sct.spawn waiter in
      let t2 = Sct.spawn waiter in
      for _ = 1 to 2 do
        Sct.Mutex.lock m;
        Sct.Var.write tickets (Sct.Var.read tickets + 1);
        Sct.Cond.signal c;
        Sct.Mutex.unlock m
      done;
      Sct.join t1;
      Sct.join t2)

let test_join_many () =
  verify (fun () ->
      let n = Sct.Atomic.make ~name:"jm" 0 in
      let ts = List.init 4 (fun _ -> Sct.spawn (fun () -> Sct.Atomic.incr n)) in
      List.iter Sct.join ts;
      Sct.check (Sct.Atomic.load n = 4) "all joined")

let test_self_join_deadlocks () =
  let r =
    Runtime.exec ~promote:promote_all
      ~scheduler:(fun ctx -> List.hd ctx.Runtime.c_enabled)
      (fun () -> Sct.join (Sct.self ()))
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Deadlock _; _ } -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Outcome.pp o

let suites =
  [
    ( "runtime-edge",
      [
        Alcotest.test_case "cyclic barrier reuse" `Quick test_barrier_reuse;
        Alcotest.test_case "three-party barrier" `Quick
          test_barrier_three_parties;
        Alcotest.test_case "rwlock: readers share" `Quick
          test_rwlock_readers_share;
        Alcotest.test_case "rwlock: writer excludes" `Quick
          test_rwlock_writer_excludes;
        Alcotest.test_case "atomic cas/xchg/faa semantics" `Quick
          test_atomic_cas_semantics;
        Alcotest.test_case "atomic increments never lost" `Quick
          test_atomic_increments_never_lost;
        Alcotest.test_case "plain increments can be lost" `Quick
          test_plain_increments_can_be_lost;
        Alcotest.test_case "semaphore admits at most its count" `Quick
          test_semaphore_counting;
        Alcotest.test_case "signal wakes exactly one waiter" `Quick
          test_cond_signal_wakes_one;
        Alcotest.test_case "join many" `Quick test_join_many;
        Alcotest.test_case "self-join deadlocks" `Quick
          test_self_join_deadlocks;
      ] );
  ]
