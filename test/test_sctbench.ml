(* The benchmark registry: structural consistency, and smoke tests that
   each benchmark's bug is found by the expected techniques at the expected
   bound. The smoke tests cover benchmarks whose bugs are reachable within
   a small schedule budget; the full-limit study is exercised by the bench
   harness. *)

open Sctbench

let test_registry_complete () =
  Alcotest.(check int) "55 benchmarks" 55 (List.length Registry.all);
  let ids = List.map (fun (b : Bench.t) -> b.Bench.id) Registry.all in
  Alcotest.(check (list int)) "ids are 0..54" (List.init 55 Fun.id) ids;
  let names = List.map (fun (b : Bench.t) -> b.Bench.name) Registry.all in
  Alcotest.(check int) "names unique" 55
    (List.length (List.sort_uniq compare names))

let test_suite_sizes () =
  let count suite = List.length (Registry.of_suite suite) in
  Alcotest.(check int) "CB" 3 (count Bench.CB);
  Alcotest.(check int) "CHESS" 4 (count Bench.CHESS);
  Alcotest.(check int) "CS" 29 (count Bench.CS);
  Alcotest.(check int) "inspect" 1 (count Bench.Inspect);
  Alcotest.(check int) "misc" 2 (count Bench.Misc);
  Alcotest.(check int) "parsec" 4 (count Bench.Parsec);
  Alcotest.(check int) "radbench" 6 (count Bench.Radbench);
  Alcotest.(check int) "splash2" 3 (count Bench.Splash2);
  Alcotest.(check int) "yield" 3 (count Bench.Yield)

let test_lookup () =
  (match Registry.by_name "misc.safestack" with
  | Some b -> Alcotest.(check int) "id of safestack" 38 b.Bench.id
  | None -> Alcotest.fail "misc.safestack not found");
  match Registry.by_id 0 with
  | Some b -> Alcotest.(check string) "id 0" "CB.aget-bug2" b.Bench.name
  | None -> Alcotest.fail "id 0 not found"

let test_paper_rows_sane () =
  List.iter
    (fun (b : Bench.t) ->
      let p = b.Bench.paper in
      Alcotest.(check bool)
        (b.Bench.name ^ ": threads positive")
        true (p.Bench.p_threads >= 2);
      Alcotest.(check bool)
        (b.Bench.name ^ ": max enabled <= threads")
        true
        (p.Bench.p_max_enabled <= p.Bench.p_threads);
      (* DB(c) subset of PB(c): a bug found by IDB at bound c has at most c
         preemptions, so the paper's IPB bound never exceeds the IDB one
         when both found the bug *)
      match (p.Bench.p_ipb_bound, p.Bench.p_idb_bound) with
      | Some ipb, Some idb ->
          Alcotest.(check bool)
            (b.Bench.name ^ ": ipb bound <= idb bound")
            true (ipb <= idb)
      | _ -> ())
    Registry.all

let test_programs_deterministic () =
  (* every benchmark creates its state inside the program closure: two
     round-robin executions produce identical schedules *)
  let rr (ctx : Sct_core.Runtime.ctx) =
    match
      Sct_core.Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  List.iter
    (fun (b : Bench.t) ->
      let run () =
        Sct_core.Runtime.exec ~max_steps:100_000 ~scheduler:rr
          b.Bench.program
      in
      let a = run () and c = run () in
      Alcotest.(check bool)
        (b.Bench.name ^ ": deterministic")
        true
        (Sct_core.Schedule.equal a.Sct_core.Runtime.r_schedule
           c.Sct_core.Runtime.r_schedule))
    Registry.all

let test_rr_execution_terminates () =
  (* no benchmark live-locks on the deterministic schedule *)
  let rr (ctx : Sct_core.Runtime.ctx) =
    match
      Sct_core.Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  List.iter
    (fun (b : Bench.t) ->
      let r =
        Sct_core.Runtime.exec ~max_steps:100_000 ~scheduler:rr b.Bench.program
      in
      Alcotest.(check bool)
        (b.Bench.name ^ ": terminates")
        true
        (r.Sct_core.Runtime.r_outcome <> Sct_core.Outcome.Step_limit))
    Registry.all

(* Benchmarks whose expected IDB bound is recorded and whose first bug lies
   within a small budget: check the iterative delay bounding finds the bug
   at exactly the expected bound. *)
let quick_idb_benchmarks =
  [
    "CB.aget-bug2";
    "CB.pbzip2-0.9.4";
    "CS.account_bad";
    "CS.arithmetic_prog_bad";
    "CS.bluetooth_driver_bad";
    "CS.carter01_bad";
    "CS.circular_buffer_bad";
    "CS.deadlock01_bad";
    "CS.din_phil2_sat";
    "CS.din_phil5_sat";
    "CS.lazy01_bad";
    "CS.phase01_bad";
    "CS.queue_bad";
    "CS.reorder_3_bad";
    "CS.stack_bad";
    "CS.sync01_bad";
    "CS.sync02_bad";
    "CS.token_ring_bad";
    "CS.twostage_bad";
    "CS.wronglock_3_bad";
    "misc.ctrace-test";
    "parsec.streamcluster3";
    "radbench.bug3";
    "radbench.bug6";
    "splash2.barnes";
    "splash2.fft";
    "splash2.lu";
    "inspect.qsort_mt";
    "yield.spinwait_bad";
    "yield.cas_yield_bad";
    "yield.livelock_bad";
  ]

let idb_smoke name () =
  match Registry.by_name name with
  | None -> Alcotest.fail ("unknown benchmark " ^ name)
  | Some b -> (
      let o =
        {
          Sct_explore.Techniques.default_options with
          Sct_explore.Techniques.limit = 3_000;
        }
      in
      let detection =
        Sct_explore.Techniques.detect_races o b.Bench.program
      in
      let promote = Sct_race.Promotion.promote detection in
      let s =
        Sct_explore.Techniques.run ~promote o Sct_explore.Techniques.IDB
          b.Bench.program
      in
      Alcotest.(check bool) "IDB finds the bug" true (Sct_explore.Stats.found s);
      match b.Bench.expect_idb with
      | Some expected ->
          Alcotest.(check (option int)) "at the expected delay bound"
            (Some expected) s.Sct_explore.Stats.bound
      | None -> ())

let negative_smoke name () =
  (* safestack must NOT be found within a small budget (the paper's
     negative target) *)
  match Registry.by_name name with
  | None -> Alcotest.fail ("unknown benchmark " ^ name)
  | Some b ->
      let o =
        {
          Sct_explore.Techniques.default_options with
          Sct_explore.Techniques.limit = 1_000;
        }
      in
      let s =
        Sct_explore.Techniques.run o Sct_explore.Techniques.IDB
          b.Bench.program
      in
      Alcotest.(check bool) "not found in a small budget" false
        (Sct_explore.Stats.found s)

let suites =
  [
    ( "sctbench-registry",
      [
        Alcotest.test_case "55 entries with ids 0..54" `Quick
          test_registry_complete;
        Alcotest.test_case "suite sizes match Table 1" `Quick test_suite_sizes;
        Alcotest.test_case "lookup by name and id" `Quick test_lookup;
        Alcotest.test_case "paper rows are coherent" `Quick
          test_paper_rows_sane;
        Alcotest.test_case "programs are deterministic" `Quick
          test_programs_deterministic;
        Alcotest.test_case "round-robin execution terminates" `Quick
          test_rr_execution_terminates;
      ] );
    ( "sctbench-bugs",
      List.map
        (fun name -> Alcotest.test_case name `Slow (idb_smoke name))
        quick_idb_benchmarks
      @ [
          Alcotest.test_case "misc.safestack stays hidden" `Slow
            (negative_smoke "misc.safestack");
        ] );
  ]
