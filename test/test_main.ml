(* Aggregates every suite; each Test_* module exposes [suites]. *)
let () =
  Alcotest.run "sctbench_repro"
    (List.concat
       [
         Test_schedule_algebra.suites;
         Test_runtime.suites;
         Test_runtime_edge.suites;
         Test_race.suites;
         Test_explore.suites;
         Test_strategy.suites;
         Test_programs_qcheck.suites;
         Test_engine_hot.suites;
         Test_bounding_axes.suites;
         Test_por.suites;
         Test_tools.suites;
         Test_hb.suites;
         Test_tso.suites;
         Test_paper_examples.suites;
         Test_sctbench.suites;
         Test_report.suites;
         Test_store.suites;
         Test_prefix_exec.suites;
         Test_parallel.suites;
         Test_campaign.suites;
         Test_robustness.suites;
         Test_fuzz.suites;
         Test_corpus.suites;
         Test_cli_artifacts.suites;
       ])
