(* Robustness of the study pipeline: the systematic techniques' verdicts
   must not depend on the seed (which only drives the race-detection phase
   and the non-systematic techniques). *)

let verdicts seed name =
  match Sctbench.Registry.by_name name with
  | None -> Alcotest.fail ("unknown benchmark " ^ name)
  | Some b ->
      let o =
        {
          Sct_explore.Techniques.default_options with
          Sct_explore.Techniques.limit = 1_500;
          seed;
        }
      in
      let _, results =
        Sct_explore.Techniques.run_all
          ~techniques:Sct_explore.Techniques.[ IPB; IDB ]
          o b.Sctbench.Bench.program
      in
      List.map
        (fun (t, s) ->
          ( Sct_explore.Techniques.name t,
            Sct_explore.Stats.found s,
            s.Sct_explore.Stats.bound ))
        results

let stable name () =
  let a = verdicts 0 name and b = verdicts 17 name and c = verdicts 99 name in
  Alcotest.(check bool) "seed 0 = seed 17" true (a = b);
  Alcotest.(check bool) "seed 0 = seed 99" true (a = c)

let suites =
  [
    ( "robustness",
      List.map
        (fun name ->
          Alcotest.test_case ("seed-stable: " ^ name) `Slow (stable name))
        [
          "CS.twostage_bad";
          "CS.account_bad";
          "misc.ctrace-test";
          "splash2.lu";
          "radbench.bug3";
        ] );
  ]
