(* End-to-end exit-code coverage of `sctbench_run artifacts replay`: the
   command promises to exit non-zero unless the recorded bug reproduces.
   The interesting cases are a witness that is feasible but no longer
   buggy (the program "got fixed" relative to the store) and a tampered
   artifact file, which must fail the digest check rather than replay
   corrupted data. *)

let bench_name = "CS.account_bad"

let options =
  {
    Sct_explore.Techniques.default_options with
    Sct_explore.Techniques.limit = 2_000;
    race_runs = 3;
    max_steps = 10_000;
  }

(* the CLI binary, located relative to the test executable (dune places
   both under _build/default) *)
let exe =
  lazy
    (List.find_opt Sys.file_exists
       [
         Filename.concat
           (Filename.dirname Sys.executable_name)
           (Filename.concat ".." (Filename.concat "bin" "sctbench_run.exe"));
         Filename.concat ".." (Filename.concat "bin" "sctbench_run.exe");
         Filename.concat "_build"
           (Filename.concat "default"
              (Filename.concat "bin" "sctbench_run.exe"));
       ])

let run_cli args =
  match Lazy.force exe with
  | None -> Alcotest.fail "sctbench_run.exe not found next to the test"
  | Some exe ->
      let out = Filename.temp_file "sct_cli" ".out" in
      let code =
        Sys.command
          (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args
             (Filename.quote out))
      in
      let content = In_channel.with_open_bin out In_channel.input_all in
      Sys.remove out;
      (code, content)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let fresh_store () =
  let dir = Filename.temp_file "sct_store" "" in
  Sys.remove dir;
  dir

let bench =
  lazy
    (match Sctbench.Registry.by_name bench_name with
    | Some b -> b
    | None -> Alcotest.fail ("missing benchmark " ^ bench_name))

let promote =
  lazy
    (let b = Lazy.force bench in
     Sct_race.Promotion.promote
       (Sct_explore.Techniques.detect_races options b.Sctbench.Bench.program))

(* a genuine IPB witness for the benchmark, found once and shared *)
let witness =
  lazy
    (let b = Lazy.force bench in
     let s =
       Sct_explore.Techniques.run ~promote:(Lazy.force promote) options
         Sct_explore.Techniques.IPB b.Sctbench.Bench.program
     in
     match s.Sct_explore.Stats.first_bug with
     | Some w -> (s.Sct_explore.Stats.bound, w)
     | None -> Alcotest.fail ("IPB found no bug in " ^ bench_name))

let save_artifact ~store w ~bound =
  let a =
    Sct_store.Artifact.make ~bench:bench_name ~technique:"IPB" ~options
      ~bound w
  in
  ignore
    (Sct_store.Artifact.save ~dir:(Filename.concat store "artifacts") a);
  a.Sct_store.Artifact.digest

let test_replay_reproduces () =
  let bound, w = Lazy.force witness in
  let store = fresh_store () in
  let digest = save_artifact ~store w ~bound in
  let code, out =
    run_cli (Printf.sprintf "artifacts replay --store %s %s"
               (Filename.quote store) digest)
  in
  if code <> 0 then Alcotest.failf "expected exit 0, got %d:\n%s" code out;
  Alcotest.(check bool) "prints the outcome" true
    (contains ~needle:"outcome:" out)

let test_replay_not_reproducing () =
  let bound, w = Lazy.force witness in
  (* a feasible but bug-free schedule for the same benchmark: whatever the
     deterministic round-robin fallback executes *)
  let b = Lazy.force bench in
  let safe_schedule =
    match
      Sct_explore.Replay.replay ~promote:(Lazy.force promote) ~strict:false
        ~schedule:Sct_core.Schedule.empty b.Sctbench.Bench.program
    with
    | None -> Alcotest.fail "round-robin replay failed"
    | Some r ->
        if Sct_core.Outcome.is_buggy r.Sct_core.Runtime.r_outcome then
          Alcotest.fail
            (bench_name ^ " is buggy under round-robin; pick another bench");
        r.Sct_core.Runtime.r_schedule
  in
  let store = fresh_store () in
  let digest =
    save_artifact ~store
      { w with Sct_explore.Stats.w_schedule = safe_schedule }
      ~bound
  in
  let code, out =
    run_cli (Printf.sprintf "artifacts replay --store %s %s"
               (Filename.quote store) digest)
  in
  Alcotest.(check int) "non-reproducing witness exits 1" 1 code;
  Alcotest.(check bool) "says the bug did not reproduce" true
    (contains ~needle:"did NOT reproduce" out)

let test_replay_tampered_file () =
  let bound, w = Lazy.force witness in
  let store = fresh_store () in
  let digest = save_artifact ~store w ~bound in
  let path =
    Filename.concat (Filename.concat store "artifacts") (digest ^ ".sched")
  in
  (* flip the schedule line: the content no longer matches the digest in
     the file name *)
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.map (fun l ->
           let t = String.trim l in
           if t <> "" && t.[0] <> '#' then "0," ^ t else l)
  in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (String.concat "\n" lines));
  let code, out =
    run_cli (Printf.sprintf "artifacts replay --store %s %s"
               (Filename.quote store) digest)
  in
  Alcotest.(check int) "tampered artifact exits 1" 1 code;
  Alcotest.(check bool) "the digest check names the artifact" true
    (contains ~needle:"Sct_store.Artifact" out)

let test_replay_missing_digest () =
  let store = fresh_store () in
  let code, out =
    run_cli (Printf.sprintf "artifacts replay --store %s 0123456789abcdef"
               (Filename.quote store))
  in
  Alcotest.(check int) "missing artifact exits 1" 1 code;
  Alcotest.(check bool) "says which digest is missing" true
    (contains ~needle:"no artifact" out)

let suites =
  [
    ( "cli-artifacts",
      [
        Alcotest.test_case "replay: genuine witness exits 0" `Slow
          test_replay_reproduces;
        Alcotest.test_case "replay: non-reproducing witness exits 1" `Slow
          test_replay_not_reproducing;
        Alcotest.test_case "replay: tampered .sched exits 1" `Slow
          test_replay_tampered_file;
        Alcotest.test_case "replay: unknown digest exits 1" `Slow
          test_replay_missing_digest;
      ] );
  ]
