(* The Strategy interface and the generic driver (lib/explore/strategy.ml,
   driver.ml): each technique routed through Driver.explore must equal a
   from-scratch naive reference loop written directly against the runtime;
   the wall-clock deadline must be reported distinctly from the schedule
   limit; and the SURW extension must be seed-deterministic, shardable
   (jobs 1 == jobs 4) and able to find easy bugs. *)

open Sct_core
module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques

let promote_all _ = true
let stats_t = Alcotest.testable Stats.pp Stats.equal

let two_seq a b () =
  let (_ : Tid.t) =
    Sct.spawn
      (fun () ->
        for _ = 1 to b do
          Sct.yield ()
        done)
  in
  for _ = 1 to a do
    Sct.yield ()
  done

let figure1 () =
  let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        Sct.Var.write y 1)
  in
  let t2 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "x=y")
  in
  ignore (t1, t2)

(* --- naive reference loops ---
   Written directly against Runtime.exec, with their own stats bookkeeping:
   they share no code with Driver.explore or the STRATEGY instances. *)

let count_result ~i stats (res : Runtime.result) =
  let stats = Stats.observe_run stats res in
  let stats =
    {
      stats with
      Stats.total = stats.Stats.total + 1;
      executions = stats.Stats.executions + 1;
    }
  in
  match res.Runtime.r_outcome with
  | Outcome.Bug { bug; by } ->
      let stats = { stats with Stats.buggy = stats.Stats.buggy + 1 } in
      if stats.Stats.to_first_bug = None then
        {
          stats with
          Stats.to_first_bug = Some i;
          first_bug =
            Some
              {
                Stats.w_bug = bug;
                w_by = by;
                w_schedule = res.Runtime.r_schedule;
                w_pc = res.Runtime.r_pc;
                w_dc = res.Runtime.r_dc;
              };
        }
      else stats
  | Outcome.Ok | Outcome.Step_limit -> stats

let naive_rand ~seed ~runs program =
  let stats = ref (Stats.base ~technique:"Rand") in
  let seen = ref Stats.Sched_set.empty in
  for i = 0 to runs - 1 do
    let rng = Random.State.make [| seed; i |] in
    let scheduler (ctx : Runtime.ctx) =
      match ctx.c_enabled with
      | [ t ] ->
          ignore (Random.State.int rng 1 : int);
          t
      | enabled ->
          let a = Array.of_list enabled in
          a.(Random.State.int rng (Array.length a))
    in
    let res =
      Runtime.exec ~promote:promote_all ~max_steps:100_000 ~scheduler program
    in
    seen := Stats.Sched_set.add (Schedule.to_list res.Runtime.r_schedule) !seen;
    stats := count_result ~i:(i + 1) !stats res
  done;
  {
    !stats with
    Stats.hit_limit = true;
    distinct_schedules = Some !seen;
  }

let naive_pct ~change_points ~seed ~runs program =
  (* the a-priori length estimate: one deterministic RR run *)
  let rr (ctx : Runtime.ctx) =
    match
      Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  let k =
    max 1
      (Runtime.exec ~promote:promote_all ~max_steps:100_000 ~scheduler:rr
         program)
        .Runtime.r_steps
  in
  let stats = ref (Stats.base ~technique:"PCT") in
  for i = 0 to runs - 1 do
    let rng = Random.State.make [| seed; i; 0x9c7 |] in
    let priorities : (Tid.t, int) Hashtbl.t = Hashtbl.create 16 in
    let depths =
      List.init change_points (fun j -> (1 + Random.State.int rng k, j))
    in
    let priority t =
      match Hashtbl.find_opt priorities t with
      | Some p -> p
      | None ->
          let p = change_points + 1 + Random.State.int rng 1_000_000 in
          Hashtbl.replace priorities t p;
          p
    in
    let scheduler (ctx : Runtime.ctx) =
      let best () =
        List.fold_left
          (fun acc t ->
            match acc with
            | None -> Some t
            | Some u -> if priority t > priority u then Some t else acc)
          None ctx.c_enabled
      in
      (match best () with
      | Some t ->
          List.iter
            (fun (d, j) ->
              if d = ctx.c_step + 1 then Hashtbl.replace priorities t j)
            depths
      | None -> ());
      match best () with Some t -> t | None -> assert false
    in
    let res =
      Runtime.exec ~promote:promote_all ~max_steps:100_000 ~scheduler program
    in
    stats := count_result ~i:(i + 1) !stats res
  done;
  { !stats with Stats.hit_limit = true }

(* Naive DFS: a work-list of decision prefixes (no backtracking stack, no
   replay machinery shared with lib/explore). Each run follows its prefix,
   then always takes the round-robin-first enabled thread, recording every
   untried alternative as a new prefix. Counts terminal schedules. *)
let naive_dfs_count program =
  let counted = ref 0 in
  let work = Queue.create () in
  Queue.add [] work;
  while not (Queue.is_empty work) do
    let prefix = Queue.pop work in
    let depth = ref 0 in
    let path = ref [] in
    (* decisions taken so far, reversed *)
    let scheduler (ctx : Runtime.ctx) =
      let i = !depth in
      incr depth;
      let t =
        match List.nth_opt prefix i with
        | Some t -> t
        | None ->
            let order =
              Delay.rr_order ~n:ctx.c_n_threads ~last:ctx.c_last
                ~enabled:ctx.c_enabled
            in
            (* every untried sibling becomes a fresh prefix: the path up to
               here plus the alternative decision *)
            List.iter
              (fun alt -> Queue.add (List.rev (alt :: !path)) work)
              (List.tl order);
            List.hd order
      in
      path := t :: !path;
      t
    in
    let (_ : Runtime.result) =
      Runtime.exec ~promote:promote_all ~max_steps:100_000 ~scheduler program
    in
    incr counted
  done;
  !counted

let test_rand_matches_naive () =
  List.iter
    (fun (seed, runs) ->
      let driver =
        Techniques.run ~promote:promote_all
          { Techniques.default_options with Techniques.limit = runs; seed }
          Techniques.Rand figure1
      in
      Alcotest.check stats_t
        (Printf.sprintf "Rand seed=%d runs=%d" seed runs)
        (naive_rand ~seed ~runs figure1)
        driver)
    [ (0, 1); (0, 57); (3, 200); (42, 100) ]

let test_pct_matches_naive () =
  List.iter
    (fun (seed, runs, change_points) ->
      let driver =
        Techniques.run ~promote:promote_all
          {
            Techniques.default_options with
            Techniques.limit = runs;
            seed;
            pct_change_points = change_points;
          }
          Techniques.PCT figure1
      in
      Alcotest.check stats_t
        (Printf.sprintf "PCT seed=%d runs=%d cp=%d" seed runs change_points)
        (naive_pct ~change_points ~seed ~runs figure1)
        driver)
    [ (0, 50, 1); (1, 120, 2); (7, 80, 3) ]

let test_dfs_matches_naive () =
  List.iter
    (fun (a, b) ->
      let driver =
        Techniques.run ~promote:promote_all
          { Techniques.default_options with Techniques.limit = 1_000_000 }
          Techniques.DFS (two_seq a b)
      in
      Alcotest.(check bool)
        (Printf.sprintf "DFS two_seq %d %d complete" a b)
        true driver.Stats.complete;
      Alcotest.(check int)
        (Printf.sprintf "DFS two_seq %d %d counted" a b)
        (naive_dfs_count (two_seq a b))
        driver.Stats.total)
    [ (1, 1); (2, 3); (3, 3); (4, 2) ]

(* --- the wall-clock deadline, distinct from the schedule limit --- *)

let test_deadline_distinct_from_limit () =
  (* an already-expired deadline stops the campaign after one execution *)
  let s =
    Sct_explore.Driver.explore ~promote:promote_all
      ~deadline:(Unix.gettimeofday () -. 1.)
      ~limit:1_000_000
      (Sct_explore.Random_walk.strategy ~seed:0 ())
      figure1
  in
  Alcotest.(check int) "one schedule before the deadline check" 1
    s.Stats.total;
  Alcotest.(check bool) "deadline reported" true s.Stats.hit_deadline;
  Alcotest.(check bool) "not a limit stop" false s.Stats.hit_limit;
  (* through the options record *)
  let o =
    {
      Techniques.default_options with
      Techniques.limit = 1_000_000;
      time_limit = Some 0.;
    }
  in
  let s = Techniques.run ~promote:promote_all o Techniques.Rand figure1 in
  Alcotest.(check bool) "options deadline reported" true s.Stats.hit_deadline;
  Alcotest.(check bool) "options not a limit stop" false s.Stats.hit_limit;
  (* no deadline: the limit stop is reported as before *)
  let o = { o with Techniques.time_limit = None; limit = 10 } in
  let s = Techniques.run ~promote:promote_all o Techniques.Rand figure1 in
  Alcotest.(check bool) "limit stop" true s.Stats.hit_limit;
  Alcotest.(check bool) "no deadline stop" false s.Stats.hit_deadline

(* --- SURW --- *)

let test_surw_deterministic_and_sharded () =
  let o =
    { Techniques.default_options with Techniques.limit = 300; seed = 5 }
  in
  let s1 = Techniques.run ~promote:promote_all o Techniques.SURW figure1 in
  let s2 = Techniques.run ~promote:promote_all o Techniques.SURW figure1 in
  Alcotest.check stats_t "seed-deterministic" s1 s2;
  let par =
    Sct_parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Sct_parallel.Drivers.run ~pool ~promote:promote_all o Techniques.SURW
          figure1)
  in
  Alcotest.check stats_t "jobs 1 == jobs 4" s1 par

let test_surw_finds_easy_bugs () =
  List.iter
    (fun bname ->
      let b = Option.get (Sctbench.Registry.by_name bname) in
      let o =
        { Techniques.default_options with Techniques.limit = 10_000 }
      in
      let promote =
        Sct_race.Promotion.promote
          (Techniques.detect_races o b.Sctbench.Bench.program)
      in
      let s =
        Techniques.run ~promote o Techniques.SURW b.Sctbench.Bench.program
      in
      Alcotest.(check bool) (bname ^ ": surw finds the bug") true
        (Stats.found s))
    [ "CS.lazy01_bad"; "CS.account_bad"; "misc.ctrace-test" ]

let test_surw_weights_cover_both_orders () =
  (* two threads, one long and one short: uniform Rand heavily favours
     schedules that retire the short thread early; SURW must still sample
     both relative orders of the racy accesses *)
  let s =
    Sct_explore.Surw.explore ~promote:promote_all ~seed:0 ~runs:500
      (two_seq 1 8)
  in
  Alcotest.(check bool)
    "several distinct schedules" true
    (match Stats.distinct s with Some d -> d > 1 | None -> false)

let suites =
  [
    ( "strategy-driver",
      [
        Alcotest.test_case "Rand via driver == naive reference" `Quick
          test_rand_matches_naive;
        Alcotest.test_case "PCT via driver == naive reference" `Quick
          test_pct_matches_naive;
        Alcotest.test_case "DFS via driver == naive enumeration" `Quick
          test_dfs_matches_naive;
        Alcotest.test_case "deadline reported distinctly from limit" `Quick
          test_deadline_distinct_from_limit;
      ] );
    ( "surw",
      [
        Alcotest.test_case "seed-deterministic and jobs 1 == jobs 4" `Quick
          test_surw_deterministic_and_sharded;
        Alcotest.test_case "finds easy CS/misc bugs" `Slow
          test_surw_finds_easy_bugs;
        Alcotest.test_case "covers both orders of a skewed program" `Quick
          test_surw_weights_cover_both_orders;
      ] );
  ]
