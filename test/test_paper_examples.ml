(* The worked examples of paper §2 (Figure 1, Examples 1 and 2), checked
   end-to-end through the engine and the explorers. *)

open Sct_core

let promote_all _ = true

(* Figure 1: T0 creates T1 (x=1; y=1), T2 (z=1), T3 (assert x==y); all
   variables initially zero; all accesses promoted to visible operations. *)
let figure1 () =
  let x = Sct.Var.make ~name:"x" 0
  and y = Sct.Var.make ~name:"y" 0
  and z = Sct.Var.make ~name:"z" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        Sct.Var.write y 1)
  in
  let t2 = Sct.spawn (fun () -> Sct.Var.write z 1) in
  let t3 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "x=y")
  in
  ignore t1;
  ignore t2;
  ignore t3

(* Example 2 variant: T2 runs the same statements as T1 (x=1; y=1). The bug
   then needs two delays but still only one preemption. *)
let figure1_twin () =
  let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
  let body () =
    Sct.Var.write x 1;
    Sct.Var.write y 1
  in
  let t1 = Sct.spawn body in
  let t2 = Sct.spawn body in
  let t3 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "x=y")
  in
  ignore (t1, t2, t3)

let explore_bounded kind c program =
  Sct_explore.Dfs.explore ~promote:promote_all ~bound:(kind c) ~limit:100_000
    program

let run_rr program =
  let scheduler (ctx : Runtime.ctx) =
    match
      Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
        ~enabled:ctx.c_enabled
    with
    | Some t -> t
    | None -> assert false
  in
  Runtime.exec ~promote:promote_all ~scheduler program

let test_rr_schedule_is_zero_cost () =
  let r = run_rr figure1 in
  Alcotest.(check int) "pc of RR schedule" 0 r.Runtime.r_pc;
  Alcotest.(check int) "dc of RR schedule" 0 r.Runtime.r_dc;
  Alcotest.(check bool) "RR schedule not buggy" false
    (Outcome.is_buggy r.Runtime.r_outcome);
  Alcotest.(check int) "four threads" 4 r.Runtime.r_n_threads

let test_pb0_misses_bug () =
  let r = explore_bounded (fun c -> Sct_explore.Dfs.Preemption c) 0 figure1 in
  Alcotest.(check bool) "level complete" true r.Sct_explore.Dfs.complete;
  Alcotest.(check int) "no buggy schedule with 0 preemptions" 0
    r.Sct_explore.Dfs.buggy

let test_pb1_finds_bug () =
  let r = explore_bounded (fun c -> Sct_explore.Dfs.Preemption c) 1 figure1 in
  Alcotest.(check bool) "bug found" true
    (r.Sct_explore.Dfs.to_first_bug <> None)

let test_db1_finds_bug () =
  let r = explore_bounded (fun c -> Sct_explore.Dfs.Delay c) 1 figure1 in
  Alcotest.(check bool) "bug found" true
    (r.Sct_explore.Dfs.to_first_bug <> None)

(* Delay bounding explores no more schedules than preemption bounding at the
   same bound (schedules with <= c delays are a subset of those with <= c
   preemptions). *)
let test_db_subset_pb () =
  List.iter
    (fun c ->
      let pb =
        explore_bounded (fun c -> Sct_explore.Dfs.Preemption c) c figure1
      in
      let db = explore_bounded (fun c -> Sct_explore.Dfs.Delay c) c figure1 in
      Alcotest.(check bool)
        (Printf.sprintf "DB(%d) schedules <= PB(%d) schedules" c c)
        true
        (db.Sct_explore.Dfs.counted <= pb.Sct_explore.Dfs.counted))
    [ 0; 1; 2 ]

(* Example 2: with T2 a twin of T1, one delay no longer suffices while one
   preemption still does. *)
let test_twin_db1_misses () =
  let r = explore_bounded (fun c -> Sct_explore.Dfs.Delay c) 1 figure1_twin in
  Alcotest.(check bool) "level complete" true r.Sct_explore.Dfs.complete;
  Alcotest.(check int) "no bug within 1 delay" 0 r.Sct_explore.Dfs.buggy

let test_twin_pb1_finds () =
  let r =
    explore_bounded (fun c -> Sct_explore.Dfs.Preemption c) 1 figure1_twin
  in
  Alcotest.(check bool) "bug found with 1 preemption" true
    (r.Sct_explore.Dfs.to_first_bug <> None)

let test_twin_db2_finds () =
  let r = explore_bounded (fun c -> Sct_explore.Dfs.Delay c) 2 figure1_twin in
  Alcotest.(check bool) "bug found with 2 delays" true
    (r.Sct_explore.Dfs.to_first_bug <> None)

(* Iterative techniques on Figure 1: IPB and IDB both report the bug at
   bound exactly 1. *)
let test_iterative_bounds () =
  let o =
    { Sct_explore.Techniques.default_options with Sct_explore.Techniques.limit = 100_000 }
  in
  let ipb =
    Sct_explore.Techniques.run ~promote:promote_all o Sct_explore.Techniques.IPB
      figure1
  in
  let idb =
    Sct_explore.Techniques.run ~promote:promote_all o Sct_explore.Techniques.IDB
      figure1
  in
  Alcotest.(check (option int)) "IPB bound" (Some 1) ipb.Sct_explore.Stats.bound;
  Alcotest.(check (option int)) "IDB bound" (Some 1) idb.Sct_explore.Stats.bound;
  Alcotest.(check bool) "IDB explores fewer or equal schedules" true
    (idb.Sct_explore.Stats.total <= ipb.Sct_explore.Stats.total)

let suites =
  [
    ( "paper-examples",
      [
        Alcotest.test_case "figure1: RR initial schedule" `Quick
          test_rr_schedule_is_zero_cost;
        Alcotest.test_case "figure1: PB=0 misses the bug" `Quick
          test_pb0_misses_bug;
        Alcotest.test_case "figure1: PB=1 finds the bug" `Quick
          test_pb1_finds_bug;
        Alcotest.test_case "figure1: DB=1 finds the bug" `Quick
          test_db1_finds_bug;
        Alcotest.test_case "DB(c) subset of PB(c)" `Quick test_db_subset_pb;
        Alcotest.test_case "example2 twin: DB=1 misses" `Quick
          test_twin_db1_misses;
        Alcotest.test_case "example2 twin: PB=1 finds" `Quick
          test_twin_pb1_finds;
        Alcotest.test_case "example2 twin: DB=2 finds" `Quick
          test_twin_db2_finds;
        Alcotest.test_case "iterative IPB/IDB bounds on figure1" `Quick
          test_iterative_bounds;
      ] );
  ]
