(* Partial-order reduction: soundness (same bug verdicts as plain DFS) and
   effectiveness (fewer schedules) on hand-built and random programs. *)

open Sct_core

let promote_all _ = true
let cap = 30_000

let dfs program =
  Sct_explore.Dfs.explore ~promote:promote_all ~bound:Sct_explore.Dfs.Unbounded
    ~limit:cap program

let por mode program =
  Sct_explore.Por.explore ~promote:promote_all ~mode ~limit:cap program

(* Two fully independent threads: n yields each. Plain DFS explores
   C(2n, n) interleavings; sleep sets collapse them to a single one. *)
let independent n () =
  let t =
    Sct.spawn (fun () ->
        for _ = 1 to n do
          Sct.yield ()
        done)
  in
  for _ = 1 to n do
    Sct.yield ()
  done;
  Sct.join t

let test_sleep_collapses_independence () =
  let d = dfs (independent 4) in
  Alcotest.(check int) "plain DFS: C(8,4)" 70 d.Sct_explore.Dfs.counted;
  let s = por Sct_explore.Por.Sleep (independent 4) in
  Alcotest.(check bool) "complete" true s.Sct_explore.Por.complete;
  Alcotest.(check int) "sleep sets: one schedule" 1 s.Sct_explore.Por.counted

let test_dpor_collapses_independence () =
  let s = por Sct_explore.Por.Dpor_sleep (independent 4) in
  Alcotest.(check int) "dpor+sleep: one schedule" 1 s.Sct_explore.Por.counted

(* Dependent operations must still be permuted: two racing writers and an
   asserting reader — every POR mode must find the bug. *)
let racy_program () =
  let x = Sct.Var.make ~name:"por_x" 0 in
  let t1 = Sct.spawn (fun () -> Sct.Var.write x 1) in
  let t2 = Sct.spawn (fun () -> Sct.Var.write x 2) in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read x = 2) "last write must win"

let test_por_finds_bugs () =
  List.iter
    (fun mode ->
      let r = por mode racy_program in
      Alcotest.(check bool) "bug found" true
        (r.Sct_explore.Por.to_first_bug <> None))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_on_figure1 () =
  let figure1 () =
    let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
    let t1 =
      Sct.spawn (fun () ->
          Sct.Var.write x 1;
          Sct.Var.write y 1)
    in
    let t2 =
      Sct.spawn (fun () ->
          let vx = Sct.Var.read x in
          let vy = Sct.Var.read y in
          Sct.check (vx = vy) "x=y")
    in
    ignore (t1, t2)
  in
  let d = dfs figure1 in
  List.iter
    (fun mode ->
      let r = por mode figure1 in
      Alcotest.(check bool) "bug found" true
        (r.Sct_explore.Por.to_first_bug <> None);
      Alcotest.(check bool) "no more schedules than DFS" true
        (r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

(* Locked increments: the final state is schedule-independent, so POR may
   reduce heavily, but completeness (no bug) must be preserved. *)
let locked_counters () =
  let m = Sct.Mutex.create () in
  let c = Sct.Var.make ~name:"por_c" 0 in
  let body () =
    Sct.Mutex.lock m;
    Sct.Var.write c (Sct.Var.read c + 1);
    Sct.Mutex.unlock m
  in
  let t1 = Sct.spawn body in
  let t2 = Sct.spawn body in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read c = 2) "no lost update"

(* Lock-handover reordering: the twostage defect, whose only reachable
   backtrack points sit at lock acquisitions (the racing thread is blocked
   at the inner frames). A regression test for the access-history form of
   the DPOR race analysis. *)
let twostage () =
  let ma = Sct.Mutex.create () in
  let mb = Sct.Mutex.create () in
  let data1 = Sct.Var.make ~name:"ts_data1" 0 in
  let data2 = Sct.Var.make ~name:"ts_data2" 0 in
  let writer =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        Sct.Var.write data1 1;
        Sct.Mutex.unlock ma;
        Sct.Mutex.lock mb;
        Sct.Var.write data2 (Sct.Var.read data1 + 1);
        Sct.Mutex.unlock mb)
  in
  let reader =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        let t = Sct.Var.read data1 in
        Sct.Mutex.unlock ma;
        if t <> 0 then begin
          Sct.Mutex.lock mb;
          let u = Sct.Var.read data2 in
          Sct.Mutex.unlock mb;
          Sct.check (u = t + 1) "second stage lagging"
        end)
  in
  Sct.join writer;
  Sct.join reader

let test_por_lock_handover () =
  let d = dfs twostage in
  Alcotest.(check bool) "DFS finds it" true
    (d.Sct_explore.Dfs.to_first_bug <> None);
  List.iter
    (fun mode ->
      let r = por mode twostage in
      Alcotest.(check bool) "POR finds the handover bug" true
        (r.Sct_explore.Por.to_first_bug <> None);
      Alcotest.(check bool) "with fewer schedules" true
        (r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_deadlock_found () =
  (* the ABBA deadlock must survive the reduction in every mode *)
  let program () =
    let a = Sct.Mutex.create () in
    let b = Sct.Mutex.create () in
    let t1 =
      Sct.spawn (fun () ->
          Sct.Mutex.lock a;
          Sct.Mutex.lock b;
          Sct.Mutex.unlock b;
          Sct.Mutex.unlock a)
    in
    let t2 =
      Sct.spawn (fun () ->
          Sct.Mutex.lock b;
          Sct.Mutex.lock a;
          Sct.Mutex.unlock a;
          Sct.Mutex.unlock b)
    in
    Sct.join t1;
    Sct.join t2
  in
  List.iter
    (fun mode ->
      let r = por mode program in
      match r.Sct_explore.Por.first_bug with
      | Some { Sct_explore.Stats.w_bug = Outcome.Deadlock _; _ } -> ()
      | _ -> Alcotest.failf "deadlock missed by POR")
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_correct_program () =
  List.iter
    (fun mode ->
      let r = por mode locked_counters in
      Alcotest.(check bool) "complete" true r.Sct_explore.Por.complete;
      Alcotest.(check int) "no bug" 0 r.Sct_explore.Por.buggy)
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

(* Soundness over the random program family: POR agrees with plain DFS on
   bug existence, and never explores more terminal schedules. *)
let prop_por_sound =
  QCheck2.Test.make ~name:"POR preserves bug verdicts, reduces schedules"
    ~count:30 ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program = Test_programs_qcheck.build gp in
      let d = dfs program in
      QCheck2.assume d.Sct_explore.Dfs.complete;
      List.for_all
        (fun mode ->
          let r = por mode program in
          r.Sct_explore.Por.complete
          && r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted
          && r.Sct_explore.Por.buggy = 0 (* family is bug-free *)
          && d.Sct_explore.Dfs.buggy = 0)
        Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])

(* A buggy random-family variant: append an assertion-carrying reader
   thread; POR must find the bug whenever DFS does. *)
let prop_por_finds_what_dfs_finds =
  QCheck2.Test.make ~name:"POR finds every bug DFS finds" ~count:30
    ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program () =
        let flag = Sct.Var.make ~name:"pb_flag" 0 in
        let checker =
          Sct.spawn (fun () ->
              let a = Sct.Var.read flag in
              let b = Sct.Var.read flag in
              Sct.check (a = b) "torn flag")
        in
        let writer =
          Sct.spawn (fun () ->
              Sct.Var.write flag 1;
              Sct.Var.write flag 2)
        in
        Test_programs_qcheck.build gp ();
        Sct.join checker;
        Sct.join writer
      in
      let d = dfs program in
      QCheck2.assume d.Sct_explore.Dfs.complete;
      List.for_all
        (fun mode ->
          let r = por mode program in
          (r.Sct_explore.Por.to_first_bug <> None)
          = (d.Sct_explore.Dfs.to_first_bug <> None))
        Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])

(* --- the --por mode flag ------------------------------------------------ *)

let test_parse_mode () =
  List.iter
    (fun (s, m) ->
      match Sct_explore.Por.parse_mode s with
      | Ok m' when m' = m -> ()
      | Ok _ -> Alcotest.failf "%s parsed to the wrong mode" s
      | Error e -> Alcotest.failf "%s rejected: %s" s e)
    Sct_explore.Por.
      [
        ("sleep", Sleep);
        ("dpor", Dpor);
        ("dpor+sleep", Dpor_sleep);
        ("both", Dpor_sleep);
        ("DPOR", Dpor);
      ];
  match Sct_explore.Por.parse_mode "bogus" with
  | Ok _ -> Alcotest.fail "bogus mode accepted"
  | Error e ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "error lists %s" m)
            true
            (Astring_contains.contains e m))
        Sct_explore.Por.valid_mode_names

(* --- the supports_por capability ---------------------------------------- *)

let test_supports_por_capability () =
  List.iter
    (fun (t, expect) ->
      Alcotest.(check bool)
        (Sct_explore.Techniques.name t)
        expect
        (Sct_explore.Techniques.supports_por t))
    Sct_explore.Techniques.
      [
        (DFS, true);
        (IPB, true);
        (IDB, true);
        (Rand, false);
        (PCT, false);
        (Maple, false);
        (SURW, false);
      ]

(* --- BPOR: the bounded walks against the plain bounded walks ------------ *)

(* At every bound level the reduced walk explores a subset of the plain
   bounded tree, so on exhausted spaces it must agree on bug-freedom while
   counting no more schedules (the oracle's law, pinned here on the
   hand-built programs whose shape we know). *)
let test_bpor_bound_equivalence () =
  List.iter
    (fun program ->
      List.iter
        (fun bound ->
          let plain =
            Sct_explore.Dfs.explore ~promote:promote_all ~bound ~limit:cap
              program
          in
          List.iter
            (fun mode ->
              let r =
                Sct_explore.Por.explore ~promote:promote_all ~bound ~mode
                  ~limit:cap program
              in
              Alcotest.(check bool) "no more schedules than plain" true
                (r.Sct_explore.Por.counted <= plain.Sct_explore.Dfs.counted);
              if
                plain.Sct_explore.Dfs.complete
                && not plain.Sct_explore.Dfs.hit_limit
              then begin
                Alcotest.(check bool) "complete" true
                  r.Sct_explore.Por.complete;
                Alcotest.(check bool) "bug-freedom agreement" true
                  (r.Sct_explore.Por.buggy > 0
                  = (plain.Sct_explore.Dfs.buggy > 0))
              end)
            Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])
        Sct_explore.Dfs.
          [ Preemption 0; Preemption 1; Preemption 2; Delay 1; Delay 2 ])
    [ racy_program; twostage; locked_counters ]

(* The campaign-level law over the random bug-free family: every terminal
   HB-signature of the POR-composed IPB/IDB campaign is a signature of the
   plain campaign at the same bound (the reduced walk explores a subset of
   the bounded tree), and both campaigns complete together. Signatures
   rather than schedule sets: the walks may count equivalent schedules in
   different orders across levels. *)
let signatures_of strategy program =
  let sigs = ref [] in
  let s =
    Sct_explore.Driver.explore ~promote:promote_all ~record_decisions:true
      ~limit:cap
      ~on_schedule:(fun r ->
        sigs :=
          Sct_explore.Hb_signature.(
            to_string (of_decisions r.Runtime.r_decisions))
          :: !sigs)
      strategy program
  in
  (s, List.sort_uniq String.compare !sigs)

let prop_bpor_signature_subset =
  QCheck2.Test.make
    ~name:"BPOR campaign signatures are a subset of the plain campaign's"
    ~count:20 ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program = Test_programs_qcheck.build gp in
      List.for_all
        (fun kind ->
          let plain, plain_sigs =
            signatures_of (Sct_explore.Bounded.strategy ~kind ()) program
          in
          QCheck2.assume
            (plain.Sct_explore.Stats.complete
            && not plain.Sct_explore.Stats.hit_limit);
          List.for_all
            (fun mode ->
              let bpor, bpor_sigs =
                signatures_of
                  (Sct_explore.Bounded.strategy ~por:mode ~kind ())
                  program
              in
              bpor.Sct_explore.Stats.complete
              && List.for_all
                   (fun s -> List.mem s plain_sigs)
                   bpor_sigs)
            Sct_explore.Por.[ Dpor; Dpor_sleep ])
        Sct_explore.Bounded.[ Preemption_bounding; Delay_bounding ])

let suites =
  [
    ( "partial-order-reduction",
      [
        Alcotest.test_case "sleep sets collapse independent threads" `Quick
          test_sleep_collapses_independence;
        Alcotest.test_case "dpor collapses independent threads" `Quick
          test_dpor_collapses_independence;
        Alcotest.test_case "all modes find racing-writer bug" `Quick
          test_por_finds_bugs;
        Alcotest.test_case "all modes find the figure1 bug" `Quick
          test_por_on_figure1;
        Alcotest.test_case "lock-handover reordering found" `Quick
          test_por_lock_handover;
        Alcotest.test_case "deadlock survives the reduction" `Quick
          test_por_deadlock_found;
        Alcotest.test_case "correct program verified" `Quick
          test_por_correct_program;
        QCheck_alcotest.to_alcotest prop_por_sound;
        QCheck_alcotest.to_alcotest prop_por_finds_what_dfs_finds;
        Alcotest.test_case "--por mode names parse, errors list all modes"
          `Quick test_parse_mode;
        Alcotest.test_case "supports_por capability per technique" `Quick
          test_supports_por_capability;
        Alcotest.test_case "BPOR agrees with the plain bounded walks" `Quick
          test_bpor_bound_equivalence;
        QCheck_alcotest.to_alcotest prop_bpor_signature_subset;
      ] );
  ]
