(* Partial-order reduction: soundness (same bug verdicts as plain DFS) and
   effectiveness (fewer schedules) on hand-built and random programs. *)

open Sct_core

let promote_all _ = true
let cap = 30_000

let dfs program =
  Sct_explore.Dfs.explore ~promote:promote_all ~bound:Sct_explore.Dfs.Unbounded
    ~limit:cap program

let por mode program =
  Sct_explore.Por.explore ~promote:promote_all ~mode ~limit:cap program

(* Two fully independent threads: n yields each. Plain DFS explores
   C(2n, n) interleavings; sleep sets collapse them to a single one. *)
let independent n () =
  let t =
    Sct.spawn (fun () ->
        for _ = 1 to n do
          Sct.yield ()
        done)
  in
  for _ = 1 to n do
    Sct.yield ()
  done;
  Sct.join t

let test_sleep_collapses_independence () =
  let d = dfs (independent 4) in
  Alcotest.(check int) "plain DFS: C(8,4)" 70 d.Sct_explore.Dfs.counted;
  let s = por Sct_explore.Por.Sleep (independent 4) in
  Alcotest.(check bool) "complete" true s.Sct_explore.Por.complete;
  Alcotest.(check int) "sleep sets: one schedule" 1 s.Sct_explore.Por.counted

let test_dpor_collapses_independence () =
  let s = por Sct_explore.Por.Dpor_sleep (independent 4) in
  Alcotest.(check int) "dpor+sleep: one schedule" 1 s.Sct_explore.Por.counted

(* Dependent operations must still be permuted: two racing writers and an
   asserting reader — every POR mode must find the bug. *)
let racy_program () =
  let x = Sct.Var.make ~name:"por_x" 0 in
  let t1 = Sct.spawn (fun () -> Sct.Var.write x 1) in
  let t2 = Sct.spawn (fun () -> Sct.Var.write x 2) in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read x = 2) "last write must win"

let test_por_finds_bugs () =
  List.iter
    (fun mode ->
      let r = por mode racy_program in
      Alcotest.(check bool) "bug found" true
        (r.Sct_explore.Por.to_first_bug <> None))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_on_figure1 () =
  let figure1 () =
    let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
    let t1 =
      Sct.spawn (fun () ->
          Sct.Var.write x 1;
          Sct.Var.write y 1)
    in
    let t2 =
      Sct.spawn (fun () ->
          let vx = Sct.Var.read x in
          let vy = Sct.Var.read y in
          Sct.check (vx = vy) "x=y")
    in
    ignore (t1, t2)
  in
  let d = dfs figure1 in
  List.iter
    (fun mode ->
      let r = por mode figure1 in
      Alcotest.(check bool) "bug found" true
        (r.Sct_explore.Por.to_first_bug <> None);
      Alcotest.(check bool) "no more schedules than DFS" true
        (r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

(* Locked increments: the final state is schedule-independent, so POR may
   reduce heavily, but completeness (no bug) must be preserved. *)
let locked_counters () =
  let m = Sct.Mutex.create () in
  let c = Sct.Var.make ~name:"por_c" 0 in
  let body () =
    Sct.Mutex.lock m;
    Sct.Var.write c (Sct.Var.read c + 1);
    Sct.Mutex.unlock m
  in
  let t1 = Sct.spawn body in
  let t2 = Sct.spawn body in
  Sct.join t1;
  Sct.join t2;
  Sct.check (Sct.Var.read c = 2) "no lost update"

(* Lock-handover reordering: the twostage defect, whose only reachable
   backtrack points sit at lock acquisitions (the racing thread is blocked
   at the inner frames). A regression test for the access-history form of
   the DPOR race analysis. *)
let twostage () =
  let ma = Sct.Mutex.create () in
  let mb = Sct.Mutex.create () in
  let data1 = Sct.Var.make ~name:"ts_data1" 0 in
  let data2 = Sct.Var.make ~name:"ts_data2" 0 in
  let writer =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        Sct.Var.write data1 1;
        Sct.Mutex.unlock ma;
        Sct.Mutex.lock mb;
        Sct.Var.write data2 (Sct.Var.read data1 + 1);
        Sct.Mutex.unlock mb)
  in
  let reader =
    Sct.spawn (fun () ->
        Sct.Mutex.lock ma;
        let t = Sct.Var.read data1 in
        Sct.Mutex.unlock ma;
        if t <> 0 then begin
          Sct.Mutex.lock mb;
          let u = Sct.Var.read data2 in
          Sct.Mutex.unlock mb;
          Sct.check (u = t + 1) "second stage lagging"
        end)
  in
  Sct.join writer;
  Sct.join reader

let test_por_lock_handover () =
  let d = dfs twostage in
  Alcotest.(check bool) "DFS finds it" true
    (d.Sct_explore.Dfs.to_first_bug <> None);
  List.iter
    (fun mode ->
      let r = por mode twostage in
      Alcotest.(check bool) "POR finds the handover bug" true
        (r.Sct_explore.Por.to_first_bug <> None);
      Alcotest.(check bool) "with fewer schedules" true
        (r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted))
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_deadlock_found () =
  (* the ABBA deadlock must survive the reduction in every mode *)
  let program () =
    let a = Sct.Mutex.create () in
    let b = Sct.Mutex.create () in
    let t1 =
      Sct.spawn (fun () ->
          Sct.Mutex.lock a;
          Sct.Mutex.lock b;
          Sct.Mutex.unlock b;
          Sct.Mutex.unlock a)
    in
    let t2 =
      Sct.spawn (fun () ->
          Sct.Mutex.lock b;
          Sct.Mutex.lock a;
          Sct.Mutex.unlock a;
          Sct.Mutex.unlock b)
    in
    Sct.join t1;
    Sct.join t2
  in
  List.iter
    (fun mode ->
      let r = por mode program in
      match r.Sct_explore.Por.first_bug with
      | Some { Sct_explore.Stats.w_bug = Outcome.Deadlock _; _ } -> ()
      | _ -> Alcotest.failf "deadlock missed by POR")
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

let test_por_correct_program () =
  List.iter
    (fun mode ->
      let r = por mode locked_counters in
      Alcotest.(check bool) "complete" true r.Sct_explore.Por.complete;
      Alcotest.(check int) "no bug" 0 r.Sct_explore.Por.buggy)
    Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ]

(* Soundness over the random program family: POR agrees with plain DFS on
   bug existence, and never explores more terminal schedules. *)
let prop_por_sound =
  QCheck2.Test.make ~name:"POR preserves bug verdicts, reduces schedules"
    ~count:30 ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program = Test_programs_qcheck.build gp in
      let d = dfs program in
      QCheck2.assume d.Sct_explore.Dfs.complete;
      List.for_all
        (fun mode ->
          let r = por mode program in
          r.Sct_explore.Por.complete
          && r.Sct_explore.Por.counted <= d.Sct_explore.Dfs.counted
          && r.Sct_explore.Por.buggy = 0 (* family is bug-free *)
          && d.Sct_explore.Dfs.buggy = 0)
        Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])

(* A buggy random-family variant: append an assertion-carrying reader
   thread; POR must find the bug whenever DFS does. *)
let prop_por_finds_what_dfs_finds =
  QCheck2.Test.make ~name:"POR finds every bug DFS finds" ~count:30
    ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program () =
        let flag = Sct.Var.make ~name:"pb_flag" 0 in
        let checker =
          Sct.spawn (fun () ->
              let a = Sct.Var.read flag in
              let b = Sct.Var.read flag in
              Sct.check (a = b) "torn flag")
        in
        let writer =
          Sct.spawn (fun () ->
              Sct.Var.write flag 1;
              Sct.Var.write flag 2)
        in
        Test_programs_qcheck.build gp ();
        Sct.join checker;
        Sct.join writer
      in
      let d = dfs program in
      QCheck2.assume d.Sct_explore.Dfs.complete;
      List.for_all
        (fun mode ->
          let r = por mode program in
          (r.Sct_explore.Por.to_first_bug <> None)
          = (d.Sct_explore.Dfs.to_first_bug <> None))
        Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])

let suites =
  [
    ( "partial-order-reduction",
      [
        Alcotest.test_case "sleep sets collapse independent threads" `Quick
          test_sleep_collapses_independence;
        Alcotest.test_case "dpor collapses independent threads" `Quick
          test_dpor_collapses_independence;
        Alcotest.test_case "all modes find racing-writer bug" `Quick
          test_por_finds_bugs;
        Alcotest.test_case "all modes find the figure1 bug" `Quick
          test_por_on_figure1;
        Alcotest.test_case "lock-handover reordering found" `Quick
          test_por_lock_handover;
        Alcotest.test_case "deadlock survives the reduction" `Quick
          test_por_deadlock_found;
        Alcotest.test_case "correct program verified" `Quick
          test_por_correct_program;
        QCheck_alcotest.to_alcotest prop_por_sound;
        QCheck_alcotest.to_alcotest prop_por_finds_what_dfs_finds;
      ] );
  ]
