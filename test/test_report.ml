(* The reporting layer: Venn region computation, Table 2 derivation and the
   printers (smoke-tested against a real mini-run). *)

open Sct_explore

let mini_rows () =
  (* run the full pipeline on three small benchmarks *)
  let o = { Techniques.default_options with Techniques.limit = 800 } in
  let pick name =
    match Sctbench.Registry.by_name name with
    | Some b -> b
    | None -> Alcotest.fail ("missing " ^ name)
  in
  Sct_report.Run_data.run_all o
    [ pick "CS.lazy01_bad"; pick "CS.deadlock01_bad"; pick "splash2.fft" ]

let rows = lazy (mini_rows ())

let test_found_by () =
  let rows = Lazy.force rows in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Sct_report.Run_data.bench.Sctbench.Bench.name ^ " found by IDB")
        true
        (Sct_report.Run_data.found_by row Techniques.IDB))
    rows

let test_venn_regions_sum () =
  let rows = Lazy.force rows in
  let v = Sct_report.Venn.compute rows Techniques.IPB Techniques.IDB Techniques.DFS in
  let total =
    v.Sct_report.Venn.only_a + v.Sct_report.Venn.only_b
    + v.Sct_report.Venn.only_c + v.Sct_report.Venn.ab + v.Sct_report.Venn.ac
    + v.Sct_report.Venn.bc + v.Sct_report.Venn.abc + v.Sct_report.Venn.none
  in
  Alcotest.(check int) "regions partition the benchmarks" (List.length rows)
    total

let test_idb_superset_ipb () =
  (* the paper's headline: IDB finds everything IPB finds *)
  let rows = Lazy.force rows in
  let v = Sct_report.Venn.compute rows Techniques.IPB Techniques.IDB Techniques.DFS in
  Alcotest.(check int) "nothing found by IPB only" 0 v.Sct_report.Venn.only_a;
  Alcotest.(check int) "nothing found by IPB+DFS without IDB" 0
    v.Sct_report.Venn.ac

let test_table2 () =
  let rows = Lazy.force rows in
  let t = Sct_report.Table2.compute ~limit:800 rows in
  (* lazy01 is buggy on the initial (zero-delay) schedule *)
  Alcotest.(check bool) "at least one DB=0 benchmark" true
    (t.Sct_report.Table2.db0 >= 1);
  Alcotest.(check bool) "counts bounded by row count" true
    (t.Sct_report.Table2.rand_all <= List.length rows)

let capture f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_printers_produce_output () =
  let rows = Lazy.force rows in
  let t1 = capture (fun out -> Sct_report.Table1.print ~out Sctbench.Registry.all) in
  Alcotest.(check bool) "table1 mentions CHESS" true
    (String.length t1 > 0
    && Astring_contains.contains t1 "work stealing queue");
  let t3 = capture (fun out -> Sct_report.Table3.print ~out ~limit:800 rows) in
  Alcotest.(check bool) "table3 has a row per benchmark" true
    (List.for_all
       (fun r ->
         Astring_contains.contains t3
           r.Sct_report.Run_data.bench.Sctbench.Bench.name)
       rows);
  let f2 = capture (fun out -> Sct_report.Venn.print_figure2 ~out rows) in
  Alcotest.(check bool) "figure2 labels both diagrams" true
    (Astring_contains.contains f2 "Figure 2a"
    && Astring_contains.contains f2 "Figure 2b");
  let f3 =
    capture (fun out -> Sct_report.Figures.print_figure3 ~out ~limit:800 rows)
  in
  Alcotest.(check bool) "figure3 is CSV" true
    (Astring_contains.contains f3 "idb_x,ipb_y");
  let f4 =
    capture (fun out -> Sct_report.Figures.print_figure4 ~out ~limit:800 rows)
  in
  Alcotest.(check bool) "figure4 mentions worst case" true
    (Astring_contains.contains f4 "worst case")

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "pipeline rows find bugs" `Slow test_found_by;
        Alcotest.test_case "venn regions partition" `Slow
          test_venn_regions_sum;
        Alcotest.test_case "IDB supersedes IPB" `Slow test_idb_superset_ipb;
        Alcotest.test_case "table 2 derivation" `Slow test_table2;
        Alcotest.test_case "printers produce output" `Slow
          test_printers_produce_output;
      ] );
  ]
