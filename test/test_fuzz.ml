(* The self-testing fuzz subsystem: generator determinism, compile smoke,
   a fixed-seed differential-oracle campaign, the shrinker, and — the
   harness's own oracle — a deliberately broken technique that must be
   caught and shrunk to a tiny counterexample. *)

open Sct_fuzz

let quick_cfg =
  {
    Oracle.limit = 300;
    max_steps = 3_000;
    race_runs = 3;
    prefix_batch = false;
    por = None;
    techniques = Sct_explore.Techniques.all;
  }

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* --- generator ---------------------------------------------------------- *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.program ~seed and b = Gen.program ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d generates the same program twice" seed)
        true (Ast.equal a b))
    [ 0; 1; 7; 1234; 0xF00D ];
  let a = Gen.program ~seed:0 and b = Gen.program ~seed:1 in
  Alcotest.(check bool) "different seeds differ (spot check)" false
    (Ast.equal a b)

let test_derive_seed_stable () =
  Alcotest.(check int) "derived seed is a pure function"
    (Gen.derive_seed ~campaign_seed:3 ~index:14)
    (Gen.derive_seed ~campaign_seed:3 ~index:14);
  Alcotest.(check bool) "indices derive distinct seeds" false
    (Gen.derive_seed ~campaign_seed:3 ~index:0
    = Gen.derive_seed ~campaign_seed:3 ~index:1)

let test_compile_smoke () =
  (* every generated program must execute to a terminal state under the
     deterministic round-robin scheduler *)
  for seed = 0 to 24 do
    let program = Compile.program (Gen.program ~seed) in
    match
      Sct_explore.Replay.replay
        ~promote:(fun _ -> true)
        ~max_steps:3_000 ~strict:false
        ~schedule:Sct_core.Schedule.empty program
    with
    | Some _ -> ()
    | None -> Alcotest.failf "seed %d: round-robin replay failed" seed
  done

(* --- the fixed-seed differential campaign ------------------------------- *)

(* 200 programs, every technique of the study including the four bounding
   axes: the ISSUE-grade regression net for the axes' oracle laws
   (agreement, no-bug-lost, cut algebra). *)
let test_campaign_clean () =
  let s = Harness.run ~cfg:quick_cfg ~seed:0 ~count:200 () in
  Alcotest.(check int) "200 programs checked" 200 s.Harness.s_programs;
  (match s.Harness.s_counterexamples with
  | [] -> ()
  | cx :: _ ->
      Alcotest.failf "unexpected violation:@.%a" Harness.pp_counterexample cx);
  (* sharding the campaign by index changes nothing *)
  let r =
    List.init 15 (fun i -> Harness.one_program ~cfg:quick_cfg ~campaign_seed:0 i)
  in
  Alcotest.(check int) "indexed reports agree with the sequential run" 0
    (List.length (Harness.summarize r).Harness.s_counterexamples)

(* --- the shrinker ------------------------------------------------------- *)

let has_incr p =
  let rec stmt = function
    | Ast.Incr _ -> true
    | Ast.Lock { body; _ } | Ast.Try_lock { body; _ } | Ast.Loop { body; _ }
      ->
        List.exists stmt body
    | Ast.If_eq { then_; else_; _ } ->
        List.exists stmt then_ || List.exists stmt else_
    | _ -> false
  in
  List.exists (List.exists stmt) p.Ast.threads

let test_shrink_minimal () =
  let p =
    {
      Ast.threads =
        [
          [
            Ast.Lock
              { m = 0; body = [ Ast.Yield; Ast.Incr { var = 0 }; Ast.Yield ] };
            Ast.Barrier_wait;
          ];
          [ Ast.Loop { times = 3; body = [ Ast.Sem_wait ] } ];
        ];
    }
  in
  let shrunk = Shrink.shrink ~check:has_incr p in
  Alcotest.(check bool) "shrunk program still has the Incr" true
    (has_incr shrunk);
  Alcotest.(check int) "shrunk to the single relevant statement" 1
    (Ast.size shrunk);
  (* deterministic: shrinking again yields the same program *)
  let again = Shrink.shrink ~check:has_incr p in
  Alcotest.(check bool) "shrinking is deterministic" true
    (Ast.equal shrunk again);
  Alcotest.check_raises "shrink refuses a passing program"
    (Invalid_argument "Sct_fuzz.Shrink.shrink: program does not fail")
    (fun () -> ignore (Shrink.shrink ~check:(fun _ -> false) p))

let test_candidates_decrease () =
  for seed = 0 to 19 do
    let p = Gen.program ~seed in
    List.iter
      (fun c ->
        if Ast.size c > Ast.size p then
          Alcotest.failf "seed %d: candidate grew from %d to %d nodes" seed
            (Ast.size p) (Ast.size c);
        if Ast.equal c p then
          Alcotest.failf "seed %d: candidate equals its parent" seed)
      (Shrink.candidates p)
  done

(* --- fault injection: the harness must catch a broken technique --------- *)

(* An "IPB" that silently drops every bug it finds: breaks the paper's
   DFS ⊆ IPB inclusion on any exhaustible buggy program. *)
let strip_ipb_bugs (base : Oracle.runner) : Oracle.runner =
 fun t ->
  let s = base t in
  match t with
  | Sct_explore.Techniques.IPB ->
      {
        s with
        Sct_explore.Stats.first_bug = None;
        to_first_bug = None;
        buggy = 0;
      }
  | _ -> s

(* shared between the two tests below: the campaign is the expensive part *)
let injected_summary =
  lazy (Harness.run ~wrap:strip_ipb_bugs ~cfg:quick_cfg ~seed:0 ~count:12 ())

let test_injected_fault_caught () =
  let s = Lazy.force injected_summary in
  let cxs = s.Harness.s_counterexamples in
  Alcotest.(check bool) "the broken IPB is caught" true (cxs <> []);
  List.iter
    (fun cx ->
      Alcotest.(check bool)
        (Printf.sprintf "program %d: shrunk to <= 10 nodes (got %d)"
           cx.Harness.cx_index
           (Ast.size cx.Harness.cx_shrunk))
        true
        (Ast.size cx.Harness.cx_shrunk <= 10);
      Alcotest.(check bool) "shrunk counterexample still violates" true
        (cx.Harness.cx_violations <> []);
      Alcotest.(check bool) "the violated invariant is the inclusion" true
        (List.exists
           (fun v -> v.Oracle.v_invariant = "inclusion")
           cx.Harness.cx_violations))
    cxs

let test_dump_artifact () =
  let s = Lazy.force injected_summary in
  match s.Harness.s_counterexamples with
  | [] -> Alcotest.fail "expected a counterexample to dump"
  | cx :: _ ->
      let dir = Filename.temp_file "sct_fuzz" "" in
      Sys.remove dir;
      let path = Harness.dump ~dir cx in
      let content = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check bool) "artifact records the format header" true
        (contains ~needle:"sct-fuzz counterexample v1" content);
      Alcotest.(check bool) "artifact records the seed" true
        (contains
           ~needle:(Printf.sprintf "program seed:  %d" cx.Harness.cx_seed)
           content);
      Alcotest.(check bool) "artifact records the invariant" true
        (contains ~needle:"inclusion" content);
      (* idempotent: a second dump leaves the file untouched *)
      let again = Harness.dump ~dir cx in
      Alcotest.(check string) "same path" path again

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator is deterministic" `Quick
          test_gen_deterministic;
        Alcotest.test_case "per-program seeds are stable" `Quick
          test_derive_seed_stable;
        Alcotest.test_case "generated programs compile and run" `Quick
          test_compile_smoke;
        Alcotest.test_case "shrinker reaches the minimal program" `Quick
          test_shrink_minimal;
        Alcotest.test_case "shrink candidates never grow" `Quick
          test_candidates_decrease;
        Alcotest.test_case "fixed-seed campaign: no violations" `Slow
          test_campaign_clean;
        Alcotest.test_case "injected inclusion-breaking IPB is caught" `Slow
          test_injected_fault_caught;
        Alcotest.test_case "counterexamples dump as replayable artifacts"
          `Slow test_dump_artifact;
      ] );
  ]
