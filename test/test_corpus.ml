(* The corpus factory: program serialization round-trips, the
   HB-signature/POR law the dedupe digest rests on, shrink idempotence,
   mining determinism, promotion round-trips, the registry extension
   mechanism, and the [corpus stats] golden file. *)

open Sct_corpus
module Gen = Sct_fuzz.Gen
module Ast = Sct_fuzz.Ast
module Compile = Sct_fuzz.Compile
module Shrink = Sct_fuzz.Shrink

let vocabs = [ Gen.Classic; Gen.Async; Gen.Full ]

(* --- program text ------------------------------------------------------- *)

let test_text_roundtrip () =
  List.iter
    (fun vocab ->
      for seed = 0 to 30 do
        let p = Gen.generate ~vocab ~seed () in
        let text = Program_text.to_string p in
        match Program_text.parse text with
        | Error msg ->
            Alcotest.failf "vocab %s seed %d: parse failed: %s"
              (Gen.vocab_name vocab) seed msg
        | Ok q ->
            if not (Ast.equal p q) then
              Alcotest.failf "vocab %s seed %d: roundtrip changed the program"
                (Gen.vocab_name vocab) seed
      done)
    vocabs

let test_text_rejects () =
  let bad =
    [
      ("empty input", "");
      ("missing header", "(thread (yield))\n");
      ("unknown form", Program_text.header ^ "\n(thread (frobnicate))\n");
      ("statement at top level", Program_text.header ^ "\n(yield)\n");
      ("unbalanced parens", Program_text.header ^ "\n(thread (yield)\n");
      ("bad arity", Program_text.header ^ "\n(thread (write 1))\n");
    ]
  in
  List.iter
    (fun (what, src) ->
      match Program_text.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: expected a parse error" what)
    bad

(* --- the HB/POR law behind the dedupe digest ---------------------------- *)

(* Two schedules that differ only by swapping adjacent commuting steps of
   different threads are POR-equivalent, and the behavioural digest rests
   on them having equal HB signatures.

   Two refinements make the property exact. First, the signature is
   deliberately FINER than Mazurkiewicz trace equivalence: it records each
   object's full touch sequence, reads included, so swapping two reads of
   the same variable — independent for POR — changes the signature. The
   invariance the digest actually enjoys is under swaps of operations with
   DISJOINT footprints, which is what [commutes] demands. Second, the law
   quantifies over complete (Ok) executions: a bug halts the run, so
   swapping a step past a bug-raising one changes which events exist at
   all, not merely their order. *)

let promote_all _ = true

let guided order program =
  let remaining = ref order in
  let scheduler (ctx : Sct_core.Runtime.ctx) =
    match !remaining with
    | t :: rest
      when List.exists (Sct_core.Tid.equal t) ctx.Sct_core.Runtime.c_enabled ->
        remaining := rest;
        t
    | _ -> (
        match
          Sct_core.Delay.deterministic_choice
            ~n:ctx.Sct_core.Runtime.c_n_threads
            ~last:ctx.Sct_core.Runtime.c_last
            ~enabled:ctx.Sct_core.Runtime.c_enabled
        with
        | Some t -> t
        | None -> assert false)
  in
  Sct_core.Runtime.exec ~promote:promote_all ~record_decisions:true ~scheduler
    program

let commutes a b =
  (not (Sct_core.Op_depend.global a))
  && (not (Sct_core.Op_depend.global b))
  && (not (Sct_core.Op_depend.dependent a b))
  && List.for_all
       (fun (o, _) -> not (List.mem_assoc o (Sct_core.Op_depend.footprint b)))
       (Sct_core.Op_depend.footprint a)

(* Index of the first adjacent pair of decisions that commute: different
   threads, the second already enabled before the first ran, disjoint
   operation footprints. *)
let swappable decisions =
  let arr = Array.of_list decisions in
  let ok i =
    let a = arr.(i) and b = arr.(i + 1) in
    (not (Sct_core.Tid.equal a.Sct_core.Runtime.d_chosen b.Sct_core.Runtime.d_chosen))
    && List.exists
         (Sct_core.Tid.equal b.Sct_core.Runtime.d_chosen)
         a.Sct_core.Runtime.d_enabled
    && commutes a.Sct_core.Runtime.d_op b.Sct_core.Runtime.d_op
  in
  let rec go i = if i + 1 >= Array.length arr then None else if ok i then Some i else go (i + 1) in
  go 0

let swap_at i order =
  List.mapi
    (fun j t ->
      if j = i then List.nth order (i + 1)
      else if j = i + 1 then List.nth order i
      else t)
    order

let hb_por_law =
  QCheck2.Test.make ~name:"HB signature invariant under commuting swaps"
    ~count:120
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let program = Compile.program (Gen.generate ~vocab:Gen.Full ~seed ()) in
      let r = guided [] program in
      if r.Sct_core.Runtime.r_outcome <> Sct_core.Outcome.Ok then true
      else
        let decisions = r.Sct_core.Runtime.r_decisions in
        match swappable decisions with
        | None -> true (* no commuting adjacent pair in this run *)
        | Some i ->
            let order =
              List.map (fun d -> d.Sct_core.Runtime.d_chosen) decisions
            in
            let swapped = guided (swap_at i order) program in
            Sct_explore.Hb_signature.equal
              (Sct_explore.Hb_signature.of_decisions decisions)
              (Sct_explore.Hb_signature.of_decisions swapped.Sct_core.Runtime.r_decisions))

(* ...and a conflicting swap must be allowed to differ — sanity-check that
   the law above is not vacuous because signatures ignore order entirely. *)
let test_signature_not_order_blind () =
  let distinct = ref false in
  let seed = ref 0 in
  while (not !distinct) && !seed < 50 do
    let program = Compile.program (Gen.generate ~vocab:Gen.Full ~seed:!seed ()) in
    let d1 = (guided [] program).Sct_core.Runtime.r_decisions in
    let s1 = Sct_explore.Hb_signature.of_decisions d1 in
    let order = List.map (fun d -> d.Sct_core.Runtime.d_chosen) d1 in
    let d2 = (guided (List.rev order) program).Sct_core.Runtime.r_decisions in
    let s2 = Sct_explore.Hb_signature.of_decisions d2 in
    if not (Sct_explore.Hb_signature.equal s1 s2) then distinct := true;
    incr seed
  done;
  Alcotest.(check bool)
    "some program distinguishes two schedule orders" true !distinct

(* --- shrink idempotence (tie-breaking contract) ------------------------- *)

let test_shrink_idempotent () =
  for seed = 0 to 20 do
    let p = Gen.generate ~vocab:Gen.Full ~seed () in
    let d0 = Signature.digest ~limit:100 ~max_steps:2_000 (Compile.program p) in
    let check q =
      Signature.digest ~limit:100 ~max_steps:2_000 (Compile.program q) = d0
    in
    let once = Shrink.shrink ~check p in
    let twice = Shrink.shrink ~check once in
    if not (Ast.equal once twice) then
      Alcotest.failf "seed %d: shrink is not idempotent" seed
  done

(* --- mining ------------------------------------------------------------- *)

let quick_cfg =
  {
    Mine.default_config with
    Mine.count = 40;
    limit = 120;
    max_steps = 2_000;
    shrink_checks = 20;
    sig_limit = 150;
  }

let digests o =
  List.map (fun (c : Mine.candidate) -> c.Mine.c_digest) o.Mine.o_candidates

let test_mine_deterministic () =
  let a = Mine.run quick_cfg and b = Mine.run quick_cfg in
  Alcotest.(check int) "same programs" a.Mine.o_programs b.Mine.o_programs;
  Alcotest.(check int) "same hard count" a.Mine.o_hard b.Mine.o_hard;
  Alcotest.(check (list string)) "same candidates" (digests a) (digests b)

let test_mine_matches_sharded_probes () =
  (* collect over externally produced probes (the sharded driver's shape)
     equals the sequential campaign *)
  let probes = List.init quick_cfg.Mine.count (Mine.probe quick_cfg) in
  let a = Mine.collect quick_cfg probes and b = Mine.run quick_cfg in
  Alcotest.(check (list string)) "same candidates" (digests a) (digests b);
  Alcotest.(check int) "same duplicates" a.Mine.o_duplicates b.Mine.o_duplicates

(* A fixed productive mine, shared by the promotion / registry / golden
   tests below: seed 11 yields three elusive keepers out of 150. *)
let rich_cfg =
  {
    Mine.default_config with
    Mine.campaign_seed = 11;
    count = 150;
    limit = 300;
    max_steps = 3_000;
  }

let rich_mine = lazy (Mine.run rich_cfg)

let test_rich_mine_is_productive () =
  let o = Lazy.force rich_mine in
  Alcotest.(check bool)
    "the shared mine keeps at least two programs" true
    (List.length o.Mine.o_candidates >= 2)

(* --- hardness and manifest codecs --------------------------------------- *)

let test_hardness_json_roundtrip () =
  let o = Lazy.force rich_mine in
  List.iter
    (fun (c : Mine.candidate) ->
      let h = c.Mine.c_hardness in
      match Hardness.of_json (Hardness.to_json h) with
      | Ok h' ->
          Alcotest.(check bool) "hardness json roundtrip" true (h = h')
      | Error msg -> Alcotest.failf "hardness json roundtrip: %s" msg)
    o.Mine.o_candidates

let test_manifest_roundtrip () =
  let o = Lazy.force rich_mine in
  let m = Manifest.of_mine rich_cfg o.Mine.o_candidates in
  match Manifest.of_string (Manifest.to_string m) with
  | Ok m' -> Alcotest.(check bool) "manifest roundtrip" true (m = m')
  | Error msg -> Alcotest.failf "manifest roundtrip: %s" msg

(* --- promotion ----------------------------------------------------------- *)

let temp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  if Sys.file_exists dir then begin
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    rm dir
  end;
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_promote_load_roundtrip () =
  let o = Lazy.force rich_mine in
  let dir = temp_dir "sct-corpus-rt" in
  let m = Suite_io.write ~dir rich_cfg o.Mine.o_candidates in
  match Suite_io.load ~dir with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok (m', programs) ->
      Alcotest.(check bool) "manifest survives the disk" true (m = m');
      List.iter2
        (fun (c : Mine.candidate) ((e : Manifest.entry), ast) ->
          Alcotest.(check string)
            "entry names its candidate" e.Manifest.m_digest c.Mine.c_digest;
          Alcotest.(check bool)
            "program survives the disk" true
            (Ast.equal c.Mine.c_program ast))
        o.Mine.o_candidates programs

let test_promote_is_reproducible () =
  let o = Lazy.force rich_mine in
  let dir = temp_dir "sct-corpus-repro" in
  let m = Suite_io.write ~dir rich_cfg o.Mine.o_candidates in
  let snapshot () =
    read_file (Filename.concat dir Suite_io.manifest_file)
    :: List.map
         (fun (e : Manifest.entry) ->
           read_file (Filename.concat dir e.Manifest.m_file))
         m.Manifest.entries
  in
  let first = snapshot () in
  let _ = Suite_io.write ~dir rich_cfg o.Mine.o_candidates in
  Alcotest.(check (list string))
    "re-promotion is byte-identical" first (snapshot ())

(* --- registry extension -------------------------------------------------- *)

let with_registered f =
  let o = Lazy.force rich_mine in
  let dir = temp_dir "sct-corpus-reg" in
  let _ = Suite_io.write ~dir rich_cfg o.Mine.o_candidates in
  Fun.protect
    ~finally:(fun () -> Sctbench.Registry.reset_extensions ())
    (fun () ->
      match Suite_io.register ~dir () with
      | Error msg -> Alcotest.failf "register: %s" msg
      | Ok benches -> f o dir benches)

let test_register_extends_registry () =
  let static = List.length Sctbench.Registry.all in
  with_registered (fun o _dir benches ->
      Alcotest.(check int)
        "one bench per candidate"
        (List.length o.Mine.o_candidates)
        (List.length benches);
      Alcotest.(check int)
        "the static table is untouched" static
        (List.length Sctbench.Registry.all);
      Alcotest.(check int)
        "full () sees the extension"
        (static + List.length benches)
        (List.length (Sctbench.Registry.full ()));
      List.iteri
        (fun i (b : Sctbench.Bench.t) ->
          Alcotest.(check int)
            "extension ids start at base_id"
            (Suite_io.default_base_id + i)
            b.Sctbench.Bench.id;
          Alcotest.(check bool)
            "extension lands in the corpus suite" true
            (b.Sctbench.Bench.suite = Sctbench.Bench.Corpus);
          match Sctbench.Registry.by_name b.Sctbench.Bench.name with
          | Some b' ->
              Alcotest.(check int) "lookup by name" b.Sctbench.Bench.id
                b'.Sctbench.Bench.id
          | None ->
              Alcotest.failf "by_name misses %s" b.Sctbench.Bench.name)
        benches);
  Alcotest.(check int)
    "reset_extensions restores the static registry" static
    (List.length (Sctbench.Registry.full ()))

let test_register_refuses_clashes () =
  with_registered (fun _o dir _benches ->
      (match Suite_io.register ~dir () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "re-registering the same corpus must clash");
      match
        Sctbench.Registry.register
          { (List.hd Sctbench.Registry.all) with Sctbench.Bench.id = 9999 }
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "a name clash with the static 52 must be refused")

(* --- the stats report golden file ---------------------------------------- *)

let check_golden ~update_env ~file ~what produced =
  match Sys.getenv_opt update_env with
  | Some path ->
      Out_channel.with_open_bin path (fun oc -> output_string oc produced)
  | None ->
      let golden =
        List.find_opt Sys.file_exists
          [
            Filename.concat (Filename.dirname Sys.executable_name) file;
            file;
            Filename.concat "test" file;
          ]
      in
      let golden =
        match golden with
        | Some p -> p
        | None -> Alcotest.fail (file ^ " not found")
      in
      let expected = In_channel.with_open_bin golden In_channel.input_all in
      Alcotest.(check string) (what ^ " byte-identical to golden") expected
        produced

let test_stats_golden () =
  let o = Lazy.force rich_mine in
  let m = Manifest.of_mine rich_cfg o.Mine.o_candidates in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Report.stats fmt m;
  Format.pp_print_flush fmt ();
  check_golden ~update_env:"SCT_CORPUS_GOLDEN_UPDATE"
    ~file:"corpus_stats_golden.txt" ~what:"corpus stats" (Buffer.contents buf)

let suites =
  [
    ( "corpus.text",
      [
        Alcotest.test_case "to_string/parse round-trips all vocabularies"
          `Quick test_text_roundtrip;
        Alcotest.test_case "malformed inputs are rejected" `Quick
          test_text_rejects;
      ] );
    ( "corpus.signature",
      [
        QCheck_alcotest.to_alcotest hb_por_law;
        Alcotest.test_case "signatures distinguish some schedule orders"
          `Quick test_signature_not_order_blind;
      ] );
    ( "corpus.shrink",
      [
        Alcotest.test_case "shrink under digest preservation is idempotent"
          `Quick test_shrink_idempotent;
      ] );
    ( "corpus.mine",
      [
        Alcotest.test_case "mining is deterministic in (seed, count)" `Quick
          test_mine_deterministic;
        Alcotest.test_case "collect over sharded probes = sequential run"
          `Quick test_mine_matches_sharded_probes;
        Alcotest.test_case "the shared fixture mine keeps programs" `Quick
          test_rich_mine_is_productive;
        Alcotest.test_case "hardness json round-trips" `Quick
          test_hardness_json_roundtrip;
        Alcotest.test_case "manifest encode/decode round-trips" `Quick
          test_manifest_roundtrip;
      ] );
    ( "corpus.promote",
      [
        Alcotest.test_case "write/load round-trips programs and manifest"
          `Quick test_promote_load_roundtrip;
        Alcotest.test_case "re-promotion is byte-identical" `Quick
          test_promote_is_reproducible;
        Alcotest.test_case "register extends the registry, 52 untouched"
          `Quick test_register_extends_registry;
        Alcotest.test_case "id and name clashes are refused" `Quick
          test_register_refuses_clashes;
      ] );
    ( "corpus.report",
      [
        Alcotest.test_case "corpus stats matches the golden file" `Quick
          test_stats_golden;
      ] );
  ]
