(* The fleet campaign orchestrator (lib/campaign): slice-resumable cells
   must reproduce the one-shot runner's statistics exactly, under either
   policy, any pool size, multi-process sharding with store merge, and
   interruption at any slice boundary (plus a torn journal tail). Also:
   scheduler determinism unit tests and the status-report golden file. *)

module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques
module Db = Sct_store.Db
module Codec = Sct_store.Codec
module Cell = Sct_campaign.Cell
module Scheduler = Sct_campaign.Scheduler
module Orchestrator = Sct_campaign.Orchestrator
module Status = Sct_campaign.Status

let stats_t = Alcotest.testable Stats.pp Stats.equal

(* --- temporary stores (same discipline as test_store) --- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let f = Filename.temp_file "sct_campaign_test" (string_of_int !counter) in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let append_torn_record dir =
  let oc =
    open_out_gen
      [ Open_wronly; Open_append; Open_binary ]
      0o644
      (Filename.concat dir "journal.jsonl")
  in
  output_string oc {|{"v":1,"key":"torn|};
  close_out oc

(* --- the test grid: 2 benchmarks × all 11 techniques, so every sharding
   capability (seed ranges, tree walks, run batches) and the
   sequential-only bounding axes all get sliced --- *)

let pick name =
  match Sctbench.Registry.by_name name with
  | Some b -> b
  | None -> Alcotest.fail ("missing " ^ name)

let options = { Techniques.default_options with Techniques.limit = 40 }
let techniques = Techniques.all
let slice = 15
let benches () = [ pick "CS.lazy01_bad"; pick "CS.account_bad" ]
let grid () = Cell.grid ~techniques options (benches ())

let run_campaign ?policy ?on_slice ?(jobs = 1) db cells =
  Sct_parallel.Pool.with_pool ~jobs (fun pool ->
      Orchestrator.run ?policy ~slice ?on_slice ~pool ~db cells)

let render_status db =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Status.render fmt db;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* The final per-cell content of a campaign store, in grid order. *)
let cells_of db =
  List.map
    (fun (c : Cell.t) ->
      match Db.find db c.Cell.key with
      | None -> Alcotest.fail (Cell.name c ^ " not finished in store")
      | Some e -> (Cell.name c, e.Db.e_racy, e.Db.e_stats, e.Db.e_progress))
    (grid ())

let check_cells_equal what expected got =
  List.iter2
    (fun (name, racy, stats, progress) (name', racy', stats', progress') ->
      Alcotest.(check string) (what ^ ": cell order") name name';
      Alcotest.(check int) (what ^ ": " ^ name ^ " racy") racy racy';
      Alcotest.check stats_t (what ^ ": " ^ name) stats stats';
      Alcotest.(check bool)
        (what ^ ": " ^ name ^ " slice counts")
        true
        (match (progress, progress') with
        | Some p, Some p' -> p = (p' : Codec.progress)
        | None, None -> true
        | _ -> false))
    expected got

(* One clean single-process uniform campaign: the reference every other
   configuration must reproduce. Computed once. *)
let clean_campaign =
  lazy
    (let dir = fresh_dir () in
     Fun.protect
       ~finally:(fun () -> rm_rf dir)
       (fun () ->
         let db = Db.open_ ~dir in
         let outcome = run_campaign db (grid ()) in
         let cells = cells_of db in
         let status = render_status db in
         Db.close db;
         (outcome, cells, status)))

(* The one-shot per-cell statistics the campaign must match, via the
   sequential [Techniques.run] — no slicing, no store, no pool. *)
let oneshot_cells =
  lazy
    (List.concat_map
       (fun (b : Sctbench.Bench.t) ->
         let det =
           Techniques.detect_races options b.Sctbench.Bench.program
         in
         let promote = Sct_race.Promotion.promote det in
         let racy = List.length det.Sct_race.Promotion.racy in
         List.map
           (fun t ->
             ( b.Sctbench.Bench.name ^ "/" ^ Techniques.name t,
               racy,
               Techniques.run ~promote options t b.Sctbench.Bench.program ))
           techniques)
       (benches ()))

(* --- the grid and its shards --- *)

let test_grid_order () =
  let cells = grid () in
  Alcotest.(check int)
    "2 benches x 11 techniques" 22 (List.length cells);
  Alcotest.(check (list int))
    "consecutive indices"
    (List.init 22 Fun.id)
    (List.map (fun c -> c.Cell.index) cells);
  (* benchmark-major, techniques in registry order *)
  Alcotest.(check (list string))
    "order matches the one-shot runner"
    [
      "CS.lazy01_bad/IPB"; "CS.lazy01_bad/IDB"; "CS.lazy01_bad/DFS";
      "CS.lazy01_bad/Rand"; "CS.lazy01_bad/PCT"; "CS.lazy01_bad/MapleAlg";
      "CS.lazy01_bad/SURW"; "CS.lazy01_bad/Fair"; "CS.lazy01_bad/Length";
      "CS.lazy01_bad/IVB"; "CS.lazy01_bad/ITB"; "CS.account_bad/IPB";
      "CS.account_bad/IDB"; "CS.account_bad/DFS"; "CS.account_bad/Rand";
      "CS.account_bad/PCT"; "CS.account_bad/MapleAlg"; "CS.account_bad/SURW";
      "CS.account_bad/Fair"; "CS.account_bad/Length"; "CS.account_bad/IVB";
      "CS.account_bad/ITB";
    ]
    (List.map Cell.name cells);
  let keys = List.map (fun c -> c.Cell.key) cells in
  Alcotest.(check int)
    "keys are distinct" 22
    (List.length (List.sort_uniq compare keys))

let test_shard_partition () =
  let cells = grid () in
  let shards = List.init 3 (fun k -> Cell.shard ~k ~n:3 cells) in
  Alcotest.(check int)
    "shards cover every cell" 22
    (List.length (List.concat shards));
  let indices =
    List.concat_map (List.map (fun c -> c.Cell.index)) shards
    |> List.sort compare
  in
  Alcotest.(check (list int))
    "disjoint lease: each index exactly once"
    (List.init 22 Fun.id) indices;
  (match Cell.shard ~k:3 ~n:3 cells with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range shard accepted");
  match Cell.shard ~k:0 ~n:0 cells with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero shard count accepted"

(* --- the equivalence guarantees --- *)

let test_uniform_matches_oneshot () =
  let _, cells, _ = Lazy.force clean_campaign in
  List.iter2
    (fun (name, racy, stats) (name', racy', stats', progress) ->
      Alcotest.(check string) "cell order" name name';
      Alcotest.(check int) (name ^ " racy") racy racy';
      Alcotest.check stats_t (name ^ " stats equal one-shot run") stats
        stats';
      match progress with
      | Some p -> Alcotest.(check bool) (name ^ " done") true p.Codec.p_done
      | None -> Alcotest.fail (name ^ " missing campaign progress"))
    (Lazy.force oneshot_cells) cells

let test_worker_shards_then_merge () =
  let _, clean_cells, clean_status = Lazy.force clean_campaign in
  with_dir (fun dir ->
      let workers =
        List.init 3 (fun k ->
            let wdir = Filename.concat dir (Printf.sprintf "w%d" k) in
            let db = Db.open_ ~dir:wdir in
            let outcome =
              run_campaign db (Cell.shard ~k ~n:3 (grid ()))
            in
            Alcotest.(check int)
              (Printf.sprintf "worker %d finished its lease" k)
              outcome.Orchestrator.cells outcome.Orchestrator.finished;
            db)
      in
      let merged = Db.open_ ~dir:(Filename.concat dir "merged") in
      List.iter
        (fun src ->
          Db.merge_from merged ~src;
          Db.close src)
        workers;
      check_cells_equal "merged = single-process" clean_cells
        (cells_of merged);
      Alcotest.(check string)
        "merged status byte-identical to single-process" clean_status
        (render_status merged);
      Db.close merged)

let test_bandit_same_results () =
  let _, clean_cells, clean_status = Lazy.force clean_campaign in
  with_dir (fun dir ->
      let db = Db.open_ ~dir in
      let outcome = run_campaign ~policy:Scheduler.Bandit db (grid ()) in
      Alcotest.(check int)
        "bandit finishes the whole grid" outcome.Orchestrator.cells
        outcome.Orchestrator.finished;
      (* the policy reorders slices but cannot change their content: the
         finished cells — including per-cell slice counts — are identical *)
      check_cells_equal "bandit = uniform" clean_cells (cells_of db);
      Alcotest.(check string)
        "bandit status byte-identical to uniform" clean_status
        (render_status db);
      Db.close db)

let test_pool_same_results () =
  let _, clean_cells, _ = Lazy.force clean_campaign in
  with_dir (fun dir ->
      let db = Db.open_ ~dir in
      let (_ : Orchestrator.outcome) = run_campaign ~jobs:3 db (grid ()) in
      check_cells_equal "jobs=3 = jobs=1" clean_cells (cells_of db);
      Db.close db)

exception Interrupted

let test_interrupt_and_resume () =
  let clean_outcome, clean_cells, clean_status = Lazy.force clean_campaign in
  with_dir (fun dir ->
      (* "crash" after the 4th journalled slice, tear the final record *)
      let db = Db.open_ ~dir in
      let seen = ref 0 in
      (try
         ignore
           (run_campaign
              ~on_slice:(fun _ _ ->
                incr seen;
                if !seen = 4 then raise Interrupted)
              db (grid ())
             : Orchestrator.outcome)
       with Interrupted -> ());
      Db.close db;
      append_torn_record dir;
      (* resume: the remaining slices run as if never interrupted *)
      let db = Db.open_ ~dir in
      let resumed = run_campaign db (grid ()) in
      Alcotest.(check int)
        "exactly the remaining slices were granted"
        (clean_outcome.Orchestrator.slices - 4)
        resumed.Orchestrator.slices;
      check_cells_equal "resumed = uninterrupted" clean_cells (cells_of db);
      Alcotest.(check string)
        "resumed status byte-identical to uninterrupted" clean_status
        (render_status db);
      (* a third launch has nothing to do *)
      let noop = run_campaign db (grid ()) in
      Alcotest.(check int) "campaign is complete" 0 noop.Orchestrator.slices;
      Db.close db)

(* --- scheduler determinism (pure unit tests) --- *)

let arm ?(slices = 1) ?(coverage = 0) ?bound ?(finished = false) consumed =
  Some
    {
      Scheduler.s_consumed = consumed;
      s_slices = slices;
      s_coverage = coverage;
      s_bound = bound;
      s_finished = finished;
    }

let test_scheduler_uniform () =
  let pick a = Scheduler.pick ~policy:Scheduler.Uniform a in
  Alcotest.(check (option int)) "empty grid" None (pick [||]);
  Alcotest.(check (option int))
    "untried cells first, lowest index" (Some 0)
    (pick [| None; None |]);
  Alcotest.(check (option int))
    "round-robin: fewest slices next" (Some 1)
    (pick [| arm ~slices:2 30; arm ~slices:1 15 |]);
  Alcotest.(check (option int))
    "ties resolve to the lowest index" (Some 0)
    (pick [| arm ~slices:1 15; arm ~slices:1 15 |]);
  Alcotest.(check (option int))
    "finished cells are skipped" (Some 2)
    (pick [| arm ~finished:true 40; arm ~finished:true 40; arm ~slices:9 5 |]);
  Alcotest.(check (option int))
    "all finished = campaign over" None
    (pick [| arm ~finished:true 40; arm ~finished:true 40 |])

let test_scheduler_bandit () =
  let pick a = Scheduler.pick ~policy:Scheduler.Bandit a in
  Alcotest.(check (option int))
    "optimism: untried before scored" (Some 1)
    (pick [| arm ~slices:1 ~coverage:15 15; None |]);
  Alcotest.(check (option int))
    "higher coverage rate wins" (Some 1)
    (pick
       [| arm ~slices:3 ~coverage:5 45; arm ~slices:3 ~coverage:40 45 |]);
  Alcotest.(check (option int))
    "low bound beats high bound at equal rate" (Some 0)
    (pick
       [|
         arm ~slices:3 ~coverage:30 ~bound:0 45;
         arm ~slices:3 ~coverage:30 ~bound:4 45;
       |]);
  Alcotest.(check (option int))
    "deterministic tie-break: lowest index" (Some 0)
    (pick
       [| arm ~slices:3 ~coverage:30 45; arm ~slices:3 ~coverage:30 45 |])

let test_state_of_legacy_entry () =
  (* a record written by the one-shot study runner: finished, one slice *)
  let e =
    {
      Db.e_bench = "B";
      e_technique = "Rand";
      e_racy = 0;
      e_stats = { (Stats.base ~technique:"Rand") with Stats.total = 40 };
      e_witness = None;
      e_progress = None;
    }
  in
  let st = Scheduler.state_of_entry e in
  Alcotest.(check bool) "finished" true st.Scheduler.s_finished;
  Alcotest.(check int) "consumed = total" 40 st.Scheduler.s_consumed;
  Alcotest.(check int) "one slice" 1 st.Scheduler.s_slices

(* --- status report golden file --- *)

let check_golden ~update_env ~file ~what produced =
  match Sys.getenv_opt update_env with
  | Some path ->
      Out_channel.with_open_bin path (fun oc -> output_string oc produced)
  | None ->
      let golden =
        List.find_opt Sys.file_exists
          [
            Filename.concat (Filename.dirname Sys.executable_name) file;
            file;
            Filename.concat "test" file;
          ]
      in
      let golden =
        match golden with
        | Some p -> p
        | None -> Alcotest.fail (file ^ " not found")
      in
      let expected = In_channel.with_open_bin golden In_channel.input_all in
      Alcotest.(check string) (what ^ " byte-identical to golden") expected
        produced

let test_status_golden () =
  let _, _, status = Lazy.force clean_campaign in
  check_golden ~update_env:"SCT_CAMPAIGN_GOLDEN_UPDATE"
    ~file:"campaign_status_golden.txt" ~what:"campaign status" status

let suites =
  [
    ( "campaign.cells",
      [
        Alcotest.test_case "grid is benchmark-major with distinct keys"
          `Quick test_grid_order;
        Alcotest.test_case "shards partition the grid; bad shards refused"
          `Quick test_shard_partition;
      ] );
    ( "campaign.scheduler",
      [
        Alcotest.test_case "uniform policy is a deterministic round-robin"
          `Quick test_scheduler_uniform;
        Alcotest.test_case "bandit policy is deterministic and adaptive"
          `Quick test_scheduler_bandit;
        Alcotest.test_case "study-runner records read as finished cells"
          `Quick test_state_of_legacy_entry;
      ] );
    ( "campaign.equivalence",
      [
        Alcotest.test_case "uniform campaign equals the one-shot runner"
          `Slow test_uniform_matches_oneshot;
        Alcotest.test_case "3-shard workers + merge equal single-process"
          `Slow test_worker_shards_then_merge;
        Alcotest.test_case "bandit policy: same cells, same final records"
          `Slow test_bandit_same_results;
        Alcotest.test_case "pool size does not change results" `Slow
          test_pool_same_results;
        Alcotest.test_case "interrupted campaign resumes exactly" `Slow
          test_interrupt_and_resume;
      ] );
    ( "campaign.status",
      [
        Alcotest.test_case "status report matches the committed golden"
          `Slow test_status_golden;
      ] );
  ]
