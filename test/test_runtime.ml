(* Engine semantics: enabledness, blocking primitives, bug detection,
   determinism and replay. *)

open Sct_core

let rr (ctx : Runtime.ctx) =
  match
    Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
      ~enabled:ctx.c_enabled
  with
  | Some t -> t
  | None -> assert false

let run ?promote ?max_steps ?(scheduler = rr) program =
  Runtime.exec ?promote ?max_steps ~scheduler program

let check_outcome name expected result =
  Alcotest.(check string) name expected (Outcome.to_string result.Runtime.r_outcome)

let test_empty_program () =
  let r = run (fun () -> ()) in
  check_outcome "ok" "ok" r;
  Alcotest.(check int) "no steps" 0 r.Runtime.r_steps;
  Alcotest.(check int) "one thread" 1 r.Runtime.r_n_threads

let test_spawn_join () =
  let r =
    run (fun () ->
        let x = Sct.Var.make ~name:"x" 0 in
        let t = Sct.spawn (fun () -> Sct.Var.write x 1) in
        Sct.join t;
        Sct.check (Sct.Var.read x = 1) "join ordering")
  in
  check_outcome "ok" "ok" r;
  Alcotest.(check int) "two threads" 2 r.Runtime.r_n_threads

let test_join_blocks () =
  (* main joins before the child has run: the join must wait *)
  let r =
    run (fun () ->
        let done_ = Sct.Var.make ~name:"done" false in
        let t =
          Sct.spawn (fun () ->
              Sct.yield ();
              Sct.Var.write done_ true)
        in
        Sct.join t;
        Sct.check (Sct.Var.read done_) "child finished before join returned")
  in
  check_outcome "ok" "ok" r

let test_assertion_failure () =
  let r = run (fun () -> Sct.check false "boom") in
  Alcotest.(check bool) "buggy" true (Outcome.is_buggy r.Runtime.r_outcome)

let test_mutex_mutual_exclusion () =
  (* with a lock, no interleaving loses an update, whatever the scheduler *)
  let program () =
    let m = Sct.Mutex.create () in
    let c = Sct.Var.make ~name:"c" 0 in
    let body () =
      Sct.Mutex.lock m;
      Sct.Var.write c (Sct.Var.read c + 1);
      Sct.Mutex.unlock m
    in
    let t1 = Sct.spawn body in
    let t2 = Sct.spawn body in
    Sct.join t1;
    Sct.join t2;
    Sct.check (Sct.Var.read c = 2) "both updates kept"
  in
  let r =
    Sct_explore.Dfs.explore ~promote:(fun _ -> true) ~bound:Sct_explore.Dfs.Unbounded
      ~limit:100_000 program
  in
  Alcotest.(check bool) "explored all" true r.Sct_explore.Dfs.complete;
  Alcotest.(check int) "no bugs" 0 r.Sct_explore.Dfs.buggy

let test_self_deadlock () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        Sct.Mutex.lock m;
        Sct.Mutex.lock m)
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Deadlock _; _ } -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Outcome.pp o

let test_unlock_not_owner () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        Sct.Mutex.unlock m)
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Lock_error _; _ } -> ()
  | o -> Alcotest.failf "expected lock error, got %a" Outcome.pp o

let test_use_after_destroy () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        Sct.Mutex.destroy m;
        Sct.Mutex.lock m)
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Lock_error _; _ } -> ()
  | o -> Alcotest.failf "expected lock error, got %a" Outcome.pp o

let test_double_destroy () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        Sct.Mutex.destroy m;
        Sct.Mutex.destroy m)
  in
  Alcotest.(check bool) "buggy" true (Outcome.is_buggy r.Runtime.r_outcome)

let test_try_lock () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        Sct.check (Sct.Mutex.try_lock m) "first try_lock succeeds";
        let t =
          Sct.spawn (fun () ->
              Sct.check (not (Sct.Mutex.try_lock m)) "contended try_lock fails")
        in
        Sct.join t;
        Sct.Mutex.unlock m)
  in
  check_outcome "ok" "ok" r

let test_condvar_handshake () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        let c = Sct.Cond.create () in
        let ready = Sct.Var.make ~name:"ready" false in
        let waiter =
          Sct.spawn (fun () ->
              Sct.Mutex.lock m;
              while not (Sct.Var.read ready) do
                Sct.Cond.wait c m
              done;
              Sct.Mutex.unlock m)
        in
        Sct.Mutex.lock m;
        Sct.Var.write ready true;
        Sct.Cond.signal c;
        Sct.Mutex.unlock m;
        Sct.join waiter)
  in
  check_outcome "ok" "ok" r

let test_lost_signal_deadlocks () =
  (* signal before wait is lost: the waiter sleeps forever *)
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        let c = Sct.Cond.create () in
        Sct.Cond.signal c;
        let waiter =
          Sct.spawn (fun () ->
              Sct.Mutex.lock m;
              Sct.Cond.wait c m;
              Sct.Mutex.unlock m)
        in
        Sct.join waiter)
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Deadlock _; _ } -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Outcome.pp o

let test_broadcast_wakes_all () =
  let r =
    run (fun () ->
        let m = Sct.Mutex.create () in
        let c = Sct.Cond.create () in
        let go = Sct.Var.make ~name:"go" false in
        let mk () =
          Sct.spawn (fun () ->
              Sct.Mutex.lock m;
              while not (Sct.Var.read go) do
                Sct.Cond.wait c m
              done;
              Sct.Mutex.unlock m)
        in
        let t1 = mk () in
        let t2 = mk () in
        Sct.yield ();
        Sct.Mutex.lock m;
        Sct.Var.write go true;
        Sct.Cond.broadcast c;
        Sct.Mutex.unlock m;
        Sct.join t1;
        Sct.join t2)
  in
  check_outcome "ok" "ok" r

let test_semaphore () =
  let r =
    run (fun () ->
        let s = Sct.Sem.create 0 in
        let t = Sct.spawn (fun () -> Sct.Sem.post s) in
        Sct.Sem.wait s;
        Sct.join t)
  in
  check_outcome "ok" "ok" r

let test_barrier () =
  let r =
    run (fun () ->
        let b = Sct.Barrier.create 2 in
        let x = Sct.Var.make ~name:"bx" 0 in
        let t =
          Sct.spawn (fun () ->
              Sct.Var.write x 1;
              Sct.Barrier.wait b;
              ())
        in
        Sct.Barrier.wait b;
        (* after the barrier the worker's pre-barrier write is visible *)
        Sct.check (Sct.Var.read x = 1) "barrier ordering";
        Sct.join t)
  in
  check_outcome "ok" "ok" r

let test_rwlock () =
  let r =
    run (fun () ->
        let l = Sct.Rwlock.create () in
        let x = Sct.Var.make ~name:"rw" 0 in
        let reader =
          Sct.spawn (fun () ->
              Sct.Rwlock.rd_lock l;
              ignore (Sct.Var.read x);
              Sct.Rwlock.unlock l)
        in
        Sct.Rwlock.wr_lock l;
        Sct.Var.write x 1;
        Sct.Rwlock.unlock l;
        Sct.join reader)
  in
  check_outcome "ok" "ok" r

let test_array_bounds () =
  let r =
    run (fun () ->
        let a = Sct.Arr.make ~name:"arr" 3 0 in
        Sct.Arr.set a 3 1)
  in
  match r.Runtime.r_outcome with
  | Outcome.Bug { bug = Outcome.Memory_error _; _ } -> ()
  | o -> Alcotest.failf "expected memory error, got %a" Outcome.pp o

let test_step_limit () =
  let r =
    run ~max_steps:50 (fun () ->
        let spin = Sct.Var.make ~name:"spin" true in
        let t =
          Sct.spawn (fun () ->
              while Sct.Var.read spin do
                Sct.yield ()
              done)
        in
        Sct.join t)
  in
  check_outcome "step limit" "step-limit" r

let test_determinism () =
  (* the same (random) scheduler decisions produce identical executions *)
  let program () =
    let x = Sct.Var.make ~name:"x" 0 in
    let m = Sct.Mutex.create () in
    let body d () =
      Sct.Mutex.lock m;
      Sct.Var.write x (Sct.Var.read x + d);
      Sct.Mutex.unlock m
    in
    let t1 = Sct.spawn (body 1) in
    let t2 = Sct.spawn (body 2) in
    Sct.join t1;
    Sct.join t2
  in
  let run_once seed =
    let rng = Random.State.make [| seed |] in
    let scheduler (ctx : Runtime.ctx) =
      List.nth ctx.c_enabled (Random.State.int rng (List.length ctx.c_enabled))
    in
    Runtime.exec ~promote:(fun _ -> true) ~scheduler program
  in
  let a = run_once 42 and b = run_once 42 in
  Alcotest.(check bool) "same schedule" true
    (Schedule.equal a.Runtime.r_schedule b.Runtime.r_schedule);
  Alcotest.(check int) "same pc" a.Runtime.r_pc b.Runtime.r_pc;
  Alcotest.(check int) "same dc" a.Runtime.r_dc b.Runtime.r_dc

let test_pc_dc_recorded () =
  (* the engine's incremental PC/DC agree with recomputation from the
     recorded decisions *)
  let program () =
    let x = Sct.Var.make ~name:"x" 0 in
    let t1 = Sct.spawn (fun () -> Sct.Var.write x 1) in
    let t2 = Sct.spawn (fun () -> Sct.Var.write x 2) in
    Sct.join t1;
    Sct.join t2
  in
  let rng = Random.State.make [| 7 |] in
  let scheduler (ctx : Runtime.ctx) =
    List.nth ctx.c_enabled (Random.State.int rng (List.length ctx.c_enabled))
  in
  let r = Runtime.exec ~promote:(fun _ -> true) ~scheduler program in
  let steps =
    List.map (fun d -> (d.Runtime.d_enabled, d.Runtime.d_chosen)) r.Runtime.r_decisions
  in
  Alcotest.(check int) "pc" (Preemption.count ~steps) r.Runtime.r_pc;
  let ns = List.map (fun d -> d.Runtime.d_n_threads) r.Runtime.r_decisions in
  let n_at i = List.nth ns i in
  Alcotest.(check int) "dc" (Delay.count ~n_at ~steps) r.Runtime.r_dc

let test_max_enabled_and_points () =
  let program () =
    let ts = List.init 3 (fun _ -> Sct.spawn (fun () -> Sct.yield ())) in
    List.iter Sct.join ts
  in
  let r = run program in
  Alcotest.(check int) "threads" 4 r.Runtime.r_n_threads;
  Alcotest.(check bool) "max enabled >= 3" true (r.Runtime.r_max_enabled >= 3);
  Alcotest.(check bool) "multi points > 0" true (r.Runtime.r_multi_points > 0)

let test_child_prefix_runs_eagerly () =
  (* a thread with no visible operations completes during spawn and
     contributes no schedule steps *)
  let r =
    run (fun () ->
        let side = ref 0 in
        let t = Sct.spawn (fun () -> side := 1) in
        assert (!side = 1);
        Sct.join t)
  in
  check_outcome "ok" "ok" r

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "empty program" `Quick test_empty_program;
        Alcotest.test_case "spawn and join" `Quick test_spawn_join;
        Alcotest.test_case "join blocks until child finishes" `Quick
          test_join_blocks;
        Alcotest.test_case "assertion failure" `Quick test_assertion_failure;
        Alcotest.test_case "mutex mutual exclusion (exhaustive)" `Quick
          test_mutex_mutual_exclusion;
        Alcotest.test_case "self deadlock" `Quick test_self_deadlock;
        Alcotest.test_case "unlock by non-owner" `Quick test_unlock_not_owner;
        Alcotest.test_case "use after destroy" `Quick test_use_after_destroy;
        Alcotest.test_case "double destroy" `Quick test_double_destroy;
        Alcotest.test_case "try_lock" `Quick test_try_lock;
        Alcotest.test_case "condvar handshake" `Quick test_condvar_handshake;
        Alcotest.test_case "lost signal deadlocks" `Quick
          test_lost_signal_deadlocks;
        Alcotest.test_case "broadcast wakes all" `Quick
          test_broadcast_wakes_all;
        Alcotest.test_case "semaphore" `Quick test_semaphore;
        Alcotest.test_case "barrier" `Quick test_barrier;
        Alcotest.test_case "rwlock" `Quick test_rwlock;
        Alcotest.test_case "array bounds" `Quick test_array_bounds;
        Alcotest.test_case "step limit" `Quick test_step_limit;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "pc/dc agree with recomputation" `Quick
          test_pc_dc_recorded;
        Alcotest.test_case "thread/enabled accounting" `Quick
          test_max_enabled_and_points;
        Alcotest.test_case "eager child prefix" `Quick
          test_child_prefix_runs_eagerly;
      ] );
  ]
