(* The persistent study store (lib/store): codec round-trip laws, version-1
   wire-format stability, artifact content addressing, journal crash
   recovery, and the kill-and-resume guarantee — an interrupted campaign
   resumed on the same store yields exactly the rows of an uninterrupted
   run, re-executing only the missing cells. *)

open Sct_core
module Stats = Sct_explore.Stats
module Techniques = Sct_explore.Techniques
module Json = Sct_store.Json
module Codec = Sct_store.Codec
module Artifact = Sct_store.Artifact
module Db = Sct_store.Db

let stats_t = Alcotest.testable Sct_explore.Stats.pp Sct_explore.Stats.equal

(* --- fresh temporary directories --- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    (* temp_file both picks a unique name and reserves it *)
    let f = Filename.temp_file "sct_store_test" (string_of_int !counter) in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- generators --- *)

(* full-range bytes, to exercise JSON string escaping *)
let gen_raw_string =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 12))

let gen_schedule = QCheck2.Gen.(list_size (int_bound 12) (int_bound 6))

let gen_bug =
  QCheck2.Gen.(
    let* msg = gen_raw_string in
    oneofl
      [
        Outcome.Assertion_failure msg;
        Outcome.Lock_error msg;
        Outcome.Memory_error msg;
        Outcome.Uncaught_exn msg;
        Outcome.Deadlock [ 1; 2; 3 ];
        Outcome.Deadlock [];
      ])

let gen_witness =
  QCheck2.Gen.(
    let* w_bug = gen_bug in
    let* w_by = int_bound 6 in
    let* sched = gen_schedule in
    let* w_pc = int_bound 5 in
    let* w_dc = int_bound 8 in
    return
      { Stats.w_bug; w_by; w_schedule = Schedule.of_list sched; w_pc; w_dc })

let gen_options =
  QCheck2.Gen.(
    let* limit = int_range 1 20_000 in
    let* seed = int_bound 1000 in
    let* max_steps = int_range 1 200_000 in
    let* race_runs = int_range 1 20 in
    let* pct_change_points = int_bound 5 in
    let* maple_profile_runs = int_range 1 20 in
    let* jobs = int_range 1 8 in
    let* split_depth = int_range 1 6 in
    (* dyadic rationals: exactly representable, so [=] on the decoded
       record is meaningful *)
    let* time_limit =
      option (map (fun i -> float_of_int i /. 8.) (int_range 0 80_000))
    in
    let* prefix_batch = bool in
    let* por =
      option
        (oneofl
           Sct_explore.Por.[ Sleep; Dpor; Dpor_sleep ])
    in
    (* defaults included so the emit-only-when-non-default encoding is
       exercised in both directions *)
    let* fair_bound = int_range 1 10 in
    let* length_bound = int_range 1 500 in
    return
      {
        Techniques.limit;
        seed;
        max_steps;
        race_runs;
        pct_change_points;
        maple_profile_runs;
        jobs;
        split_depth;
        time_limit;
        prefix_batch;
        por;
        fair_bound;
        length_bound;
      })

let gen_stats =
  QCheck2.Gen.(
    let* technique = oneofl [ "IPB"; "IDB"; "DFS"; "Rand"; "MapleAlg" ] in
    let* bound = option (int_bound 4) in
    let* bound_complete = bool in
    let* to_first_bug = option (int_bound 100) in
    let* first_bug = option gen_witness in
    let* total = int_bound 10_000 in
    let* new_at_bound = int_bound 500 in
    let* buggy = int_bound 50 in
    let* complete = bool in
    let* hit_limit = bool in
    let* hit_deadline = bool in
    let* n_threads = int_bound 8 in
    let* max_enabled = int_bound 8 in
    let* max_sched_points = int_bound 100 in
    let* executions = int_bound 10_000 in
    let* steps_executed = int_bound 500_000 in
    let* steps_saved = int_bound 500_000 in
    let* por_pruned = int_bound 10_000 in
    let* distinct = option (list_size (int_bound 6) gen_schedule) in
    return
      {
        (Stats.base ~technique) with
        Stats.bound;
        bound_complete;
        to_first_bug;
        first_bug;
        total;
        new_at_bound;
        buggy;
        complete;
        hit_limit;
        hit_deadline;
        n_threads;
        max_enabled;
        max_sched_points;
        executions;
        steps_executed;
        steps_saved;
        por_pruned;
        distinct_schedules = Option.map Stats.Sched_set.of_list distinct;
      })

(* --- codec round-trip laws: decode ∘ encode = id --- *)

let prop_roundtrip_schedule =
  QCheck2.Test.make ~name:"Codec: schedule round-trips" ~count:300
    gen_schedule (fun s ->
      let s = Schedule.of_list s in
      Schedule.equal s (Codec.decode_schedule (Codec.encode_schedule s)))

let prop_roundtrip_bug =
  QCheck2.Test.make ~name:"Codec: bug round-trips" ~count:300 gen_bug
    (fun b -> Outcome.bug_equal b (Codec.decode_bug (Codec.encode_bug b)))

let prop_roundtrip_witness =
  QCheck2.Test.make ~name:"Codec: witness round-trips" ~count:300 gen_witness
    (fun w ->
      Stats.equal_witness w (Codec.decode_witness (Codec.encode_witness w)))

let prop_roundtrip_options =
  QCheck2.Test.make ~name:"Codec: options round-trip" ~count:300 gen_options
    (fun o -> Codec.decode_options (Codec.encode_options o) = o)

let prop_roundtrip_stats =
  QCheck2.Test.make ~name:"Codec: stats round-trip" ~count:300 gen_stats
    (fun s -> Stats.equal s (Codec.decode_stats (Codec.encode_stats s)))

let gen_progress =
  QCheck2.Gen.(
    let* p_consumed = int_bound 500 in
    let* p_slices = int_range 1 20 in
    let* p_done = bool in
    return { Codec.p_consumed; p_slices; p_done })

let prop_roundtrip_progress =
  QCheck2.Test.make ~name:"Codec: campaign progress round-trips" ~count:300
    gen_progress (fun p ->
      Codec.decode_progress (Codec.encode_progress p) = p)

(* --- version-1 wire format stability ---
   These strings are the on-disk format; if one of these tests fails, the
   format changed and [Codec.version] must be bumped with a migration. *)

let fixture_schedule = {|{"v":1,"schedule":[0,0,1,2]}|}

let fixture_witness =
  {|{"v":1,"witness":{"bug":{"kind":"assert","msg":"x=y"},"by":2,"schedule":[0,1,2],"pc":1,"dc":3}}|}

let fixture_options =
  {|{"v":1,"options":{"limit":10000,"seed":0,"max_steps":100000,"race_runs":10,"pct_change_points":2,"maple_profile_runs":10,"jobs":1,"split_depth":3}}|}

let fixture_stats =
  {|{"v":1,"stats":{"technique":"IPB","bound":1,"bound_complete":true,"to_first_bug":5,"total":10,"new_at_bound":4,"buggy":2,"complete":false,"hit_limit":true,"first_bug":null,"n_threads":3,"max_enabled":2,"max_sched_points":7,"executions":12,"distinct":[[0,1],[1,0]]}}|}

let fixture_stats_value =
  {
    (Stats.base ~technique:"IPB") with
    Stats.bound = Some 1;
    bound_complete = true;
    to_first_bug = Some 5;
    total = 10;
    new_at_bound = 4;
    buggy = 2;
    complete = false;
    hit_limit = true;
    n_threads = 3;
    max_enabled = 2;
    max_sched_points = 7;
    executions = 12;
    distinct_schedules = Some (Stats.Sched_set.of_list [ [ 0; 1 ]; [ 1; 0 ] ]);
  }

(* v1 extension fields: absent on the pinned fixtures above (so old
   journals keep decoding), emitted only when set *)
let fixture_options_deadline =
  {|{"v":1,"options":{"limit":10000,"seed":0,"max_steps":100000,"race_runs":10,"pct_change_points":2,"maple_profile_runs":10,"jobs":1,"split_depth":3,"time_limit":"0x1.9p+5"}}|}

let fixture_options_deadline_value =
  { Techniques.default_options with Techniques.time_limit = Some 50. }

let fixture_stats_deadline =
  {|{"v":1,"stats":{"technique":"Rand","bound":null,"bound_complete":false,"to_first_bug":null,"total":3,"new_at_bound":0,"buggy":0,"complete":false,"hit_limit":false,"hit_deadline":true,"first_bug":null,"n_threads":0,"max_enabled":0,"max_sched_points":0,"executions":3,"distinct":null}}|}

let fixture_stats_deadline_value =
  {
    (Stats.base ~technique:"Rand") with
    Stats.total = 3;
    executions = 3;
    hit_deadline = true;
  }

let fixture_options_prefix_batch =
  {|{"v":1,"options":{"limit":10000,"seed":0,"max_steps":100000,"race_runs":10,"pct_change_points":2,"maple_profile_runs":10,"jobs":1,"split_depth":3,"prefix_batch":true}}|}

let fixture_options_prefix_batch_value =
  { Techniques.default_options with Techniques.prefix_batch = true }

let fixture_stats_steps =
  {|{"v":1,"stats":{"technique":"DFS","bound":null,"bound_complete":false,"to_first_bug":null,"total":6,"new_at_bound":0,"buggy":0,"complete":true,"hit_limit":false,"first_bug":null,"n_threads":2,"max_enabled":2,"max_sched_points":5,"executions":6,"steps_executed":31,"steps_saved":17,"distinct":null}}|}

let fixture_stats_steps_value =
  {
    (Stats.base ~technique:"DFS") with
    Stats.total = 6;
    complete = true;
    n_threads = 2;
    max_enabled = 2;
    max_sched_points = 5;
    executions = 6;
    steps_executed = 31;
    steps_saved = 17;
  }

let fixture_options_por =
  {|{"v":1,"options":{"limit":10000,"seed":0,"max_steps":100000,"race_runs":10,"pct_change_points":2,"maple_profile_runs":10,"jobs":1,"split_depth":3,"por":"dpor+sleep"}}|}

let fixture_options_por_value =
  { Techniques.default_options with Techniques.por = Some Sct_explore.Por.Dpor_sleep }

let fixture_stats_por =
  {|{"v":1,"stats":{"technique":"IPB","bound":1,"bound_complete":true,"to_first_bug":null,"total":9,"new_at_bound":3,"buggy":0,"complete":true,"hit_limit":false,"first_bug":null,"n_threads":3,"max_enabled":2,"max_sched_points":7,"executions":12,"por_pruned":3,"distinct":null}}|}

let fixture_stats_por_value =
  {
    (Stats.base ~technique:"IPB") with
    Stats.bound = Some 1;
    bound_complete = true;
    total = 9;
    new_at_bound = 3;
    complete = true;
    n_threads = 3;
    max_enabled = 2;
    max_sched_points = 7;
    executions = 12;
    por_pruned = 3;
  }

let test_fixture_stability () =
  Alcotest.(check (list int))
    "schedule fixture decodes" [ 0; 0; 1; 2 ]
    (Schedule.to_list (Codec.decode_schedule fixture_schedule));
  Alcotest.(check string)
    "schedule fixture re-encodes byte-identically" fixture_schedule
    (Codec.encode_schedule (Schedule.of_list [ 0; 0; 1; 2 ]));
  let w = Codec.decode_witness fixture_witness in
  Alcotest.(check bool)
    "witness fixture decodes" true
    (Stats.equal_witness w
       {
         Stats.w_bug = Outcome.Assertion_failure "x=y";
         w_by = 2;
         w_schedule = Schedule.of_list [ 0; 1; 2 ];
         w_pc = 1;
         w_dc = 3;
       });
  Alcotest.(check string)
    "witness fixture re-encodes byte-identically" fixture_witness
    (Codec.encode_witness w);
  Alcotest.(check bool)
    "options fixture decodes to the defaults" true
    (Codec.decode_options fixture_options = Techniques.default_options);
  Alcotest.(check string)
    "options fixture re-encodes byte-identically" fixture_options
    (Codec.encode_options Techniques.default_options);
  Alcotest.(check stats_t)
    "stats fixture decodes" fixture_stats_value
    (Codec.decode_stats fixture_stats);
  Alcotest.(check string)
    "stats fixture re-encodes byte-identically" fixture_stats
    (Codec.encode_stats fixture_stats_value);
  Alcotest.(check bool)
    "time-limit options fixture decodes" true
    (Codec.decode_options fixture_options_deadline
    = fixture_options_deadline_value);
  Alcotest.(check string)
    "time-limit options fixture re-encodes byte-identically"
    fixture_options_deadline
    (Codec.encode_options fixture_options_deadline_value);
  Alcotest.(check stats_t)
    "deadline stats fixture decodes" fixture_stats_deadline_value
    (Codec.decode_stats fixture_stats_deadline);
  Alcotest.(check string)
    "deadline stats fixture re-encodes byte-identically"
    fixture_stats_deadline
    (Codec.encode_stats fixture_stats_deadline_value);
  Alcotest.(check bool)
    "prefix-batch options fixture decodes" true
    (Codec.decode_options fixture_options_prefix_batch
    = fixture_options_prefix_batch_value);
  Alcotest.(check string)
    "prefix-batch options fixture re-encodes byte-identically"
    fixture_options_prefix_batch
    (Codec.encode_options fixture_options_prefix_batch_value);
  Alcotest.(check stats_t)
    "step-counter stats fixture decodes" fixture_stats_steps_value
    (Codec.decode_stats fixture_stats_steps);
  Alcotest.(check string)
    "step-counter stats fixture re-encodes byte-identically"
    fixture_stats_steps
    (Codec.encode_stats fixture_stats_steps_value);
  Alcotest.(check bool)
    "por options fixture decodes" true
    (Codec.decode_options fixture_options_por = fixture_options_por_value);
  Alcotest.(check string)
    "por options fixture re-encodes byte-identically" fixture_options_por
    (Codec.encode_options fixture_options_por_value);
  Alcotest.(check stats_t)
    "por stats fixture decodes" fixture_stats_por_value
    (Codec.decode_stats fixture_stats_por);
  Alcotest.(check string)
    "por stats fixture re-encodes byte-identically" fixture_stats_por
    (Codec.encode_stats fixture_stats_por_value)

let expect_codec_error name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Codec.Error")
  | exception Codec.Error _ -> ()

let fixture_progress = {|{"v":1,"progress":{"consumed":20,"slices":2,"done":false}}|}

let test_progress_fixture_stability () =
  let p = Codec.decode_progress fixture_progress in
  Alcotest.(check bool)
    "progress fixture decodes" true
    (p = { Codec.p_consumed = 20; p_slices = 2; p_done = false });
  Alcotest.(check string)
    "progress fixture re-encodes byte-identically" fixture_progress
    (Codec.encode_progress p)

let test_version_gate () =
  expect_codec_error "newer version" (fun () ->
      Codec.decode_schedule {|{"v":2,"schedule":[0]}|});
  expect_codec_error "missing tag" (fun () ->
      Codec.decode_schedule {|{"schedule":[0]}|});
  expect_codec_error "malformed json" (fun () ->
      Codec.decode_stats {|{"v":1,"stats":|});
  expect_codec_error "negative tid" (fun () ->
      Codec.decode_schedule {|{"v":1,"schedule":[-1]}|});
  expect_codec_error "unknown por mode" (fun () ->
      Codec.decode_options
        {|{"v":1,"options":{"limit":10000,"seed":0,"max_steps":100000,"race_runs":10,"pct_change_points":2,"maple_profile_runs":10,"jobs":1,"split_depth":3,"por":"bogus"}}|})

(* --- artifacts --- *)

let sample_witness =
  {
    Stats.w_bug = Outcome.Assertion_failure "x=y";
    w_by = 2;
    w_schedule = Schedule.of_list [ 0; 0; 1; 2; 1 ];
    w_pc = 2;
    w_dc = 3;
  }

let test_artifact_roundtrip () =
  with_dir (fun dir ->
      let a =
        Artifact.make ~bench:"CS.account_bad" ~technique:"IPB"
          ~options:Techniques.default_options ~bound:(Some 1) sample_witness
      in
      let path = Artifact.save ~dir a in
      let path' = Artifact.save ~dir a in
      Alcotest.(check string) "idempotent save" path path';
      let b = Artifact.load path in
      Alcotest.(check string) "digest" a.Artifact.digest b.Artifact.digest;
      Alcotest.(check string)
        "bench" "CS.account_bad" b.Artifact.meta.Artifact.a_bench;
      Alcotest.(check string) "technique" "IPB" b.Artifact.meta.Artifact.a_technique;
      Alcotest.(check bool)
        "options survive" true
        (b.Artifact.meta.Artifact.a_options = Techniques.default_options);
      Alcotest.(check (list int))
        "schedule" [ 0; 0; 1; 2; 1 ]
        (Schedule.to_list b.Artifact.schedule);
      Alcotest.(check int)
        "listed" 1
        (List.length (Artifact.list ~dir)))

let test_artifact_tamper_detected () =
  with_dir (fun dir ->
      let a =
        Artifact.make ~bench:"CS.account_bad" ~technique:"IPB"
          ~options:Techniques.default_options ~bound:None sample_witness
      in
      let path = Artifact.save ~dir a in
      (* flip the schedule line: content no longer matches the file name *)
      let ic = open_in_bin path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc content;
      output_string oc "0,0\n";
      close_out oc;
      match Artifact.load path with
      | _ -> Alcotest.fail "tampered artifact loaded"
      | exception Artifact.Error _ -> ())

let test_schedule_of_file () =
  with_dir (fun dir ->
      let raw = Filename.concat dir "raw.txt" in
      let oc = open_out raw in
      output_string oc "# a comment\n\n  0, 0 ,1,2 \n";
      close_out oc;
      Alcotest.(check (list int))
        "raw file" [ 0; 0; 1; 2 ]
        (Schedule.to_list (Artifact.schedule_of_file raw));
      let a =
        Artifact.make ~bench:"b" ~technique:"Rand"
          ~options:Techniques.default_options ~bound:None sample_witness
      in
      let path = Artifact.save ~dir a in
      Alcotest.(check (list int))
        ".sched artifact" [ 0; 0; 1; 2; 1 ]
        (Schedule.to_list (Artifact.schedule_of_file path)))

(* --- journal --- *)

let entry_stats technique first_bug =
  {
    (Stats.base ~technique) with
    Stats.total = 7;
    executions = 7;
    buggy = (match first_bug with Some _ -> 1 | None -> 0);
    to_first_bug = Option.map (fun _ -> 3) first_bug;
    first_bug;
  }

let test_db_roundtrip () =
  with_dir (fun dir ->
      let db = Db.open_ ~dir in
      Alcotest.(check bool) "fresh store is empty" true (Db.is_empty db);
      let o = Techniques.default_options in
      let k1 = Db.fingerprint ~bench:"B1" ~technique:"IPB" o in
      let k2 = Db.fingerprint ~bench:"B1" ~technique:"Rand" o in
      Db.record db ~key:k1 ~bench:"B1" ~technique:"IPB" ~racy:2 ~options:o
        (entry_stats "IPB" (Some sample_witness));
      Db.record db ~key:k2 ~bench:"B1" ~technique:"Rand" ~racy:2 ~options:o
        (entry_stats "Rand" None);
      Db.close db;
      let db = Db.open_ ~dir in
      Alcotest.(check int) "two cells" 2 (Db.size db);
      let e1 = Option.get (Db.find db k1) in
      Alcotest.(check stats_t)
        "stats survive" (entry_stats "IPB" (Some sample_witness))
        e1.Db.e_stats;
      Alcotest.(check int) "racy survives" 2 e1.Db.e_racy;
      (match e1.Db.e_witness with
      | None -> Alcotest.fail "witness digest not journalled"
      | Some d ->
          Alcotest.(check bool)
            "witness artifact exists" true
            (Sys.file_exists
               (Filename.concat (Db.artifacts_dir db) (d ^ ".sched"))));
      Alcotest.(check bool)
        "bug-free cell has no artifact" true
        ((Option.get (Db.find db k2)).Db.e_witness = None);
      Db.close db)

let append_torn_record dir =
  let oc =
    open_out_gen
      [ Open_wronly; Open_append; Open_binary ]
      0o644
      (Filename.concat dir "journal.jsonl")
  in
  output_string oc {|{"v":1,"key":"torn|};
  (* no closing quote, no newline: a record cut short by a crash *)
  close_out oc

let test_db_truncated_tail () =
  with_dir (fun dir ->
      let o = Techniques.default_options in
      let k1 = Db.fingerprint ~bench:"B1" ~technique:"IPB" o in
      let db = Db.open_ ~dir in
      Db.record db ~key:k1 ~bench:"B1" ~technique:"IPB" ~racy:0 ~options:o
        (entry_stats "IPB" None);
      Db.close db;
      append_torn_record dir;
      (* the torn record is ignored ... *)
      let db = Db.open_ ~dir in
      Alcotest.(check int) "torn tail skipped" 1 (Db.size db);
      (* ... and appending after recovery re-establishes line framing *)
      let k2 = Db.fingerprint ~bench:"B2" ~technique:"IPB" o in
      Db.record db ~key:k2 ~bench:"B2" ~technique:"IPB" ~racy:1 ~options:o
        (entry_stats "IPB" None);
      Db.close db;
      let db = Db.open_ ~dir in
      Alcotest.(check int) "record after torn tail survives" 2 (Db.size db);
      Alcotest.(check int)
        "recovered racy" 1
        (Option.get (Db.find db k2)).Db.e_racy;
      Db.close db)

let test_fingerprint_ignores_parallelism () =
  let o = Techniques.default_options in
  let fp j s =
    Db.fingerprint ~bench:"B" ~technique:"IPB"
      { o with Techniques.jobs = j; split_depth = s }
  in
  Alcotest.(check string) "jobs/split_depth excluded" (fp 1 3) (fp 8 5);
  Alcotest.(check bool)
    "limit included" true
    (Db.fingerprint ~bench:"B" ~technique:"IPB" o
    <> Db.fingerprint ~bench:"B" ~technique:"IPB"
         { o with Techniques.limit = o.Techniques.limit + 1 });
  Alcotest.(check bool)
    "technique included" true
    (Db.fingerprint ~bench:"B" ~technique:"IPB" o
    <> Db.fingerprint ~bench:"B" ~technique:"IDB" o);
  (* batched cells carry different step counters, so they must not alias
     unbatched ones — but the off value must keep the historical bytes *)
  Alcotest.(check bool)
    "prefix_batch included when on" true
    (Db.fingerprint ~bench:"B" ~technique:"IPB" o
    <> Db.fingerprint ~bench:"B" ~technique:"IPB"
         { o with Techniques.prefix_batch = true })

(* --- artifact listing order --- *)

let test_artifact_list_order () =
  with_dir (fun dir ->
      (* distinct benches give distinct contents, hence distinct digests *)
      let digests =
        List.map
          (fun bench ->
            let a =
              Artifact.make ~bench ~technique:"Rand"
                ~options:Techniques.default_options ~bound:None sample_witness
            in
            let (_ : string) = Artifact.save ~dir a in
            a.Artifact.digest)
          [ "B1"; "B2"; "B3"; "B4"; "B5"; "B6"; "B7" ]
      in
      let listed =
        List.map (fun a -> a.Artifact.digest) (Artifact.list ~dir)
      in
      Alcotest.(check (list string))
        "listed in digest order, independent of readdir order"
        (List.sort String.compare digests)
        listed)

(* --- campaign progress records --- *)

let test_db_progress_records () =
  with_dir (fun dir ->
      let o = Techniques.default_options in
      let k = Db.fingerprint ~bench:"B" ~technique:"Rand" o in
      let db = Db.open_ ~dir in
      Db.record
        ~progress:{ Codec.p_consumed = 10; p_slices = 1; p_done = false }
        db ~key:k ~bench:"B" ~technique:"Rand" ~racy:0 ~options:o
        (entry_stats "Rand" None);
      Alcotest.(check bool) "in-flight cell invisible to find" true (Db.find db k = None);
      Alcotest.(check bool) "in-flight cell invisible to mem" false (Db.mem db k);
      Alcotest.(check bool) "visible to find_any" true (Db.find_any db k <> None);
      Alcotest.(check int) "size counts finished cells only" 0 (Db.size db);
      Alcotest.(check bool) "but the store is not empty" false (Db.is_empty db);
      Db.record
        ~progress:{ Codec.p_consumed = 40; p_slices = 2; p_done = true }
        db ~key:k ~bench:"B" ~technique:"Rand" ~racy:0 ~options:o
        (entry_stats "Rand" None);
      Alcotest.(check bool) "done campaign cell visible to find" true (Db.mem db k);
      Db.close db;
      let db = Db.open_ ~dir in
      (match Db.find db k with
      | None -> Alcotest.fail "done campaign cell lost on reopen"
      | Some e -> (
          match e.Db.e_progress with
          | Some p ->
              Alcotest.(check int) "consumed survives" 40 p.Codec.p_consumed;
              Alcotest.(check int) "slices survive" 2 p.Codec.p_slices
          | None -> Alcotest.fail "progress lost on reopen"));
      Db.close db)

(* --- merging worker stores: lattice laws --- *)

(* Journals whose records collide on few keys (two benches × two
   techniques, fixed options), so merges exercise the per-key join. *)
let gen_journal =
  QCheck2.Gen.(
    list_size (int_bound 6)
      (let* bench = oneofl [ "B1"; "B2" ] in
       let* technique = oneofl [ "IPB"; "Rand" ] in
       let* racy = int_bound 3 in
       let* stats = gen_stats in
       let* progress = option gen_progress in
       return (bench, technique, racy, { stats with Stats.technique }, progress)))

let build_store dir journal =
  let db = Db.open_ ~dir in
  List.iter
    (fun (bench, technique, racy, stats, progress) ->
      let key = Db.fingerprint ~bench ~technique Techniques.default_options in
      Db.record ?progress db ~key ~bench ~technique ~racy
        ~options:Techniques.default_options stats)
    journal;
  db

(* A store's semantic content, order-independent. *)
let canon db =
  Db.entries_any db
  |> List.map (fun (k, (e : Db.entry)) ->
         ( k,
           e.Db.e_bench,
           e.Db.e_technique,
           e.Db.e_racy,
           Codec.encode_stats e.Db.e_stats,
           e.Db.e_witness,
           Option.map
             (fun (p : Codec.progress) ->
               (p.Codec.p_consumed, p.Codec.p_slices, p.Codec.p_done))
             e.Db.e_progress ))
  |> List.sort compare

(* Build the journals in fresh stores, merge them (in journal-list order)
   into another fresh store, and return its canonical content. *)
let canon_of_merge journals =
  with_dir (fun dir ->
      let dst = Db.open_ ~dir:(Filename.concat dir "dst") in
      List.iteri
        (fun i j ->
          let src =
            build_store (Filename.concat dir (Printf.sprintf "src%d" i)) j
          in
          Db.merge_from dst ~src;
          Db.close src)
        journals;
      let c = canon dst in
      Db.close dst;
      c)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"Db.merge_from: commutative" ~count:15
    QCheck2.Gen.(tup2 gen_journal gen_journal)
    (fun (a, b) -> canon_of_merge [ a; b ] = canon_of_merge [ b; a ])

let prop_merge_associative =
  QCheck2.Test.make ~name:"Db.merge_from: associative" ~count:15
    QCheck2.Gen.(tup3 gen_journal gen_journal gen_journal)
    (fun (a, b, c) ->
      (* ((a ∪ b) ∪ c) vs (a ∪ (b ∪ c)): materialise b ∪ c first, then
         fold it into a copy of a *)
      let left = canon_of_merge [ a; b; c ] in
      let right =
        with_dir (fun dir ->
            let bc = Db.open_ ~dir:(Filename.concat dir "bc") in
            let sb = build_store (Filename.concat dir "b") b in
            let sc = build_store (Filename.concat dir "c") c in
            Db.merge_from bc ~src:sb;
            Db.merge_from bc ~src:sc;
            Db.close sb;
            Db.close sc;
            let dst = Db.open_ ~dir:(Filename.concat dir "dst") in
            let sa = build_store (Filename.concat dir "a") a in
            Db.merge_from dst ~src:sa;
            Db.merge_from dst ~src:bc;
            Db.close sa;
            Db.close bc;
            let c = canon dst in
            Db.close dst;
            c)
      in
      left = right)

let prop_merge_idempotent =
  QCheck2.Test.make
    ~name:"Db.merge_from: idempotent on duplicate cells" ~count:15 gen_journal
    (fun a ->
      (* a ∪ a = a, both as a repeated source and as a self-re-merge *)
      canon_of_merge [ a; a ] = canon_of_merge [ a ])

let test_merge_prefers_advanced () =
  let o = Techniques.default_options in
  let stats n = { (entry_stats "Rand" None) with Stats.total = n } in
  let rec_with db key progress n =
    Db.record ?progress db ~key ~bench:"B" ~technique:"Rand" ~racy:0
      ~options:o (stats n)
  in
  let key = Db.fingerprint ~bench:"B" ~technique:"Rand" o in
  let check_merge ~what ~expect j1 j2 =
    with_dir (fun dir ->
        let s1 = Db.open_ ~dir:(Filename.concat dir "s1") in
        j1 s1;
        let s2 = Db.open_ ~dir:(Filename.concat dir "s2") in
        j2 s2;
        List.iter
          (fun (a, b) ->
            let dst = Db.open_ ~dir:(fresh_dir ()) in
            Db.merge_from dst ~src:a;
            Db.merge_from dst ~src:b;
            let e = Option.get (Db.find_any dst key) in
            Alcotest.(check int) what expect e.Db.e_stats.Stats.total;
            let d = Db.dir dst in
            Db.close dst;
            rm_rf d)
          [ (s1, s2); (s2, s1) ];
        Db.close s1;
        Db.close s2)
  in
  let inflight n db =
    rec_with db key
      (Some { Codec.p_consumed = n; p_slices = 1; p_done = false })
      n
  in
  let finished n db =
    rec_with db key
      (Some { Codec.p_consumed = n; p_slices = 2; p_done = true })
      n
  in
  check_merge ~what:"larger banked budget wins" ~expect:20 (inflight 10)
    (inflight 20);
  check_merge ~what:"finished beats in-flight" ~expect:15 (finished 15)
    (inflight 20)

(* --- compaction --- *)

let count_journal_lines dir =
  let ic = open_in_bin (Filename.concat dir "journal.jsonl") in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  String.split_on_char '\n' content
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* --- kill-and-resume: the tentpole guarantee --- *)

let pick name =
  match Sctbench.Registry.by_name name with
  | Some b -> b
  | None -> Alcotest.fail ("missing " ^ name)

let resume_options = { Techniques.default_options with Techniques.limit = 40 }

let resume_benches () =
  [ pick "CS.lazy01_bad"; pick "CS.deadlock01_bad"; pick "CS.account_bad" ]

let check_rows_equal clean resumed =
  List.iter2
    (fun (c : Sct_report.Run_data.row) (r : Sct_report.Run_data.row) ->
      let name = c.Sct_report.Run_data.bench.Sctbench.Bench.name in
      Alcotest.(check string)
        "bench" name r.Sct_report.Run_data.bench.Sctbench.Bench.name;
      Alcotest.(check int)
        (name ^ " racy") c.Sct_report.Run_data.racy_locations
        r.Sct_report.Run_data.racy_locations;
      List.iter2
        (fun (t1, s1) (t2, s2) ->
          Alcotest.(check bool) "technique order" true (t1 = t2);
          Alcotest.check stats_t
            (name ^ " " ^ Techniques.name t1)
            s1 s2)
        c.Sct_report.Run_data.results r.Sct_report.Run_data.results)
    clean resumed

exception Interrupted

let test_kill_and_resume () =
  with_dir (fun dir ->
      let o = resume_options in
      let benches = resume_benches () in
      let n_cells = List.length benches * List.length Techniques.all_paper in
      let clean = Sct_report.Run_data.run_all o benches in
      (* run with a store and "crash" before the third benchmark *)
      let db = Db.open_ ~dir in
      let seen = ref 0 in
      (try
         ignore
           (Sct_report.Run_data.run_all ~store:db
              ~progress:(fun _ ->
                incr seen;
                if !seen = 3 then raise Interrupted)
              o benches
             : Sct_report.Run_data.row list)
       with Interrupted -> ());
      Db.close db;
      append_torn_record dir;
      (* resume: only the missing cells may run *)
      let db = Db.open_ ~dir in
      let before = Db.size db in
      Alcotest.(check bool)
        "interrupted partway" true
        (before > 0 && before < n_cells);
      let resumed = Sct_report.Run_data.run_all ~store:db o benches in
      Alcotest.(check int) "all cells journalled" n_cells (Db.size db);
      Db.close db;
      check_rows_equal clean resumed;
      (* nothing journalled twice: every line in the journal is either one
         of the cells or the torn record *)
      let ic = open_in_bin (Filename.concat dir "journal.jsonl") in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int)
        "no cell re-executed" (n_cells + 1) (List.length lines);
      (* a fully journalled store reproduces the rows without running
         anything — and still matches *)
      let db = Db.open_ ~dir in
      let cached = Sct_report.Run_data.run_all ~store:db o benches in
      Alcotest.(check int) "pure read" n_cells (Db.size db);
      Db.close db;
      check_rows_equal clean cached)

let test_compact_then_resume () =
  with_dir (fun dir ->
      let o = resume_options in
      let benches = resume_benches () in
      let clean = Sct_report.Run_data.run_all o benches in
      (* interrupt a stored run, tear the journal tail, then compact *)
      let db = Db.open_ ~dir in
      let seen = ref 0 in
      (try
         ignore
           (Sct_report.Run_data.run_all ~store:db
              ~progress:(fun _ ->
                incr seen;
                if !seen = 3 then raise Interrupted)
              o benches
             : Sct_report.Run_data.row list)
       with Interrupted -> ());
      Db.close db;
      append_torn_record dir;
      let db = Db.open_ ~dir in
      let before = canon db in
      let records = List.length (Db.entries_any db) in
      Db.compact db;
      Alcotest.(check bool)
        "in-memory state unchanged by compaction" true
        (canon db = before);
      Alcotest.(check int)
        "journal holds exactly one line per cell (torn tail dropped)"
        records (count_journal_lines dir);
      Db.close db;
      (* the compacted store resumes into exactly the clean rows *)
      let db = Db.open_ ~dir in
      Alcotest.(check bool)
        "reopened compacted store reads back identically" true
        (canon db = before);
      let resumed = Sct_report.Run_data.run_all ~store:db o benches in
      Db.close db;
      check_rows_equal clean resumed)

let test_witnesses_replay_as_buggy () =
  with_dir (fun dir ->
      let o = resume_options in
      let benches = resume_benches () in
      let db = Db.open_ ~dir in
      let (_ : Sct_report.Run_data.row list) =
        Sct_report.Run_data.run_all ~store:db o benches
      in
      let witnesses =
        List.filter_map (fun (_, e) -> e.Db.e_witness) (Db.entries db)
      in
      Alcotest.(check bool) "some witnesses recorded" true (witnesses <> []);
      List.iter
        (fun digest ->
          let a =
            Artifact.load
              (Filename.concat (Db.artifacts_dir db) (digest ^ ".sched"))
          in
          let b = pick a.Artifact.meta.Artifact.a_bench in
          let ao = a.Artifact.meta.Artifact.a_options in
          let promote =
            Sct_race.Promotion.promote
              (Techniques.detect_races ao b.Sctbench.Bench.program)
          in
          match
            Sct_explore.Replay.replay ~promote
              ~max_steps:ao.Techniques.max_steps ~schedule:a.Artifact.schedule
              b.Sctbench.Bench.program
          with
          | None -> Alcotest.fail (digest ^ ": witness schedule infeasible")
          | Some r ->
              Alcotest.(check bool)
                (digest ^ " reproduces its bug")
                true
                (Outcome.is_buggy r.Sct_core.Runtime.r_outcome))
        witnesses;
      Db.close db)

let suites =
  [
    ( "store.codec",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip_schedule;
        QCheck_alcotest.to_alcotest prop_roundtrip_bug;
        QCheck_alcotest.to_alcotest prop_roundtrip_witness;
        QCheck_alcotest.to_alcotest prop_roundtrip_options;
        QCheck_alcotest.to_alcotest prop_roundtrip_stats;
        QCheck_alcotest.to_alcotest prop_roundtrip_progress;
        Alcotest.test_case "version-1 wire format is stable" `Quick
          test_fixture_stability;
        Alcotest.test_case "campaign progress wire format is stable" `Quick
          test_progress_fixture_stability;
        Alcotest.test_case "version gate and malformed input" `Quick
          test_version_gate;
      ] );
    ( "store.artifact",
      [
        Alcotest.test_case "save/load round-trip, content-addressed" `Quick
          test_artifact_roundtrip;
        Alcotest.test_case "tampering is detected" `Quick
          test_artifact_tamper_detected;
        Alcotest.test_case "schedule_of_file reads raw and .sched files"
          `Quick test_schedule_of_file;
        Alcotest.test_case "listing is digest-ordered" `Quick
          test_artifact_list_order;
      ] );
    ( "store.db",
      [
        Alcotest.test_case "journal round-trip with witness artifacts" `Quick
          test_db_roundtrip;
        Alcotest.test_case "truncated final record is recovered" `Quick
          test_db_truncated_tail;
        Alcotest.test_case "fingerprint ignores jobs/split-depth" `Quick
          test_fingerprint_ignores_parallelism;
        Alcotest.test_case "campaign progress records are slice-resumable"
          `Quick test_db_progress_records;
      ] );
    ( "store.merge",
      [
        QCheck_alcotest.to_alcotest prop_merge_commutative;
        QCheck_alcotest.to_alcotest prop_merge_associative;
        QCheck_alcotest.to_alcotest prop_merge_idempotent;
        Alcotest.test_case "join keeps the most advanced snapshot" `Quick
          test_merge_prefers_advanced;
      ] );
    ( "store.resume",
      [
        Alcotest.test_case "kill-and-resume equals an uninterrupted run"
          `Slow test_kill_and_resume;
        Alcotest.test_case "compacted store resumes identically" `Slow
          test_compact_then_resume;
        Alcotest.test_case "recorded witnesses replay as buggy" `Slow
          test_witnesses_replay_as_buggy;
      ] );
  ]
