(* Vector clocks, the race detector, and the iterative promotion phase. *)

open Sct_core

(* --- vector clocks --- *)

let gen_clock =
  QCheck2.Gen.(
    map
      (fun l -> List.fold_left (fun c (t, v) -> Sct_race.Vclock.set c t v) Sct_race.Vclock.zero l)
      (list_size (int_range 0 6)
         (pair (int_range 0 5) (int_range 0 20))))

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"join is an upper bound" ~count:300
    QCheck2.Gen.(pair gen_clock gen_clock)
    (fun (a, b) ->
      let j = Sct_race.Vclock.join a b in
      Sct_race.Vclock.leq a j && Sct_race.Vclock.leq b j)

let prop_join_commutative =
  QCheck2.Test.make ~name:"join commutes" ~count:300
    QCheck2.Gen.(pair gen_clock gen_clock)
    (fun (a, b) ->
      Sct_race.Vclock.equal (Sct_race.Vclock.join a b) (Sct_race.Vclock.join b a))

let prop_join_idempotent =
  QCheck2.Test.make ~name:"join idempotent" ~count:300 gen_clock (fun a ->
      Sct_race.Vclock.equal (Sct_race.Vclock.join a a) a)

let prop_tick_increases =
  QCheck2.Test.make ~name:"tick strictly increases own component" ~count:300
    QCheck2.Gen.(pair gen_clock (int_range 0 5))
    (fun (a, t) ->
      let b = Sct_race.Vclock.tick a t in
      Sct_race.Vclock.get b t = Sct_race.Vclock.get a t + 1
      && Sct_race.Vclock.leq a b)

(* --- detector on whole executions --- *)

let detect ?(runs = 6) program =
  Sct_race.Promotion.detect ~runs ~seed:0 program

let test_plain_race_detected () =
  let program () =
    let x = Sct.Var.make ~name:"shared_x" 0 in
    let t = Sct.spawn (fun () -> Sct.Var.write x 1) in
    ignore (Sct.Var.read x);
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check (list string)) "x is racy" [ "shared_x" ] r.Sct_race.Promotion.racy

let test_locked_no_race () =
  let program () =
    let x = Sct.Var.make ~name:"locked_x" 0 in
    let m = Sct.Mutex.create () in
    let t =
      Sct.spawn (fun () ->
          Sct.Mutex.lock m;
          Sct.Var.write x 1;
          Sct.Mutex.unlock m)
    in
    Sct.Mutex.lock m;
    ignore (Sct.Var.read x);
    Sct.Mutex.unlock m;
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check (list string)) "no races" [] r.Sct_race.Promotion.racy

let test_fork_join_ordered () =
  (* accesses ordered by fork or join are not races *)
  let program () =
    let x = Sct.Var.make ~name:"fj_x" 0 in
    Sct.Var.write x 1;
    let t = Sct.spawn (fun () -> Sct.Var.write x 2) in
    Sct.join t;
    ignore (Sct.Var.read x)
  in
  let r = detect program in
  Alcotest.(check (list string)) "no races" [] r.Sct_race.Promotion.racy

let test_atomics_never_race () =
  let program () =
    let x = Sct.Atomic.make ~name:"atomic_x" 0 in
    let t = Sct.spawn (fun () -> Sct.Atomic.store x 1) in
    ignore (Sct.Atomic.load x);
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check (list string)) "no races" [] r.Sct_race.Promotion.racy

let test_semaphore_orders () =
  let program () =
    let x = Sct.Var.make ~name:"sem_x" 0 in
    let s = Sct.Sem.create 0 in
    let t =
      Sct.spawn (fun () ->
          Sct.Var.write x 1;
          Sct.Sem.post s)
    in
    Sct.Sem.wait s;
    ignore (Sct.Var.read x);
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check (list string)) "no races" [] r.Sct_race.Promotion.racy

let test_read_read_not_race () =
  let program () =
    let x = Sct.Var.make ~name:"rr_x" 7 in
    let t = Sct.spawn (fun () -> ignore (Sct.Var.read x)) in
    ignore (Sct.Var.read x);
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check (list string)) "no races" [] r.Sct_race.Promotion.racy

(* Iterative promotion: the second round, with the first round's racy
   location visible, exposes interleavings (and hence races) invisible to
   the first — the Bluetooth-driver shape. *)
let test_iterative_promotion () =
  let program () =
    let flag = Sct.Var.make ~name:"it_flag" false in
    let inner = Sct.Var.make ~name:"it_inner" 0 in
    let t =
      Sct.spawn (fun () ->
          Sct.Var.write flag true;
          Sct.Var.write inner 1)
    in
    if not (Sct.Var.read flag) then ignore (Sct.Var.read inner);
    Sct.join t
  in
  (* one round: the child body runs atomically during spawn, so main sees
     flag = true and never touches [inner] *)
  let one = Sct_race.Promotion.detect ~runs:6 ~seed:0 ~max_rounds:1 program in
  Alcotest.(check (list string)) "round 1: only the flag" [ "it_flag" ]
    one.Sct_race.Promotion.racy;
  (* at the fixpoint, the race on [inner] is exposed too *)
  let fix = Sct_race.Promotion.detect ~runs:6 ~seed:0 program in
  Alcotest.(check (list string)) "fixpoint: both" [ "it_flag"; "it_inner" ]
    fix.Sct_race.Promotion.racy

let test_race_report_details () =
  let program () =
    let x = Sct.Var.make ~name:"det_x" 0 in
    let t = Sct.spawn (fun () -> Sct.Var.write x 1) in
    Sct.Var.write x 2;
    Sct.join t
  in
  let r = detect program in
  Alcotest.(check bool) "at least one race report" true
    (List.length r.Sct_race.Promotion.races > 0);
  List.iter
    (fun (race : Sct_race.Detector.race) ->
      Alcotest.(check string) "location" "det_x" race.Sct_race.Detector.location)
    r.Sct_race.Promotion.races

let suites =
  [
    ( "race-detection",
      [
        QCheck_alcotest.to_alcotest prop_join_upper_bound;
        QCheck_alcotest.to_alcotest prop_join_commutative;
        QCheck_alcotest.to_alcotest prop_join_idempotent;
        QCheck_alcotest.to_alcotest prop_tick_increases;
        Alcotest.test_case "plain race detected" `Quick
          test_plain_race_detected;
        Alcotest.test_case "lock discipline: no race" `Quick
          test_locked_no_race;
        Alcotest.test_case "fork/join order: no race" `Quick
          test_fork_join_ordered;
        Alcotest.test_case "atomics never race" `Quick test_atomics_never_race;
        Alcotest.test_case "semaphore orders accesses" `Quick
          test_semaphore_orders;
        Alcotest.test_case "read/read is not a race" `Quick
          test_read_read_not_race;
        Alcotest.test_case "iterative promotion reaches a fixpoint" `Quick
          test_iterative_promotion;
        Alcotest.test_case "race report details" `Quick
          test_race_report_details;
      ] );
  ]
