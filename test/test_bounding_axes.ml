(* The four bounding axes beyond the paper — fair bounding, length
   bounding, variable bounding and thread bounding — and their laws:

   1. inclusion/monotonicity on generated programs: the schedule set
      admitted at bound k is contained in the set at bound k+1, per axis;
   2. degenerate bounds: Fair at an unreachable yield bound is
      byte-identical to plain IPB, and Length at (or above) the longest
      schedule is byte-identical to unbounded DFS;
   3. the acceptance demo: fair bounding finds yield.spinwait_bad's bug
      within a few hundred executions while plain IPB and DFS exhaust a
      500-schedule budget inside the decoy spin subtrees;
   4. the exact unknown-name listing of Techniques.parse_list;
   5. a study slice including the axes is byte-identical across --jobs
      values, and an axes campaign killed mid-cell resumes to the same
      journal bytes. *)

open Sct_explore
module Schedule = Sct_core.Schedule

let stats_t = Alcotest.testable Stats.pp Stats.equal
let promote_all _ = true

let pick name =
  match Sctbench.Registry.by_name name with
  | Some b -> b
  | None -> Alcotest.fail ("missing benchmark " ^ name)

(* --- 1. inclusion: bound k admits a subset of bound k+1 ----------------- *)

(* Walk [program] under [strategy], collecting every counted terminal
   schedule. The budget is high enough that the small generated programs
   exhaust their spaces; walks that still hit it are skipped (a truncated
   enumeration need not nest). *)
let sched_set strategy program =
  let set = ref Stats.Sched_set.empty in
  let s =
    Driver.explore ~promote:promote_all ~max_steps:1_000
      ~on_schedule:(fun res ->
        set := Stats.Sched_set.add (Schedule.to_list res.Sct_core.Runtime.r_schedule) !set)
      ~limit:4_000 strategy program
  in
  (s, !set)

let axes_of_bound =
  [
    ("fair", fun k -> Dfs.strategy ~fair:k ~bound:Dfs.Unbounded ());
    ("length", fun k -> Dfs.strategy ~length:k ~bound:Dfs.Unbounded ());
    ("variable", fun k -> Dfs.strategy ~bound:(Dfs.Variable k) ());
    ("thread", fun k -> Dfs.strategy ~bound:(Dfs.Threads k) ());
  ]

let prop_inclusion =
  QCheck2.Test.make ~name:"bound k admits a subset of bound k+1, every axis"
    ~count:30 ~print:string_of_int
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let program = Sct_fuzz.Compile.program (Sct_fuzz.Gen.program ~seed) in
      List.iter
        (fun (axis, strat) ->
          List.iter
            (fun k ->
              let sk, set_k = sched_set (strat k) program in
              let sk1, set_k1 = sched_set (strat (k + 1)) program in
              if not (sk.Stats.hit_limit || sk1.Stats.hit_limit) then begin
                if not (Stats.Sched_set.subset set_k set_k1) then
                  QCheck2.Test.fail_reportf
                    "seed %d, %s bounding: bound %d admits a schedule bound \
                     %d does not"
                    seed axis k (k + 1);
                if sk.Stats.total > sk1.Stats.total then
                  QCheck2.Test.fail_reportf
                    "seed %d, %s bounding: counted %d at bound %d but %d at \
                     bound %d"
                    seed axis sk.Stats.total k sk1.Stats.total (k + 1)
              end)
            (match axis with
            | "length" -> [ 1; 4 ] (* length 0 admits nothing interesting *)
            | _ -> [ 0; 1 ]))
        axes_of_bound;
      true)

(* --- 2. degenerate bounds: the filters vanish ---------------------------- *)

let run_t o t program = Techniques.run ~promote:promote_all o t program

let prop_fair_unbounded_is_ipb =
  QCheck2.Test.make
    ~name:"Fair at an unreachable yield bound == plain IPB, byte for byte"
    ~count:25 ~print:string_of_int
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let program = Sct_fuzz.Compile.program (Sct_fuzz.Gen.program ~seed) in
      let o = { Techniques.default_options with Techniques.limit = 300 } in
      let ipb = run_t o Techniques.IPB program in
      let fair =
        run_t { o with Techniques.fair_bound = max_int } Techniques.Fair
          program
      in
      Stats.equal { fair with Stats.technique = ipb.Stats.technique } ipb)

let prop_length_at_longest_is_dfs =
  QCheck2.Test.make
    ~name:"Length at the longest schedule == unbounded DFS, byte for byte"
    ~count:25 ~print:string_of_int
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let program = Sct_fuzz.Compile.program (Sct_fuzz.Gen.program ~seed) in
      let o = { Techniques.default_options with Techniques.limit = 300 } in
      let longest = ref 0 in
      let dfs =
        Driver.explore ~promote:promote_all ~max_steps:o.Techniques.max_steps
          ~on_schedule:(fun res ->
            longest :=
              max !longest
                (List.length
                   (Schedule.to_list res.Sct_core.Runtime.r_schedule)))
          ~limit:o.Techniques.limit
          (Dfs.strategy ~bound:Dfs.Unbounded ())
          program
      in
      (* schedules of exactly [length_bound] decisions still count: the
         bound set to the longest observed schedule cuts nothing *)
      let len =
        run_t
          { o with Techniques.length_bound = max 1 !longest }
          Techniques.Length program
      in
      Stats.equal { len with Stats.technique = dfs.Stats.technique } dfs)

(* --- 3. the yield-loop acceptance demo ----------------------------------- *)

(* yield.spinwait_bad: the one-preemption witness hides at the start of
   the program behind three decoy spin loops. At a 500-schedule budget,
   plain IPB and unbounded DFS both exhaust the limit inside the yield-spam
   subtrees without the bug; fair bounding at the default bound cuts every
   unbalanced spin and reaches the bug on its first counted schedule. *)
let test_spinwait_demo () =
  let b = pick "yield.spinwait_bad" in
  let o = { Techniques.default_options with Techniques.limit = 500 } in
  let det = Techniques.detect_races o b.Sctbench.Bench.program in
  let promote = Sct_race.Promotion.promote det in
  let run t = Techniques.run ~promote o t b.Sctbench.Bench.program in
  let fair = run Techniques.Fair in
  Alcotest.(check bool) "fair bounding finds the bug" true (Stats.found fair);
  Alcotest.(check (option int))
    "found with a single preemption" (Some 1) fair.Stats.bound;
  Alcotest.(check (option int))
    "on the first counted schedule" (Some 1) fair.Stats.to_first_bug;
  Alcotest.(check bool)
    (Printf.sprintf "the spins were cut, not enumerated (cuts=%d)"
       fair.Stats.cut_runs)
    true
    (fair.Stats.cut_runs > 0);
  Alcotest.(check bool)
    "fair stayed within the budget" true
    (fair.Stats.total + fair.Stats.cut_runs <= o.Techniques.limit);
  let ipb = run Techniques.IPB in
  Alcotest.(check bool) "plain IPB exhausts the budget" true
    ipb.Stats.hit_limit;
  Alcotest.(check bool) "plain IPB misses the bug" false (Stats.found ipb);
  let dfs = run Techniques.DFS in
  Alcotest.(check bool) "unbounded DFS exhausts the budget" true
    dfs.Stats.hit_limit;
  Alcotest.(check bool) "unbounded DFS misses the bug" false (Stats.found dfs)

(* cas_yield_bad carries the no-bug-lost boundary: its witness spends 3
   yields, inside the default fair bound of 5 — fair bounding keeps it. *)
let test_cas_yield_kept () =
  let b = pick "yield.cas_yield_bad" in
  let o = { Techniques.default_options with Techniques.limit = 3_000 } in
  let det = Techniques.detect_races o b.Sctbench.Bench.program in
  let promote = Sct_race.Promotion.promote det in
  let fair = Techniques.run ~promote o Techniques.Fair b.Sctbench.Bench.program in
  Alcotest.(check bool)
    "fair bounding keeps the 3-yield witness" true (Stats.found fair);
  Alcotest.(check (option int))
    "at preemption bound 1" (Some 1) fair.Stats.bound

(* --- 4. parse_list: the exact unknown-name listing ----------------------- *)

let test_parse_list_listing () =
  let valid = "ipb, idb, dfs, rand, pct, maple, surw, fair, length, ivb, itb" in
  (match Techniques.parse_list [ "bogus" ] with
  | Error msg ->
      Alcotest.(check string)
        "unknown name lists every technique"
        (Printf.sprintf "unknown technique: bogus (valid: %s)" valid)
        msg
  | Ok _ -> Alcotest.fail "parse_list accepted an unknown name");
  (match Techniques.parse_list [ "," ] with
  | Error msg ->
      Alcotest.(check string)
        "empty spec lists every technique"
        (Printf.sprintf "no technique names given (valid: %s)" valid)
        msg
  | Ok _ -> Alcotest.fail "parse_list accepted an empty spec");
  match Techniques.parse_list [ "fair,length"; "ivb"; "itb" ] with
  | Ok ts ->
      Alcotest.(check (list string))
        "the axes parse in order"
        [ "Fair"; "Length"; "IVB"; "ITB" ]
        (List.map Techniques.name ts)
  | Error msg -> Alcotest.fail msg

(* --- 5. parallel and crash-resume determinism with the axes -------------- *)

let axes_study_techniques =
  [
    Techniques.IPB; Techniques.DFS; Techniques.Fair; Techniques.Length;
    Techniques.IVB; Techniques.ITB;
  ]

let render_table3 ~limit rows =
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Sct_report.Table3.print ~out:fmt ~limit rows;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_jobs_byte_identical () =
  let benches = [ pick "yield.cas_yield_bad"; pick "yield.livelock_bad" ] in
  let o = { Techniques.default_options with Techniques.limit = 200 } in
  let table jobs =
    Sct_parallel.Pool.with_pool ~jobs (fun pool ->
        render_table3 ~limit:o.Techniques.limit
          (List.map
             (Sct_parallel.Suite.run_benchmark ~pool
                ~techniques:axes_study_techniques o)
             benches))
  in
  let t1 = table 1 in
  Alcotest.(check string) "table3 bytes: --jobs 4 == --jobs 1" t1 (table 4);
  Alcotest.(check bool) "the axes columns are present" true
    (List.for_all
       (fun needle -> Astring_contains.contains t1 needle)
       [ "Fair b/first"; "Length b/first"; "IVB b/first"; "ITB b/first" ])

(* An axes-only campaign killed mid-cell (exception inside a slice, then a
   torn journal record — the on-disk state an actual SIGKILL leaves) must
   resume to byte-identical journal statistics and status report. *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let f = Filename.temp_file "sct_axes_test" (string_of_int !counter) in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

exception Killed

let test_campaign_kill_resume () =
  let module Db = Sct_store.Db in
  let module Cell = Sct_campaign.Cell in
  let module Orchestrator = Sct_campaign.Orchestrator in
  (* spinwait's bug sits behind 241 cut spin runs (all charged to the
     budget), so the cell limit must clear that before the first counted
     schedule *)
  let o = { Techniques.default_options with Techniques.limit = 300 } in
  let axes =
    [ Techniques.Fair; Techniques.Length; Techniques.IVB; Techniques.ITB ]
  in
  let benches = [ pick "yield.spinwait_bad"; pick "yield.cas_yield_bad" ] in
  let grid () = Cell.grid ~techniques:axes o benches in
  let run ?on_slice db =
    Sct_parallel.Pool.with_pool ~jobs:1 (fun pool ->
        Orchestrator.run ~slice:60 ?on_slice ~pool ~db (grid ()))
  in
  let render_status db =
    let buf = Buffer.create 1024 in
    let fmt = Format.formatter_of_buffer buf in
    Sct_campaign.Status.render fmt db;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let cells_of db =
    List.map
      (fun (c : Cell.t) ->
        match Db.find db c.Cell.key with
        | None -> Alcotest.fail (Cell.name c ^ " not finished in store")
        | Some e -> (Cell.name c, e.Db.e_stats)
      )
      (grid ())
  in
  with_dir @@ fun clean_dir ->
  with_dir @@ fun crash_dir ->
  let clean_db = Db.open_ ~dir:clean_dir in
  let (_ : Orchestrator.outcome) = run clean_db in
  let clean_cells = cells_of clean_db in
  let clean_status = render_status clean_db in
  Db.close clean_db;
  (* the axes cells really do find their bugs in this grid *)
  Alcotest.(check bool) "a Fair cell found spinwait's bug" true
    (List.exists
       (fun (name, s) ->
         name = "yield.spinwait_bad/Fair" && Stats.found s)
       clean_cells);
  (* crash after the second journalled slice — mid-cell, since every cell
     here takes multiple slices or sits behind one that does *)
  let db = Db.open_ ~dir:crash_dir in
  let seen = ref 0 in
  (try
     ignore
       (run
          ~on_slice:(fun _ _ ->
            incr seen;
            if !seen = 2 then raise Killed)
          db
         : Orchestrator.outcome)
   with Killed -> ());
  Db.close db;
  (* a SIGKILL can tear the final record; the journal must shrug it off *)
  let oc =
    open_out_gen
      [ Open_wronly; Open_append; Open_binary ]
      0o644
      (Filename.concat crash_dir "journal.jsonl")
  in
  output_string oc {|{"v":1,"key":"torn|};
  close_out oc;
  let db = Db.open_ ~dir:crash_dir in
  let (_ : Orchestrator.outcome) = run db in
  List.iter2
    (fun (name, stats) (name', stats') ->
      Alcotest.(check string) "cell order" name name';
      Alcotest.check stats_t ("resumed " ^ name) stats stats')
    clean_cells (cells_of db);
  Alcotest.(check string)
    "resumed status byte-identical to uninterrupted" clean_status
    (render_status db);
  Db.close db

let suites =
  [
    ( "bounding-axes",
      [
        QCheck_alcotest.to_alcotest prop_inclusion;
        QCheck_alcotest.to_alcotest prop_fair_unbounded_is_ipb;
        QCheck_alcotest.to_alcotest prop_length_at_longest_is_dfs;
        Alcotest.test_case "fair bounding cracks yield.spinwait_bad" `Slow
          test_spinwait_demo;
        Alcotest.test_case "fair bounding keeps the 3-yield witness" `Slow
          test_cas_yield_kept;
        Alcotest.test_case "parse_list pins the exact name listing" `Quick
          test_parse_list_listing;
        Alcotest.test_case "axes table3 is byte-identical across --jobs"
          `Slow test_jobs_byte_identical;
        Alcotest.test_case "axes campaign killed mid-cell resumes exactly"
          `Slow test_campaign_kill_resume;
      ] );
  ]
