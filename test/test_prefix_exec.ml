(* The prefix-memoizing batched executor (lib/explore/prefix_exec).

   1. Fork server vs portable fallback: bit-identical walk results on the
      same bounded trees (skipped where forking is unavailable).
   2. Batched walk vs classic backtracking DFS: identical in every field
      except the step counters, which must conserve total work
      (executed + saved = unbatched executed) and actually save.
   3. Batched vs unbatched technique campaigns (DFS/IPB/IDB) through
      [Techniques.run]: equal statistics modulo steps, and a >= 2x cut in
      steps executed on tree-shaped benchmarks.
   4. Golden byte-identity: the rendered table-3 text is identical for
      batching on/off and for --jobs 1 vs 4.
   5. Store resume across a real SIGKILL mid-batch: a killed batched run
      resumes on the same store into exactly the clean rows. *)

open Sct_core
open Sct_explore

let promote_all _ = true
let stats_t = Alcotest.testable Stats.pp Stats.equal

let two_seq a b () =
  let (_ : Tid.t) =
    Sct.spawn
      (fun () ->
        for _ = 1 to b do
          Sct.yield ()
        done)
  in
  for _ = 1 to a do
    Sct.yield ()
  done

let pick name =
  match Sctbench.Registry.by_name name with
  | Some b -> b
  | None -> Alcotest.fail ("missing benchmark " ^ name)

let bench_program name = (pick name).Sctbench.Bench.program

(* (name, program, bound, count_exact, limit) — the same tree shapes the
   frontier equivalence tests use, plus bounded and truncated walks *)
let walk_cases () =
  [
    ("two_seq-4-4", two_seq 4 4, Dfs.Unbounded, None, 1_000);
    ("two_seq-4-4/truncated", two_seq 4 4, Dfs.Unbounded, None, 30);
    ("two_seq-5-3/pb1", two_seq 5 3, Dfs.Preemption 1, Some 1, 1_000);
    ("two_seq-5-3/db2", two_seq 5 3, Dfs.Delay 2, Some 2, 1_000);
    ( "twostage/truncated",
      bench_program "CS.twostage_bad",
      Dfs.Unbounded,
      None,
      150 );
    ( "account/pb1",
      bench_program "CS.account_bad",
      Dfs.Preemption 1,
      Some 1,
      300 );
  ]

let run_walk ?fork (name, program, bound, count_exact, limit) =
  ignore name;
  Prefix_exec.explore ~promote:promote_all ?count_exact ?fork ~bound ~limit
    program

(* 1. the two back-ends are interchangeable, bit for bit *)
let test_fork_matches_fallback () =
  if not (Prefix_exec.fork_available ()) then ()
  else
    List.iter
      (fun case ->
        let (name, _, _, _, _) = case in
        let fallback = run_walk ~fork:false case in
        let forked = run_walk ~fork:true case in
        Alcotest.(check bool)
          (name ^ ": fork == fallback") true
          (fallback = forked))
      (walk_cases ())

(* 2. batched walk == classic DFS modulo steps, with conservation *)
let test_batched_walk_matches_dfs () =
  List.iter
    (fun ((name, program, bound, count_exact, limit) as case) ->
      let dfs =
        Dfs.explore ~promote:promote_all ?count_exact ~bound ~limit program
      in
      let batched = run_walk case in
      Alcotest.(check bool)
        (name ^ ": equal modulo steps") true
        ({
           batched with
           Strategy.steps_executed = dfs.Dfs.steps_executed;
           steps_saved = dfs.Dfs.steps_saved;
         }
        = dfs);
      Alcotest.(check int)
        (name ^ ": unbatched DFS saves nothing")
        0 dfs.Dfs.steps_saved;
      Alcotest.(check int)
        (name ^ ": steps conserved")
        dfs.Dfs.steps_executed
        (batched.Strategy.steps_executed + batched.Strategy.steps_saved);
      if batched.Strategy.counted > 1 then
        Alcotest.(check bool)
          (name ^ ": batching saved steps")
          true
          (batched.Strategy.steps_saved > 0))
    (walk_cases ())

(* --- batched campaigns through Techniques.run --- *)

let plain_options =
  { Techniques.default_options with Techniques.limit = 200 }

let batched_options = { plain_options with Techniques.prefix_batch = true }
let tree_techniques = [ Techniques.DFS; Techniques.IPB; Techniques.IDB ]
let campaign_benches = [ "CS.lazy01_bad"; "CS.twostage_bad" ]

(* 3. batched == unbatched statistics modulo steps; >= 2x steps cut *)
let test_batched_campaigns_match () =
  List.iter
    (fun bname ->
      let program = bench_program bname in
      let promote =
        Sct_race.Promotion.promote
          (Techniques.detect_races plain_options program)
      in
      List.iter
        (fun t ->
          let what = bname ^ "/" ^ Techniques.name t in
          let plain = Techniques.run ~promote plain_options t program in
          let batched = Techniques.run ~promote batched_options t program in
          Alcotest.check stats_t
            (what ^ ": equal modulo steps")
            plain
            {
              batched with
              Stats.steps_executed = plain.Stats.steps_executed;
              steps_saved = plain.Stats.steps_saved;
            };
          Alcotest.(check int)
            (what ^ ": unbatched driver saves nothing")
            0 plain.Stats.steps_saved;
          Alcotest.(check int)
            (what ^ ": steps conserved")
            plain.Stats.steps_executed
            (batched.Stats.steps_executed + batched.Stats.steps_saved);
          (* a campaign that only ever counted one schedule has no prefix
             to share (e.g. IDB here: level 0 is a single run) *)
          if batched.Stats.total > 1 then
            Alcotest.(check bool)
              (what ^ ": batching saved steps")
              true
              (batched.Stats.steps_saved > 0);
          (* the tentpole factor: DFS spends its whole budget deep in one
             tree, so the >= 2x cut must already show at this limit. The
             iterative-bounding campaigns start at shallow levels where
             there is little prefix to share; their >= 2x cut is measured
             at the paper's limits by the bench baseline gate instead. *)
          if t = Techniques.DFS then
            Alcotest.(check bool)
              (Printf.sprintf "%s: >= 2x steps cut (%d executed, %d saved)"
                 what batched.Stats.steps_executed batched.Stats.steps_saved)
              true
              (2 * batched.Stats.steps_executed <= plain.Stats.steps_executed))
        tree_techniques)
    campaign_benches

(* --- golden byte-identity of the rendered tables --- *)

let golden_limit = 200

let golden_benches () =
  List.map pick [ "CS.lazy01_bad"; "CS.deadlock01_bad"; "CS.account_bad" ]

let render rows =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Sct_report.Table3.print ~out:fmt ~limit:golden_limit rows;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* 4. the report is byte-identical for batching on/off and jobs 1 vs 4 *)
let test_tables_byte_identical () =
  let benches = golden_benches () in
  let o = { plain_options with Techniques.limit = golden_limit } in
  let ob = { o with Techniques.prefix_batch = true } in
  let off = render (Sct_report.Run_data.run_all o benches) in
  let on = render (Sct_report.Run_data.run_all ob benches) in
  let on_jobs4 =
    render
      (Sct_parallel.Pool.with_pool ~jobs:4 (fun pool ->
           Sct_parallel.Suite.run_all ~pool ob benches))
  in
  Alcotest.(check string) "batching on == off" off on;
  Alcotest.(check string) "jobs 4 == jobs 1" on on_jobs4

(* --- SIGKILL mid-batch, then resume --- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let f = Filename.temp_file "sct_prefix_exec" (string_of_int !counter) in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let check_rows_equal clean resumed =
  List.iter2
    (fun (c : Sct_report.Run_data.row) (r : Sct_report.Run_data.row) ->
      let name = c.Sct_report.Run_data.bench.Sctbench.Bench.name in
      Alcotest.(check int)
        (name ^ " racy") c.Sct_report.Run_data.racy_locations
        r.Sct_report.Run_data.racy_locations;
      List.iter2
        (fun (t1, s1) (t2, s2) ->
          Alcotest.(check bool) "technique order" true (t1 = t2);
          Alcotest.check stats_t
            (name ^ " " ^ Techniques.name t1)
            s1 s2)
        c.Sct_report.Run_data.results r.Sct_report.Run_data.results)
    clean resumed

(* wait until the journal holds at least one complete record *)
let wait_for_first_record journal =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec wait () =
    let ready =
      Sys.file_exists journal
      && In_channel.with_open_bin journal (fun ic ->
             String.contains
               (really_input_string ic (in_channel_length ic))
               '\n')
    in
    if ready then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "the batched child run made no progress"
    else begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ()

(* 5. SIGKILL a batched stored run mid-campaign; resume must reproduce the
   clean rows exactly. The killed child is running fork-server batches, so
   the kill also orphans in-flight worker processes — they die on their
   broken pipes without corrupting the store. *)
let test_sigkill_resume () =
  if not (Prefix_exec.fork_available ()) then ()
  else
    with_dir (fun dir ->
        let o = { batched_options with Techniques.limit = 40 } in
        let benches = golden_benches () in
        let clean = Sct_report.Run_data.run_all o benches in
        (match Unix.fork () with
        | 0 ->
            (* the child never returns into the test runner *)
            (try
               let db = Sct_store.Db.open_ ~dir in
               ignore
                 (Sct_report.Run_data.run_all ~store:db o benches
                   : Sct_report.Run_data.row list);
               Sct_store.Db.close db
             with _ -> ());
            Unix._exit 0
        | pid ->
            wait_for_first_record (Filename.concat dir "journal.jsonl");
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid));
        let db = Sct_store.Db.open_ ~dir in
        let partial = Sct_store.Db.size db in
        let resumed = Sct_report.Run_data.run_all ~store:db o benches in
        let n_cells =
          List.length benches * List.length Techniques.all_paper
        in
        Alcotest.(check bool)
          "the kill landed mid-campaign" true
          (partial >= 1 && partial < n_cells);
        Alcotest.(check int)
          "all cells journalled" n_cells (Sct_store.Db.size db);
        Sct_store.Db.close db;
        check_rows_equal clean resumed)

(* Order matters: the fork-dependent cases must run before any test that
   creates a multi-worker pool — once a second domain ever existed, the
   OCaml runtime refuses [Unix.fork] for the rest of the process and
   [fork_available] correctly reports so. The jobs-4 table comparison
   therefore runs last. *)
let suites =
  [
    ( "prefix-exec",
      [
        Alcotest.test_case "fork server == fallback" `Quick
          test_fork_matches_fallback;
        Alcotest.test_case "batched walk == DFS modulo steps" `Quick
          test_batched_walk_matches_dfs;
        Alcotest.test_case "SIGKILL mid-batch, store resume" `Slow
          test_sigkill_resume;
        Alcotest.test_case "batched campaigns == unbatched, >= 2x steps cut"
          `Slow test_batched_campaigns_match;
        Alcotest.test_case "tables byte-identical: on/off, jobs 1/4" `Slow
          test_tables_byte_identical;
      ] );
  ]
