(* Unit and property tests for the schedule algebra: round-robin distance,
   preemption counting and delay counting (paper §2 definitions). *)

open Sct_core

let test_distance () =
  (* the paper's example: given four threads, distance(1,0) = 3 *)
  Alcotest.(check int) "distance(1,0) n=4" 3 (Tid.distance ~n:4 1 0);
  Alcotest.(check int) "distance(0,0)" 0 (Tid.distance ~n:4 0 0);
  Alcotest.(check int) "distance(2,3)" 1 (Tid.distance ~n:4 2 3);
  Alcotest.(check int) "distance(3,2) n=5" 4 (Tid.distance ~n:5 3 2)

let test_delays_paper_example () =
  (* paper §2: last = 3, enabled = {0,2,3,4}, N = 5: delays(α,2) = 3
     because threads 3, 4 and 0 are skipped (1 is not enabled) *)
  let enabled = [ 0; 2; 3; 4 ] in
  Alcotest.(check int) "delays to 2" 3
    (Delay.delays ~n:5 ~last:(Some 3) ~enabled 2);
  Alcotest.(check int) "delays to 3 (continue)" 0
    (Delay.delays ~n:5 ~last:(Some 3) ~enabled 3);
  Alcotest.(check int) "delays to 4" 1
    (Delay.delays ~n:5 ~last:(Some 3) ~enabled 4);
  Alcotest.(check int) "delays to 0" 2
    (Delay.delays ~n:5 ~last:(Some 3) ~enabled 0)

let test_delays_skips_disabled () =
  (* skipping a disabled thread costs nothing *)
  Alcotest.(check int) "last disabled" 0
    (Delay.delays ~n:3 ~last:(Some 0) ~enabled:[ 1; 2 ] 1);
  Alcotest.(check int) "one enabled skipped" 1
    (Delay.delays ~n:3 ~last:(Some 0) ~enabled:[ 1; 2 ] 2)

let test_first_step_free () =
  Alcotest.(check int) "first step: no delay" 0
    (Delay.delays ~n:3 ~last:None ~enabled:[ 0; 1; 2 ] 2);
  Alcotest.(check int) "first step: no preemption" 0
    (Preemption.delta ~last:None ~enabled:[ 0; 1; 2 ] 2)

let test_preemption_delta () =
  (* switching away from an enabled thread is a preemption *)
  Alcotest.(check int) "preemptive" 1
    (Preemption.delta ~last:(Some 0) ~enabled:[ 0; 1 ] 1);
  (* switching away from a disabled (blocked/finished) thread is not *)
  Alcotest.(check int) "non-preemptive" 0
    (Preemption.delta ~last:(Some 0) ~enabled:[ 1 ] 1);
  (* continuing the same thread is never a preemption *)
  Alcotest.(check int) "continuation" 0
    (Preemption.delta ~last:(Some 0) ~enabled:[ 0; 1 ] 0)

let test_rr_order () =
  Alcotest.(check (list int)) "rr from 3 of {0,2,3,4} n=5" [ 3; 4; 0; 2 ]
    (Delay.rr_order ~n:5 ~last:(Some 3) ~enabled:[ 0; 2; 3; 4 ]);
  Alcotest.(check (list int)) "rr from None" [ 0; 1; 2 ]
    (Delay.rr_order ~n:3 ~last:None ~enabled:[ 2; 0; 1 ])

let test_deterministic_choice () =
  Alcotest.(check (option int)) "continue last" (Some 1)
    (Delay.deterministic_choice ~n:3 ~last:(Some 1) ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "next after blocked" (Some 2)
    (Delay.deterministic_choice ~n:3 ~last:(Some 1) ~enabled:[ 0; 2 ]);
  Alcotest.(check (option int)) "wrap around" (Some 0)
    (Delay.deterministic_choice ~n:3 ~last:(Some 2) ~enabled:[ 0 ]);
  Alcotest.(check (option int)) "none enabled" None
    (Delay.deterministic_choice ~n:3 ~last:(Some 2) ~enabled:[])

let test_counts_fold () =
  (* a full decision sequence: 3 threads, main spawns then blocks *)
  let steps =
    [ ([ 0 ], 0); ([ 0; 1 ], 0); ([ 0; 1; 2 ], 1); ([ 0; 1; 2 ], 2) ]
  in
  (* step 3 switches 0->1 while 0 is enabled (preemption), step 4 switches
     1->2 while 1 is enabled (preemption) *)
  Alcotest.(check int) "PC" 2 (Preemption.count ~steps);
  Alcotest.(check int) "DC" 2 (Delay.count ~n_at:(fun _ -> 3) ~steps)

(* Generators for decision sequences: a plausible random sequence of
   (enabled, chosen) with n threads. *)
let gen_steps n =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (let* enabled =
         map
           (fun picks ->
             List.sort_uniq compare (List.map (fun i -> abs i mod n) picks))
           (list_size (int_range 1 n) (int_range 0 (n - 1)))
       in
       let enabled = if enabled = [] then [ 0 ] else enabled in
       let* idx = int_range 0 (List.length enabled - 1) in
       return (enabled, List.nth enabled idx)))

(* DC >= PC: the set of schedules with at most c delays is a subset of the
   set with at most c preemptions (paper §2). *)
let prop_dc_ge_pc =
  QCheck2.Test.make ~name:"delay count >= preemption count" ~count:500
    (gen_steps 4) (fun steps ->
      Delay.count ~n_at:(fun _ -> 4) ~steps >= Preemption.count ~steps)

(* The deterministic choice is the unique zero-delay extension. *)
let prop_det_choice_zero_delay =
  QCheck2.Test.make ~name:"deterministic choice costs zero delays" ~count:500
    (gen_steps 4) (fun steps ->
      List.for_all
        (fun (enabled, _) ->
          List.for_all
            (fun last ->
              match Delay.deterministic_choice ~n:4 ~last ~enabled with
              | Some t -> Delay.delays ~n:4 ~last ~enabled t = 0
              | None -> false)
            [ None; Some 0; Some 1; Some 2; Some 3 ])
        steps)

(* rr_order sorts by per-choice delay cost, and the costs are exactly
   0, 1, 2, ... for successive elements. *)
let prop_rr_order_costs =
  QCheck2.Test.make ~name:"rr_order is sorted by delay cost" ~count:500
    (gen_steps 5) (fun steps ->
      List.for_all
        (fun (enabled, _) ->
          let order = Delay.rr_order ~n:5 ~last:(Some 2) ~enabled in
          let costs =
            List.map (fun t -> Delay.delays ~n:5 ~last:(Some 2) ~enabled t) order
          in
          costs = List.init (List.length order) (fun i -> i))
        steps)

(* --- edge cases: the empty schedule and the schedule container laws --- *)

let test_empty_schedule () =
  Alcotest.(check int) "length empty" 0 (Schedule.length Schedule.empty);
  Alcotest.(check (option int)) "last empty" None (Schedule.last Schedule.empty);
  Alcotest.(check (list int)) "to_list empty" []
    (Schedule.to_list Schedule.empty);
  Alcotest.(check bool) "empty equals of_list []" true
    (Schedule.equal Schedule.empty (Schedule.of_list []));
  (* counting over zero decisions is zero, not an error *)
  Alcotest.(check int) "PC of no steps" 0 (Preemption.count ~steps:[]);
  Alcotest.(check int) "DC of no steps" 0
    (Delay.count ~n_at:(fun _ -> 1) ~steps:[])

let prop_schedule_container_laws =
  QCheck2.Test.make ~name:"schedule: of_list/to_list/snoc/last laws"
    ~count:300
    QCheck2.Gen.(list (int_range 0 7))
    (fun l ->
      let s = Schedule.of_list l in
      Schedule.to_list s = l
      && Schedule.length s = List.length l
      && Schedule.equal s s
      && List.for_all
           (fun t ->
             let s' = Schedule.snoc s t in
             Schedule.last s' = Some t
             && Schedule.length s' = Schedule.length s + 1
             && Schedule.to_list s' = l @ [ t ])
           [ 0; 3 ])

(* A single-thread program has exactly one schedule: DFS exhausts the space
   in one execution and no technique can ever pay a preemption or delay. *)
let test_single_thread_program () =
  let program () =
    let x = Sct_core.Sct.Var.make ~name:"st_x" 0 in
    for _ = 1 to 5 do
      Sct_core.Sct.yield ();
      Sct_core.Sct.Var.write x (Sct_core.Sct.Var.read x + 1)
    done;
    Sct_core.Sct.check (Sct_core.Sct.Var.read x = 5) "st"
  in
  let r =
    Sct_explore.Dfs.explore
      ~promote:(fun _ -> true)
      ~bound:Sct_explore.Dfs.Unbounded ~limit:10 program
  in
  Alcotest.(check int) "exactly one terminal schedule" 1
    r.Sct_explore.Dfs.executions;
  Alcotest.(check bool) "space exhausted" true r.Sct_explore.Dfs.complete;
  Alcotest.(check bool) "no bug" false (r.Sct_explore.Dfs.first_bug <> None);
  (* every decision continues the only runnable thread: pc = dc = 0 *)
  let rr =
    Sct_explore.Replay.replay
      ~promote:(fun _ -> true)
      ~schedule:Schedule.empty program
  in
  match rr with
  | None -> Alcotest.fail "replay failed"
  | Some res ->
      Alcotest.(check int) "pc = 0" 0 res.Runtime.r_pc;
      Alcotest.(check int) "dc = 0" 0 res.Runtime.r_dc

let prop_distance_roundtrip =
  QCheck2.Test.make ~name:"distance: (x + d) mod n = y" ~count:500
    QCheck2.Gen.(
      let* n = int_range 1 16 in
      let* x = int_range 0 (n - 1) in
      let* y = int_range 0 (n - 1) in
      return (n, x, y))
    (fun (n, x, y) ->
      let d = Tid.distance ~n x y in
      0 <= d && d < n && (x + d) mod n = y)

let suites =
  [
    ( "schedule-algebra",
      [
        Alcotest.test_case "round-robin distance" `Quick test_distance;
        Alcotest.test_case "delays: paper example" `Quick
          test_delays_paper_example;
        Alcotest.test_case "delays: disabled threads are free" `Quick
          test_delays_skips_disabled;
        Alcotest.test_case "first step costs nothing" `Quick
          test_first_step_free;
        Alcotest.test_case "preemption delta" `Quick test_preemption_delta;
        Alcotest.test_case "rr_order" `Quick test_rr_order;
        Alcotest.test_case "deterministic choice" `Quick
          test_deterministic_choice;
        Alcotest.test_case "count folds" `Quick test_counts_fold;
        Alcotest.test_case "empty schedule" `Quick test_empty_schedule;
        Alcotest.test_case "single-thread program: pc = dc = 0" `Quick
          test_single_thread_program;
        QCheck_alcotest.to_alcotest prop_schedule_container_laws;
        QCheck_alcotest.to_alcotest prop_dc_ge_pc;
        QCheck_alcotest.to_alcotest prop_det_choice_zero_delay;
        QCheck_alcotest.to_alcotest prop_rr_order_costs;
        QCheck_alcotest.to_alcotest prop_distance_roundtrip;
      ] );
  ]
