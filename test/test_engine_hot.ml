(* Hot-path engine coverage.

   1. The incremental enabled-set law: at every scheduling decision, the
      engine's incrementally maintained enabled set (and its fingerprint)
      must equal a naive recompute-from-scratch reference
      ([Runtime.recomputed_enabled]). The program family stresses every
      enabledness source: mutexes (lock, try_lock), condition variables,
      semaphores, barriers, rwlocks, joins — including deadlocking
      programs, so the n_enabled = 0 path is exercised too.

   2. A golden determinism check: the table-3 rows of a fixed benchmark
      subset at --limit 200 must be byte-identical to the committed golden
      file, which was generated before the hot-path overhaul. Regenerate
      with SCT_GOLDEN_UPDATE=/abs/path/to/test/table3_golden.txt. *)

open Sct_core

type hop =
  | H_yield
  | H_write of int
  | H_locked of int
  | H_trylock
  | H_sem_wait
  | H_sem_post
  | H_signal
  | H_broadcast
  | H_cond_wait
  | H_barrier
  | H_rd
  | H_wr

type hprogram = { threads : hop list list }

let hop_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, return H_yield);
        (3, map (fun v -> H_write (abs v mod 2)) int);
        (3, map (fun v -> H_locked (abs v mod 2)) int);
        (2, return H_trylock);
        (2, return H_sem_wait);
        (2, return H_sem_post);
        (2, return H_signal);
        (1, return H_broadcast);
        (2, return H_cond_wait);
        (2, return H_barrier);
        (2, return H_rd);
        (2, return H_wr);
      ])

let hprogram_gen =
  QCheck2.Gen.(
    let* n_threads = int_range 1 3 in
    let* threads = list_repeat n_threads (list_size (int_range 1 5) hop_gen) in
    return { threads })

let print_hprogram p =
  String.concat " | "
    (List.map
       (fun ops ->
         String.concat ";"
           (List.map
              (function
                | H_yield -> "y"
                | H_write v -> Printf.sprintf "w%d" v
                | H_locked v -> Printf.sprintf "lw%d" v
                | H_trylock -> "tl"
                | H_sem_wait -> "sw"
                | H_sem_post -> "sp"
                | H_signal -> "cs"
                | H_broadcast -> "cb"
                | H_cond_wait -> "cw"
                | H_barrier -> "b"
                | H_rd -> "rd"
                | H_wr -> "wr")
              ops))
       p.threads)

let build { threads } () =
  let x = Sct.Var.make ~name:"hx" 0 in
  let m = Sct.Mutex.create () in
  let s = Sct.Sem.create 1 in
  let c = Sct.Cond.create () in
  let b = Sct.Barrier.create 2 in
  let l = Sct.Rwlock.create () in
  let bump () = Sct.Var.write x (Sct.Var.read x + 1) in
  let run_op = function
    | H_yield -> Sct.yield ()
    | H_write _ -> bump ()
    | H_locked _ ->
        Sct.Mutex.lock m;
        bump ();
        Sct.Mutex.unlock m
    | H_trylock ->
        if Sct.Mutex.try_lock m then begin
          bump ();
          Sct.Mutex.unlock m
        end
    | H_sem_wait -> Sct.Sem.wait s
    | H_sem_post -> Sct.Sem.post s
    | H_signal -> Sct.Cond.signal c
    | H_broadcast -> Sct.Cond.broadcast c
    | H_cond_wait ->
        Sct.Mutex.lock m;
        Sct.Cond.wait c m;
        Sct.Mutex.unlock m
    | H_barrier -> Sct.Barrier.wait b
    | H_rd ->
        Sct.Rwlock.rd_lock l;
        Sct.Rwlock.unlock l
    | H_wr ->
        Sct.Rwlock.wr_lock l;
        Sct.Rwlock.unlock l
  in
  let ts =
    List.map (fun ops -> Sct.spawn (fun () -> List.iter run_op ops)) threads
  in
  List.iter Sct.join ts

let tids l = String.concat "," (List.map string_of_int l)

(* A random scheduler that cross-checks the incremental enabled set (and
   its fingerprint) against the from-scratch reference at every decision. *)
let checking_scheduler rng (ctx : Runtime.ctx) =
  let naive = Runtime.recomputed_enabled ctx.c_rt in
  if not (List.equal Tid.equal naive ctx.c_enabled) then
    failwith
      (Printf.sprintf
         "enabled-set divergence at step %d: incremental=[%s] naive=[%s]"
         ctx.c_step (tids ctx.c_enabled) (tids naive));
  if Runtime.fingerprint ctx.c_enabled <> ctx.c_enabled_fp then
    failwith
      (Printf.sprintf "fingerprint divergence at step %d on [%s]" ctx.c_step
         (tids ctx.c_enabled));
  List.nth ctx.c_enabled (Random.State.int rng (List.length ctx.c_enabled))

let prop_incremental_matches_naive =
  QCheck2.Test.make
    ~name:"incremental enabled set == recompute-from-scratch, every step"
    ~count:80 ~print:print_hprogram hprogram_gen (fun hp ->
      let program = build hp in
      for seed = 0 to 5 do
        let rng = Random.State.make [| 0xE0; seed |] in
        let r =
          Runtime.exec
            ~promote:(fun _ -> true)
            ~max_steps:1_000 ~record_decisions:false
            ~scheduler:(checking_scheduler rng) program
        in
        (* any terminal outcome is fine; the law lives in the scheduler *)
        ignore (r.Runtime.r_outcome : Outcome.t)
      done;
      true)

(* DFS over the same family: exercises the fingerprint-based prefix replay
   (frames are replayed on every backtracked execution) and the reused
   frame storage. A deterministic program must never trip the
   nondeterminism check. *)
let prop_dfs_replay_consistent =
  QCheck2.Test.make ~name:"DFS fingerprint replay accepts deterministic runs"
    ~count:40 ~print:print_hprogram hprogram_gen (fun hp ->
      let program = build hp in
      let r =
        Sct_explore.Dfs.explore
          ~promote:(fun _ -> true)
          ~max_steps:1_000 ~bound:Sct_explore.Dfs.Unbounded ~limit:300 program
      in
      r.Sct_explore.Dfs.executions > 0)

(* --- golden table-3 rows ------------------------------------------------ *)

let golden_benchmarks =
  [
    "CS.lazy01_bad";
    "CS.deadlock01_bad";
    "CS.account_bad";
    "CS.reorder_3_bad";
    "CS.twostage_bad";
    "CS.wronglock_bad";
  ]

let golden_limit = 200

(* The rows are the expensive part (six benchmarks x nine techniques at
   --limit 200); both golden tables render from the same single run. The
   paper's five are joined by the four Axes bounding techniques, so the
   golden also pins their byte-determinism (and the conditional Table 3
   columns they trigger). *)
let golden_rows =
  lazy
    (let open Sct_explore in
     let o =
       { Techniques.default_options with Techniques.limit = golden_limit }
     in
     let techniques =
       Techniques.all_paper
       @ [ Techniques.Fair; Techniques.Length; Techniques.IVB; Techniques.ITB ]
     in
     let benches =
       List.map
         (fun name ->
           match Sctbench.Registry.by_name name with
           | Some b -> b
           | None -> Alcotest.fail ("missing benchmark " ^ name))
         golden_benchmarks
     in
     Sct_report.Run_data.run_all ~techniques o benches)

let render print =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  print ~out:fmt ~limit:golden_limit (Lazy.force golden_rows);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let produce_table3 () =
  render (fun ~out -> Sct_report.Table3.print ~out)

let produce_table2 () =
  render (fun ~out -> Sct_report.Table2.print ~out)

(* [update_env] regenerates the golden file instead of checking it;
   otherwise [file] is looked up next to the test executable (dune copies
   deps there) with fallbacks for [dune exec] from the repo root. *)
let check_golden ~update_env ~file ~what produced =
  match Sys.getenv_opt update_env with
  | Some path ->
      Out_channel.with_open_bin path (fun oc -> output_string oc produced)
  | None ->
      let golden =
        List.find_opt Sys.file_exists
          [
            Filename.concat (Filename.dirname Sys.executable_name) file;
            file;
            Filename.concat "test" file;
          ]
      in
      let golden =
        match golden with
        | Some p -> p
        | None -> Alcotest.fail (file ^ " not found")
      in
      let expected = In_channel.with_open_bin golden In_channel.input_all in
      Alcotest.(check string) (what ^ " byte-identical to golden") expected
        produced

let test_golden_table3 () =
  check_golden ~update_env:"SCT_GOLDEN_UPDATE" ~file:"table3_golden.txt"
    ~what:"table3 rows" (produce_table3 ())

let test_golden_table2 () =
  check_golden ~update_env:"SCT_GOLDEN_UPDATE_TABLE2"
    ~file:"table2_golden.txt" ~what:"table2 summary" (produce_table2 ())

let suites =
  [
    ( "engine-hot",
      [
        QCheck_alcotest.to_alcotest prop_incremental_matches_naive;
        QCheck_alcotest.to_alcotest prop_dfs_replay_consistent;
      ] );
    ( "golden-table3",
      [ Alcotest.test_case "rows match pre-overhaul golden" `Slow
          test_golden_table3 ] );
    ( "golden-table2",
      [ Alcotest.test_case "summary matches committed golden" `Slow
          test_golden_table2 ] );
  ]
