(* The domain-pool execution engine (lib/parallel): pool semantics,
   frontier-partitioned DFS, and the determinism guarantee — parallel
   drivers produce statistics equal to the sequential techniques for every
   pool size. *)

open Sct_core
module Pool = Sct_parallel.Pool

let promote_all _ = true

let stats_t =
  Alcotest.testable Sct_explore.Stats.pp Sct_explore.Stats.equal

(* --- pool --- *)

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let boom = Pool.submit pool (fun () -> failwith "boom") in
      (match Pool.await boom with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* the raising task did not kill its worker: the pool stays usable *)
      let ok = Pool.submit pool (fun () -> 6 * 7) in
      Alcotest.(check int) "pool still works" 42 (Pool.await ok))

let test_pool_cancellation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let gate = Mutex.create () in
      Mutex.lock gate;
      (* occupy both workers until the gate opens; the FIFO queue keeps
         [last] behind them, so it is still queued when it is cancelled *)
      let blocked =
        List.init 2 (fun i ->
            Pool.submit pool (fun () ->
                Mutex.lock gate;
                Mutex.unlock gate;
                i + 1))
      in
      let last = Pool.submit pool (fun () -> 3) in
      Pool.cancel last;
      Mutex.unlock gate;
      List.iteri
        (fun i f -> Alcotest.(check int) "blocked" (i + 1) (Pool.await f))
        blocked;
      match Pool.await last with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Pool.Cancelled -> ())

(* a one-job pool runs tasks inline on the submitting domain and — unlike
   a real worker pool — leaves the prefix-batch fork server available *)
let test_pool_inline () =
  let before = Sct_explore.Prefix_exec.fork_available () in
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      Alcotest.(check bool) "one-job pool does not disable fork" before
        (Sct_explore.Prefix_exec.fork_available ());
      let f = Pool.submit pool (fun () -> 6 * 7) in
      Alcotest.(check int) "inline task" 42 (Pool.await f));
  Pool.with_pool ~jobs:2 (fun _pool ->
      Alcotest.(check bool) "a multi-worker pool disables fork" false
        (Sct_explore.Prefix_exec.fork_available ()));
  (* the runtime refuses fork once a second domain ever existed, so the
     fork server stays off for the rest of the process *)
  Alcotest.(check bool) "fork stays disabled after shutdown" false
    (Sct_explore.Prefix_exec.fork_available ())

let test_pool_many_tasks () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let futs = List.init 50 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i f -> Alcotest.(check int) "value" (i * i) (Pool.await f))
        futs)

(* --- frontier-partitioned DFS --- *)

let two_seq a b () =
  let (_ : Tid.t) =
    Sct.spawn
      (fun () ->
        for _ = 1 to b do
          Sct.yield ()
        done)
  in
  for _ = 1 to a do
    Sct.yield ()
  done

let check_level ~ignore_pruned name (seq : Sct_explore.Dfs.level_result)
    (par : Sct_explore.Dfs.level_result) =
  let par =
    if ignore_pruned then { par with Sct_explore.Dfs.pruned = seq.pruned }
    else par
  in
  Alcotest.(check bool) (name ^ ": level_result equal") true (seq = par)

let bench_program name =
  (Option.get (Sctbench.Registry.by_name name)).Sctbench.Bench.program

let test_frontier_matches_dfs () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun (bname, program, bound, limit) ->
          List.iter
            (fun split_depth ->
              let seq =
                Sct_explore.Dfs.explore ~promote:promote_all ~bound ~limit
                  program
              in
              let par =
                Sct_parallel.Frontier.explore ~pool ~promote:promote_all
                  ~split_depth ~bound ~limit program
              in
              (* [pruned] is only specified when the walk completed *)
              check_level
                ~ignore_pruned:seq.Sct_explore.Dfs.hit_limit
                (Printf.sprintf "%s split=%d" bname split_depth)
                seq par)
            [ 0; 1; 3; 8 ])
        [
          ("two_seq-4-4", two_seq 4 4, Sct_explore.Dfs.Unbounded, 1_000);
          ("two_seq-4-4/truncated", two_seq 4 4, Sct_explore.Dfs.Unbounded, 30);
          ("two_seq-5-3/pb1", two_seq 5 3, Sct_explore.Dfs.Preemption 1, 1_000);
          ("two_seq-5-3/db2", two_seq 5 3, Sct_explore.Dfs.Delay 2, 1_000);
          ( "twostage/truncated",
            bench_program "CS.twostage_bad",
            Sct_explore.Dfs.Unbounded,
            150 );
        ])

let test_frontier_bounded_matches_bounded () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun (bname, program, limit) ->
          List.iter
            (fun kind ->
              let seq =
                Sct_explore.Bounded.explore ~promote:promote_all ~kind ~limit
                  program
              in
              let par =
                Sct_parallel.Frontier.explore_bounded ~pool
                  ~promote:promote_all ~kind ~limit program
              in
              Alcotest.check stats_t
                (bname ^ "/" ^ Sct_explore.Bounded.technique_name kind)
                seq par)
            [
              Sct_explore.Bounded.Preemption_bounding;
              Sct_explore.Bounded.Delay_bounding;
            ])
        [
          ("two_seq-3-3", two_seq 3 3, 1_000);
          ("lazy01", bench_program "CS.lazy01_bad", 200);
          ("twostage/truncated", bench_program "CS.twostage_bad", 120);
        ])

(* --- determinism: parallel drivers == sequential techniques --- *)

let all_techniques = Sct_explore.Techniques.all

let det_options =
  { Sct_explore.Techniques.default_options with
    Sct_explore.Techniques.limit = 200 }

let test_drivers_match_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun bname ->
          let program = bench_program bname in
          let detection, seq =
            Sct_explore.Techniques.run_all ~techniques:all_techniques
              det_options program
          in
          let detection', par =
            Sct_parallel.Drivers.run_all ~pool ~techniques:all_techniques
              det_options program
          in
          Alcotest.(check (list string))
            (bname ^ ": racy locations") detection.Sct_race.Promotion.racy
            detection'.Sct_race.Promotion.racy;
          List.iter2
            (fun (t, s) (t', s') ->
              Alcotest.(check string)
                "technique order"
                (Sct_explore.Techniques.name t)
                (Sct_explore.Techniques.name t');
              Alcotest.check stats_t
                (bname ^ "/" ^ Sct_explore.Techniques.name t)
                s s')
            seq par)
        [ "CS.lazy01_bad"; "CS.twostage_bad"; "CS.reorder_3_bad" ])

let test_suite_matches_sequential () =
  let benches =
    List.map
      (fun n -> Option.get (Sctbench.Registry.by_name n))
      [ "CS.lazy01_bad"; "CS.account_bad"; "CS.twostage_bad" ]
  in
  let seq = Sct_report.Run_data.run_all det_options benches in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Sct_parallel.Suite.run_all ~pool det_options benches)
  in
  List.iter2
    (fun (a : Sct_report.Run_data.row) (b : Sct_report.Run_data.row) ->
      Alcotest.(check int)
        (a.Sct_report.Run_data.bench.Sctbench.Bench.name ^ ": racy")
        a.Sct_report.Run_data.racy_locations
        b.Sct_report.Run_data.racy_locations;
      List.iter2
        (fun (t, s) (_, s') ->
          Alcotest.check stats_t
            (a.Sct_report.Run_data.bench.Sctbench.Bench.name ^ "/"
           ^ Sct_explore.Techniques.name t)
            s s')
        a.Sct_report.Run_data.results b.Sct_report.Run_data.results)
    seq par

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "worker exception propagates" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "cancellation" `Quick test_pool_cancellation;
        Alcotest.test_case "inline one-job pool" `Quick test_pool_inline;
        Alcotest.test_case "many tasks" `Quick test_pool_many_tasks;
      ] );
    ( "parallel-dfs",
      [
        Alcotest.test_case "frontier DFS == sequential DFS" `Quick
          test_frontier_matches_dfs;
        Alcotest.test_case "frontier bounding == sequential bounding" `Quick
          test_frontier_bounded_matches_bounded;
      ] );
    ( "parallel-determinism",
      [
        Alcotest.test_case "drivers == sequential techniques" `Slow
          test_drivers_match_sequential;
        Alcotest.test_case "suite rows == sequential rows" `Slow
          test_suite_matches_sequential;
      ] );
  ]
