(* Property tests over randomly generated (but deterministic) concurrent
   programs: the explorers must agree with each other and with the schedule
   algebra on every program in the family.

   A generated program is a set of threads, each a straight-line sequence of
   operations drawn from: yield, a write to one of two shared variables, or
   a lock/unlock-bracketed write. Programs of this family always terminate
   and are deterministic, so every explorer invariant must hold. *)

open Sct_core

type gen_op = Yield | Write of int | Locked_write of int

type gen_program = { threads : gen_op list list }

let gen_op_gen =
  QCheck2.Gen.(
    oneof
      [
        return Yield;
        map (fun v -> Write (abs v mod 2)) int;
        map (fun v -> Locked_write (abs v mod 2)) int;
      ])

let gen_program_gen =
  QCheck2.Gen.(
    let* n_threads = int_range 1 3 in
    let* threads =
      list_repeat n_threads (list_size (int_range 1 4) gen_op_gen)
    in
    return { threads })

let print_program p =
  String.concat " | "
    (List.map
       (fun ops ->
         String.concat ";"
           (List.map
              (function
                | Yield -> "y"
                | Write v -> Printf.sprintf "w%d" v
                | Locked_write v -> Printf.sprintf "lw%d" v)
              ops))
       p.threads)

let build { threads } () =
  let x = Sct.Var.make ~name:"qx" 0 in
  let y = Sct.Var.make ~name:"qy" 0 in
  let m = Sct.Mutex.create () in
  let run_op = function
    | Yield -> Sct.yield ()
    | Write 0 -> Sct.Var.write x (Sct.Var.read x + 1)
    | Write _ -> Sct.Var.write y (Sct.Var.read y + 1)
    | Locked_write v ->
        Sct.Mutex.lock m;
        if v = 0 then Sct.Var.write x (Sct.Var.read x + 1)
        else Sct.Var.write y (Sct.Var.read y + 1);
        Sct.Mutex.unlock m
  in
  let ts =
    List.map (fun ops -> Sct.spawn (fun () -> List.iter run_op ops)) threads
  in
  List.iter Sct.join ts

let promote_all _ = true
let cap = 30_000

let dfs ?count_exact ?(bound = Sct_explore.Dfs.Unbounded) program =
  Sct_explore.Dfs.explore ~promote:promote_all ?count_exact ~bound ~limit:cap
    program

(* Exact preemption levels partition the space; same for delay levels. *)
let prop_levels_partition =
  QCheck2.Test.make ~name:"bound levels partition the schedule space"
    ~count:40 ~print:print_program gen_program_gen (fun gp ->
      let program = build gp in
      let all = dfs program in
      QCheck2.assume all.Sct_explore.Dfs.complete;
      let sum_levels mk =
        let rec go c acc =
          if c > 40 then acc
          else
            let r = dfs ~bound:(mk c) ~count_exact:c program in
            let acc = acc + r.Sct_explore.Dfs.counted in
            if r.Sct_explore.Dfs.pruned then go (c + 1) acc else acc
        in
        go 0 0
      in
      sum_levels (fun c -> Sct_explore.Dfs.Preemption c)
      = all.Sct_explore.Dfs.counted
      && sum_levels (fun c -> Sct_explore.Dfs.Delay c)
         = all.Sct_explore.Dfs.counted)

(* Delay-bounded spaces are subsets of preemption-bounded spaces, level by
   level (paper §2). *)
let prop_delay_subset =
  QCheck2.Test.make ~name:"DB(c) is a subset of PB(c) on random programs"
    ~count:40 ~print:print_program gen_program_gen (fun gp ->
      let program = build gp in
      List.for_all
        (fun c ->
          let d = dfs ~bound:(Sct_explore.Dfs.Delay c) program in
          let p = dfs ~bound:(Sct_explore.Dfs.Preemption c) program in
          d.Sct_explore.Dfs.counted <= p.Sct_explore.Dfs.counted)
        [ 0; 1; 2 ])

(* There is exactly one zero-delay schedule (the deterministic scheduler's),
   while zero-preemption schedules may be many. *)
let prop_single_rr_schedule =
  QCheck2.Test.make ~name:"exactly one zero-delay schedule" ~count:40
    ~print:print_program gen_program_gen (fun gp ->
      let r = dfs ~bound:(Sct_explore.Dfs.Delay 0) (build gp) in
      r.Sct_explore.Dfs.counted = 1)

(* No program of this family has a bug: no explorer may report one. *)
let prop_no_false_positives =
  QCheck2.Test.make ~name:"no false positives on correct programs" ~count:40
    ~print:print_program gen_program_gen (fun gp ->
      let program = build gp in
      let d = dfs program in
      let r =
        Sct_explore.Random_walk.explore ~promote:promote_all ~seed:11 ~runs:50
          program
      in
      d.Sct_explore.Dfs.buggy = 0 && r.Sct_explore.Stats.buggy = 0)

(* Rand, PCT and the deterministic scheduler all stay within the same
   schedule universe: their witness pc/dc statistics are consistent
   (dc >= pc on every run). *)
let prop_pc_le_dc_on_runs =
  QCheck2.Test.make ~name:"pc <= dc on random executions" ~count:40
    ~print:print_program gen_program_gen (fun gp ->
      let program = build gp in
      let ok = ref true in
      for seed = 0 to 4 do
        let rng = Random.State.make [| seed |] in
        let scheduler (ctx : Runtime.ctx) =
          List.nth ctx.c_enabled
            (Random.State.int rng (List.length ctx.c_enabled))
        in
        let r = Runtime.exec ~promote:promote_all ~scheduler program in
        if r.Runtime.r_pc > r.Runtime.r_dc then ok := false
      done;
      !ok)

let suites =
  [
    ( "qcheck-programs",
      [
        QCheck_alcotest.to_alcotest prop_levels_partition;
        QCheck_alcotest.to_alcotest prop_delay_subset;
        QCheck_alcotest.to_alcotest prop_single_rr_schedule;
        QCheck_alcotest.to_alcotest prop_no_false_positives;
        QCheck_alcotest.to_alcotest prop_pc_le_dc_on_runs;
      ] );
  ]
