(* The auxiliary tooling: schedule replay, counterexample simplification and
   coverage guarantees. *)

open Sct_core

let promote_all _ = true

let figure1 () =
  let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        Sct.Var.write y 1)
  in
  let t2 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "x=y")
  in
  ignore (t1, t2)

(* --- replay --- *)

let test_replay_reproduces_bug () =
  (* find a witness with IDB, then replay it byte-for-byte *)
  let idb =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:10_000 figure1
  in
  match idb.Sct_explore.Stats.first_bug with
  | None -> Alcotest.fail "no witness"
  | Some w -> (
      match
        Sct_explore.Replay.replay ~promote:promote_all
          ~schedule:w.Sct_explore.Stats.w_schedule figure1
      with
      | None -> Alcotest.fail "witness schedule infeasible"
      | Some r ->
          Alcotest.(check bool) "still buggy" true
            (Outcome.is_buggy r.Runtime.r_outcome);
          Alcotest.(check bool) "same schedule" true
            (Schedule.equal r.Runtime.r_schedule w.Sct_explore.Stats.w_schedule))

let test_replay_detects_infeasible () =
  (* thread 7 never exists *)
  let sched = Schedule.of_list [ 0; 7; 0 ] in
  Alcotest.(check bool) "infeasible" true
    (Sct_explore.Replay.replay ~promote:promote_all ~schedule:sched figure1
    = None)

let test_replay_fallback () =
  (* non-strict replay completes with round-robin fallback *)
  let sched = Schedule.of_list [ 0 ] in
  match
    Sct_explore.Replay.replay ~promote:promote_all ~strict:false
      ~schedule:sched figure1
  with
  | Some r ->
      Alcotest.(check bool) "terminated" true
        (r.Runtime.r_outcome <> Outcome.Step_limit)
  | None -> Alcotest.fail "fallback replay failed"

let test_parse () =
  Alcotest.(check (list int)) "parse" [ 0; 0; 1; 2 ]
    (Schedule.to_list (Sct_explore.Replay.parse "0, 0,1,2"));
  Alcotest.(check (list int)) "surrounding whitespace" [ 3; 1 ]
    (Schedule.to_list (Sct_explore.Replay.parse "  3 ,\t1 "));
  Alcotest.(check (list int)) "blank input is the empty schedule" []
    (Schedule.to_list (Sct_explore.Replay.parse "   "));
  Alcotest.check_raises "bad id names token and offset"
    (Failure {|Replay.parse: bad thread id "x" at offset 2|}) (fun () ->
      ignore (Sct_explore.Replay.parse "0,x"));
  Alcotest.check_raises "whitespace skipped when locating the token"
    (Failure {|Replay.parse: bad thread id "-1" at offset 3|}) (fun () ->
      ignore (Sct_explore.Replay.parse "0, -1"));
  Alcotest.check_raises "empty token"
    (Failure "Replay.parse: empty thread id at offset 2") (fun () ->
      ignore (Sct_explore.Replay.parse "0,,1"))

let test_parse_edges () =
  Alcotest.(check (list int)) "trailing whitespace tolerated" [ 0; 1 ]
    (Schedule.to_list (Sct_explore.Replay.parse "0,1 \t "));
  Alcotest.(check (list int)) "empty input" []
    (Schedule.to_list (Sct_explore.Replay.parse ""));
  Alcotest.check_raises "trailing garbage names its exact offset"
    (Failure {|Replay.parse: bad thread id "junk" at offset 4|}) (fun () ->
      ignore (Sct_explore.Replay.parse "0,1,junk"));
  Alcotest.check_raises "trailing comma is an empty id, not whitespace"
    (Failure "Replay.parse: empty thread id at offset 4") (fun () ->
      ignore (Sct_explore.Replay.parse "0,1,"));
  Alcotest.check_raises "leading comma"
    (Failure "Replay.parse: empty thread id at offset 0") (fun () ->
      ignore (Sct_explore.Replay.parse ",0"));
  Alcotest.check_raises "inner whitespace does not split ids"
    (Failure {|Replay.parse: bad thread id "7 7" at offset 1|}) (fun () ->
      ignore (Sct_explore.Replay.parse " 7 7"))

(* --- --technique list parsing --- *)

let technique =
  Alcotest.testable
    (fun ppf t -> Format.pp_print_string ppf (Sct_explore.Techniques.name t))
    ( = )

let parsed = Alcotest.(result (list technique) string)

let check_parse what specs expected =
  Alcotest.check parsed what expected
    (Sct_explore.Techniques.parse_list specs)

let valid_names_msg =
  "valid: ipb, idb, dfs, rand, pct, maple, surw, fair, length, ivb, itb"

let test_technique_list () =
  let open Sct_explore.Techniques in
  check_parse "no flag: the paper's five techniques" [] (Ok all_paper);
  check_parse "comma-separated" [ "dfs,rand" ] (Ok [ DFS; Rand ]);
  check_parse "repeated flags concatenate" [ "ipb"; "maple" ]
    (Ok [ IPB; Maple ]);
  check_parse "names are case-insensitive, aliases accepted"
    [ "DFS,Random,MapleAlg" ]
    (Ok [ DFS; Rand; Maple ]);
  check_parse "duplicates dedupe, first occurrence wins"
    [ "idb,ipb,idb"; "ipb,surw" ]
    (Ok [ IDB; IPB; SURW ]);
  check_parse "empty fragments (stray commas) are ignored" [ "ipb,,rand," ]
    (Ok [ IPB; Rand ]);
  check_parse "unknown name lists every valid name" [ "dfs,bogus" ]
    (Error ("unknown technique: bogus (" ^ valid_names_msg ^ ")"));
  check_parse "a flag that names nothing is an error" [ "," ]
    (Error ("no technique names given (" ^ valid_names_msg ^ ")"));
  check_parse "explicit empty string too" [ "" ]
    (Error ("no technique names given (" ^ valid_names_msg ^ ")"));
  Alcotest.check parsed "default override" (Ok [ DFS ])
    (Sct_explore.Techniques.parse_list ~default:[ DFS ] [])

(* --- simplification --- *)

let test_simplify_reduces_preemptions () =
  (* take a (likely messy) random witness and minimize it *)
  let rand =
    Sct_explore.Random_walk.explore ~promote:promote_all ~stop_on_bug:true
      ~seed:5 ~runs:10_000 figure1
  in
  match rand.Sct_explore.Stats.first_bug with
  | None -> Alcotest.fail "random scheduler found nothing"
  | Some w -> (
      match
        Sct_explore.Simplify.minimize ~promote:promote_all ~program:figure1
          w.Sct_explore.Stats.w_schedule
      with
      | None -> Alcotest.fail "witness did not replay"
      | Some m ->
          Alcotest.(check bool) "still buggy" true
            (Outcome.is_buggy
               m.Sct_explore.Simplify.result.Runtime.r_outcome);
          Alcotest.(check bool) "pc did not increase" true
            (m.Sct_explore.Simplify.result.Runtime.r_pc
            <= w.Sct_explore.Stats.w_pc);
          (* figure1's bug needs exactly one preemption: the minimizer must
             reach the optimum from any witness of this tiny program *)
          Alcotest.(check int) "minimal witness has one preemption" 1
            m.Sct_explore.Simplify.result.Runtime.r_pc)

let test_simplify_rejects_non_buggy () =
  let rr =
    Sct_explore.Replay.replay ~promote:promote_all ~strict:false
      ~schedule:(Schedule.of_list []) figure1
  in
  match rr with
  | None -> Alcotest.fail "round-robin replay failed"
  | Some r ->
      Alcotest.(check bool) "round-robin is safe" false
        (Outcome.is_buggy r.Runtime.r_outcome);
      Alcotest.(check bool) "minimize refuses non-buggy input" true
        (Sct_explore.Simplify.minimize ~promote:promote_all ~program:figure1
           r.Runtime.r_schedule
        = None)

(* --- guarantees --- *)

let test_guarantee_bounded () =
  (* a correct program explored to a complete level yields a bound *)
  let program () =
    let m = Sct.Mutex.create () in
    let c = Sct.Var.make ~name:"g_c" 0 in
    let body () =
      Sct.Mutex.lock m;
      Sct.Var.write c (Sct.Var.read c + 1);
      Sct.Mutex.unlock m
    in
    let t1 = Sct.spawn body in
    let t2 = Sct.spawn body in
    Sct.join t1;
    Sct.join t2
  in
  let s =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:1_000_000 program
  in
  (match Sct_explore.Guarantee.of_stats s with
  | Sct_explore.Guarantee.Verified -> ()
  | g -> Alcotest.failf "expected Verified, got %s" (Sct_explore.Guarantee.to_string g));
  (* with a tiny limit the guarantee weakens to a bound or nothing *)
  let s' =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Preemption_bounding ~limit:2 program
  in
  match Sct_explore.Guarantee.of_stats s' with
  | Sct_explore.Guarantee.Bounded { kind = `Preemptions; bound } ->
      Alcotest.(check bool) "bound >= 0" true (bound >= 0)
  | Sct_explore.Guarantee.None_ | Sct_explore.Guarantee.Verified -> ()
  | g -> Alcotest.failf "unexpected guarantee %s" (Sct_explore.Guarantee.to_string g)

let test_guarantee_falsified () =
  let s =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:10_000 figure1
  in
  match Sct_explore.Guarantee.of_stats s with
  | Sct_explore.Guarantee.Falsified { bound = Some 1 } -> ()
  | g -> Alcotest.failf "expected Falsified(1), got %s" (Sct_explore.Guarantee.to_string g)

let test_random_distinct_tracking () =
  let s =
    Sct_explore.Random_walk.explore ~promote:promote_all ~seed:0 ~runs:500
      figure1
  in
  match Sct_explore.Stats.distinct s with
  | None -> Alcotest.fail "distinct not tracked"
  | Some d ->
      Alcotest.(check bool) "some duplicates on a tiny program" true (d < 500);
      Alcotest.(check bool) "at least one distinct" true (d >= 1)

let suites =
  [
    ( "tools",
      [
        Alcotest.test_case "replay reproduces a witness" `Quick
          test_replay_reproduces_bug;
        Alcotest.test_case "replay detects infeasible schedules" `Quick
          test_replay_detects_infeasible;
        Alcotest.test_case "replay fallback" `Quick test_replay_fallback;
        Alcotest.test_case "schedule parsing" `Quick test_parse;
        Alcotest.test_case "schedule parsing: edge offsets" `Quick
          test_parse_edges;
        Alcotest.test_case "--technique list parsing" `Quick
          test_technique_list;
        Alcotest.test_case "simplification reaches the minimal witness"
          `Quick test_simplify_reduces_preemptions;
        Alcotest.test_case "simplification rejects non-buggy input" `Quick
          test_simplify_rejects_non_buggy;
        Alcotest.test_case "bounded coverage guarantees" `Quick
          test_guarantee_bounded;
        Alcotest.test_case "falsification guarantee" `Quick
          test_guarantee_falsified;
        Alcotest.test_case "random walk tracks distinct schedules" `Quick
          test_random_distinct_tracking;
      ] );
  ]
