(* The explorers: DFS enumeration counts, iterative bounding semantics,
   the random walk, PCT and MapleLite. *)

open Sct_core

let promote_all _ = true

(* main spawns one child doing [b] yields, then yields [a] times itself:
   the terminal schedules are exactly the interleavings of the two suffix
   sequences: C(a+b, a). *)
let two_seq a b () =
  let (_ : Tid.t) =
    Sct.spawn
      (fun () ->
        for _ = 1 to b do
          Sct.yield ()
        done)
  in
  for _ = 1 to a do
    Sct.yield ()
  done

let rec binomial n k =
  if k = 0 || k = n then 1 else binomial (n - 1) (k - 1) + binomial (n - 1) k

let dfs ?count_exact ?(bound = Sct_explore.Dfs.Unbounded) ?(limit = 1_000_000)
    program =
  Sct_explore.Dfs.explore ~promote:promote_all ?count_exact ~bound ~limit
    program

let test_enumeration_count () =
  List.iter
    (fun (a, b) ->
      let r = dfs (two_seq a b) in
      Alcotest.(check bool) "complete" true r.Sct_explore.Dfs.complete;
      Alcotest.(check int)
        (Printf.sprintf "interleavings of %d and %d" a b)
        (binomial (a + b) a) r.Sct_explore.Dfs.counted)
    [ (1, 1); (2, 2); (3, 3); (4, 3); (5, 2) ]

let test_level_counts_partition () =
  (* the per-level exact counts partition the whole space *)
  let program = two_seq 3 3 in
  let total = (dfs program).Sct_explore.Dfs.counted in
  let rec sum c acc =
    let r =
      dfs ~bound:(Sct_explore.Dfs.Preemption c) ~count_exact:c program
    in
    let acc = acc + r.Sct_explore.Dfs.counted in
    if r.Sct_explore.Dfs.pruned then sum (c + 1) acc else acc
  in
  Alcotest.(check int) "sum of exact preemption levels" total (sum 0 0);
  let rec sum_d c acc =
    let r = dfs ~bound:(Sct_explore.Dfs.Delay c) ~count_exact:c program in
    let acc = acc + r.Sct_explore.Dfs.counted in
    if r.Sct_explore.Dfs.pruned then sum_d (c + 1) acc else acc
  in
  Alcotest.(check int) "sum of exact delay levels" total (sum_d 0 0)

let test_delay_subset_preemption () =
  let program = two_seq 3 3 in
  List.iter
    (fun c ->
      let d = dfs ~bound:(Sct_explore.Dfs.Delay c) program in
      let p = dfs ~bound:(Sct_explore.Dfs.Preemption c) program in
      Alcotest.(check bool)
        (Printf.sprintf "DB(%d) <= PB(%d)" c c)
        true
        (d.Sct_explore.Dfs.counted <= p.Sct_explore.Dfs.counted))
    [ 0; 1; 2; 3 ]

let test_zero_delay_unique () =
  (* exactly one schedule has zero delays: the deterministic RR schedule *)
  let r = dfs ~bound:(Sct_explore.Dfs.Delay 0) (two_seq 3 4) in
  Alcotest.(check int) "one zero-delay schedule" 1 r.Sct_explore.Dfs.counted

let test_limit_respected () =
  let r = dfs ~limit:7 (two_seq 4 4) in
  Alcotest.(check int) "counted stops at the limit" 7 r.Sct_explore.Dfs.counted;
  Alcotest.(check bool) "limit flag" true r.Sct_explore.Dfs.hit_limit;
  Alcotest.(check bool) "not complete" false r.Sct_explore.Dfs.complete

let test_nondeterminism_detected () =
  (* state leaking across executions trips the replay check: the thread
     structure changes between executions, so a replayed decision sees a
     different enabled set *)
  let external_counter = ref 0 in
  let program () =
    incr external_counter;
    let t1 = Sct.spawn (fun () -> Sct.yield ()) in
    if !external_counter mod 2 = 0 then
      ignore (Sct.spawn (fun () -> Sct.yield ()));
    Sct.yield ();
    Sct.join t1
  in
  match dfs program with
  | (_ : Sct_explore.Dfs.level_result) ->
      Alcotest.fail "nondeterministic program was not rejected"
  | exception Failure msg ->
      Alcotest.(check bool) "mentions nondeterminism" true
        (Astring_contains.contains msg "nondeterministic")

(* --- iterative bounding --- *)

let figure1 () =
  let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        Sct.Var.write y 1)
  in
  let t2 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "x=y")
  in
  ignore (t1, t2)

let test_bounded_reports_min_bound () =
  let ipb =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Preemption_bounding ~limit:100_000 figure1
  in
  Alcotest.(check (option int)) "min preemption bound" (Some 1)
    ipb.Sct_explore.Stats.bound;
  Alcotest.(check bool) "level completed" true
    ipb.Sct_explore.Stats.bound_complete;
  Alcotest.(check bool) "found" true (Sct_explore.Stats.found ipb)

let test_bounded_complete_no_bug () =
  (* a correct program: iterative bounding exhausts the space and reports
     completeness *)
  let program () =
    let m = Sct.Mutex.create () in
    let c = Sct.Var.make ~name:"c" 0 in
    let body () =
      Sct.Mutex.lock m;
      Sct.Var.write c (Sct.Var.read c + 1);
      Sct.Mutex.unlock m
    in
    let t1 = Sct.spawn body in
    let t2 = Sct.spawn body in
    Sct.join t1;
    Sct.join t2;
    Sct.check (Sct.Var.read c = 2) "no lost update"
  in
  let r =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:1_000_000 program
  in
  Alcotest.(check bool) "complete" true r.Sct_explore.Stats.complete;
  Alcotest.(check int) "no buggy schedule" 0 r.Sct_explore.Stats.buggy

let test_bounded_first_bug_cumulative () =
  let idb =
    Sct_explore.Bounded.explore ~promote:promote_all
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:100_000 figure1
  in
  (match idb.Sct_explore.Stats.to_first_bug with
  | Some i -> Alcotest.(check bool) "first bug index positive" true (i >= 1)
  | None -> Alcotest.fail "bug not found");
  Alcotest.(check bool) "total >= new at bound" true
    (idb.Sct_explore.Stats.total >= idb.Sct_explore.Stats.new_at_bound)

(* --- random walk --- *)

let test_random_finds_trivial () =
  let program () = Sct.check false "always" in
  let r =
    Sct_explore.Random_walk.explore ~promote:promote_all ~seed:0 ~runs:5
      program
  in
  Alcotest.(check (option int)) "first run buggy" (Some 1)
    r.Sct_explore.Stats.to_first_bug;
  Alcotest.(check int) "all buggy" 5 r.Sct_explore.Stats.buggy

let test_random_seeded_deterministic () =
  let r1 =
    Sct_explore.Random_walk.explore ~promote:promote_all ~seed:3 ~runs:200
      figure1
  in
  let r2 =
    Sct_explore.Random_walk.explore ~promote:promote_all ~seed:3 ~runs:200
      figure1
  in
  Alcotest.(check int) "same buggy count" r1.Sct_explore.Stats.buggy
    r2.Sct_explore.Stats.buggy;
  Alcotest.(check (option int)) "same first bug" r1.Sct_explore.Stats.to_first_bug
    r2.Sct_explore.Stats.to_first_bug

let test_random_stop_on_bug () =
  let r =
    Sct_explore.Random_walk.explore ~promote:promote_all ~stop_on_bug:true
      ~seed:0 ~runs:10_000 figure1
  in
  Alcotest.(check int) "stopped at the first bug" 1 r.Sct_explore.Stats.buggy

(* --- PCT --- *)

let test_pct_finds_figure1 () =
  let r =
    Sct_explore.Pct.explore ~promote:promote_all ~change_points:1 ~seed:0
      ~runs:2_000 figure1
  in
  Alcotest.(check bool) "pct finds the bug" true (Sct_explore.Stats.found r)

(* --- MapleLite --- *)

let test_maple_forces_reversal () =
  (* init-before-use: the read-before-write reversal is exactly what the
     active phase forces *)
  let program () =
    let ready = Sct.Var.make ~name:"m_ready" 0 in
    let t = Sct.spawn (fun () -> Sct.Var.write ready 1) in
    let r = Sct.Var.read ready in
    Sct.join t;
    Sct.check (r = 1) "used before initialised"
  in
  let r =
    Sct_explore.Maple_lite.explore ~promote:promote_all ~seed:0 program
  in
  Alcotest.(check bool) "maple finds it" true (Sct_explore.Stats.found r)

let test_maple_few_schedules () =
  let r =
    Sct_explore.Maple_lite.explore ~promote:promote_all ~seed:0 figure1
  in
  Alcotest.(check bool) "explores few schedules" true
    (r.Sct_explore.Stats.total <= 40)

(* --- technique front-end --- *)

let test_run_all_pipeline () =
  let o =
    { Sct_explore.Techniques.default_options with Sct_explore.Techniques.limit = 2_000 }
  in
  let detection, results = Sct_explore.Techniques.run_all o figure1 in
  Alcotest.(check bool) "x and y promoted" true
    (List.length detection.Sct_race.Promotion.racy >= 2);
  List.iter
    (fun (t, s) ->
      match t with
      | Sct_explore.Techniques.IPB | Sct_explore.Techniques.IDB
      | Sct_explore.Techniques.DFS | Sct_explore.Techniques.Rand
      | Sct_explore.Techniques.Fair | Sct_explore.Techniques.Length
      | Sct_explore.Techniques.IVB | Sct_explore.Techniques.ITB ->
          Alcotest.(check bool)
            (Sct_explore.Techniques.name t ^ " finds figure1")
            true
            (Sct_explore.Stats.found s)
      | Sct_explore.Techniques.PCT | Sct_explore.Techniques.Maple
      | Sct_explore.Techniques.SURW ->
          ())
    results

(* --- Stats.merge laws ---
   The parallel engine (lib/parallel) folds per-shard statistics with
   [Stats.merge] in arbitrary grouping; these laws are what make any
   worker-completion order yield the same table. *)

let gen_stats =
  QCheck2.Gen.(
    let gen_witness =
      let* w_pc = int_bound 3 in
      let* w_dc = int_bound 4 in
      let* w_by = int_bound 2 in
      let* sched = list_size (int_bound 4) (int_bound 2) in
      let* msg = oneofl [ "a"; "b" ] in
      return
        {
          Sct_explore.Stats.w_bug = Outcome.Assertion_failure msg;
          w_by;
          w_schedule = Schedule.of_list sched;
          w_pc;
          w_dc;
        }
    in
    let* technique = oneofl [ "Rand"; "DFS" ] in
    let* bound = option (int_bound 3) in
    let* bound_complete = bool in
    let* to_first_bug = option (map (fun i -> i + 1) (int_bound 30)) in
    let* first_bug = option gen_witness in
    let* total = int_bound 100 in
    let* new_at_bound = int_bound 50 in
    let* buggy = int_bound 20 in
    let* complete = bool in
    let* hit_limit = bool in
    let* hit_deadline = bool in
    let* n_threads = int_bound 5 in
    let* max_enabled = int_bound 5 in
    let* max_sched_points = int_bound 50 in
    let* executions = int_bound 100 in
    let* steps_executed = int_bound 1000 in
    let* steps_saved = int_bound 1000 in
    let* por_pruned = int_bound 1000 in
    let* distinct =
      option (list_size (int_bound 5) (list_size (int_bound 4) (int_bound 2)))
    in
    return
      {
        (Sct_explore.Stats.base ~technique) with
        Sct_explore.Stats.bound;
        bound_complete;
        to_first_bug;
        first_bug;
        total;
        new_at_bound;
        buggy;
        complete;
        hit_limit;
        hit_deadline;
        n_threads;
        max_enabled;
        max_sched_points;
        executions;
        steps_executed;
        steps_saved;
        por_pruned;
        distinct_schedules =
          Option.map
            (fun ss ->
              List.fold_left
                (fun acc s -> Sct_explore.Stats.Sched_set.add s acc)
                Sct_explore.Stats.Sched_set.empty ss)
            distinct;
      })

let prop_merge_associative =
  QCheck2.Test.make ~name:"Stats.merge is associative" ~count:300
    QCheck2.Gen.(triple gen_stats gen_stats gen_stats)
    (fun (a, b, c) ->
      Sct_explore.Stats.equal
        (Sct_explore.Stats.merge a (Sct_explore.Stats.merge b c))
        (Sct_explore.Stats.merge (Sct_explore.Stats.merge a b) c))

let prop_merge_commutative =
  QCheck2.Test.make ~name:"Stats.merge is commutative" ~count:300
    QCheck2.Gen.(pair gen_stats gen_stats)
    (fun (a, b) ->
      Sct_explore.Stats.equal
        (Sct_explore.Stats.merge a b)
        (Sct_explore.Stats.merge b a))

let prop_merge_identity =
  QCheck2.Test.make ~name:"Stats.base is the identity of Stats.merge"
    ~count:300 gen_stats (fun a ->
      let id = Sct_explore.Stats.base ~technique:a.Sct_explore.Stats.technique in
      Sct_explore.Stats.equal (Sct_explore.Stats.merge a id) a
      && Sct_explore.Stats.equal (Sct_explore.Stats.merge id a) a)

let suites =
  [
    ( "dfs",
      [
        Alcotest.test_case "enumeration counts" `Quick test_enumeration_count;
        Alcotest.test_case "exact levels partition the space" `Quick
          test_level_counts_partition;
        Alcotest.test_case "delay subset of preemption" `Quick
          test_delay_subset_preemption;
        Alcotest.test_case "unique zero-delay schedule" `Quick
          test_zero_delay_unique;
        Alcotest.test_case "schedule limit" `Quick test_limit_respected;
        Alcotest.test_case "nondeterminism detected" `Quick
          test_nondeterminism_detected;
      ] );
    ( "bounded",
      [
        Alcotest.test_case "reports the minimal bound" `Quick
          test_bounded_reports_min_bound;
        Alcotest.test_case "complete space, no bug" `Quick
          test_bounded_complete_no_bug;
        Alcotest.test_case "first-bug index is cumulative" `Quick
          test_bounded_first_bug_cumulative;
      ] );
    ( "random-pct-maple",
      [
        Alcotest.test_case "random finds a trivial bug" `Quick
          test_random_finds_trivial;
        Alcotest.test_case "random is seeded-deterministic" `Quick
          test_random_seeded_deterministic;
        Alcotest.test_case "random stop-on-bug" `Quick test_random_stop_on_bug;
        Alcotest.test_case "pct finds figure1" `Quick test_pct_finds_figure1;
        Alcotest.test_case "maple forces a reversal" `Quick
          test_maple_forces_reversal;
        Alcotest.test_case "maple explores few schedules" `Quick
          test_maple_few_schedules;
        Alcotest.test_case "run_all pipeline" `Quick test_run_all_pipeline;
      ] );
    ( "stats-merge",
      [
        QCheck_alcotest.to_alcotest prop_merge_associative;
        QCheck_alcotest.to_alcotest prop_merge_commutative;
        QCheck_alcotest.to_alcotest prop_merge_identity;
      ] );
  ]
