(* Happens-before signatures: equivalence classes of schedules. *)

open Sct_core

let promote_all _ = true

let run_decisions ~scheduler program =
  (Runtime.exec ~promote:promote_all ~record_decisions:true ~scheduler program)
    .Runtime.r_decisions

let guided order program =
  let remaining = ref order in
  let scheduler (ctx : Runtime.ctx) =
    match !remaining with
    | t :: rest when List.exists (Tid.equal t) ctx.c_enabled ->
        remaining := rest;
        t
    | _ -> (
        match
          Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
            ~enabled:ctx.c_enabled
        with
        | Some t -> t
        | None -> assert false)
  in
  run_decisions ~scheduler program

(* t1 writes a, t2 writes b (disjoint): the two orders of the independent
   writes yield the same signature. *)
let disjoint_writes () =
  let a = Sct.Var.make ~name:"hb_a" 0 in
  let b = Sct.Var.make ~name:"hb_b" 0 in
  let t1 = Sct.spawn (fun () -> Sct.Var.write a 1) in
  let t2 = Sct.spawn (fun () -> Sct.Var.write b 1) in
  Sct.join t1;
  Sct.join t2

let test_independent_orders_equal () =
  let s1 =
    Sct_explore.Hb_signature.of_decisions
      (guided [ 0; 0; 1; 2 ] disjoint_writes)
  in
  let s2 =
    Sct_explore.Hb_signature.of_decisions
      (guided [ 0; 0; 2; 1 ] disjoint_writes)
  in
  Alcotest.(check bool) "same signature" true
    (Sct_explore.Hb_signature.equal s1 s2)

(* Same-variable writers: the two orders conflict and must differ. *)
let conflicting_writes () =
  let a = Sct.Var.make ~name:"hb_c" 0 in
  let t1 = Sct.spawn (fun () -> Sct.Var.write a 1) in
  let t2 = Sct.spawn (fun () -> Sct.Var.write a 2) in
  Sct.join t1;
  Sct.join t2

let test_dependent_orders_differ () =
  let s1 =
    Sct_explore.Hb_signature.of_decisions
      (guided [ 0; 0; 1; 2 ] conflicting_writes)
  in
  let s2 =
    Sct_explore.Hb_signature.of_decisions
      (guided [ 0; 0; 2; 1 ] conflicting_writes)
  in
  Alcotest.(check bool) "different signatures" false
    (Sct_explore.Hb_signature.equal s1 s2)

let test_distinct_count () =
  (* fully independent threads: many schedules, one class *)
  let independent () =
    let t =
      Sct.spawn (fun () ->
          for _ = 1 to 3 do
            Sct.yield ()
          done)
    in
    for _ = 1 to 3 do
      Sct.yield ()
    done;
    Sct.join t
  in
  let schedules, classes =
    Sct_explore.Hb_signature.distinct_under_dfs ~promote:promote_all
      ~limit:10_000 independent
  in
  Alcotest.(check int) "C(6,3) schedules" 20 schedules;
  Alcotest.(check int) "one hb class" 1 classes;
  (* conflicting writers: both orders are distinct classes *)
  let schedules, classes =
    Sct_explore.Hb_signature.distinct_under_dfs ~promote:promote_all
      ~limit:10_000 conflicting_writes
  in
  Alcotest.(check bool) "more than one schedule" true (schedules >= 2);
  Alcotest.(check int) "two hb classes" 2 classes

(* Signatures are a quotient of schedules: never more classes than
   schedules, and the quotient is stable across the random family. *)
let prop_classes_bounded =
  QCheck2.Test.make ~name:"hb classes <= schedules" ~count:25
    ~print:Test_programs_qcheck.print_program
    Test_programs_qcheck.gen_program_gen (fun gp ->
      let program = Test_programs_qcheck.build gp in
      let schedules, classes =
        Sct_explore.Hb_signature.distinct_under_dfs ~promote:promote_all
          ~limit:5_000 program
      in
      classes >= 1 && classes <= schedules)

let suites =
  [
    ( "hb-signature",
      [
        Alcotest.test_case "independent orders share a signature" `Quick
          test_independent_orders_equal;
        Alcotest.test_case "dependent orders differ" `Quick
          test_dependent_orders_differ;
        Alcotest.test_case "class counting" `Quick test_distinct_count;
        QCheck_alcotest.to_alcotest prop_classes_bounded;
      ] );
  ]
